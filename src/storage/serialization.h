#ifndef HERMES_STORAGE_SERIALIZATION_H_
#define HERMES_STORAGE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "storage/checkpoint.h"
#include "storage/command_log.h"

namespace hermes::storage {

/// Durable persistence for the two recovery artifacts (§4.3): the command
/// log (the totally ordered input stream — in a deterministic system this
/// *is* the database) and consistent checkpoints. A simple little-endian
/// binary format with a magic header and a trailing XOR checksum; readers
/// validate structure and fail with a Status instead of crashing on
/// truncated or corrupted files.

/// Writes the whole command log to `path` (overwrites).
Status WriteCommandLog(const CommandLog& log, const std::string& path);

/// Appends nothing; reads a file written by WriteCommandLog into `*log`
/// (which must be empty).
Status ReadCommandLog(const std::string& path, CommandLog* log);

Status WriteCheckpoint(const Checkpoint& checkpoint, const std::string& path);
Status ReadCheckpoint(const std::string& path, Checkpoint* checkpoint);

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_SERIALIZATION_H_
