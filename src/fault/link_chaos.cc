#include "fault/link_chaos.h"

namespace hermes::fault {
namespace {

uint64_t LinkKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

}  // namespace

LinkChaos::LinkChaos(const LinkChaosConfig& config, uint64_t seed)
    : config_(config), seed_(Mix64(seed ^ 0x11c4a05ULL)) {}

bool LinkChaos::InGrayWindow(NodeId src, NodeId dst, SimTime now) const {
  return config_.has_gray() && now >= config_.gray_from_us &&
         now < config_.gray_until_us &&
         (src == config_.gray_node || dst == config_.gray_node);
}

sim::Perturbation LinkChaos::Draw(NodeId src, NodeId dst, uint64_t link_seq,
                                  SimTime now) const {
  // A fresh Rng per message, keyed by (seed, link, message index): the
  // draw depends only on the message's identity, never on how many draws
  // other links made before it.
  Rng rng(Mix64(seed_ ^ Mix64(LinkKey(src, dst)) ^
                Mix64(link_seq + 0x9e3779b9ULL)));
  sim::Perturbation p;
  // Wire attempts are lost independently until one gets through (bounded
  // so a pathological drop_prob cannot stall the simulation). Inside a
  // gray window the per-attempt loss probability rises — still bounded,
  // still retransmitted: gray links are slow and expensive, never lossy
  // at the message level.
  const bool gray = InGrayWindow(src, dst, now);
  const double drop_prob =
      gray ? config_.drop_prob + config_.gray_drop_prob : config_.drop_prob;
  while (p.dropped_attempts < config_.max_drops_per_message &&
         rng.NextDouble() < drop_prob) {
    ++p.dropped_attempts;
    p.extra_delay_us += config_.retransmit_delay_us;
  }
  if (rng.NextDouble() < config_.duplicate_prob) p.duplicates = 1;
  if (config_.max_jitter_us > 0) {
    p.extra_delay_us += rng.NextBounded(config_.max_jitter_us + 1);
  }
  if (gray) p.extra_delay_us += config_.gray_extra_delay_us;
  return p;
}

bool LinkChaos::HeartbeatDropped(NodeId src, NodeId dst, uint64_t tick,
                                 SimTime now) const {
  if (!InGrayWindow(src, dst, now)) return false;
  if (config_.gray_heartbeat_drop_prob <= 0.0) return false;
  // Keyed off a distinct salt so heartbeat draws never collide with the
  // per-message stream above.
  Rng rng(Mix64(seed_ ^ 0x6b24ddca7ULL ^ Mix64(LinkKey(src, dst)) ^
                Mix64(tick + 0x1799b5ULL)));
  return rng.NextDouble() < config_.gray_heartbeat_drop_prob;
}

void LinkChaos::Install(sim::Network* net) {
  net->set_perturbation([this](NodeId src, NodeId dst, uint64_t /*bytes*/,
                               SimTime now, uint64_t link_seq) {
    return Draw(src, dst, link_seq, now);
  });
}

}  // namespace hermes::fault
