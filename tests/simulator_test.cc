#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = 0;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(50, [&] { ++fired; });
  sim.Schedule(150, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnIdleQueue) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(5, [&] { times.push_back(sim.Now()); });
  });
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.RunAll();
  SimTime seen = 0;
  sim.ScheduleAt(50, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace hermes::sim
