#include "routing/calvin_router.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch MakeBatch(std::vector<TxnRequest> txns) {
  Batch batch;
  batch.txns = std::move(txns);
  return batch;
}

class CalvinRouterTest : public ::testing::Test {
 protected:
  CalvinRouterTest()
      : ownership_(std::make_unique<RangePartitionMap>(100, 4)),
        router_(&ownership_, &costs_, 4) {}

  OwnershipMap ownership_;
  CostModel costs_;
  CalvinRouter router_;
};

TEST_F(CalvinRouterTest, MultiMasterForDistributedWrites) {
  // Writes on nodes 0 and 3 -> both are masters.
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {10, 90})}));
  ASSERT_EQ(plan.txns.size(), 1u);
  EXPECT_EQ(plan.txns[0].masters, (std::vector<NodeId>{0, 3}));
  // Each read ships to the remote master; nothing migrates.
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_TRUE(acc.ship_to_master);
    EXPECT_EQ(acc.new_owner, kInvalidNode);
  }
}

TEST_F(CalvinRouterTest, SingleNodeTxnHasOneMasterNoShipping) {
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11}, {10})}));
  EXPECT_EQ(plan.txns[0].masters, (std::vector<NodeId>{0}));
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_FALSE(acc.ship_to_master);
  }
}

TEST_F(CalvinRouterTest, ReadOnlyDistributedRunsOnAllOwners) {
  // Every owner executes the logic (deterministic execution), so each
  // read record is multicast to the other participants.
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {80, 81, 10}, {})}));
  EXPECT_EQ(plan.txns[0].masters, (std::vector<NodeId>{0, 3}));
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_TRUE(acc.ship_to_master);
  }
}

TEST_F(CalvinRouterTest, LocalReadOnlySingleMasterNoShipping) {
  RoutePlan plan = router_.RouteBatch(MakeBatch({MakeTxn(1, {80, 81}, {})}));
  EXPECT_EQ(plan.txns[0].masters, (std::vector<NodeId>{3}));
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_FALSE(acc.ship_to_master);
  }
}

TEST_F(CalvinRouterTest, BlindWritesShipNothing) {
  // Key 90 written but not read: its pre-value is not needed anywhere.
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10}, {10, 90})}));
  for (const auto& acc : plan.txns[0].accesses) {
    if (acc.key == 90) {
      EXPECT_FALSE(acc.ship_to_master);
    }
  }
}

TEST_F(CalvinRouterTest, PreservesBatchOrder) {
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 10; ++i) txns.push_back(MakeTxn(i, {i}, {i}));
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  for (size_t i = 0; i < plan.txns.size(); ++i) {
    EXPECT_EQ(plan.txns[i].txn.id, i + 1);
  }
}

TEST_F(CalvinRouterTest, NeverTouchesOwnership) {
  (void)router_.RouteBatch(
      MakeBatch({MakeTxn(1, {10, 90}, {10, 90}), MakeTxn(2, {5, 50}, {5})}));
  EXPECT_TRUE(ownership_.key_overlay().empty());
}

TEST_F(CalvinRouterTest, RmwKeyAtMasterShipsToOtherMasters) {
  // Key 10 (node 0) and 90 (node 3), both read-modify-write: each master
  // owns one key and needs the other's value.
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {10, 90})}));
  for (const auto& acc : plan.txns[0].accesses) {
    EXPECT_TRUE(acc.is_write);
    EXPECT_TRUE(acc.ship_to_master);
  }
}

TEST_F(CalvinRouterTest, ChunkMigrationRehomesRange) {
  TxnRequest chunk;
  chunk.id = 7;
  chunk.kind = TxnKind::kChunkMigration;
  chunk.migration_target = 2;
  for (Key k = 0; k < 5; ++k) chunk.write_set.push_back(k);
  RoutePlan plan = router_.RouteBatch(MakeBatch({chunk}));
  EXPECT_EQ(plan.txns[0].masters, (std::vector<NodeId>{2}));
  EXPECT_EQ(plan.txns[0].accesses.size(), 5u);
  EXPECT_EQ(ownership_.Owner(3), 2);
  EXPECT_EQ(ownership_.Owner(5), 0);
}

TEST_F(CalvinRouterTest, ProvisioningMarkersAdjustActiveSet) {
  TxnRequest add;
  add.kind = TxnKind::kAddNode;
  add.migration_target = 4;
  (void)router_.RouteBatch(MakeBatch({add}));
  EXPECT_EQ(router_.num_active_nodes(), 5);

  TxnRequest remove;
  remove.kind = TxnKind::kRemoveNode;
  remove.migration_target = 1;
  (void)router_.RouteBatch(MakeBatch({remove}));
  EXPECT_EQ(router_.num_active_nodes(), 4);
}

}  // namespace
}  // namespace hermes::routing
