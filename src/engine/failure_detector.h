#ifndef HERMES_ENGINE_FAILURE_DETECTOR_H_
#define HERMES_ENGINE_FAILURE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "obs/telemetry.h"

namespace hermes::engine {

class Cluster;

/// Deterministic heartbeat failure detector (DESIGN.md §5 "Partitions &
/// failure detection").
///
/// Every heartbeat_period_us of virtual time a tick runs on the control
/// lane (exclusive context) and evaluates, for every ordered node pair,
/// whether that round's heartbeat would have arrived: the link must not be
/// cut in the network's reachability matrix, the gray-failure draw (a pure
/// function of (chaos seed, link, tick)) must not eat it, and both
/// endpoints must be responsive. Consecutive misses beyond
/// miss_threshold make a direction unhealthy; a node pair is mutually
/// healthy only when both directions are. Responsive nodes outside the
/// primary component (largest, ties broken by lowest member id — never
/// hash order) of the mutual-health graph are converted into the SAME
/// membership-epoch transitions kCrashNoStall uses, so the majority side
/// routes around the cut while the minority side parks FIFO. When a
/// suspected node strings together confirm_threshold healthy rounds after
/// the heal, the detector restores it through the standard rejoin path
/// (suppressed-shipment flush, displaced-record reship, lease lapse,
/// parked release).
///
/// Heartbeats are control-plane: they ride no data-plane bytes and write
/// no Network counters, so a detector-enabled fault-free run keeps its
/// digests. The tick chain only runs while armed — any cut live, any
/// suspicion outstanding, any miss counter nonzero, or inside an
/// explicitly armed window (gray failures cut nothing, so the injector
/// arms the window) — and stops itself otherwise, keeping Drain() finite.
/// Everything here is a pure function of (fault plan, config, virtual
/// time): no wall clock, no hash order, no real threads.
class FailureDetector {
 public:
  /// Loss draw for one heartbeat: (src, dst, tick, now) -> eaten. Wired by
  /// the fault injector to LinkChaos::HeartbeatDropped; null means no
  /// gray losses.
  using HeartbeatLossFn =
      std::function<bool(NodeId src, NodeId dst, uint64_t tick, SimTime now)>;

  FailureDetector(Cluster* cluster, const DetectorConfig& config);

  /// Starts (or extends) the tick chain: the chain keeps running at least
  /// until `active_until`, and past that for as long as cuts, suspicions
  /// or misses persist. Exclusive context only (the fault layer arms
  /// between epochs).
  // detlint:requires(exclusive)
  void Arm(SimTime active_until);

  void set_heartbeat_loss(HeartbeatLossFn fn) { loss_ = std::move(fn); }

  bool armed() const { return armed_; }
  uint64_t ticks() const { return ticks_; }
  uint64_t heartbeat_misses() const { return heartbeat_misses_.value(); }
  uint64_t suspects() const { return suspects_.value(); }
  uint64_t restores() const { return restores_.value(); }
  /// Nodes currently marked down by this detector (sorted).
  const std::set<NodeId>& suspected() const { return detector_down_; }

  /// Sorted, salt-invariant rendering of the detector state (armed flag,
  /// tick count, suspected set, nonzero miss counters).
  std::string DebugString() const;

 private:
  /// One heartbeat round. Scheduled on the control lane, so it runs in
  /// the exclusive slice of its epoch.
  // detlint:runs(exclusive)
  void Tick();
  void EnsureSize(int num_nodes);
  bool Responsive(NodeId node) const;

  Cluster* cluster_;
  DetectorConfig config_;
  HeartbeatLossFn loss_;

  bool armed_ = false;      ///< a tick is scheduled
  SimTime active_until_ = 0;  ///< chain keeps running until at least here
  uint64_t ticks_ = 0;
  /// miss_[src][dst]: consecutive missed heartbeats on the directed link,
  /// clamped at miss_threshold.
  std::vector<std::vector<int>> miss_;
  /// Consecutive healthy rounds per suspected node (restore hysteresis).
  std::vector<int> confirm_;
  /// Nodes THIS detector marked down. Sorted container: iterated for
  /// restore decisions and diagnostics. Disjoint from injector-crashed
  /// nodes by plan construction; Responsive() keeps them probed (their
  /// process is alive — partitioned, not crashed).
  std::set<NodeId> detector_down_;

  obs::Counter heartbeat_misses_;
  obs::Counter suspects_;
  obs::Counter restores_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_FAILURE_DETECTOR_H_
