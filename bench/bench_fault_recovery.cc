// Fault-injection recovery bench: throughput dip and virtual
// time-to-recover under a seeded chaos schedule (two crash/rejoin cycles
// plus link drop/duplicate/jitter) versus the same workload fault-free,
// under both crash models:
//
//   stall      pause intake, drain, rebuild, resume (kCrash)
//   degraded   keep sequencing, route around the victim (kCrashNoStall)
//
// Expected shape: under stall, commits collapse to ~0 in the windows
// containing an outage and return to the fault-free level after the
// rejoin; under degraded mode the survivors keep committing through the
// outage (>=50% of fault-free inside the degraded windows). The stall
// model reports stall_us == time_to_recover_us (intake is down for the
// whole cycle); degraded mode reports stall_us == 0 while
// time_to_recover_us still covers crash -> node-serves-again.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace {

using hermes::ClusterConfig;
using hermes::MsToSim;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;
using hermes::fault::FaultInjector;
using hermes::fault::FaultPlan;
using hermes::fault::FaultPlanConfig;
using hermes::fault::InvariantMonitor;
using hermes::fault::PartitionStats;
using hermes::fault::RecoveryStats;

constexpr SimTime kHorizon = SecToSim(12);
constexpr int kClients = 64;
constexpr uint64_t kPlanSeed = 2026;

enum class Mode { kFaultFree, kStall, kNoStall, kPartition };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kFaultFree:
      return "fault_free";
    case Mode::kStall:
      return "stall";
    case Mode::kNoStall:
      return "degraded";
    case Mode::kPartition:
      return "partition";
  }
  return "?";
}

/// CLI flags: --seed=<n> reseeds every generated plan; --plan=<spec> is a
/// comma-separated k=v list overriding the plan shape, e.g.
/// --plan=crashes=1,partitions=2,one_way=0.5,gray=1,drop=0.05. Unknown
/// keys abort (a typo silently running the default plan would be worse).
struct Options {
  uint64_t seed = kPlanSeed;
  std::string plan_spec;  // verbatim, echoed into the JSON summary
  int crash_cycles = 2;
  int partition_cycles = 2;
  double one_way_fraction = 0.25;
  bool gray = false;
  double drop_prob = 0.02;
  double duplicate_prob = 0.01;
  SimTime max_jitter_us = 300;
};

bool ParsePlanSpec(const std::string& spec, Options* opts) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string kv = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "crashes") {
      opts->crash_cycles = std::atoi(val.c_str());
    } else if (key == "partitions") {
      opts->partition_cycles = std::atoi(val.c_str());
    } else if (key == "one_way") {
      opts->one_way_fraction = std::atof(val.c_str());
    } else if (key == "gray") {
      opts->gray = std::atoi(val.c_str()) != 0;
    } else if (key == "drop") {
      opts->drop_prob = std::atof(val.c_str());
    } else if (key == "dup") {
      opts->duplicate_prob = std::atof(val.c_str());
    } else if (key == "jitter") {
      opts->max_jitter_us = std::strtoull(val.c_str(), nullptr, 10);
    } else {
      return false;
    }
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts->seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--plan=", 7) == 0) {
      opts->plan_spec = arg + 7;
      if (!ParsePlanSpec(opts->plan_spec, opts)) {
        std::fprintf(stderr, "bad --plan spec: %s\n", arg + 7);
        return false;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=<n>] "
                   "[--plan=crashes=N,partitions=N,one_way=F,gray=0|1,"
                   "drop=F,dup=F,jitter=US]\n",
                   argv[0]);
      return false;
    }
  }
  return true;
}

ClusterConfig BenchConfig(Mode mode) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.hermes.fusion_table_capacity = 500;
  // Partition runs need the heartbeat detector to degrade membership; the
  // other modes keep it off so their telemetry/digest surface is the same
  // as before the detector existed.
  config.detector.enabled = mode == Mode::kPartition;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<hermes::partition::RangePartitionMap>(records,
                                                                  nodes);
  };
}

struct BenchOutcome {
  std::vector<double> commits;     // per metrics window
  std::vector<double> sent;        // bytes sent per window
  std::vector<double> received;    // bytes received per window
  SimTime window_us = 1;
  uint64_t total_commits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t unavailable = 0;
  uint64_t parked = 0;
  uint64_t watchdog_aborts = 0;
  uint64_t messages_held = 0;
  uint64_t detector_suspects = 0;
  uint64_t detector_restores = 0;
  std::vector<RecoveryStats> recoveries;
  std::vector<PartitionStats> partitions;
  bool monitors_ok = true;
};

BenchOutcome Run(Mode mode, const Options& opts) {
  const ClusterConfig config = BenchConfig(mode);
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  std::unique_ptr<FaultInjector> injector;
  InvariantMonitor monitor(config.num_records);
  if (mode != Mode::kFaultFree) {
    FaultPlanConfig pc;
    pc.horizon_us = kHorizon;
    pc.num_nodes = config.num_nodes;
    pc.crash_cycles = opts.crash_cycles;
    pc.min_outage_us = MsToSim(200);
    pc.max_outage_us = MsToSim(800);
    pc.no_stall = mode == Mode::kNoStall || mode == Mode::kPartition;
    if (mode == Mode::kPartition) {
      pc.partition_cycles = opts.partition_cycles;
      pc.one_way_fraction = opts.one_way_fraction;
      pc.gray = opts.gray;
      // Partition victims draw from the non-crashed pool; keep one crash
      // cycle so the bench exercises the overlap, matching the chaos
      // tests' mixed plans.
      pc.crash_cycles = opts.crash_cycles > 0 ? 1 : 0;
    }
    pc.link.drop_prob = opts.drop_prob;
    pc.link.duplicate_prob = opts.duplicate_prob;
    pc.link.max_jitter_us = opts.max_jitter_us;
    const FaultPlan plan = FaultPlan::Generate(pc, opts.seed);
    std::printf("%s", plan.DebugString().c_str());
    injector = std::make_unique<FaultInjector>(&cluster, plan,
                                               MapFactory(config));
    injector->set_monitor(&monitor);
  }

  hermes::workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1337;
  hermes::workload::YcsbWorkload gen(wl, nullptr);
  hermes::workload::ClosedLoopDriver driver(
      &cluster, kClients,
      [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();

  if (injector) {
    injector->RunUntil(kHorizon);
    injector->Drain();
  } else {
    cluster.RunUntil(kHorizon);
    cluster.Drain();
  }

  BenchOutcome out;
  const auto& m = cluster.metrics();
  out.window_us = m.window_us();
  const size_t windows = kHorizon / m.window_us();
  for (size_t w = 0; w < windows; ++w) {
    const bool have = w < m.windows().size();
    out.commits.push_back(have ? m.windows()[w].commits : 0.0);
    out.sent.push_back(have ? m.windows()[w].net_bytes : 0.0);
    out.received.push_back(have ? m.windows()[w].net_bytes_received : 0.0);
  }
  out.total_commits = cluster.metrics().total_commits();
  out.dropped = cluster.network().messages_dropped();
  out.duplicated = cluster.network().messages_duplicated();
  out.unavailable = cluster.degraded_ledger().unavailable_aborts();
  out.parked = cluster.degraded_ledger().parked_total();
  out.watchdog_aborts = cluster.degraded_ledger().watchdog_aborts();
  out.messages_held = cluster.network().total_held();
  if (const auto* det = cluster.failure_detector()) {
    out.detector_suspects = det->suspects();
    out.detector_restores = det->restores();
  }
  if (injector) {
    out.recoveries = injector->recoveries();
    out.partitions = injector->partitions();
    out.monitors_ok = monitor.ok();
    if (!monitor.ok()) std::printf("%s", monitor.FailureReport().c_str());
  }
  return out;
}

/// Commits inside the windows overlapping any crash->resume span of
/// `faulty`, for both runs, as faulty/baseline — the availability
/// criterion: how much of fault-free throughput survives the outage.
double OutageThroughputRatio(const BenchOutcome& faulty,
                             const BenchOutcome& baseline) {
  double f = 0.0, b = 0.0;
  for (const RecoveryStats& r : faulty.recoveries) {
    const size_t w0 = r.crash_at / faulty.window_us;
    const size_t w1 = r.resumed_at / faulty.window_us;
    for (size_t w = w0; w <= w1 && w < faulty.commits.size(); ++w) {
      f += faulty.commits[w];
      if (w < baseline.commits.size()) b += baseline.commits[w];
    }
  }
  return b > 0.0 ? f / b : 0.0;
}

void PrintRecoveries(const char* label, const BenchOutcome& out) {
  std::printf("\n%s recoveries (virtual time):\n", label);
  for (const RecoveryStats& r : out.recoveries) {
    std::printf(
        "  node %d: crash at %.3fs, outage to %.3fs, replay %.1fms "
        "(%llu batches), stall %.1fms, recovered in %.1fms\n",
        r.node, r.crash_at / 1e6, r.rejoin_at / 1e6, r.replay_us / 1e3,
        static_cast<unsigned long long>(r.replayed_batches),
        r.stall_us() / 1e3, r.time_to_recover_us() / 1e3);
  }
}

void PrintPartitions(const char* label, const BenchOutcome& out) {
  if (out.partitions.empty()) return;
  std::printf("\n%s partitions (virtual time):\n", label);
  for (const PartitionStats& p : out.partitions) {
    std::printf("  node %d: %s cut at %.3fs, healed at %.3fs, "
                "%llu messages parked\n",
                p.node, hermes::fault::PartitionModeName(p.mode),
                p.cut_at / 1e6, p.healed_at / 1e6,
                static_cast<unsigned long long>(p.held_released));
  }
  std::printf("  detector: suspects=%llu restores=%llu held_total=%llu\n",
              static_cast<unsigned long long>(out.detector_suspects),
              static_cast<unsigned long long>(out.detector_restores),
              static_cast<unsigned long long>(out.messages_held));
}

/// One-line machine-readable summary: the flags that shaped the run plus
/// each mode's headline numbers (scripts diff these across seeds).
void PrintJsonSummary(const Options& opts, const BenchOutcome& baseline,
                      const BenchOutcome& stall, const BenchOutcome& degraded,
                      const BenchOutcome& partition) {
  std::printf("JSON {\"seed\":%llu,\"plan\":\"%s\","
              "\"flags\":{\"crashes\":%d,\"partitions\":%d,"
              "\"one_way\":%.3f,\"gray\":%s},\"modes\":[",
              static_cast<unsigned long long>(opts.seed),
              opts.plan_spec.c_str(), opts.crash_cycles,
              opts.partition_cycles, opts.one_way_fraction,
              opts.gray ? "true" : "false");
  const BenchOutcome* outs[] = {&baseline, &stall, &degraded, &partition};
  const Mode modes[] = {Mode::kFaultFree, Mode::kStall, Mode::kNoStall,
                        Mode::kPartition};
  for (int i = 0; i < 4; ++i) {
    std::printf("%s{\"mode\":\"%s\",\"commits\":%llu,\"unavailable\":%llu,"
                "\"parked\":%llu,\"held\":%llu,\"suspects\":%llu,"
                "\"restores\":%llu,\"monitors_ok\":%s}",
                i > 0 ? "," : "", ModeName(modes[i]),
                static_cast<unsigned long long>(outs[i]->total_commits),
                static_cast<unsigned long long>(outs[i]->unavailable),
                static_cast<unsigned long long>(outs[i]->parked),
                static_cast<unsigned long long>(outs[i]->messages_held),
                static_cast<unsigned long long>(outs[i]->detector_suspects),
                static_cast<unsigned long long>(outs[i]->detector_restores),
                outs[i]->monitors_ok ? "true" : "false");
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;
  std::printf("Fault recovery bench: stall vs degraded crash handling vs "
              "network partitions, against a fault-free baseline "
              "(seed=%llu)\n",
              static_cast<unsigned long long>(opts.seed));
  BenchOutcome baseline = Run(Mode::kFaultFree, opts);
  BenchOutcome stall = Run(Mode::kStall, opts);
  BenchOutcome degraded = Run(Mode::kNoStall, opts);
  BenchOutcome partition = Run(Mode::kPartition, opts);

  PrintSeriesTable("throughput under chaos",
                   {"fault_free", "stall", "degraded", "partition"},
                   {baseline.commits, stall.commits, degraded.commits,
                    partition.commits},
                   1.0, "commits per window");
  PrintSeriesTable("degraded run wire traffic", {"sent", "received"},
                   {degraded.sent, degraded.received}, 1.0,
                   "bytes per window");

  PrintRecoveries(ModeName(Mode::kStall), stall);
  PrintRecoveries(ModeName(Mode::kNoStall), degraded);
  PrintRecoveries(ModeName(Mode::kPartition), partition);
  PrintPartitions(ModeName(Mode::kPartition), partition);

  const double stall_ratio = OutageThroughputRatio(stall, baseline);
  const double degraded_ratio = OutageThroughputRatio(degraded, baseline);
  std::printf("\noutage-window throughput vs fault-free: stall=%.1f%% "
              "degraded=%.1f%%\n",
              100.0 * stall_ratio, 100.0 * degraded_ratio);
  std::printf("degraded handling: parked=%llu unavailable=%llu "
              "watchdog_aborts=%llu\n",
              static_cast<unsigned long long>(degraded.parked),
              static_cast<unsigned long long>(degraded.unavailable),
              static_cast<unsigned long long>(degraded.watchdog_aborts));

  std::printf("\ntotals: fault-free=%llu stall=%llu degraded=%llu "
              "dropped=%llu duplicated=%llu monitors=%s\n",
              static_cast<unsigned long long>(baseline.total_commits),
              static_cast<unsigned long long>(stall.total_commits),
              static_cast<unsigned long long>(degraded.total_commits),
              static_cast<unsigned long long>(degraded.dropped),
              static_cast<unsigned long long>(degraded.duplicated),
              stall.monitors_ok && degraded.monitors_ok ? "ok" : "FAILED");
  std::printf("paper shape: stall drops to ~0 during outages; degraded "
              "keeps the survivors' share (>=50%% of fault-free) and pays "
              "only retries/parking on the victim's keys; partitions park "
              "the cut's traffic and the detector degrades membership "
              "until the heal\n");
  PrintJsonSummary(opts, baseline, stall, degraded, partition);
  const bool ok = stall.monitors_ok && degraded.monitors_ok &&
                  partition.monitors_ok && degraded_ratio >= 0.5;
  if (degraded_ratio < 0.5) {
    std::printf("FAIL: degraded outage-window ratio %.1f%% < 50%%\n",
                100.0 * degraded_ratio);
  }
  if (!partition.monitors_ok) {
    std::printf("FAIL: partition run tripped the invariant monitor\n");
  }
  return ok ? 0 : 1;
}
