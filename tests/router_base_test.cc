#include "routing/router.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

/// Minimal concrete router exposing the protected helpers.
class TestRouter : public Router {
 public:
  using Router::AnalysisCost;
  using Router::LinearCost;
  using Router::MajorityOwner;
  using Router::MergedAccessSet;
  using Router::PlanChunkMigrationDefault;
  using Router::PlanProvisioningDefault;

  TestRouter(partition::OwnershipMap* o, const CostModel* c, int n)
      : Router(o, c, n) {}
  RoutePlan RouteBatch(const Batch&) override { return {}; }
  std::string name() const override { return "test"; }
};

class RouterBaseTest : public ::testing::Test {
 protected:
  RouterBaseTest()
      : ownership_(std::make_unique<RangePartitionMap>(100, 4)),
        router_(&ownership_, &costs_, 4) {}

  OwnershipMap ownership_;
  CostModel costs_;
  TestRouter router_;
};

TEST_F(RouterBaseTest, MergedAccessSetDeduplicatesAndMergesModes) {
  TxnRequest txn;
  txn.read_set = {3, 1, 3, 2};
  txn.write_set = {2, 2, 4};
  const auto merged = TestRouter::MergedAccessSet(txn);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0], (std::pair<Key, bool>{1, false}));
  EXPECT_EQ(merged[1], (std::pair<Key, bool>{2, true}));  // RMW: exclusive
  EXPECT_EQ(merged[2], (std::pair<Key, bool>{3, false}));
  EXPECT_EQ(merged[3], (std::pair<Key, bool>{4, true}));  // blind write
}

TEST_F(RouterBaseTest, MajorityOwnerPicksPlurality) {
  TxnRequest txn;
  txn.read_set = {10, 11, 80};
  EXPECT_EQ(router_.MajorityOwner(txn), 0);
  txn.read_set = {80, 81, 10};
  EXPECT_EQ(router_.MajorityOwner(txn), 3);
}

TEST_F(RouterBaseTest, MajorityOwnerTieBreaksOnFirstReadHome) {
  TxnRequest txn;
  txn.read_set = {80, 10};  // one key each on nodes 3 and 0
  txn.write_set = {80};
  EXPECT_EQ(router_.MajorityOwner(txn), 3);  // home of first read key
  txn.read_set = {10, 80};
  EXPECT_EQ(router_.MajorityOwner(txn), 0);
}

TEST_F(RouterBaseTest, CostsScaleWithBatchSize) {
  EXPECT_EQ(router_.LinearCost(100), 100 * costs_.route_linear_us);
  EXPECT_GT(router_.AnalysisCost(1000), router_.LinearCost(1000));
  // The quadratic term dominates for large batches.
  EXPECT_GT(router_.AnalysisCost(2000), 3 * router_.AnalysisCost(1000) / 2);
}

TEST_F(RouterBaseTest, ActiveNodeSetAddRemove) {
  EXPECT_EQ(router_.num_active_nodes(), 4);
  router_.OnAddNode(4);
  EXPECT_EQ(router_.num_active_nodes(), 5);
  router_.OnAddNode(4);  // idempotent
  EXPECT_EQ(router_.num_active_nodes(), 5);
  router_.OnRemoveNode(2);
  EXPECT_EQ(router_.num_active_nodes(), 4);
  EXPECT_EQ(router_.active_nodes(), (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST_F(RouterBaseTest, RestoreActiveNodes) {
  router_.RestoreActiveNodes({1, 2});
  EXPECT_EQ(router_.num_active_nodes(), 2);
}

TEST_F(RouterBaseTest, DefaultChunkPlanMovesColdRange) {
  TxnRequest chunk;
  chunk.kind = TxnKind::kChunkMigration;
  chunk.migration_target = 3;
  for (Key k = 10; k < 20; ++k) chunk.write_set.push_back(k);
  const RoutedTxn rt = router_.PlanChunkMigrationDefault(chunk);
  EXPECT_EQ(rt.masters, (std::vector<NodeId>{3}));
  EXPECT_EQ(rt.accesses.size(), 10u);
  for (const auto& acc : rt.accesses) {
    EXPECT_EQ(acc.owner, 0);
    EXPECT_EQ(acc.new_owner, 3);
    EXPECT_TRUE(acc.is_write);
  }
  EXPECT_EQ(ownership_.Home(15), 3);  // range re-homed at routing time
}

TEST_F(RouterBaseTest, DefaultChunkPlanSkipsKeysAlreadyAtTarget) {
  ownership_.SetKeyOwner(12, 3);
  TxnRequest chunk;
  chunk.kind = TxnKind::kChunkMigration;
  chunk.migration_target = 3;
  for (Key k = 10; k < 15; ++k) chunk.write_set.push_back(k);
  const RoutedTxn rt = router_.PlanChunkMigrationDefault(chunk);
  EXPECT_EQ(rt.accesses.size(), 4u);  // key 12 already there
}

TEST_F(RouterBaseTest, ProvisioningDefaultsAdjustActiveSet) {
  TxnRequest add;
  add.kind = TxnKind::kAddNode;
  add.migration_target = 7;
  (void)router_.PlanProvisioningDefault(add);
  EXPECT_EQ(router_.num_active_nodes(), 5);

  TxnRequest remove;
  remove.kind = TxnKind::kRemoveNode;
  remove.migration_target = 7;
  const RoutedTxn rt = router_.PlanProvisioningDefault(remove);
  EXPECT_EQ(router_.num_active_nodes(), 4);
  EXPECT_TRUE(rt.accesses.empty());
}

}  // namespace
}  // namespace hermes::routing
