#ifndef HERMES_REPLICATION_LEASE_MANAGER_H_
#define HERMES_REPLICATION_LEASE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "storage/record_store.h"

namespace hermes::replication {

/// Engine-side replica-lease state (DESIGN.md §5 "Replica leases"): the
/// read-only copies installed at lease holders, and the waiters of masters
/// whose replica reads arrived before their copy did.
///
/// Copies live *beside* the primary RecordStores, never in them, so record
/// singularity is untouched: the primary still lives in exactly one store
/// (or in flight), and a copy is always derived data that may be dropped
/// at any moment. Copy application is version-max — an install or update
/// snapshot only lands if its record version is not older than the copy's
/// — so the final copy state is independent of message arrival order
/// (chaos timing, duplicates and re-grants all converge to the newest
/// committed version).
///
/// Lane discipline (the parallel simulator's confinement rules):
///  - `holders_` is written only in exclusive context (BeginInstall /
///    Revoke / LapseNode / LapseAll run from dispatch or membership
///    transitions) and read lane-side (commit fan-out, ApplyCopy's
///    staleness check) — the epoch barrier serializes writers, the same
///    pattern the executor uses for its in-flight table.
///  - Each per-node shard (copies + waiters) is touched only by that
///    node's lane (ApplyCopy, WaitCopies, CopyPresent) or by exclusive
///    context; those never overlap.
class LeaseManager {
 public:
  explicit LeaseManager(int num_nodes) { shards_.resize(num_nodes); }

  /// Grows the shard set to cover `node` (provisioning; exclusive context
  /// only — the vector must not reallocate under running lanes).
  void EnsureNode(NodeId node) {
    const size_t idx = static_cast<size_t>(node);
    if (idx >= shards_.size()) shards_.resize(idx + 1);
  }

  /// Registers `holder` as a lease holder of `key`. Runs at dispatch of
  /// the routed kInstall op, before the copy itself is shipped (`source`
  /// only feeds the trace event).
  // detlint:requires(exclusive)
  void BeginInstall(Key key, NodeId holder, NodeId source);

  /// Drops `holder`'s lease on `key` (routed kRevoke op): the copy is
  /// discarded and any master still waiting on it is woken — a revoked
  /// read degrades to the plain local read it would have been without the
  /// lease, so nothing ever blocks on a copy that will not arrive.
  // detlint:requires(exclusive)
  void Revoke(Key key, NodeId holder);

  /// Crash/rejoin lapse of one node: every lease it holds is dropped and
  /// its waiters are woken. Called at membership transitions (live and
  /// replayed), keeping the engine state a pure function of the membership
  /// schedule.
  // detlint:requires(exclusive)
  void LapseNode(NodeId node);

  /// Drops every lease, copy and waiter (membership transition or
  /// checkpoint restore). The router's LeaseTable lapses on the same
  /// schedule, so both sides re-grant identically from the batch stream.
  // detlint:requires(exclusive)
  void LapseAll();

  /// Applies a copy snapshot on `node`'s own lane (network delivery).
  /// Stale copies — the lease was revoked or lapsed while the snapshot
  /// was on the wire — are counted and dropped.
  void ApplyCopy(NodeId node, Key key, const storage::Record& record,
                 bool install, TxnId txn);

  /// True iff `node` currently has a materialized copy of `key`.
  bool CopyPresent(NodeId node, Key key) const;

  /// Sorted holder set of `key`, or nullptr when unleased. Lane-safe read
  /// (see class comment); the pointer is stable until the next exclusive
  /// mutation of the same key's entry.
  const std::vector<NodeId>* HoldersOf(Key key) const;

  /// Calls `ready` once every key either has a copy at `node` or is no
  /// longer leased to `node` (immediately if that already holds). The
  /// executor's master-presence analogue for replica reads.
  void WaitCopies(NodeId node, const std::vector<Key>& keys,
                  std::function<void()> ready);

  /// Order-insensitive checksum over every (node, key, value, version)
  /// copy — the replica analogue of RecordStore::Checksum, consumed by the
  /// coherence monitor and the determinism tests.
  uint64_t Checksum() const;

  /// Every copy as (node, key, record), sorted by (node, key) — the
  /// deterministic snapshot InvariantMonitor::CheckReplicaCoherence walks.
  std::vector<std::tuple<NodeId, Key, storage::Record>> SnapshotCopies()
      const;

  /// Test hook: flips one copy's value so the coherence monitor has
  /// something to catch.
  void CorruptCopyForTest(NodeId node, Key key);

  uint64_t installs() const;
  uint64_t updates() const;
  uint64_t stale_drops() const;
  uint64_t revokes() const { return revokes_; }
  uint64_t lapses() const { return lapses_; }
  size_t num_copies() const;
  size_t num_leased_keys() const { return holders_.size(); }

  /// Sorted diagnostic: leases, copies and outstanding copy-waiters.
  std::string DebugString() const;

  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct NodeShard {
    /// key -> copy. std::map: bounded by max_leases, sorted iteration for
    /// free (checksums, snapshots and diagnostics need no collect-and-sort).
    std::map<Key, storage::Record> copies;
    std::map<Key, std::vector<std::function<void()>>> waiters;
    uint64_t installs = 0;
    uint64_t updates = 0;
    uint64_t stale_drops = 0;
  };

  NodeShard& Shard(NodeId node) { return shards_[static_cast<size_t>(node)]; }
  const NodeShard& Shard(NodeId node) const {
    return shards_[static_cast<size_t>(node)];
  }
  /// Drops node's copy of key and wakes its waiters (exclusive context).
  void DropCopy(NodeId node, Key key);

  /// key -> sorted holder node ids. Exclusive-written, lane-read.
  std::map<Key, std::vector<NodeId>> holders_;
  std::vector<NodeShard> shards_;
  uint64_t revokes_ = 0;
  uint64_t lapses_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace hermes::replication

#endif  // HERMES_REPLICATION_LEASE_MANAGER_H_
