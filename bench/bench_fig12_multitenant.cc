// Reproduces Fig. 12: the multi-tenant workload whose hot spot rotates
// from node to node every rotation period (scaled from the paper's 500 s).
//
// Expected shape (paper): Calvin is flat and lowest (no balancing);
// T-Part slightly better; LEAP migrates smoothly but cannot balance; Clay
// eventually balances each hot spot but dips right after every rotation
// (migration lag + dedicated migration phases); Hermes adapts within
// batches and stays highest and most stable.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

constexpr SimTime kRotation = SecToSim(15);
constexpr int kRotations = 4;
constexpr SimTime kHorizon = kRotation * kRotations;

std::vector<double> RunMultiTenant(RouterKind kind, bool enable_clay) {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 4;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 25'000;
  mt.rotation_us = kRotation;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 40;
  config.migration_chunk_records = 1000;
  Cluster cluster(config, kind, gen.PerfectPartitioning());
  cluster.Load();
  if (enable_clay) {
    hermes::routing::ClayConfig clay;
    clay.monitor_window_us = SecToSim(3);
    clay.range_size = mt.records_per_tenant / 5;
    cluster.EnableClay(clay);
  }

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 800, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();
  cluster.RunUntil(kHorizon);
  cluster.Drain();

  // Per-2s throughput series.
  std::vector<double> series;
  const auto& windows = cluster.metrics().windows();
  for (size_t w = 0; w + 1 < kHorizon / SecToSim(1); w += 2) {
    double commits = 0;
    for (size_t i = w; i < w + 2 && i < windows.size(); ++i) {
      commits += static_cast<double>(windows[i].commits);
    }
    series.push_back(commits);
  }
  return series;
}

}  // namespace

int main() {
  std::printf("Fig. 12 reproduction: multi-tenant workload, hot spot "
              "rotates every %llu s (vertical events at t=15,30,45)\n",
              static_cast<unsigned long long>(kRotation / 1'000'000));

  const auto calvin = RunMultiTenant(RouterKind::kCalvin, false);
  const auto clay = RunMultiTenant(RouterKind::kCalvin, true);
  const auto gstore = RunMultiTenant(RouterKind::kGStore, false);
  const auto tpart = RunMultiTenant(RouterKind::kTPart, false);
  const auto leap = RunMultiTenant(RouterKind::kLeap, false);
  const auto hermes = RunMultiTenant(RouterKind::kHermes, false);

  PrintSeriesTable("Fig 12: throughput over time",
                   {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
                   {calvin, clay, gstore, tpart, leap, hermes}, 2.0,
                   "committed txns per 2s window");
  std::printf("\npaper shape: hermes highest and stable across rotations; "
              "clay recovers each hot spot but dips after changes; calvin "
              "lowest\n");
  return 0;
}
