#include "fault/injector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "engine/recovery.h"

namespace hermes::fault {
namespace {

bool HasLinkChaos(const LinkChaosConfig& link) {
  return link.drop_prob > 0.0 || link.duplicate_prob > 0.0 ||
         link.max_jitter_us > 0 || link.has_gray();
}

bool HasPartitions(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultEvent::Kind::kPartitionStart ||
        e.kind == FaultEvent::Kind::kPartitionHeal) {
      return true;
    }
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(engine::Cluster* cluster, const FaultPlan& plan,
                             MapFactory map_factory)
    : cluster_(cluster), plan_(plan), map_factory_(std::move(map_factory)) {
  assert(cluster_->config().enable_command_log &&
         "crash recovery replays the command log; enable it");
  for (const FaultEvent& e : plan_.events) {
    (void)e;
    assert(e.kind != FaultEvent::Kind::kFailover &&
           "failover events need the ReplicaGroup constructor");
  }
  if (HasLinkChaos(plan_.link)) {
    chaos_.push_back(std::make_unique<LinkChaos>(plan_.link, plan_.seed));
    chaos_.back()->Install(&cluster_->network());
  }
  if (HasPartitions(plan_)) {
    assert(cluster_->config().detector.enabled &&
           "partition plans need the heartbeat failure detector "
           "(config.detector.enabled) to degrade membership");
    for (const FaultEvent& e : plan_.events) {
      (void)e;
      // A stall-crash drains to quiescence; with a cut up the drain waits
      // on parked payloads forever. Generate() enforces no_stall for
      // mixed plans — re-checked here for hand-built ones.
      assert(e.kind != FaultEvent::Kind::kCrash &&
             "stall-crash cycles cannot coexist with partitions");
    }
  }
  if (cluster_->failure_detector() != nullptr) {
    // The detector's heartbeat stream shares the chaos seed: a gray link
    // eats heartbeats with gray_heartbeat_drop_prob, keyed by (seed, link,
    // tick) — a pure function, so detector epochs replay exactly.
    if (!chaos_.empty()) {
      LinkChaos* chaos = chaos_.back().get();
      cluster_->failure_detector()->set_heartbeat_loss(
          [chaos](NodeId src, NodeId dst, uint64_t tick, SimTime now) {
            return chaos->HeartbeatDropped(src, dst, tick, now);
          });
    }
    // Gray windows cut nothing, so no PartitionCut arms the detector;
    // schedule the arming across the window (plus slack for the detector
    // to notice the recovery and restore membership).
    if (plan_.link.has_gray()) {
      engine::Cluster* cluster = cluster_;
      const SimTime until =
          plan_.link.gray_until_us +
          static_cast<SimTime>(cluster_->config().detector.miss_threshold +
                               cluster_->config().detector.confirm_threshold +
                               2) *
              cluster_->config().detector.heartbeat_period_us;
      cluster_->simulator().Schedule(
          plan_.link.gray_from_us,
          [cluster, until] { cluster->ArmDetector(until); });
    }
  }
  // The rebuild baseline. Requires the cluster Load()ed and not yet
  // running (TakeCheckpoint asserts quiescence).
  checkpoint_ = cluster_->TakeCheckpoint();
}

FaultInjector::FaultInjector(engine::ReplicaGroup* group,
                             const FaultPlan& plan)
    : group_(group), plan_(plan) {
  for (const FaultEvent& e : plan_.events) {
    (void)e;
    assert(e.kind == FaultEvent::Kind::kFailover &&
           "crash/rejoin events need the single-cluster constructor");
  }
  if (HasLinkChaos(plan_.link)) {
    // One independently seeded fabric per replica (each is its own DC).
    for (int r = 0; r < group_->num_replicas(); ++r) {
      chaos_.push_back(std::make_unique<LinkChaos>(
          plan_.link, Mix64(plan_.seed ^ (static_cast<uint64_t>(r) + 1))));
      chaos_.back()->Install(&group_->replica(r).network());
    }
  }
}

SimTime FaultInjector::Now() const {
  return cluster_ != nullptr
             ? cluster_->Now()
             : group_->replica(group_->primary_index()).Now();
}

void FaultInjector::AdvanceTo(SimTime t) {
  if (cluster_ != nullptr) {
    // While a deferred checkpoint refresh is armed, step in metrics
    // windows so a quiescent gap between submission waves is noticed and
    // snapshotted instead of being leapt over in one RunUntil call.
    if (refresh_pending_) {
      const SimTime window =
          std::max<SimTime>(1, cluster_->metrics().window_us());
      while (refresh_pending_ && cluster_->Now() < t) {
        const SimTime next =
            std::min(t, ((cluster_->Now() / window) + 1) * window);
        cluster_->RunUntil(next);
        MaybeRefreshCheckpoint();
      }
    }
    if (cluster_->Now() < t) cluster_->RunUntil(t);
  } else {
    if (Now() < t) group_->RunUntil(t);
  }
}

void FaultInjector::MaybeRefreshCheckpoint() {
  if (!refresh_pending_ || cluster_ == nullptr) return;
  if (down_node_ != kInvalidNode) return;
  // Quiescent means nothing in flight and no scheduled event. With intake
  // unpaused that also implies no pending submissions (a pending
  // submission always has its batch-cut event scheduled), so
  // TakeCheckpoint's quiescence assertion holds.
  if (cluster_->executor().inflight() != 0 || !cluster_->simulator().idle()) {
    return;
  }
  checkpoint_ = cluster_->TakeCheckpoint();
  refresh_pending_ = false;
  checkpoint_refreshes_.Add();
}

void FaultInjector::RunUntil(SimTime deadline) {
  while (next_event_ < plan_.events.size() &&
         plan_.events[next_event_].at <= deadline) {
    const FaultEvent event = plan_.events[next_event_];
    AdvanceTo(event.at);
    Apply(event);
    ++next_event_;
  }
  AdvanceTo(deadline);
}

SimTime FaultInjector::Drain() {
  while (next_event_ < plan_.events.size()) {
    const FaultEvent event = plan_.events[next_event_];
    AdvanceTo(event.at);
    Apply(event);
    ++next_event_;
  }
  if (cluster_ != nullptr) {
    const SimTime t = cluster_->Drain();
    MaybeRefreshCheckpoint();
    if (monitor_ != nullptr && (had_partition_ || plan_.link.has_gray())) {
      // Subsumes the degraded oracle: the partition check delegates to it
      // whenever the run recorded membership transitions (detector fired
      // or scripted no-stall crashes rode along).
      monitor_->CheckPartitionOracle(*cluster_, cluster_->kind(),
                                     map_factory_,
                                     "post-drain partition oracle");
    } else if (monitor_ != nullptr && had_no_stall_) {
      monitor_->CheckDegradedOracle(*cluster_, cluster_->kind(), map_factory_,
                                    "post-drain degraded oracle");
    }
    return t;
  }
  group_->Drain();
  return Now();
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kCrash:
      ApplyCrash(event);
      break;
    case FaultEvent::Kind::kRejoin:
      if (down_no_stall_) {
        ApplyRejoinNoStall(event);
      } else {
        ApplyRejoin(event);
      }
      break;
    case FaultEvent::Kind::kCrashNoStall:
      ApplyCrashNoStall(event);
      break;
    case FaultEvent::Kind::kFailover:
      ApplyFailover();
      break;
    case FaultEvent::Kind::kPartitionStart:
      ApplyPartitionStart(event);
      break;
    case FaultEvent::Kind::kPartitionHeal:
      ApplyPartitionHeal(event);
      break;
  }
}

void FaultInjector::RunMonitor(const char* what) {
  if (monitor_ == nullptr || cluster_ == nullptr) return;
  char context[64];
  std::snprintf(context, sizeof(context), "%s t=%llu", what,
                static_cast<unsigned long long>(Now()));
  monitor_->CheckRecordSingularity(*cluster_, context);
}

void FaultInjector::ApplyCrash(const FaultEvent& event) {
  assert(down_node_ == kInvalidNode && "overlapping crash cycles");
  assert(event.node >= 0 && event.node < cluster_->num_nodes());
  RecoveryStats stats;
  stats.node = event.node;
  stats.crash_at = Now();
  HERMES_TRACE(&cluster_->tracer(), obs::EventKind::kCrash, event.node,
               kInvalidTxn);

  // Stall intake and let in-flight work finish. Records already riding a
  // message toward the dying node land first (its transport buffer
  // outlives the process), so at the drain point nothing is in flight and
  // the discarded store's contents are exactly what replay reproduces.
  cluster_->PauseIntake();
  drained_at_ = cluster_->Drain();
  stats.drained_at = drained_at_;
  // The monitor sees the drained-but-whole state: everything must be
  // singular BEFORE the store is discarded (afterwards the dead node's
  // keys are legitimately absent until the rebuild).
  RunMonitor("crash drain");
  cluster_->node(event.node).store().Clear();
  down_node_ = event.node;
  recoveries_.push_back(stats);
}

void FaultInjector::ApplyRejoin(const FaultEvent& event) {
  assert(down_node_ == event.node && "rejoin for a node that is not down");
  RecoveryStats& stats = recoveries_.back();
  stats.rejoin_at = Now();

  // §4.3 recovery in a shadow cluster: checkpoint + command-log suffix.
  // Determinism makes the shadow's post-replay state bit-identical to the
  // live cluster's state at the drain point, so the crashed node's store
  // can be copied out of it wholesale. The shadow's virtual clock is the
  // replay cost the rejoining node would really pay.
  for (const Batch& b : cluster_->command_log().batches()) {
    if (b.id >= checkpoint_.next_batch) ++stats.replayed_batches;
  }
  std::unique_ptr<engine::Cluster> shadow = engine::RecoverCluster(
      cluster_->config(), cluster_->kind(), map_factory_(), checkpoint_,
      cluster_->command_log());
  stats.replay_us = shadow->Now();

  const storage::RecordStore& rebuilt = shadow->node(event.node).store();
  storage::RecordStore& live = cluster_->node(event.node).store();
  assert(live.size() == 0 && "rejoining node's store must still be empty");
  for (Key k = 0; k < cluster_->config().num_records; ++k) {
    const storage::Record* rec = rebuilt.Get(k);
    if (rec != nullptr) live.Insert(k, *rec);
  }

  // The node serves again once the replay cost has elapsed — never before
  // the drain finished, never before the scheduled rejoin.
  const SimTime resume_at =
      std::max(stats.rejoin_at, drained_at_) + stats.replay_us;
  AdvanceTo(resume_at);
  stats.resumed_at = Now();
  stats.intake_resumed_at = stats.resumed_at;  // intake was paused until now
  HERMES_TRACE(&cluster_->tracer(), obs::EventKind::kRejoin, event.node,
               kInvalidTxn, static_cast<Key>(-1), stats.replayed_batches);

  // Refresh the rebuild baseline so the next cycle replays a short
  // suffix. Submissions can trickle in during the stall; if one is mid
  // network-hop right now the cluster is not quiescent, so the refresh is
  // deferred to the next quiescent window instead of silently keeping the
  // stale baseline (which would lengthen every later replay).
  down_node_ = kInvalidNode;
  refresh_pending_ = true;
  MaybeRefreshCheckpoint();
  RunMonitor("rejoin");
  cluster_->ResumeIntake();
}

void FaultInjector::ApplyCrashNoStall(const FaultEvent& event) {
  assert(down_node_ == kInvalidNode && "overlapping crash cycles");
  assert(event.node >= 0 && event.node < cluster_->num_nodes());
  RecoveryStats stats;
  stats.node = event.node;
  stats.no_stall = true;
  stats.crash_at = Now();
  // Degraded mode: no pause, no drain. The cluster keeps sequencing and
  // routes new batches around the victim, so crash_at doubles as the
  // drain point and intake never stops.
  stats.drained_at = stats.crash_at;
  stats.intake_resumed_at = stats.crash_at;
  RunMonitor("crash-nostall");
  // The victim's store is lost; the rebuild replays checkpoint + log,
  // which determinism makes bit-identical to what the node held. The
  // simulation models that by detaching the image in place (CrashNoStall
  // freezes every consumer at the node) and charging the replay cost at
  // rejoin; the degraded oracle proves a from-scratch replay told the
  // same membership schedule reproduces the same bits.
  cluster_->CrashNoStall(event.node);
  down_node_ = event.node;
  down_no_stall_ = true;
  had_no_stall_ = true;
  recoveries_.push_back(stats);
}

void FaultInjector::ApplyRejoinNoStall(const FaultEvent& event) {
  assert(down_node_ == event.node && "rejoin for a node that is not down");
  RecoveryStats& stats = recoveries_.back();
  stats.rejoin_at = Now();

  // The node replays checkpoint + log in the background while the cluster
  // keeps running degraded; it serves again once that cost has elapsed.
  // No shadow cluster here — the live image was never discarded (see
  // ApplyCrashNoStall), so only the virtual replay cost is charged.
  for (const Batch& b : cluster_->command_log().batches()) {
    if (b.id >= checkpoint_.next_batch) ++stats.replayed_batches;
  }
  stats.replay_us = static_cast<SimTime>(stats.replayed_batches) *
                    cluster_->config().degraded.replay_us_per_batch;
  AdvanceTo(stats.rejoin_at + stats.replay_us);
  stats.resumed_at = Now();

  cluster_->RejoinNoStall(event.node);
  down_node_ = kInvalidNode;
  down_no_stall_ = false;
  // A no-stall rejoin happens under load: there is no quiescent point to
  // snapshot at, so arm the deferred refresh for the next quiescent
  // window.
  refresh_pending_ = true;
  MaybeRefreshCheckpoint();
  RunMonitor("rejoin-nostall");
}

void FaultInjector::ApplyFailover() {
  group_->FailoverNow();
  failovers_applied_.Add();
}

void FaultInjector::ApplyPartitionStart(const FaultEvent& event) {
  assert(partitioned_node_ == kInvalidNode && "overlapping partitions");
  assert(event.node != down_node_ && "victim is already crashed");
  assert(event.node >= 0 && event.node < cluster_->num_nodes());
  PartitionStats stats;
  stats.node = event.node;
  stats.mode = event.mode;
  stats.cut_at = Now();
  held_at_cut_ = cluster_->network().total_held();
  const bool in = event.mode != PartitionMode::kOutbound;
  const bool out = event.mode != PartitionMode::kInbound;
  RunMonitor("partition cut");
  cluster_->PartitionCut(event.node, in, out);
  partitioned_node_ = event.node;
  had_partition_ = true;
  partitions_.push_back(stats);
}

void FaultInjector::ApplyPartitionHeal(const FaultEvent& event) {
  assert(partitioned_node_ == event.node &&
         "heal for a node that is not partitioned");
  PartitionStats& stats = partitions_.back();
  stats.healed_at = Now();
  stats.held_released = cluster_->network().total_held() - held_at_cut_;
  cluster_->PartitionHeal(event.node);
  partitioned_node_ = kInvalidNode;
  RunMonitor("partition heal");
}

}  // namespace hermes::fault
