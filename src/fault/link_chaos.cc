#include "fault/link_chaos.h"

namespace hermes::fault {

LinkChaos::LinkChaos(const LinkChaosConfig& config, uint64_t seed)
    : config_(config), seed_(Mix64(seed ^ 0x11c4a05ULL)) {}

sim::Perturbation LinkChaos::Draw(NodeId src, NodeId dst,
                                  uint64_t link_seq) const {
  // A fresh Rng per message, keyed by (seed, link, message index): the
  // draw depends only on the message's identity, never on how many draws
  // other links made before it.
  const uint64_t link_key =
      (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
      static_cast<uint32_t>(dst);
  Rng rng(Mix64(seed_ ^ Mix64(link_key) ^ Mix64(link_seq + 0x9e3779b9ULL)));
  sim::Perturbation p;
  // Wire attempts are lost independently until one gets through (bounded
  // so a pathological drop_prob cannot stall the simulation).
  while (p.dropped_attempts < config_.max_drops_per_message &&
         rng.NextDouble() < config_.drop_prob) {
    ++p.dropped_attempts;
    p.extra_delay_us += config_.retransmit_delay_us;
  }
  if (rng.NextDouble() < config_.duplicate_prob) p.duplicates = 1;
  if (config_.max_jitter_us > 0) {
    p.extra_delay_us += rng.NextBounded(config_.max_jitter_us + 1);
  }
  return p;
}

void LinkChaos::Install(sim::Network* net) {
  net->set_perturbation([this](NodeId src, NodeId dst, uint64_t /*bytes*/,
                               SimTime /*now*/, uint64_t link_seq) {
    return Draw(src, dst, link_seq);
  });
}

}  // namespace hermes::fault
