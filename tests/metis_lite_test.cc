#include "routing/metis_lite.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hermes::routing {
namespace {

Graph ChainGraph(size_t n, uint64_t edge_weight) {
  Graph g;
  g.vertex_weight.assign(n, 1);
  g.adj.assign(n, {});
  for (uint32_t v = 0; v + 1 < n; ++v) {
    g.adj[v].emplace_back(v + 1, edge_weight);
    g.adj[v + 1].emplace_back(v, edge_weight);
  }
  return g;
}

TEST(MetisLiteTest, AssignsEveryVertex) {
  Graph g = ChainGraph(100, 1);
  const auto part = PartitionGraph(g, 4, 0.1);
  ASSERT_EQ(part.size(), 100u);
  for (int p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(MetisLiteTest, BalancesVertexWeight) {
  Graph g = ChainGraph(100, 1);
  const auto part = PartitionGraph(g, 4, 0.1);
  std::vector<uint64_t> weight(4, 0);
  for (size_t v = 0; v < 100; ++v) weight[part[v]] += g.vertex_weight[v];
  for (uint64_t w : weight) {
    EXPECT_LE(w, static_cast<uint64_t>(1.1 * 100 / 4) + 1);
  }
}

TEST(MetisLiteTest, ChainCutIsSmall) {
  // An optimal 4-way partition of a chain cuts 3 edges.
  Graph g = ChainGraph(100, 1);
  const auto part = PartitionGraph(g, 4, 0.1);
  EXPECT_LE(g.CutWeight(part), 8u);
}

TEST(MetisLiteTest, KeepsCliquesTogether) {
  // Four 10-vertex cliques, no inter-clique edges: zero cut achievable.
  Graph g;
  g.vertex_weight.assign(40, 1);
  g.adj.assign(40, {});
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        if (i == j) continue;
        g.adj[c * 10 + i].emplace_back(c * 10 + j, 100);
      }
    }
  }
  const auto part = PartitionGraph(g, 4, 0.1);
  EXPECT_EQ(g.CutWeight(part), 0u);
  for (int c = 0; c < 4; ++c) {
    for (int i = 1; i < 10; ++i) {
      EXPECT_EQ(part[c * 10 + i], part[c * 10]);
    }
  }
}

TEST(MetisLiteTest, SinglePartitionTakesAll) {
  Graph g = ChainGraph(10, 1);
  const auto part = PartitionGraph(g, 1, 0.1);
  for (int p : part) EXPECT_EQ(p, 0);
}

TEST(MetisLiteTest, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(PartitionGraph(g, 3, 0.1).empty());
}

TEST(MetisLiteTest, DeterministicAcrossRuns) {
  Rng rng(3);
  Graph g;
  g.vertex_weight.assign(200, 1);
  g.adj.assign(200, {});
  for (int e = 0; e < 600; ++e) {
    const auto a = static_cast<uint32_t>(rng.NextBounded(200));
    const auto b = static_cast<uint32_t>(rng.NextBounded(200));
    if (a == b) continue;
    g.adj[a].emplace_back(b, 1 + rng.NextBounded(5));
    g.adj[b].emplace_back(a, g.adj[a].back().second);
  }
  EXPECT_EQ(PartitionGraph(g, 5, 0.1), PartitionGraph(g, 5, 0.1));
}

TEST(MetisLiteTest, RefinementImprovesCut) {
  Rng rng(9);
  Graph g;
  g.vertex_weight.assign(100, 1);
  g.adj.assign(100, {});
  // Two communities with dense intra edges and sparse cross edges.
  for (int e = 0; e < 800; ++e) {
    const int side = static_cast<int>(rng.NextBounded(2)) * 50;
    const auto a = static_cast<uint32_t>(side + rng.NextBounded(50));
    const auto b = static_cast<uint32_t>(side + rng.NextBounded(50));
    if (a == b) continue;
    g.adj[a].emplace_back(b, 10);
    g.adj[b].emplace_back(a, 10);
  }
  for (int e = 0; e < 20; ++e) {
    const auto a = static_cast<uint32_t>(rng.NextBounded(50));
    const auto b = static_cast<uint32_t>(50 + rng.NextBounded(50));
    g.adj[a].emplace_back(b, 1);
    g.adj[b].emplace_back(a, 1);
  }
  const auto with = PartitionGraph(g, 2, 0.1, /*refinement_passes=*/8);
  const auto without = PartitionGraph(g, 2, 0.1, /*refinement_passes=*/0);
  EXPECT_LE(g.CutWeight(with), g.CutWeight(without));
  // The communities should largely end up separated.
  EXPECT_LE(g.CutWeight(with), 100u);
}

}  // namespace
}  // namespace hermes::routing
