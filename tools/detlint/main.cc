// detlint — determinism lint for the Hermes routing/simulation stack.
//
// Hermes' schedulers are replicated deterministic state machines: every
// replica must reach bit-identical routing, eviction and migration
// decisions from the same totally ordered input. A single hash-map
// iteration-order leak, unseeded RNG, wall-clock read, or cross-lane
// mutation silently breaks replica agreement. detlint scans the source
// tree for the banned patterns CLAUDE.md's invariants describe — see
// rules.cc for the twelve-rule catalog and DESIGN.md §5 "Determinism
// toolchain" for the full rule table.
//
// v2 is a small multi-file analyzer (lexer.cc, rules.cc, report.cc):
// a real C++ token stream (raw-string aware) instead of regexes over
// stripped text, a project include graph for transitive include
// hygiene, and a token-level call graph for the annotation-driven
// lane-confinement contracts (comment markers: the `detlint:` prefix
// immediately followed by `requires(exclusive)` or `runs(exclusive)`).
//
// A finding is suppressed by an allow-marker comment on the same line or
// the line directly above — the `detlint:` prefix immediately followed
// by `allow(<rule>) <justification>`.
//
// The justification is mandatory and every suppression is listed in the
// report, so allowed exceptions stay reviewable.
//
// Usage:
//   detlint [--sarif=FILE] [--format=text|sarif] <dir-or-file>...
//   detlint --self-test <corpus-dir>
//
// Scan mode applies a per-tree rule profile (src/tools/bench/tests; see
// rules.cc ProfileFor) and skips the golden corpus under
// tests/detlint_corpus/, whose fixtures are deliberate violations.
// Self-test mode replays that corpus: every case directory holds fixture
// files (first line `// detlint-fixture: path=<virtual path>` places the
// fixture for path-scoped rules) plus an expected.txt listing the exact
// diagnostics; any difference fails.
//
// Exit status: 0 when clean, 1 when unsuppressed findings (or
// unjustified/unused suppressions, or self-test mismatches) exist, 2 on
// usage errors.
//
// The analyzer is a tripwire, not a compiler: the runtime complement —
// hash-salt perturbation, the decision/placement/trace digests, and the
// sequential-vs-parallel oracle — catches what a token-level pass cannot
// prove absent.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "report.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceExt(const std::string& ext) {
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

/// The error count PrintTextReport would report, without printing.
int CountErrors(const detlint::AnalysisResult& result) {
  int errors = static_cast<int>(result.findings.size() +
                                result.annotation_errors.size());
  for (const detlint::Suppression& s : result.suppressions) {
    if (detlint::KnownRules().count(s.rule) == 0 || s.justification.empty() ||
        !s.used) {
      ++errors;
    }
  }
  return errors;
}

// ---------------------------------------------------------------------------
// Scan mode.
// ---------------------------------------------------------------------------

int RunScan(const std::vector<std::string>& roots, const std::string& format,
            const std::string& sarif_path) {
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        const std::string p = entry.path().generic_string();
        // The golden corpus is deliberate violations; --self-test owns it.
        if (p.find("detlint_corpus") != std::string::npos) continue;
        if (IsSourceExt(entry.path().extension().string())) {
          paths.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      paths.emplace_back(root);
    } else {
      std::fprintf(stderr, "detlint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<detlint::LexedFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::string raw;
    if (!ReadFile(p, &raw)) {
      std::fprintf(stderr, "detlint: cannot read %s\n", p.c_str());
      return 2;
    }
    const std::string path = p.generic_string();
    files.push_back(detlint::Lex(path, path, std::move(raw)));
  }

  detlint::AnalysisResult result = detlint::Analyze(files);

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << detlint::SarifReport(result);
  }

  int errors = 0;
  if (format == "sarif") {
    std::fputs(detlint::SarifReport(result).c_str(), stdout);
    errors = CountErrors(result);
  } else {
    errors = detlint::PrintTextReport(result, files.size(), stdout);
  }
  return errors == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Self-test mode: replay the golden fixture corpus.
// ---------------------------------------------------------------------------

/// Fixture virtual path from the mandatory first-line marker
/// `// detlint-fixture: path=<virtual path>`.
std::string FixturePath(const std::string& raw) {
  static const std::string kMarker = "detlint-fixture: path=";
  const size_t pos = raw.find(kMarker);
  if (pos == std::string::npos) return "";
  size_t begin = pos + kMarker.size();
  size_t end = begin;
  while (end < raw.size() && !std::isspace(static_cast<unsigned char>(raw[end]))) {
    ++end;
  }
  return raw.substr(begin, end - begin);
}

/// One diagnostic in the canonical `path:line:rule` comparison form.
std::vector<std::string> DiagnosticKeys(const detlint::AnalysisResult& r) {
  std::vector<std::string> keys;
  for (const detlint::Finding& f : r.findings) {
    keys.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }
  for (const detlint::Finding& a : r.annotation_errors) {
    keys.push_back(a.file + ":" + std::to_string(a.line) + ":annotation");
  }
  for (const detlint::Suppression& s : r.suppressions) {
    std::string kind;
    if (detlint::KnownRules().count(s.rule) == 0) {
      kind = "suppression-unknown-rule";
    } else if (s.justification.empty()) {
      kind = "suppression-missing-justification";
    } else if (!s.used) {
      kind = "suppression-unused";
    } else {
      continue;  // honored suppressions are not errors
    }
    keys.push_back(s.file + ":" + std::to_string(s.line) + ":" + kind);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

int RunSelfTest(const std::string& corpus_root) {
  if (!fs::is_directory(corpus_root)) {
    std::fprintf(stderr, "detlint: corpus directory not found: %s\n",
                 corpus_root.c_str());
    return 2;
  }
  std::vector<fs::path> cases;
  for (const auto& entry : fs::directory_iterator(corpus_root)) {
    if (entry.is_directory()) cases.push_back(entry.path());
  }
  std::sort(cases.begin(), cases.end());
  if (cases.empty()) {
    std::fprintf(stderr, "detlint: corpus is empty: %s\n",
                 corpus_root.c_str());
    return 2;
  }

  int failures = 0;
  std::set<std::string> rules_with_case;
  for (const fs::path& dir : cases) {
    const std::string case_name = dir.filename().string();

    std::vector<fs::path> fixture_paths;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() &&
          IsSourceExt(entry.path().extension().string())) {
        fixture_paths.push_back(entry.path());
      }
    }
    std::sort(fixture_paths.begin(), fixture_paths.end());

    std::vector<detlint::LexedFile> files;
    bool broken = false;
    for (const fs::path& p : fixture_paths) {
      std::string raw;
      if (!ReadFile(p, &raw)) {
        std::fprintf(stderr, "FAIL %s: cannot read %s\n", case_name.c_str(),
                     p.c_str());
        broken = true;
        break;
      }
      const std::string vpath = FixturePath(raw);
      if (vpath.empty()) {
        std::fprintf(stderr,
                     "FAIL %s: %s lacks the '// detlint-fixture: path=...' "
                     "first-line marker\n",
                     case_name.c_str(), p.c_str());
        broken = true;
        break;
      }
      // Diagnostics are keyed by the virtual path so expected.txt stays
      // relocatable.
      files.push_back(detlint::Lex(vpath, vpath, std::move(raw)));
    }
    if (broken) {
      ++failures;
      continue;
    }
    if (files.empty()) {
      std::fprintf(stderr, "FAIL %s: no fixture files\n", case_name.c_str());
      ++failures;
      continue;
    }

    std::string expected_raw;
    if (!ReadFile(dir / "expected.txt", &expected_raw)) {
      std::fprintf(stderr, "FAIL %s: missing expected.txt\n",
                   case_name.c_str());
      ++failures;
      continue;
    }
    std::vector<std::string> expected;
    std::istringstream lines(expected_raw);
    for (std::string line; std::getline(lines, line);) {
      while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                  line.back()))) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      expected.push_back(line);
    }
    std::sort(expected.begin(), expected.end());

    detlint::AnalysisResult result = detlint::Analyze(files);
    const std::vector<std::string> actual = DiagnosticKeys(result);

    // Track per-rule coverage: a case named <rule>_pos / <rule>_neg (or
    // suppression_*) vouches for that rule family.
    rules_with_case.insert(case_name);

    if (actual != expected) {
      std::fprintf(stderr, "FAIL %s: diagnostics differ\n", case_name.c_str());
      for (const std::string& k : expected) {
        if (!std::binary_search(actual.begin(), actual.end(), k)) {
          std::fprintf(stderr, "  missing:    %s\n", k.c_str());
        }
      }
      for (const std::string& k : actual) {
        if (!std::binary_search(expected.begin(), expected.end(), k)) {
          std::fprintf(stderr, "  unexpected: %s\n", k.c_str());
        }
      }
      ++failures;
    } else {
      std::printf("ok   %s (%zu diagnostic(s))\n", case_name.c_str(),
                  actual.size());
    }
  }

  // Every rule must have at least one positive and one negative case, so
  // the corpus cannot silently lose coverage as rules evolve.
  for (const std::string& rule : detlint::KnownRules()) {
    const std::string canon = [&] {
      std::string c = rule;
      std::replace(c.begin(), c.end(), '-', '_');
      return c;
    }();
    for (const char* kind : {"_pos", "_neg"}) {
      if (rules_with_case.count(canon + kind) == 0) {
        std::fprintf(stderr, "FAIL corpus: rule '%s' lacks a %s%s case\n",
                     rule.c_str(), canon.c_str(), kind);
        ++failures;
      }
    }
  }

  std::printf("detlint --self-test: %zu case(s), %d failure(s)\n",
              cases.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string format = "text";
  std::string sarif_path;
  std::string self_test_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "detlint: unknown format '%s'\n", format.c_str());
        return 2;
      }
    } else if (arg == "--self-test") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "detlint: --self-test needs a corpus dir\n");
        return 2;
      }
      self_test_dir = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "detlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (!self_test_dir.empty()) return RunSelfTest(self_test_dir);
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: detlint [--sarif=FILE] [--format=text|sarif] "
                 "<dir-or-file>...\n"
                 "       detlint --self-test <corpus-dir>\n");
    return 2;
  }
  return RunScan(roots, format, sarif_path);
}
