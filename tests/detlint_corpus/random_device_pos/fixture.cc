// detlint-fixture: path=src/core/random_device_pos.cc
std::random_device rd;
