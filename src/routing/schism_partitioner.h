#ifndef HERMES_ROUTING_SCHISM_PARTITIONER_H_
#define HERMES_ROUTING_SCHISM_PARTITIONER_H_

#include <cstdint>
#include <memory>

#include "common/hash.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"

namespace hermes::routing {

/// Schism baseline (Curino et al., VLDB'10; paper §5.2.1): *offline*
/// workload-driven partitioning. A workload trace is modeled as a graph —
/// vertices are key ranges (weight = access frequency), edges are
/// co-access frequencies within a transaction — and partitioned with a
/// balanced min-cut partitioner (MetisLite standing in for METIS). The
/// result is a static PartitionMap; the paper uses it as the "optimal"
/// look-back placement for a chosen trace window (Fig. 6a's Schism 1/2).
class SchismPartitioner {
 public:
  SchismPartitioner(uint64_t num_records, uint64_t range_size);

  SchismPartitioner(const SchismPartitioner&) = delete;
  SchismPartitioner& operator=(const SchismPartitioner&) = delete;

  /// Adds one traced transaction to the co-access graph.
  void Observe(const TxnRequest& txn);

  /// Clears the accumulated trace (to train on a different window).
  void Reset();

  /// Runs the graph partitioner and returns the resulting static map.
  std::unique_ptr<partition::PartitionMap> Partition(
      int num_partitions, double imbalance = 0.10) const;

  uint64_t observed_txns() const { return observed_; }

 private:
  uint64_t num_records_;
  uint64_t range_size_;
  uint64_t num_ranges_;
  HashMap<uint64_t, uint64_t> range_weight_;
  /// (lo_range << 32 | hi_range) -> co-access count.
  HashMap<uint64_t, uint64_t> edge_weight_;
  uint64_t observed_ = 0;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_SCHISM_PARTITIONER_H_
