// detlint-fixture: path=src/core/unseeded_rng_neg.cc
std::mt19937 gen(config_seed);
std::mt19937_64 wide{0x9e3779b97f4a7c15ull};
