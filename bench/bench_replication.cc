// Replica-lease crossover bench (DESIGN.md §5 "Replica leases"): runs the
// read-heavy skewed YCSB scenario on the Hermes router with replication
// off and on across a write-fraction sweep, printing throughput, replica
// reads, and wire bytes per commit, and emitting BENCH_replication.json
// (override the path with the REPLICATION_OUT env var). The headline is
// the crossover: the write fraction where write fan-out has eaten the
// local-read savings and the two configurations converge. EXPERIMENTS.md
// records the measured series.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/scenarios.h"
#include "workload/ycsb.h"

namespace {

using namespace hermes;  // NOLINT

struct RunStats {
  double txn_per_sec = 0;
  double net_per_txn = 0;
  uint64_t replica_reads = 0;
  uint64_t migrations = 0;
  uint64_t lease_grants = 0;
  uint64_t lease_revokes = 0;
  uint64_t installs = 0;
  uint64_t updates = 0;
};

constexpr int kNodes = 4;
constexpr uint64_t kRecords = 10'000;
constexpr int kClients = 1200;
constexpr SimTime kHorizon = SecToSim(6);

RunStats RunOnce(double write_fraction, bool replication, int sim_threads) {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.num_records = kRecords;
  config.workers_per_node = 2;
  config.seed = 42;
  config.sim.threads = sim_threads;
  // RPC-heavy deployment: an in-memory store behind a commodity RPC stack,
  // where receiving and deserializing a record shipment costs an order of
  // magnitude more worker time than the storage op itself. This is the
  // regime replica leases target — a remote read's storage op merely moves
  // between nodes, so the whole saving is the message handling.
  config.costs.txn_logic_us = 60;
  config.costs.txn_logic_per_record_us = 10;
  config.costs.storage_op_us = 15;
  config.costs.msg_processing_us = 200;
  config.hermes.fusion_table_capacity =
      static_cast<size_t>(0.025 * static_cast<double>(kRecords));
  config.replication.enabled = replication;
  config.replication.replicas = 4;
  config.replication.read_hot_threshold = 1;
  config.replication.write_revoke_threshold = 32;
  config.replication.max_leases = 4096;

  engine::Cluster cluster(
      config, engine::RouterKind::kHermes,
      std::make_unique<partition::RangePartitionMap>(kRecords, kNodes));
  cluster.Load();

  workload::YcsbConfig wl = workload::ReadHeavySkewedYcsb(
      kRecords, kNodes, write_fraction, /*seed=*/42);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);

  workload::ClosedLoopDriver driver(
      &cluster, kClients, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();
  cluster.RunUntil(kHorizon);
  cluster.Drain();

  RunStats out;
  out.txn_per_sec = cluster.metrics().Throughput(SecToSim(1), kHorizon);
  const double commits =
      static_cast<double>(cluster.executor().committed());
  out.net_per_txn =
      commits > 0
          ? static_cast<double>(cluster.network().total_bytes()) / commits
          : 0.0;
  const auto* router =
      static_cast<const core::HermesRouter*>(&cluster.router());
  out.replica_reads = router->stats().replica_reads;
  out.migrations = router->stats().migrations;
  out.lease_grants = router->lease_table().stats().grants;
  out.lease_revokes = router->lease_table().stats().revokes;
  out.installs = cluster.lease_manager().installs();
  out.updates = cluster.lease_manager().updates();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = hermes::bench::ParseThreadsFlag(argc, argv);
  const std::vector<double> fractions = {0.0, 0.05, 0.10, 0.20, 0.35, 0.50};

  std::printf(
      "== replica-lease crossover (hermes, read-heavy skewed ycsb, "
      "%d nodes, %llu records, %d clients) ==\n",
      kNodes, static_cast<unsigned long long>(kRecords), kClients);
  std::printf(
      "write_frac,off_txn_s,on_txn_s,speedup,off_net_per_txn,on_net_per_txn,"
      "replica_reads,lease_grants,lease_revokes,installs,updates,"
      "off_migrations,on_migrations\n");

  std::vector<RunStats> offs, ons;
  std::vector<double> speedups;
  for (double f : fractions) {
    const RunStats off = RunOnce(f, /*replication=*/false, sim_threads);
    const RunStats on = RunOnce(f, /*replication=*/true, sim_threads);
    const double speedup =
        off.txn_per_sec > 0 ? on.txn_per_sec / off.txn_per_sec : 0.0;
    offs.push_back(off);
    ons.push_back(on);
    speedups.push_back(speedup);
    std::printf(
        "%.2f,%.0f,%.0f,%.3f,%.1f,%.1f,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
        f, off.txn_per_sec, on.txn_per_sec, speedup, off.net_per_txn,
        on.net_per_txn, static_cast<unsigned long long>(on.replica_reads),
        static_cast<unsigned long long>(on.lease_grants),
        static_cast<unsigned long long>(on.lease_revokes),
        static_cast<unsigned long long>(on.installs),
        static_cast<unsigned long long>(on.updates),
        static_cast<unsigned long long>(off.migrations),
        static_cast<unsigned long long>(on.migrations));
    std::fflush(stdout);
  }

  // Crossover: the first sweep point where replication stops paying
  // (speedup below 1.05); -1 when it pays across the whole sweep.
  double crossover = -1.0;
  for (size_t i = 0; i < fractions.size(); ++i) {
    if (speedups[i] < 1.05) {
      crossover = fractions[i];
      break;
    }
  }
  if (crossover < 0) {
    std::printf("summary: replication pays across the whole sweep "
                "(min speedup %.3f)\n",
                *std::min_element(speedups.begin(), speedups.end()));
  } else {
    std::printf("summary: crossover at write fraction %.2f\n", crossover);
  }

  const char* out_env = hermes::EnvRead("REPLICATION_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_replication.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"crossover_write_fraction\": %.2f,\n", crossover);
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < fractions.size(); ++i) {
    std::fprintf(
        out,
        "    {\"write_fraction\": %.2f, \"off_txn_per_sec\": %.0f, "
        "\"on_txn_per_sec\": %.0f, \"speedup\": %.3f, "
        "\"off_net_per_txn\": %.1f, \"on_net_per_txn\": %.1f, "
        "\"replica_reads\": %llu, \"lease_grants\": %llu}%s\n",
        fractions[i], offs[i].txn_per_sec, ons[i].txn_per_sec, speedups[i],
        offs[i].net_per_txn, ons[i].net_per_txn,
        static_cast<unsigned long long>(ons[i].replica_reads),
        static_cast<unsigned long long>(ons[i].lease_grants),
        i + 1 < fractions.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
