// detlint-fixture: path=src/net/lane_confinement_net_neg.cc
// detlint:requires(exclusive)
void ReturnCredit(int src, int dst, unsigned long wire_bytes);

// detlint:requires(exclusive)
void OnLinkCut(int src, int dst);

void OnWireDelivery(Simulator& sim, int src, int dst,
                    unsigned long wire_bytes) {
  sim.Defer([src, dst, wire_bytes] { ReturnCredit(src, dst, wire_bytes); });
}

// detlint:runs(exclusive)
void PartitionCut(int src, int dst) {
  OnLinkCut(src, dst);
}
