#ifndef HERMES_COMMON_DIGEST_H_
#define HERMES_COMMON_DIGEST_H_

#include <cstdint>

namespace hermes {

/// FNV-1a accumulator over the cluster's decision stream: router
/// placements as batches are routed, fusion-table evictions, and
/// event-queue pops ((time, seq) of every fired event).
///
/// The digest is order-SENSITIVE by design — two runs match iff they made
/// the same decisions in the same order. Since every component feeding it
/// is required to be a pure function of (config, seeds, totally ordered
/// input), the digest must be bit-identical across replicas, across
/// re-executions, and across HERMES_HASH_SALT values. A mismatch under a
/// perturbed salt is the runtime signature of hash-map iteration order
/// leaking into a decision (the failure class detlint's static rules can
/// flag but not prove absent).
class DecisionDigest {
 public:
  /// Folds the 8 bytes of `v` (little-endian) into the digest.
  void Mix(uint64_t v) {
    uint64_t h = h_;
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * kPrime;
    }
    h_ = h;
    ++n_;
  }

  uint64_t value() const { return h_; }
  /// Number of Mix() calls (diagnostic: tells "different decisions" apart
  /// from "different number of decisions" when digests diverge).
  uint64_t count() const { return n_; }

  void Reset() {
    h_ = kOffsetBasis;
    n_ = 0;
  }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  uint64_t h_ = kOffsetBasis;
  uint64_t n_ = 0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_DIGEST_H_
