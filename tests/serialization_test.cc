#include "storage/serialization.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hermes::storage {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Batch SampleBatch(BatchId id, int txns, uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  batch.id = id;
  batch.sequenced_at = 1000 * id;
  for (int i = 0; i < txns; ++i) {
    TxnRequest txn;
    txn.id = id * 100 + i;
    txn.kind = i % 7 == 3 ? TxnKind::kChunkMigration : TxnKind::kRegular;
    for (int k = 0; k < 3; ++k) txn.read_set.push_back(rng.NextBounded(1000));
    txn.write_set = {txn.read_set.front()};
    txn.user_abort = (i % 5) == 0;
    txn.requires_reconnaissance = (i % 4) == 0;
    txn.client = i;
    txn.tag = -i;
    txn.home_sequencer = i % 4;
    txn.migration_target = i % 3;
    txn.submit_time = 17 * i;
    if (i % 6 == 0) txn.range_moves.push_back(RangeMove{10, 20, 2});
    batch.txns.push_back(std::move(txn));
  }
  return batch;
}

bool TxnEq(const TxnRequest& a, const TxnRequest& b) {
  return a.id == b.id && a.kind == b.kind && a.read_set == b.read_set &&
         a.write_set == b.write_set && a.user_abort == b.user_abort &&
         a.requires_reconnaissance == b.requires_reconnaissance &&
         a.client == b.client && a.tag == b.tag &&
         a.home_sequencer == b.home_sequencer &&
         a.migration_target == b.migration_target &&
         a.submit_time == b.submit_time &&
         a.range_moves.size() == b.range_moves.size();
}

TEST(SerializationTest, CommandLogRoundTrips) {
  CommandLog log;
  for (BatchId b = 0; b < 5; ++b) log.Append(SampleBatch(b, 10, b));
  const std::string path = TempPath("log.bin");
  ASSERT_TRUE(WriteCommandLog(log, path).ok());

  CommandLog restored;
  ASSERT_TRUE(ReadCommandLog(path, &restored).ok());
  ASSERT_EQ(restored.size(), log.size());
  for (size_t b = 0; b < log.size(); ++b) {
    const Batch& x = log.batches()[b];
    const Batch& y = restored.batches()[b];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.sequenced_at, y.sequenced_at);
    ASSERT_EQ(x.txns.size(), y.txns.size());
    for (size_t t = 0; t < x.txns.size(); ++t) {
      EXPECT_TRUE(TxnEq(x.txns[t], y.txns[t])) << "batch " << b << " txn " << t;
    }
  }
}

TEST(SerializationTest, EmptyCommandLogRoundTrips) {
  CommandLog log;
  const std::string path = TempPath("empty_log.bin");
  ASSERT_TRUE(WriteCommandLog(log, path).ok());
  CommandLog restored;
  ASSERT_TRUE(ReadCommandLog(path, &restored).ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(SerializationTest, ReadIntoNonEmptyLogFails) {
  CommandLog log;
  log.Append(SampleBatch(0, 1, 1));
  const std::string path = TempPath("log2.bin");
  ASSERT_TRUE(WriteCommandLog(log, path).ok());
  EXPECT_FALSE(ReadCommandLog(path, &log).ok());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  CommandLog log;
  const Status s = ReadCommandLog(TempPath("nonexistent.bin"), &log);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(SerializationTest, TruncatedFileRejected) {
  CommandLog log;
  for (BatchId b = 0; b < 3; ++b) log.Append(SampleBatch(b, 5, b));
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteCommandLog(log, path).ok());
  // Chop the file.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(0, ::ftruncate(fileno(f), size / 2 - (size / 2) % 8));
  std::fclose(f);

  CommandLog restored;
  EXPECT_FALSE(ReadCommandLog(path, &restored).ok());
}

TEST(SerializationTest, CorruptedByteRejected) {
  CommandLog log;
  log.Append(SampleBatch(0, 8, 3));
  const std::string path = TempPath("corrupt.bin");
  ASSERT_TRUE(WriteCommandLog(log, path).ok());
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 48, SEEK_SET);
  std::fputc(0xff, f);
  std::fclose(f);

  CommandLog restored;
  const Status s = ReadCommandLog(path, &restored);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
}

TEST(SerializationTest, WrongMagicRejected) {
  Checkpoint cp;
  const std::string path = TempPath("magic.bin");
  ASSERT_TRUE(WriteCheckpoint(cp, path).ok());
  CommandLog log;
  const Status s = ReadCommandLog(path, &log);
  EXPECT_FALSE(s.ok());
}

TEST(SerializationTest, CheckpointRoundTrips) {
  Checkpoint cp;
  cp.next_batch = 42;
  cp.next_txn_id = 4200;
  cp.stores.resize(3);
  Rng rng(7);
  for (auto& store : cp.stores) {
    for (int i = 0; i < 50; ++i) {
      Record record;
      record.value = rng.Next();
      record.last_writer = rng.Next();
      record.version = static_cast<uint32_t>(rng.NextBounded(100));
      store[rng.NextBounded(100'000)] = record;
    }
  }
  cp.ownership_overlay = {{5, 2}, {17, 0}};
  cp.intervals = {{100, 199, 1}, {300, 350, 2}};
  cp.fusion_order = {5, 17};
  cp.active_nodes = {0, 1, 2};

  const std::string path = TempPath("ckpt.bin");
  ASSERT_TRUE(WriteCheckpoint(cp, path).ok());
  Checkpoint restored;
  ASSERT_TRUE(ReadCheckpoint(path, &restored).ok());

  EXPECT_EQ(restored.next_batch, cp.next_batch);
  EXPECT_EQ(restored.next_txn_id, cp.next_txn_id);
  EXPECT_EQ(restored.ownership_overlay, cp.ownership_overlay);
  EXPECT_EQ(restored.intervals, cp.intervals);
  EXPECT_EQ(restored.fusion_order, cp.fusion_order);
  EXPECT_EQ(restored.active_nodes, cp.active_nodes);
  EXPECT_EQ(restored.Checksum(), cp.Checksum());
}

TEST(SerializationTest, CheckpointImplausibleCountRejected) {
  Checkpoint cp;
  cp.stores.resize(1);
  const std::string path = TempPath("count.bin");
  ASSERT_TRUE(WriteCheckpoint(cp, path).ok());
  // Blow up the store-count word (offset 24) — the reader must reject it
  // instead of allocating terabytes. Recompute nothing: checksum now
  // fails first, which is also an acceptable rejection.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24, SEEK_SET);
  const uint64_t huge = ~0ULL;
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);
  Checkpoint restored;
  EXPECT_FALSE(ReadCheckpoint(path, &restored).ok());
}

}  // namespace
}  // namespace hermes::storage
