#ifndef HERMES_CORE_LEASE_TABLE_H_
#define HERMES_CORE_LEASE_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "routing/router.h"

namespace hermes::core {

/// Router-side replica-lease bookkeeping (DESIGN.md §5 "Replica leases").
///
/// The prescient router already sees every access of every batch before it
/// executes, so lease decisions can be made the same way routing decisions
/// are: as a pure function of the totally ordered batch stream and the
/// config. The table keeps windowed per-key read/write counters (fed from
/// Materialize), and at each batch boundary — before any transaction of
/// the batch routes — it grants leases to read-hot keys, revokes leases
/// that turned write-heavy, and lapses every lease when the membership
/// epoch moved. Grants, revokes and lapses come out as routing::ReplicaOp
/// entries attached to the batch's first routed transaction, so they ride
/// the dispatch order, fold into both digests, and replay exactly.
///
/// Determinism: counters live in a std::map (sorted iteration), holders
/// are the primary plus the lowest-id alive candidates, and nothing
/// here consults hash order, wall clock, or any RNG. A command-log replay
/// that feeds the same batches and the same membership schedule reproduces
/// every decision bit-for-bit — which is what keeps placement_digest()
/// chaos-invariant with replication enabled.
class LeaseTable {
 public:
  /// An active lease: which nodes hold read-only copies of the key.
  struct Lease {
    std::vector<NodeId> holders;  ///< sorted ascending
  };

  /// Decision counters (monotonic; surfaced through HermesRouter::Stats).
  struct Stats {
    uint64_t grants = 0;
    uint64_t revokes = 0;  ///< write-heavy revokes (whole leases)
    uint64_t lapses = 0;   ///< membership-epoch lapses (whole leases)
  };

  /// Disabled until configured; a disabled table does nothing and costs a
  /// null check per call.
  void Configure(const ReplicationConfig* config) { config_ = config; }
  bool enabled() const { return config_ != nullptr && config_->enabled; }

  /// Batch-boundary evaluation, called once per routed batch in total
  /// order. `membership_epoch` is the router's current MembershipView
  /// epoch (0 when no view is installed); `all_alive` gates new grants
  /// (no new lease starts while a node is down — the copy source could be
  /// dead); `candidates` is the alive candidate node set in ascending
  /// order; `owner_of` resolves the current primary of a key. Emitted ops
  /// are appended to `*ops` in deterministic (sorted key, then holder)
  /// order: lapses first, then write-heavy revokes, then grants.
  void BeginBatch(uint32_t membership_epoch, bool all_alive,
                  const std::vector<NodeId>& candidates,
                  const partition::OwnershipMap& ownership,
                  std::vector<routing::ReplicaOp>* ops);

  /// Access observations from Materialize (feed the next window).
  void ObserveRead(Key key) {
    if (enabled()) {
      ++counters_[key].reads;
      ++window_reads_;
    }
  }
  void ObserveWrite(Key key) {
    if (enabled()) {
      ++counters_[key].writes;
      ++window_writes_;
    }
  }

  /// True iff `node` currently holds a lease copy of `key`.
  bool IsHolder(Key key, NodeId node) const;

  const Lease* Find(Key key) const;
  size_t num_leases() const { return leases_.size(); }
  const Stats& stats() const { return stats_; }

  /// Drops all leases and counters without emitting ops (checkpoint
  /// restore: engine-side copies are lapsed the same way, so both sides
  /// restart cold and re-grant deterministically from the replayed stream).
  void Reset();

 private:
  struct KeyCounters {
    uint32_t reads = 0;
    uint32_t writes = 0;
  };

  const ReplicationConfig* config_ = nullptr;
  /// Windowed access counters; decayed (halved) every window_batches.
  /// std::map: grant evaluation iterates in key order.
  std::map<Key, KeyCounters> counters_;
  std::map<Key, Lease> leases_;
  /// Aggregate window counters (decayed with the per-key ones): gate new
  /// grants on the workload being read-mostly overall, so a write-heavy
  /// phase does not keep paying install churn for leases that will never
  /// earn their fan-out back.
  uint64_t window_reads_ = 0;
  uint64_t window_writes_ = 0;
  uint64_t batches_seen_ = 0;
  uint32_t last_epoch_ = 0;
  Stats stats_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_LEASE_TABLE_H_
