#ifndef HERMES_COMMON_TYPES_H_
#define HERMES_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hermes {

/// Primary key of a record. Keys form a dense integer space; static range
/// partitioning maps contiguous key ranges to nodes.
using Key = uint64_t;

/// Identifier of a server node (also a data partition, since this prototype
/// hosts exactly one partition per node, as in the paper's §3 assumption).
using NodeId = int32_t;

/// Globally unique, totally ordered transaction identifier. Assigned by the
/// sequencer; the total order of transactions is the ascending TxnId order.
using TxnId = uint64_t;

/// Simulated time in microseconds since the start of the emulation.
using SimTime = uint64_t;

/// Monotonically increasing batch sequence number assigned by the
/// total-order protocol leader.
using BatchId = uint64_t;

/// Scheduling class of one inter-node message on the wire substrate
/// (src/net/). Foreground is transaction-critical traffic (participant
/// shipments of regular transactions); bulk is ownership/replica movement
/// (chunk migrations, return write-backs, replica installs and fan-out,
/// degraded-mode reships). The two-class weighted schedule and envelope
/// coalescing key off this; per-class byte counters feed Fig. 8.
enum class TrafficClass : uint8_t {
  kForeground = 0,
  kBulk = 1,
};
inline constexpr int kNumTrafficClasses = 2;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Converts milliseconds to simulated microseconds.
constexpr SimTime MsToSim(uint64_t ms) { return ms * 1000; }

/// Converts seconds to simulated microseconds.
constexpr SimTime SecToSim(uint64_t sec) { return sec * 1000 * 1000; }

}  // namespace hermes

#endif  // HERMES_COMMON_TYPES_H_
