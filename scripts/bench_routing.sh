#!/usr/bin/env sh
# Runs the routing microbenchmarks and emits BENCH_routing.json (google-
# benchmark JSON). The binary includes *Reference benchmarks that route
# the same workloads with HermesConfig::use_reference_routing, so the
# JSON carries before/after numbers for the optimized hot path in one run
# (see EXPERIMENTS.md "Routing cost").
#
# Usage: scripts/bench_routing.sh
#   BUILD_DIR  cmake build tree containing bench/ (default: build)
#   OUT        output JSON path (default: BENCH_routing.json in repo root)
#   FILTER     --benchmark_filter regex (default: all benchmarks)
#   REPS       --benchmark_repetitions (default: 1)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_routing.json}"
FILTER="${FILTER:-.}"
REPS="${REPS:-1}"
BIN="$BUILD_DIR/bench/bench_micro_routing"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json
echo "wrote $OUT"
