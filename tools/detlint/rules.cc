#include "rules.h"

#include <algorithm>
#include <cctype>

namespace detlint {
namespace {

// ---------------------------------------------------------------------------
// Path scoping helpers (work on both real paths and fixture virtual paths).
// ---------------------------------------------------------------------------

bool PathContains(const std::string& path, const std::string& frag) {
  return path.find(frag) != std::string::npos;
}

/// True when `path` lives under the top-level source tree `tree`
/// ("src", "tools", "bench", "tests") — either as an absolute path
/// containing "/tree/" or a repo-relative one starting with "tree/".
bool InTree(const std::string& path, const std::string& tree) {
  if (path.rfind(tree + "/", 0) == 0) return true;
  return PathContains(path, "/" + tree + "/");
}

bool SimExempt(const std::string& path) {
  return PathContains(path, "src/sim/");
}

// ---------------------------------------------------------------------------
// Rule catalog.
// ---------------------------------------------------------------------------

const std::map<std::string, std::string>& Catalog() {
  static const std::map<std::string, std::string> kCatalog = {
      {"unordered-iter",
       "iteration over a hash container: order is unspecified and "
       "salt-dependent, so it may not feed a decision"},
      {"raw-unordered",
       "direct std::unordered_map/set instead of the salted "
       "hermes::HashMap/HashSet aliases (common/hash.h)"},
      {"std-rand",
       "std::rand/srand: global hidden state, unseeded; all randomness "
       "flows through seeded hermes::Rng"},
      {"random-device",
       "std::random_device: hardware entropy, unreproducible"},
      {"unseeded-rng",
       "default-constructed random engine (implementation-defined seed)"},
      {"wall-clock",
       "wall-clock read outside src/sim/: simulated time is the only "
       "clock"},
      {"pointer-order",
       "ordered container or comparator keyed on pointer values: "
       "allocation-address order is nondeterministic"},
      {"raw-thread",
       "raw threading primitive outside src/sim/: all real concurrency "
       "lives behind the epoch-synchronized simulator"},
      {"obs-decision",
       "tracer/telemetry state feeding a decision in src/core/ or "
       "src/routing/: observability is write-only by contract"},
      {"lane-confinement",
       "call to a detlint:requires(exclusive) function from code that is "
       "neither exclusive-annotated nor inside Simulator::Defer()"},
      {"include-hygiene",
       "include (direct or transitive through project headers) of a "
       "thread or clock header outside src/sim/"},
      {"env-read",
       "std::getenv outside the sanctioned accessor (src/common/env.cc): "
       "environment reads must flow through hermes::EnvRead"},
  };
  return kCatalog;
}

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

bool Is(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

bool PrecededByStd(const std::vector<Token>& t, size_t i) {
  return i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
}

/// Matches a parenthesis group starting at the `(` token `open`;
/// returns the index of the matching `)`, or npos. Counts only parens:
/// braces and brackets inside (lambda bodies in call arguments) nest
/// their own parens and balance out.
size_t MatchParen(const std::vector<Token>& t, size_t open) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Matches an angle-bracket group starting at the `<` token `open`.
/// `>>` closes two levels (nested template arguments). When the group
/// closes on the *first* `>` of a `>>` token, the type is itself nested
/// inside an enclosing template — `overshot` reports that, because the
/// token after the close then belongs to the outer template, not this
/// one.
size_t MatchAngle(const std::vector<Token>& t, size_t open,
                  bool* overshot = nullptr) {
  if (overshot != nullptr) *overshot = false;
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == "<") ++depth;
    if (x == ";" || x == "{") return std::string::npos;  // not a template
    if (x == ">" && --depth <= 0) return i;
    if (x == ">>") {
      depth -= 2;
      if (depth <= 0) {
        if (overshot != nullptr) *overshot = depth < 0;
        return i;
      }
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Identifier sets.
// ---------------------------------------------------------------------------

bool IsThreadPrimitive(const std::string& s) {
  static const std::set<std::string> kExact = {
      "thread",        "jthread",       "mutex",
      "timed_mutex",   "recursive_mutex", "shared_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",        "lock_guard",    "unique_lock",
      "scoped_lock",   "shared_lock",   "future",
      "promise",       "async",         "barrier",
      "latch",         "counting_semaphore", "binary_semaphore"};
  if (kExact.count(s) > 0) return true;
  return s.rfind("atomic_", 0) == 0 && s.size() > 7;
}

const std::set<std::string>& ThreadHeaders() {
  static const std::set<std::string> kHeaders = {
      "thread",    "mutex",     "atomic",   "condition_variable",
      "future",    "shared_mutex", "stop_token", "semaphore",
      "barrier",   "latch"};
  return kHeaders;
}

const std::set<std::string>& ClockHeaders() {
  static const std::set<std::string> kHeaders = {"chrono", "ctime", "time.h",
                                                 "sys/time.h"};
  return kHeaders;
}

bool IsRngEngine(const std::string& s) {
  static const std::set<std::string> kExact = {
      "mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
      "minstd_rand0", "knuth_b"};
  if (kExact.count(s) > 0) return true;
  return s.rfind("ranlux", 0) == 0 && s.size() > 6;
}

bool IsHashContainerType(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "HashMap" ||
         s == "HashSet";
}

// ---------------------------------------------------------------------------
// Comment markers: suppressions and contract annotations.
// ---------------------------------------------------------------------------

std::string TrimmedTail(const std::string& comment, size_t pos) {
  size_t end = comment.find('\n', pos);
  if (end == std::string::npos) end = comment.size();
  std::string tail = comment.substr(pos, end - pos);
  // Block-comment closers are delimiters, not justification text.
  const size_t close = tail.rfind("*/");
  if (close != std::string::npos) tail = tail.substr(0, close);
  while (!tail.empty() &&
         std::isspace(static_cast<unsigned char>(tail.back()))) {
    tail.pop_back();
  }
  while (!tail.empty() &&
         std::isspace(static_cast<unsigned char>(tail.front()))) {
    tail.erase(tail.begin());
  }
  return tail;
}

bool IsControlKeyword(const std::string& s);

void ParseMarkers(const LexedFile& f, std::vector<Suppression>* suppressions,
                  std::vector<Annotation>* annotations,
                  std::vector<Finding>* annotation_errors) {
  for (const Comment& c : f.comments) {
    // Suppressions: "allow(<rule>) <justification>" after the prefix.
    for (size_t pos = c.text.find("detlint:allow(");
         pos != std::string::npos;
         pos = c.text.find("detlint:allow(", pos + 1)) {
      const size_t name_begin = pos + 14;
      const size_t name_end = c.text.find(')', name_begin);
      if (name_end == std::string::npos) continue;
      Suppression s;
      s.file = f.path;
      s.line = LineOf(f, c.offset + pos);
      s.rule = c.text.substr(name_begin, name_end - name_begin);
      s.justification = TrimmedTail(c.text, name_end + 1);
      suppressions->push_back(std::move(s));
    }
    // Annotations: "requires(exclusive)" / "runs(exclusive)" after the
    // prefix.
    for (const char* kind : {"requires", "runs"}) {
      const std::string marker = std::string("detlint:") + kind + "(";
      for (size_t pos = c.text.find(marker); pos != std::string::npos;
           pos = c.text.find(marker, pos + 1)) {
        const size_t mode_begin = pos + marker.size();
        const size_t mode_end = c.text.find(')', mode_begin);
        if (mode_end == std::string::npos) continue;
        Annotation a;
        a.file = f.path;
        a.line = LineOf(f, c.offset + pos);
        a.kind = kind;
        a.mode = c.text.substr(mode_begin, mode_end - mode_begin);
        // Bind to the next declared/defined function: the first
        // identifier after the comment that is directly followed by '('.
        for (size_t i = 0; i < f.tokens.size(); ++i) {
          if (f.tokens[i].offset < c.end) continue;
          if (IsIdent(f.tokens, i) && Is(f.tokens, i + 1, "(") &&
              !IsControlKeyword(f.tokens[i].text)) {
            a.function = f.tokens[i].text;
            break;
          }
        }
        if (a.mode != "exclusive") {
          annotation_errors->push_back(Finding{
              f.path, a.line, "annotation",
              "annotation detlint:" + a.kind + "(" + a.mode +
                  ") names unknown mode '" + a.mode + "' (only 'exclusive')"});
        } else if (a.function.empty()) {
          annotation_errors->push_back(Finding{
              f.path, a.line, "annotation",
              "annotation detlint:" + a.kind +
                  "(exclusive) binds to no function declaration"});
        } else {
          annotations->push_back(std::move(a));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hash-container declared names (shared by unordered-iter).
// ---------------------------------------------------------------------------

void CollectHashContainerNames(const LexedFile& f,
                               std::set<std::string>* names) {
  const auto& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i) || !IsHashContainerType(t[i].text)) continue;
    if (!Is(t, i + 1, "<")) continue;
    bool overshot = false;
    const size_t close = MatchAngle(t, i + 1, &overshot);
    if (close == std::string::npos) continue;
    // `vector<HashMap<K, V>> name` declares a vector: the name after the
    // `>>` belongs to the enclosing template, not the hash container.
    if (overshot) continue;
    size_t j = close + 1;
    while (Is(t, j, "&") || Is(t, j, "*")) ++j;
    if (!IsIdent(t, j)) continue;
    const std::string& name = t[j].text;
    if (name == "const" || name == "constexpr" || name == "static") continue;
    names->insert(name);
  }
}

// ---------------------------------------------------------------------------
// Include graph.
// ---------------------------------------------------------------------------

struct IncludeTaint {
  std::string header;  // banned system header reached
  std::string via;     // first project hop ("" when included directly)
};

class IncludeGraph {
 public:
  explicit IncludeGraph(const std::vector<LexedFile>& files) {
    for (const LexedFile& f : files) by_path_[f.virtual_path] = &f;
  }

  /// Resolves a quoted include target against the batch by path suffix
  /// (include paths are rooted at src/ or the including file's own dir).
  /// Candidates are tried in path order, so ties break deterministically.
  const LexedFile* Resolve(const std::string& target) const {
    for (const auto& [p, f] : by_path_) {
      if (p == target) return f;
      if (p.size() > target.size() + 1 &&
          p.compare(p.size() - target.size() - 1, target.size() + 1,
                    "/" + target) == 0) {
        return f;
      }
    }
    return nullptr;
  }

  /// Banned system headers reachable from `f` through any include chain,
  /// each with the first project hop that leads there.
  const std::map<std::string, IncludeTaint>& Closure(const LexedFile* f) {
    auto it = closures_.find(f->virtual_path);
    if (it != closures_.end()) return it->second;
    closures_[f->virtual_path] = {};  // cycle guard: in-progress nodes
                                      // contribute nothing
    std::map<std::string, IncludeTaint> result;
    for (const IncludeDirective& inc : f->includes) {
      if (inc.system) {
        if (ThreadHeaders().count(inc.target) > 0 ||
            ClockHeaders().count(inc.target) > 0) {
          result.emplace(inc.target, IncludeTaint{inc.target, ""});
        }
        continue;
      }
      const LexedFile* dep = Resolve(inc.target);
      if (dep == nullptr || dep == f) continue;
      for (const auto& [header, taint] : Closure(dep)) {
        (void)taint;
        result.emplace(header, IncludeTaint{header, inc.target});
      }
    }
    return closures_[f->virtual_path] = std::move(result);
  }

  /// Virtual paths of every project file transitively included by `f`
  /// (unordered-iter uses this to see hash-container members declared in
  /// included headers without conflating same-named locals elsewhere).
  const std::set<std::string>& ProjectClosure(const LexedFile* f) {
    auto it = project_closures_.find(f->virtual_path);
    if (it != project_closures_.end()) return it->second;
    project_closures_[f->virtual_path] = {};  // cycle guard
    std::set<std::string> result;
    for (const IncludeDirective& inc : f->includes) {
      if (inc.system) continue;
      const LexedFile* dep = Resolve(inc.target);
      if (dep == nullptr || dep == f) continue;
      result.insert(dep->virtual_path);
      const std::set<std::string>& sub = ProjectClosure(dep);
      result.insert(sub.begin(), sub.end());
    }
    return project_closures_[f->virtual_path] = std::move(result);
  }

 private:
  std::map<std::string, const LexedFile*> by_path_;
  std::map<std::string, std::map<std::string, IncludeTaint>> closures_;
  std::map<std::string, std::set<std::string>> project_closures_;
};

// ---------------------------------------------------------------------------
// Function-definition extraction (lane-confinement call graph).
// ---------------------------------------------------------------------------

struct FunctionDef {
  std::string name;    // unqualified
  size_t name_tok = 0;
  size_t body_begin = 0;  // index of the '{'
  size_t body_end = 0;    // index of the matching '}'
};

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "assert";
}

bool IsFunctionQualifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "volatile" || s == "try";
}

size_t MatchBrace(const std::vector<Token>& t, size_t open) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}" && --depth == 0) return i;
  }
  return std::string::npos;
}

/// After a parameter list, skips cv/ref/noexcept/trailing-return
/// decorations and a constructor init list; returns the index of the
/// body's '{' or npos when the construct is not a definition.
size_t FindBodyBrace(const std::vector<Token>& t, size_t after_params) {
  size_t k = after_params;
  while (k < t.size()) {
    const std::string& x = t[k].text;
    if (x == "{") return k;
    if (x == ";" || x == "=" || x == ",") return std::string::npos;
    if (IsFunctionQualifier(x)) {
      ++k;
      // noexcept(...) — skip its operand.
      if (Is(t, k, "(")) {
        const size_t close = MatchParen(t, k);
        if (close == std::string::npos) return std::string::npos;
        k = close + 1;
      }
      continue;
    }
    if (x == "->") {  // trailing return type
      ++k;
      while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
      continue;
    }
    if (x == ":") {  // constructor init list
      ++k;
      while (k < t.size()) {
        // Init item: qualified/templated name, then (...) or {...}.
        while (IsIdent(t, k) || Is(t, k, "::")) ++k;
        if (Is(t, k, "<")) {
          const size_t close = MatchAngle(t, k);
          if (close == std::string::npos) return std::string::npos;
          k = close + 1;
        }
        size_t close = std::string::npos;
        if (Is(t, k, "(")) close = MatchParen(t, k);
        else if (Is(t, k, "{")) close = MatchBrace(t, k);
        if (close == std::string::npos) return std::string::npos;
        k = close + 1;
        if (Is(t, k, ",")) {
          ++k;
          continue;
        }
        return Is(t, k, "{") ? k : std::string::npos;
      }
      return std::string::npos;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

std::vector<FunctionDef> ExtractFunctions(const LexedFile& f) {
  std::vector<FunctionDef> defs;
  const auto& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i) || IsControlKeyword(t[i].text)) continue;
    if (!Is(t, i + 1, "(")) continue;
    const size_t close = MatchParen(t, i + 1);
    if (close == std::string::npos) continue;
    const size_t body = FindBodyBrace(t, close + 1);
    if (body == std::string::npos) continue;
    const size_t body_end = MatchBrace(t, body);
    if (body_end == std::string::npos) continue;
    defs.push_back(FunctionDef{t[i].text, i, body, body_end});
  }
  return defs;
}

/// Innermost function definition whose body contains token `idx`.
const FunctionDef* EnclosingFunction(const std::vector<FunctionDef>& defs,
                                     size_t idx) {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& d : defs) {
    if (idx <= d.body_begin || idx >= d.body_end) continue;
    if (best == nullptr ||
        d.body_end - d.body_begin < best->body_end - best->body_begin) {
      best = &d;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// The linter.
// ---------------------------------------------------------------------------

class Linter {
 public:
  explicit Linter(std::vector<Suppression>* suppressions)
      : suppressions_(suppressions) {}

  void AddFinding(const LexedFile& f, size_t offset, const std::string& rule,
                  std::string excerpt = "") {
    const int line = LineOf(f, offset);
    for (Suppression& s : *suppressions_) {
      if (s.file == f.path && s.rule == rule &&
          (s.line == line || s.line + 1 == line)) {
        s.used = true;
        return;
      }
    }
    if (excerpt.empty()) excerpt = LineText(f, line);
    findings_.push_back(Finding{f.path, line, rule, std::move(excerpt)});
  }

  // --- Simple token rules -------------------------------------------------

  void ScanTokens(const LexedFile& f, const RuleProfile& profile,
                  const std::set<std::string>& hash_names) {
    const auto& t = f.tokens;
    const bool sim_exempt = SimExempt(f.virtual_path);
    const bool obs_scope = PathContains(f.virtual_path, "src/core/") ||
                           PathContains(f.virtual_path, "src/routing/");
    const bool hash_header = PathContains(f.virtual_path, "common/hash.h");
    const bool env_accessor = PathContains(f.virtual_path, "common/env.cc") ||
                              PathContains(f.virtual_path, "common/env.h");

    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t, i)) continue;
      const std::string& x = t[i].text;

      if (profile.count("std-rand") > 0) {
        if ((x == "rand" && (PrecededByStd(t, i) || Is(t, i + 1, "("))) ||
            (x == "srand" && Is(t, i + 1, "("))) {
          AddFinding(f, t[i].offset, "std-rand");
        }
      }

      if (profile.count("random-device") > 0 && x == "random_device") {
        AddFinding(f, t[i].offset, "random-device");
      }

      if (profile.count("unseeded-rng") > 0 && IsRngEngine(x) &&
          IsIdent(t, i + 1) && Is(t, i + 2, ";")) {
        AddFinding(f, t[i].offset, "unseeded-rng");
      }

      if (profile.count("raw-thread") > 0 && !sim_exempt &&
          IsThreadPrimitive(x) && PrecededByStd(t, i)) {
        AddFinding(f, t[i - 2].offset, "raw-thread");
      }

      if (profile.count("wall-clock") > 0 && !sim_exempt) {
        if (x == "system_clock" || x == "steady_clock" ||
            x == "high_resolution_clock" || x == "gettimeofday" ||
            x == "clock_gettime" || x == "localtime" || x == "gmtime") {
          AddFinding(f, t[i].offset, "wall-clock");
        } else if (x == "time" && Is(t, i + 1, "(")) {
          size_t j = i + 2;
          if (Is(t, j, "NULL") || Is(t, j, "nullptr") || Is(t, j, "0")) ++j;
          if (Is(t, j, ")")) AddFinding(f, t[i].offset, "wall-clock");
        }
      }

      if (profile.count("pointer-order") > 0 &&
          (x == "map" || x == "set" || x == "less" || x == "greater") &&
          Is(t, i + 1, "<")) {
        size_t j = i + 2;
        if (Is(t, j, "const")) ++j;
        size_t idents = 0;
        while (IsIdent(t, j) || Is(t, j, "::")) {
          if (IsIdent(t, j)) ++idents;
          ++j;
        }
        if (idents > 0 && Is(t, j, "*")) {
          AddFinding(f, t[i].offset, "pointer-order");
        }
      }

      if (profile.count("raw-unordered") > 0 && !hash_header &&
          (x == "unordered_map" || x == "unordered_set")) {
        AddFinding(f, t[i].offset, "raw-unordered");
      }

      if (profile.count("env-read") > 0 && !env_accessor &&
          (x == "getenv" || x == "secure_getenv")) {
        AddFinding(f, t[i].offset, "env-read");
      }

      if (profile.count("unordered-iter") > 0) {
        ScanUnorderedIterAt(f, i, hash_names);
      }

      if (profile.count("obs-decision") > 0 && obs_scope) {
        ScanObsDecisionAt(f, i);
      }
    }

    // Include-directive components of raw-thread / raw-unordered (v1
    // matched the directive text; directives are not tokens here).
    for (const IncludeDirective& inc : f.includes) {
      if (profile.count("raw-thread") > 0 && !sim_exempt && inc.system &&
          ThreadHeaders().count(inc.target) > 0) {
        AddFinding(f, inc.offset, "raw-thread");
      }
      if (profile.count("raw-unordered") > 0 && !hash_header && inc.system &&
          (inc.target == "unordered_map" || inc.target == "unordered_set")) {
        AddFinding(f, inc.offset, "raw-unordered");
      }
    }
  }

  // --- unordered-iter -----------------------------------------------------

  void ScanUnorderedIterAt(const LexedFile& f, size_t i,
                           const std::set<std::string>& hash_names) {
    const auto& t = f.tokens;
    // Range-for over a known hash-container name.
    if (t[i].text == "for" && Is(t, i + 1, "(")) {
      const size_t close = MatchParen(t, i + 1);
      if (close == std::string::npos) return;
      size_t colon = std::string::npos;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        const std::string& x = t[j].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        if (x == ")" || x == "]" || x == "}") --depth;
        if (x == ";" && depth == 1) return;  // classic for
        if (x == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == std::string::npos) return;
      // Trailing identifier of the sequence expression (`name`,
      // `obj.name`, `name()`, `obj.name()`).
      size_t last = close - 1;
      if (Is(t, last, ")") && Is(t, last - 1, "(")) last -= 2;
      if (last > colon && IsIdent(t, last) &&
          hash_names.count(t[last].text) > 0) {
        AddFinding(f, t[i].offset, "unordered-iter");
      }
      return;
    }
    // name.begin() / name().cbegin() on a known hash-container name.
    if (hash_names.count(t[i].text) > 0) {
      size_t j = i + 1;
      if (Is(t, j, "(") && Is(t, j + 1, ")")) j += 2;
      if (Is(t, j, ".") &&
          (Is(t, j + 1, "begin") || Is(t, j + 1, "cbegin")) &&
          Is(t, j + 2, "(")) {
        AddFinding(f, t[i].offset, "unordered-iter");
      }
    }
  }

  // --- obs-decision -------------------------------------------------------

  static bool IsObsSymbol(const std::vector<Token>& t, size_t i) {
    if (!(i < t.size() && t[i].kind == TokKind::kIdent)) return false;
    const std::string& x = t[i].text;
    if (x == "obs" && Is(t, i + 1, "::")) return true;
    if (x.rfind("tracer", 0) == 0) return true;
    return x.rfind("HERMES_TRACE", 0) == 0;
  }

  void ScanObsDecisionAt(const LexedFile& f, size_t i) {
    const auto& t = f.tokens;
    const std::string& x = t[i].text;
    if (x == "return") {
      for (size_t j = i + 1; j < t.size(); ++j) {
        const std::string& y = t[j].text;
        if (y == ";" || y == "{" || y == "}") break;
        if (IsObsSymbol(t, j)) {
          AddFinding(f, t[i].offset, "obs-decision");
          break;
        }
      }
      return;
    }
    if ((x == "if" || x == "while") && Is(t, i + 1, "(")) {
      const size_t close = MatchParen(t, i + 1);
      if (close == std::string::npos) return;
      bool has_obs = false;
      for (size_t j = i + 2; j < close; ++j) {
        if (IsObsSymbol(t, j)) {
          has_obs = true;
          break;
        }
      }
      if (!has_obs) return;
      // A bare `HERMES_TRACE_ACTIVE(...)` (optionally negated, no nested
      // parens) only gates event emission and is exempt: the condition
      // must be exactly [!] HERMES_TRACE_ACTIVE ( paren-free-tokens ).
      size_t j = i + 2;
      if (Is(t, j, "!")) ++j;
      if (Is(t, j, "HERMES_TRACE_ACTIVE") && Is(t, j + 1, "(")) {
        bool nested = false;
        for (size_t k = j + 2; k < close - 1; ++k) {
          if (t[k].text == "(" || t[k].text == ")") {
            nested = true;
            break;
          }
        }
        if (!nested && Is(t, close - 1, ")") && close - 1 > j + 1) return;
      }
      AddFinding(f, t[i].offset, "obs-decision");
    }
  }

  // --- include-hygiene ----------------------------------------------------

  void ScanIncludeHygiene(const LexedFile& f, const RuleProfile& profile,
                          IncludeGraph& graph) {
    if (profile.count("include-hygiene") == 0) return;
    if (SimExempt(f.virtual_path)) return;
    for (const IncludeDirective& inc : f.includes) {
      if (inc.system) {
        // Direct thread-header includes are raw-thread's job; direct
        // clock headers were previously invisible and are flagged here.
        if (ClockHeaders().count(inc.target) > 0) {
          AddFinding(f, inc.offset, "include-hygiene",
                     LineText(f, inc.line) + "  (direct <" + inc.target +
                         "> include)");
        }
        continue;
      }
      const LexedFile* dep = graph.Resolve(inc.target);
      if (dep == nullptr) continue;
      if (SimExempt(dep->virtual_path)) {
        // Including a sim header is fine only when that header is itself
        // clean (the sim exemption covers sim internals, not leaks).
      }
      const auto& taints = graph.Closure(dep);
      if (taints.empty()) continue;
      const auto& [header, taint] = *taints.begin();
      std::string via = taint.via.empty()
                            ? inc.target
                            : inc.target + " -> " + taint.via;
      AddFinding(f, inc.offset, "include-hygiene",
                 LineText(f, inc.line) + "  (reaches <" + header + "> via " +
                     via + ")");
    }
  }

  // --- lane-confinement ---------------------------------------------------

  void ScanLaneConfinement(const LexedFile& f, const RuleProfile& profile,
                           const std::set<std::string>& requires_set,
                           const std::set<std::string>& exclusive_set) {
    if (profile.count("lane-confinement") == 0) return;
    if (requires_set.empty()) return;
    if (!PathContains(f.virtual_path, "src/engine/") &&
        !PathContains(f.virtual_path, "src/sim/") &&
        !PathContains(f.virtual_path, "src/replication/") &&
        !PathContains(f.virtual_path, "src/net/")) {
      return;
    }
    const auto& t = f.tokens;
    const std::vector<FunctionDef> defs = ExtractFunctions(f);
    std::set<size_t> def_name_tokens;
    for (const FunctionDef& d : defs) def_name_tokens.insert(d.name_tok);

    // Defer(...) argument ranges: calls inside run at the epoch barrier.
    std::vector<std::pair<size_t, size_t>> defer_ranges;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (IsIdent(t, i) && t[i].text == "Defer" && Is(t, i + 1, "(")) {
        const size_t close = MatchParen(t, i + 1);
        if (close != std::string::npos) defer_ranges.emplace_back(i + 1, close);
      }
    }

    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!IsIdent(t, i) || requires_set.count(t[i].text) == 0) continue;
      if (!Is(t, i + 1, "(")) continue;
      if (def_name_tokens.count(i) > 0) continue;  // the definition itself
      // Declarations (a type token directly precedes the name) are not
      // calls: `void OnMasterDone(TxnId id);`.
      if (i > 0 && (t[i - 1].kind == TokKind::kIdent ||
                    t[i - 1].text == "*" || t[i - 1].text == "&" ||
                    t[i - 1].text == ">")) {
        continue;
      }
      bool ok = false;
      const FunctionDef* enclosing = EnclosingFunction(defs, i);
      if (enclosing != nullptr && exclusive_set.count(enclosing->name) > 0) {
        ok = true;
      }
      for (const auto& [open, close] : defer_ranges) {
        if (i > open && i < close) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        AddFinding(f, t[i].offset, "lane-confinement",
                   LineText(f, LineOf(f, t[i].offset)) + "  (" + t[i].text +
                       " requires exclusive context)");
      }
    }
  }

  std::vector<Finding> findings_;

 private:
  std::vector<Suppression>* suppressions_;
};

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = [] {
    std::set<std::string> r;
    for (const auto& [name, desc] : Catalog()) {
      (void)desc;
      r.insert(name);
    }
    return r;
  }();
  return kRules;
}

const std::map<std::string, std::string>& RuleDescriptions() {
  return Catalog();
}

RuleProfile ProfileFor(const std::string& virtual_path) {
  RuleProfile profile = KnownRules();
  if (InTree(virtual_path, "bench")) {
    profile.erase("raw-thread");
  } else if (InTree(virtual_path, "tests")) {
    profile.erase("raw-unordered");
    profile.erase("unordered-iter");
  }
  return profile;
}

AnalysisResult Analyze(std::vector<LexedFile>& files) {
  AnalysisResult result;
  std::vector<Annotation> annotations;
  for (const LexedFile& f : files) {
    ParseMarkers(f, &result.suppressions, &annotations,
                 &result.annotation_errors);
  }

  std::set<std::string> requires_set;
  std::set<std::string> exclusive_set;  // requires ∪ runs
  for (const Annotation& a : annotations) {
    if (a.kind == "requires") requires_set.insert(a.function);
    exclusive_set.insert(a.function);
  }

  std::map<std::string, std::set<std::string>> hash_names_by_path;
  for (const LexedFile& f : files) {
    CollectHashContainerNames(f, &hash_names_by_path[f.virtual_path]);
  }

  IncludeGraph graph(files);
  Linter linter(&result.suppressions);
  for (const LexedFile& f : files) {
    const RuleProfile profile = ProfileFor(f.virtual_path);
    // Hash-container names visible to this file: its own declarations
    // plus those of every project file it transitively includes.
    std::set<std::string> hash_names = hash_names_by_path[f.virtual_path];
    for (const std::string& dep : graph.ProjectClosure(&f)) {
      const auto it = hash_names_by_path.find(dep);
      if (it == hash_names_by_path.end()) continue;
      hash_names.insert(it->second.begin(), it->second.end());
    }
    linter.ScanTokens(f, profile, hash_names);
    linter.ScanIncludeHygiene(f, profile, graph);
    linter.ScanLaneConfinement(f, profile, requires_set, exclusive_set);
  }

  std::sort(linter.findings_.begin(), linter.findings_.end());
  result.findings = std::move(linter.findings_);
  std::sort(result.annotation_errors.begin(), result.annotation_errors.end());
  return result;
}

}  // namespace detlint
