#ifndef HERMES_ENGINE_DEGRADED_H_
#define HERMES_ENGINE_DEGRADED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/telemetry.h"
#include "txn/transaction.h"

namespace hermes::engine {

/// One entry of the degraded-mode retry transcript: a transaction was
/// classified as blocked by a dead node and either re-enqueued after a
/// deterministic backoff or (attempts exhausted) returned to the client
/// as a deterministic UNAVAILABLE abort. The transcript is recorded in
/// classification order — a total order — so it must be bit-identical
/// across hash salts for the same (workload seed, fault plan).
struct RetryRecord {
  TxnId blocked_id = kInvalidTxn;  ///< id of the blocked submission
  TxnId retry_of = kInvalidTxn;    ///< id of the original submission
  uint32_t attempt = 0;            ///< attempt number that got blocked
  uint32_t epoch = 0;              ///< membership epoch at classification
  SimTime delay_us = 0;            ///< backoff applied (0 when exhausted)
  bool exhausted = false;          ///< true = UNAVAILABLE abort to client
};

/// Live-side bookkeeping of every degraded-mode decision: the retry
/// transcript plus counters surfaced by Cluster/Executor DebugStrings
/// and the chaos tests. Purely observational — nothing here feeds back
/// into a decision.
class DegradedLedger {
 public:
  void RecordRetry(const RetryRecord& r) {
    transcript_.push_back(r);
    if (r.exhausted) {
      unavailable_aborts_.Add();
    } else {
      retries_scheduled_.Add();
    }
  }
  void RecordPark(TxnId txn, uint32_t epoch) {
    (void)txn;
    (void)epoch;
    parked_total_.Add();
  }
  void RecordWatchdogAbort() { watchdog_aborts_.Add(); }
  void RecordReclaim() { reclaims_.Add(); }
  void RecordReship() { reships_.Add(); }

  const std::vector<RetryRecord>& transcript() const { return transcript_; }
  uint64_t parked_total() const { return parked_total_.value(); }
  uint64_t retries_scheduled() const { return retries_scheduled_.value(); }
  uint64_t unavailable_aborts() const { return unavailable_aborts_.value(); }
  uint64_t watchdog_aborts() const { return watchdog_aborts_.value(); }
  uint64_t reclaims() const { return reclaims_.value(); }
  uint64_t reships() const { return reships_.value(); }

  /// FNV-1a fold of the transcript in recorded order; chaos tests assert
  /// it is bit-identical across salts.
  uint64_t RetryDigest() const;

  std::string DebugString() const;

 private:
  std::vector<RetryRecord> transcript_;
  // obs::Counter so the cluster's telemetry registry exports these under
  // their hermes_degraded_* names without a parallel set of fields.
  obs::Counter parked_total_;
  obs::Counter retries_scheduled_;
  obs::Counter unavailable_aborts_;
  obs::Counter watchdog_aborts_;
  obs::Counter reclaims_;
  obs::Counter reships_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_DEGRADED_H_
