#include "routing/gstore_router.h"

namespace hermes::routing {

GStoreRouter::GStoreRouter(partition::OwnershipMap* ownership,
                           const CostModel* costs, int num_nodes)
    : Router(ownership, costs, num_nodes) {}

RoutePlan GStoreRouter::RouteBatch(const Batch& batch) {
  RoutePlan plan;
  plan.routing_cost_us = LinearCost(batch.txns.size());
  plan.txns.reserve(batch.txns.size());
  for (const TxnRequest& txn : batch.txns) {
    if (txn.kind == TxnKind::kChunkMigration) {
      plan.txns.push_back(PlanChunkMigrationDefault(txn));
      continue;
    }
    if (txn.kind != TxnKind::kRegular) {
      plan.txns.push_back(PlanProvisioningDefault(txn));
      continue;
    }
    RoutedTxn rt;
    rt.txn = txn;
    const NodeId m = MajorityOwner(txn);
    rt.masters = {m};
    for (const auto& [k, is_write] : MergedAccessSet(txn)) {
      const NodeId cur = OwnerOf(k);
      Access a;
      a.key = k;
      a.owner = cur;
      a.is_write = is_write;
      if (cur != m) {
        // Group membership: the record is checked out to the master
        // exclusively (atomic group access) and returns home at commit.
        // The ownership map is never updated — the group is ephemeral.
        a.is_write = true;
        a.ship_to_master = true;
        a.new_owner = m;
        rt.on_commit_returns.push_back(ReturnShipment{k, m, cur});
      }
      rt.accesses.push_back(a);
    }
    plan.txns.push_back(std::move(rt));
  }
  return plan;
}

}  // namespace hermes::routing
