// Epoch-barrier edge cases for the parallel simulator (DESIGN.md §5
// "Parallel simulation"): lanes with no events at an epoch, a lane whose
// only events are epoch-crossing deliveries staged by another lane, and a
// crash mid-run under kCrashNoStall where the parked-transaction FIFO must
// survive multi-threaded execution. Each case runs the identical schedule
// at threads = 0 (the sequential oracle) and threads > 0 and asserts the
// pop transcript / digests / degraded state are bit-identical.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/digest.h"
#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "sim/simulator.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using sim::Simulator;

// (time, lane) execution transcript. Lane handlers write only their own
// per-lane row, so recording is race-free at any thread count; rows are
// concatenated in lane order afterwards (the barrier's merge order).
struct Transcript {
  std::vector<std::vector<std::pair<SimTime, int>>> per_lane;
  explicit Transcript(int lanes) : per_lane(lanes + 1) {}
  void Note(const Simulator& sim) {
    const int lane = sim.current_lane();
    per_lane[lane == sim::kControlLane ? 0 : lane + 1].emplace_back(
        sim.Now(), lane);
  }
  std::vector<std::pair<SimTime, int>> Merged() const {
    std::vector<std::pair<SimTime, int>> all;
    for (const auto& row : per_lane) {
      all.insert(all.end(), row.begin(), row.end());
    }
    return all;
  }
};

// Only lane 2 (of four) ever has events; lanes 0, 1 and 3 are empty at
// every epoch. The barrier must skip them without perturbing the digest,
// and the run must terminate.
std::pair<uint64_t, std::vector<std::pair<SimTime, int>>> RunSparse(
    int threads) {
  Simulator sim;
  DecisionDigest digest;
  sim.set_decision_digest(&digest);
  sim.ConfigureLanes(4, threads);
  Transcript t(4);

  sim.Schedule(5, [&] { t.Note(sim); });  // control lane
  for (SimTime when : {10, 10, 25, 40}) {
    sim.ScheduleOnLaneAt(2, when, [&] { t.Note(sim); });
  }
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 5u);
  return {digest.value(), t.Merged()};
}

TEST(EpochBarrierTest, EmptyPartitionsMatchSequentialOracle) {
  const auto oracle = RunSparse(0);
  for (int threads : {1, 2, 4}) {
    const auto got = RunSparse(threads);
    EXPECT_EQ(got.first, oracle.first) << "digest at threads=" << threads;
    EXPECT_EQ(got.second, oracle.second) << "order at threads=" << threads;
  }
  // The transcript itself: control event first, then lane 2 in time order.
  ASSERT_EQ(oracle.second.size(), 5u);
  EXPECT_EQ(oracle.second[0], (std::pair<SimTime, int>{5, sim::kControlLane}));
  EXPECT_EQ(oracle.second[1], (std::pair<SimTime, int>{10, 2}));
  EXPECT_EQ(oracle.second[4], (std::pair<SimTime, int>{40, 2}));
}

// Lane 1 never schedules anything itself: every one of its events is an
// epoch-crossing delivery staged by a lane-0 event (the migration-delivery
// shape). Deliveries staged with delay 0 land in the SAME epoch — the
// barrier applies the staged push and re-enters the lane slice at the same
// virtual time — so the receiving closure must observe the sender's clock.
std::pair<uint64_t, std::vector<std::pair<SimTime, int>>> RunDeliveryOnly(
    int threads) {
  Simulator sim;
  DecisionDigest digest;
  sim.set_decision_digest(&digest);
  sim.ConfigureLanes(2, threads);
  Transcript t(2);

  for (SimTime when : {10, 10, 30}) {
    sim.ScheduleOnLaneAt(0, when, [&] {
      t.Note(sim);
      // Same-epoch delivery to lane 1 plus a delayed one: both staged at
      // the barrier, never pushed directly into a sibling queue.
      sim.ScheduleOnLane(1, 0, [&] { t.Note(sim); });
      sim.ScheduleOnLane(1, 7, [&] { t.Note(sim); });
    });
  }
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 9u);
  return {digest.value(), t.Merged()};
}

TEST(EpochBarrierTest, DeliveryOnlyLaneMatchesSequentialOracle) {
  const auto oracle = RunDeliveryOnly(0);
  for (int threads : {1, 2, 4}) {
    const auto got = RunDeliveryOnly(threads);
    EXPECT_EQ(got.first, oracle.first) << "digest at threads=" << threads;
    EXPECT_EQ(got.second, oracle.second) << "order at threads=" << threads;
  }
  // Lane 1's row: the two t=10 same-epoch deliveries fire at 10 (clocks
  // never rewind, the barrier re-enters the epoch), the delayed pair at
  // 17, then the t=30 sender's pair at 30 and 37.
  std::vector<std::pair<SimTime, int>> lane1;
  for (const auto& e : oracle.second) {
    if (e.second == 1) lane1.push_back(e);
  }
  ASSERT_EQ(lane1.size(), 6u);
  EXPECT_EQ(lane1[0].first, 10u);
  EXPECT_EQ(lane1[1].first, 10u);
  EXPECT_EQ(lane1[2].first, 17u);
  EXPECT_EQ(lane1[3].first, 17u);
  EXPECT_EQ(lane1[4].first, 30u);
  EXPECT_EQ(lane1[5].first, 37u);
}

// Crash under kCrashNoStall with a chunk-migration stream toward the dead
// node: chunks park in FIFO order while the node is down and release in
// that order at rejoin. The parked list (rendered in park order by
// DegradedDebugString) and the post-drain state must match the sequential
// oracle at every thread count.
struct DegradedResult {
  std::string parked_debug;
  uint64_t parked_total = 0;
  uint64_t retry_digest = 0;
  uint64_t decision = 0;
  uint64_t state_checksum = 0;
};

DegradedResult RunDegradedPark(int threads) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 8'000;
  config.hermes.fusion_table_capacity = 300;
  config.sim.threads = threads;
  Cluster cluster(config, RouterKind::kHermes,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  cluster.CrashNoStall(1);
  cluster.SubmitMigrationPlan({{100, 899, 1}});
  cluster.RunUntil(MsToSim(20));

  DegradedResult r;
  r.parked_debug = cluster.DegradedDebugString();  // parked list, FIFO
  EXPECT_GT(cluster.parked_count(), 0u) << r.parked_debug;

  cluster.RejoinNoStall(1);
  cluster.Drain();
  EXPECT_EQ(cluster.parked_count(), 0u);
  for (Key k = 100; k <= 899; ++k) {
    EXPECT_TRUE(cluster.node(1).store().Contains(k))
        << "chunk key " << k << " lost at threads=" << threads;
  }
  r.parked_total = cluster.degraded_ledger().parked_total();
  r.retry_digest = cluster.degraded_ledger().RetryDigest();
  r.decision = cluster.decision_digest().value();
  r.state_checksum = cluster.StateChecksum();
  return r;
}

TEST(EpochBarrierTest, CrashNoStallParkedFifoSurvivesThreads) {
  const DegradedResult oracle = RunDegradedPark(0);
  for (int threads : {2, 8}) {
    const DegradedResult got = RunDegradedPark(threads);
    EXPECT_EQ(got.parked_debug, oracle.parked_debug)
        << "parked FIFO diverged at threads=" << threads;
    EXPECT_EQ(got.parked_total, oracle.parked_total);
    EXPECT_EQ(got.retry_digest, oracle.retry_digest);
    EXPECT_EQ(got.decision, oracle.decision);
    EXPECT_EQ(got.state_checksum, oracle.state_checksum);
  }
}

}  // namespace
}  // namespace hermes
