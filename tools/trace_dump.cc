// trace_dump — runs a seeded chaos workload with tracing enabled and
// writes the Chrome trace_event JSON to the given path (default
// trace.json). Load the output in Perfetto (ui.perfetto.dev) or
// chrome://tracing; CI uploads one as a build artifact so every run has a
// browsable timeline of a crash/rejoin cycle under link chaos.
//
//   trace_dump [out.json] [plan_seed]
//
// The run is a pure function of (plan_seed, config, HERMES_HASH_SALT):
// the printed TRACE_DIGEST is bit-identical across reruns and salts.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace {

using hermes::ClusterConfig;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

ClusterConfig MakeConfig() {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  config.obs.trace_enabled = true;
  return config;
}

hermes::fault::FaultInjector::MapFactory MapFactory(
    const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<hermes::partition::RangePartitionMap>(records,
                                                                  nodes);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace.json";
  const uint64_t plan_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'260'000ULL;

  ClusterConfig config = MakeConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  hermes::fault::FaultPlanConfig pc;
  pc.horizon_us = hermes::MsToSim(120);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = hermes::MsToSim(10);
  pc.max_outage_us = hermes::MsToSim(40);
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  const hermes::fault::FaultPlan plan =
      hermes::fault::FaultPlan::Generate(pc, plan_seed);
  hermes::fault::FaultInjector injector(&cluster, plan, MapFactory(config));

  hermes::workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = hermes::Mix64(plan_seed ^ 0x5c5bULL);
  hermes::workload::YcsbWorkload gen(wl, nullptr);
  hermes::workload::ClosedLoopDriver driver(
      &cluster, 8,
      [&gen](int, hermes::SimTime now) { return gen.Next(now); });
  driver.set_stop_time(hermes::MsToSim(120));
  driver.Start();
  injector.RunUntil(hermes::MsToSim(120));
  injector.Drain();

  if (!cluster.DumpTrace(out_path)) {
    std::fprintf(stderr, "trace_dump: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("TRACE_DIGEST %016llx events=%llu dropped=%llu\n",
              static_cast<unsigned long long>(cluster.trace_digest().value()),
              static_cast<unsigned long long>(cluster.tracer().total_recorded()),
              static_cast<unsigned long long>(cluster.tracer().total_dropped()));
  std::printf("commits=%llu aborts=%llu -> %s\n",
              static_cast<unsigned long long>(
                  cluster.metrics().total_commits()),
              static_cast<unsigned long long>(cluster.metrics().total_aborts()),
              out_path.c_str());
  return 0;
}
