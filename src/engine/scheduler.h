#ifndef HERMES_ENGINE_SCHEDULER_H_
#define HERMES_ENGINE_SCHEDULER_H_

#include <functional>

#include "common/config.h"
#include "common/digest.h"
#include "engine/executor.h"
#include "routing/router.h"
#include "sim/simulator.h"
#include "storage/command_log.h"
#include "txn/transaction.h"

namespace hermes::engine {

/// The scheduler stage (§2.1 / §3.1): receives totally ordered batches,
/// appends them to the command log, runs the (deterministic) routing
/// algorithm, and dispatches the routed transactions to the executors.
///
/// Every node runs an identical scheduler replica in parallel; since the
/// replicas produce byte-identical plans at identical times, the prototype
/// models them as one pipeline whose analysis cost delays dispatch — which
/// is exactly the per-node latency a real deployment would see.
class Scheduler {
 public:
  /// Resolves the commit callback registered for a transaction (null for
  /// synthesized transactions).
  using CallbackResolver =
      std::function<TxnExecutor::CommitCallback(const TxnRequest&)>;
  /// Invoked for every transaction as it is dispatched (Clay's workload
  /// monitor taps in here).
  using DispatchObserver = std::function<void(const routing::RoutedTxn&)>;
  /// Degraded-mode classification hook, invoked after the batch is logged
  /// but before it is routed. May remove transactions that cannot run
  /// under the current membership (they are parked or retried by the
  /// cluster); the command log keeps the original batch, so a replay fed
  /// the same membership schedule reproduces the same filtering.
  using BatchFilter = std::function<void(BatchId, std::vector<TxnRequest>*)>;

  /// `digest`, when non-null, receives every routing decision (txn id,
  /// masters, per-access placement) the moment a batch is routed.
  /// `placement_digest`, when non-null, receives the same stream — it backs
  /// `Cluster::placement_digest()`, a transcript of routing decisions only
  /// (no event-queue pops), which fault-injection monitors compare against
  /// a fault-free oracle replaying the same command log: chaos may perturb
  /// timing, but never what the router decided for a given batch stream.
  Scheduler(sim::Simulator* sim, routing::Router* router,
            TxnExecutor* executor, storage::CommandLog* command_log,
            const ClusterConfig* config, CallbackResolver resolver,
            DecisionDigest* digest = nullptr,
            DecisionDigest* placement_digest = nullptr);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Handles one sequenced batch: log, route, dispatch after the modeled
  /// analysis cost. Must be called in batch order.
  void OnBatch(Batch&& batch);

  /// Routes transactions released from the degraded-mode parking queue.
  /// They were logged in their original batch, so this path skips the
  /// command log; the batch filter still runs (a release can re-park if
  /// another node is down). `release_id` tags the synthetic batch for the
  /// filter; it is NOT a command-log batch id.
  void RouteParked(BatchId release_id, std::vector<TxnRequest>&& txns);

  void set_observer(DispatchObserver observer) {
    observer_ = std::move(observer);
  }

  void set_batch_filter(BatchFilter filter) { filter_ = std::move(filter); }

  /// Installs the passive tracer (null = tracing off); the scheduler
  /// emits one kBatchRouted span per routed batch.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  SimTime busy_until() const { return busy_until_; }
  uint64_t batches_routed() const { return batches_routed_.value(); }

 private:
  /// Shared tail of OnBatch / RouteParked: filter, route, digest,
  /// schedule dispatch after the modeled analysis (+ optional log) cost.
  void Process(Batch&& batch, bool log);

  sim::Simulator* sim_;
  routing::Router* router_;
  TxnExecutor* executor_;
  storage::CommandLog* command_log_;
  const ClusterConfig* config_;
  CallbackResolver resolver_;
  DecisionDigest* digest_;
  DecisionDigest* placement_digest_;
  DispatchObserver observer_;
  BatchFilter filter_;
  obs::Tracer* tracer_ = nullptr;
  SimTime busy_until_ = 0;
  obs::Counter batches_routed_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_SCHEDULER_H_
