// Example: dynamic machine provisioning (§3.3 / §5.4 scenario). A 3-node
// cluster with a hot tenant adds a 4th node at runtime; the hot records
// move with normal traffic via the fusion table while the cold range
// migrates in chunk transactions that skip hot keys.
//
//   ./build/examples/example_scaleout

#include <cstdio>
#include <memory>

#include "engine/cluster.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::RangeMove;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

}  // namespace

int main() {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 3;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 25'000;
  mt.rotation_us = SecToSim(100'000);  // hot tenant stays put
  mt.hot_fraction = 0.5;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 20;  // 5%
  config.migration_chunk_records = 1000;
  Cluster cluster(config, RouterKind::kHermes, gen.PerfectPartitioning());
  cluster.Load();

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 600, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(40));
  driver.Start();

  std::printf("t=0s: 3 nodes, hot tenant on node 0 (50%% of load)\n");
  cluster.RunUntil(SecToSim(15));
  std::printf("t=15s: adding node 3; cold-migrating the hot tenant's "
              "range\n");
  cluster.AddNode({RangeMove{0, mt.records_per_tenant - 1, 3}},
                  /*migrate_cold=*/true);
  cluster.RunUntil(SecToSim(40));
  cluster.Drain();

  std::printf("\nthroughput (txn/s, 5s buckets):\n");
  const auto& windows = cluster.metrics().windows();
  for (size_t w = 0; w + 5 <= windows.size(); w += 5) {
    uint64_t commits = 0;
    for (size_t i = w; i < w + 5; ++i) commits += windows[i].commits;
    std::printf("  t=%2zu..%2zus: %llu\n", w, w + 5,
                static_cast<unsigned long long>(commits / 5));
  }

  std::printf("\nfinal record placement:\n");
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    std::printf("  node %d: %zu records\n", n,
                cluster.node(n).store().size());
  }
  std::printf("\nnode 3 now owns the hot tenant; chunk migrations skipped "
              "the keys the fusion table had already moved.\n");
  return 0;
}
