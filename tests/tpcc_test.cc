#include "workload/tpcc.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hermes::workload {
namespace {

TpccConfig SmallTpcc() {
  TpccConfig config;
  config.num_warehouses = 8;
  config.num_nodes = 4;
  config.seed = 5;
  return config;
}

TEST(TpccTest, KeyLayoutDisjointWithinWarehouse) {
  TpccWorkload gen(SmallTpcc());
  // Warehouse, district, customer, stock and order keys never collide.
  std::vector<Key> keys;
  keys.push_back(gen.WarehouseKey(0));
  for (int d = 0; d < 10; ++d) keys.push_back(gen.DistrictKey(0, d));
  keys.push_back(gen.CustomerKey(0, 0, 0));
  keys.push_back(gen.CustomerKey(0, 9, 299));
  keys.push_back(gen.StockKey(0, 0));
  keys.push_back(gen.StockKey(0, 999));
  keys.push_back(gen.OrderSlotKey(0, 0));
  std::sort(keys.begin(), keys.end());
  EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  for (Key k : keys) EXPECT_LT(k, gen.BlockSize());
}

TEST(TpccTest, WarehouseBlocksDisjoint) {
  TpccWorkload gen(SmallTpcc());
  EXPECT_EQ(gen.WarehouseKey(1), gen.BlockSize());
  EXPECT_LT(gen.OrderSlotKey(0, 11'999), gen.WarehouseKey(1));
  EXPECT_EQ(gen.num_records(), 8 * gen.BlockSize());
}

TEST(TpccTest, WarehousePartitioningAssignsWholeBlocks) {
  TpccWorkload gen(SmallTpcc());
  auto map = gen.WarehousePartitioning();
  EXPECT_EQ(map->num_partitions(), 4);
  for (int w = 0; w < 8; ++w) {
    const NodeId owner = map->Owner(gen.WarehouseKey(w));
    EXPECT_EQ(owner, w / 2);
    EXPECT_EQ(map->Owner(gen.StockKey(w, 500)), owner);
    EXPECT_EQ(map->Owner(gen.OrderSlotKey(w, 7)), owner);
  }
}

TEST(TpccTest, NewOrderShape) {
  TpccConfig config = SmallTpcc();
  config.new_order_ratio = 1.0;
  TpccWorkload gen(config);
  for (int i = 0; i < 500; ++i) {
    const TxnRequest txn = gen.Next(0);
    ASSERT_EQ(txn.tag, kTpccNewOrderTag);
    // Reads: warehouse + district + customer + 5..15 stocks.
    EXPECT_GE(txn.read_set.size(), 3u + 5u);
    EXPECT_LE(txn.read_set.size(), 3u + 15u);
    // Writes: district + stocks + order + 5..15 lines.
    EXPECT_GE(txn.write_set.size(), 1u + 5u + 6u);
    for (Key k : txn.read_set) EXPECT_LT(k, gen.num_records());
    for (Key k : txn.write_set) EXPECT_LT(k, gen.num_records());
  }
}

TEST(TpccTest, PaymentShape) {
  TpccConfig config = SmallTpcc();
  config.new_order_ratio = 0.0;
  TpccWorkload gen(config);
  for (int i = 0; i < 500; ++i) {
    const TxnRequest txn = gen.Next(0);
    ASSERT_EQ(txn.tag, kTpccPaymentTag);
    EXPECT_EQ(txn.read_set.size(), 3u);
    EXPECT_EQ(txn.read_set, txn.write_set);
  }
}

TEST(TpccTest, RemoteCustomerRatio) {
  TpccConfig config = SmallTpcc();
  config.new_order_ratio = 0.0;
  TpccWorkload gen(config);
  auto map = gen.WarehousePartitioning();
  int distributed = 0;
  constexpr int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnRequest txn = gen.Next(0);
    NodeId first = map->Owner(txn.read_set[0]);
    for (Key k : txn.read_set) {
      if (map->Owner(k) != first) {
        ++distributed;
        break;
      }
    }
  }
  // 15% remote customers, of which ~6/7 are on another node (8 warehouses,
  // 2 per node).
  EXPECT_GT(distributed, kSamples / 20);
  EXPECT_LT(distributed, kSamples / 4);
}

TEST(TpccTest, HotspotConcentratesOnNodeZero) {
  TpccConfig config = SmallTpcc();
  config.hotspot_concentration = 0.9;
  TpccWorkload gen(config);
  auto map = gen.WarehousePartitioning();
  int on_zero = 0;
  constexpr int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnRequest txn = gen.Next(0);
    // Home warehouse = the district key's warehouse.
    if (map->Owner(txn.write_set.front()) == 0) ++on_zero;
  }
  EXPECT_GT(on_zero, static_cast<int>(kSamples * 0.85));
}

TEST(TpccTest, AbortRateAboutOnePercent) {
  TpccConfig config = SmallTpcc();
  config.new_order_ratio = 1.0;
  TpccWorkload gen(config);
  int aborts = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(0).user_abort) ++aborts;
  }
  EXPECT_NEAR(static_cast<double>(aborts) / kSamples, 0.01, 0.005);
}

TEST(TpccTest, OrderSlotsAdvanceAndWrap) {
  TpccConfig config = SmallTpcc();
  config.new_order_ratio = 1.0;
  config.order_slots_per_warehouse = 50;  // tiny: forces wrap
  TpccWorkload gen(config);
  for (int i = 0; i < 200; ++i) {
    const TxnRequest txn = gen.Next(0);
    for (Key k : txn.write_set) EXPECT_LT(k, gen.num_records());
  }
}

}  // namespace
}  // namespace hermes::workload
