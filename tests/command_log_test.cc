#include "storage/command_log.h"

#include <gtest/gtest.h>

namespace hermes::storage {
namespace {

Batch MakeBatch(BatchId id, size_t txns) {
  Batch b;
  b.id = id;
  b.txns.resize(txns);
  return b;
}

TEST(CommandLogTest, AppendsInOrder) {
  CommandLog log;
  log.Append(MakeBatch(0, 2));
  log.Append(MakeBatch(1, 3));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.batches()[0].id, 0u);
  EXPECT_EQ(log.batches()[1].txns.size(), 3u);
}

TEST(CommandLogTest, SuffixFromWatermark) {
  CommandLog log;
  for (BatchId i = 0; i < 5; ++i) log.Append(MakeBatch(i, 1));
  const auto suffix = log.Suffix(3);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0].id, 3u);
  EXPECT_EQ(suffix[1].id, 4u);
}

TEST(CommandLogTest, SuffixPastEndIsEmpty) {
  CommandLog log;
  log.Append(MakeBatch(0, 1));
  EXPECT_TRUE(log.Suffix(5).empty());
}

TEST(CommandLogTest, SuffixZeroIsEverything) {
  CommandLog log;
  for (BatchId i = 0; i < 3; ++i) log.Append(MakeBatch(i, 1));
  EXPECT_EQ(log.Suffix(0).size(), 3u);
}

}  // namespace
}  // namespace hermes::storage
