#include "common/config.h"

// Configuration is all aggregate data; this translation unit exists so the
// header has an associated object file and stays self-contained.
