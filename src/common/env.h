#ifndef HERMES_COMMON_ENV_H_
#define HERMES_COMMON_ENV_H_

#include <cstdint>

namespace hermes {

/// The sanctioned process-environment accessor. detlint's `env-read`
/// rule bans `std::getenv` everywhere except env.cc, so every
/// environment read in the tree is enumerable from this header's call
/// sites — which is what keeps the env surface auditable: an env var
/// may select a *configuration* (salt, thread count, trace switches)
/// before a run, but nothing may read the environment mid-decision,
/// where it would be invisible to the digest oracles and the replay
/// tooling.
///
/// Returns nullptr when `name` is unset; an empty value is returned
/// as-is (callers that treat empty as unset say so explicitly).
const char* EnvRead(const char* name);

/// Integer convenience wrappers over EnvRead: `def` when unset or
/// empty. Parsing matches the historical call sites (strtoull with
/// base 0 — decimal or 0x-hex — for the unsigned form, strtol base 10
/// for the signed form).
uint64_t EnvReadU64(const char* name, uint64_t def);
int EnvReadInt(const char* name, int def);

/// True when `name` is set to a truthy value: anything except unset,
/// empty, or the literal "0" (the HERMES_TRACE convention).
bool EnvReadBool(const char* name);

}  // namespace hermes

#endif  // HERMES_COMMON_ENV_H_
