// Fault-injection recovery bench: throughput dip and virtual
// time-to-recover under a seeded chaos schedule (two crash/rejoin cycles
// plus link drop/duplicate/jitter) versus the same workload fault-free,
// under both crash models:
//
//   stall      pause intake, drain, rebuild, resume (kCrash)
//   degraded   keep sequencing, route around the victim (kCrashNoStall)
//
// Expected shape: under stall, commits collapse to ~0 in the windows
// containing an outage and return to the fault-free level after the
// rejoin; under degraded mode the survivors keep committing through the
// outage (>=50% of fault-free inside the degraded windows). The stall
// model reports stall_us == time_to_recover_us (intake is down for the
// whole cycle); degraded mode reports stall_us == 0 while
// time_to_recover_us still covers crash -> node-serves-again.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace {

using hermes::ClusterConfig;
using hermes::MsToSim;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;
using hermes::fault::FaultInjector;
using hermes::fault::FaultPlan;
using hermes::fault::FaultPlanConfig;
using hermes::fault::InvariantMonitor;
using hermes::fault::RecoveryStats;

constexpr SimTime kHorizon = SecToSim(12);
constexpr int kClients = 64;
constexpr uint64_t kPlanSeed = 2026;

enum class Mode { kFaultFree, kStall, kNoStall };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kFaultFree:
      return "fault_free";
    case Mode::kStall:
      return "stall";
    case Mode::kNoStall:
      return "degraded";
  }
  return "?";
}

ClusterConfig BenchConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.hermes.fusion_table_capacity = 500;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<hermes::partition::RangePartitionMap>(records,
                                                                  nodes);
  };
}

struct BenchOutcome {
  std::vector<double> commits;     // per metrics window
  std::vector<double> sent;        // bytes sent per window
  std::vector<double> received;    // bytes received per window
  SimTime window_us = 1;
  uint64_t total_commits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t unavailable = 0;
  uint64_t parked = 0;
  uint64_t watchdog_aborts = 0;
  std::vector<RecoveryStats> recoveries;
  bool monitors_ok = true;
};

BenchOutcome Run(Mode mode) {
  const ClusterConfig config = BenchConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  std::unique_ptr<FaultInjector> injector;
  InvariantMonitor monitor(config.num_records);
  if (mode != Mode::kFaultFree) {
    FaultPlanConfig pc;
    pc.horizon_us = kHorizon;
    pc.num_nodes = config.num_nodes;
    pc.crash_cycles = 2;
    pc.min_outage_us = MsToSim(200);
    pc.max_outage_us = MsToSim(800);
    pc.no_stall = mode == Mode::kNoStall;
    pc.link.drop_prob = 0.02;
    pc.link.duplicate_prob = 0.01;
    pc.link.max_jitter_us = 300;
    const FaultPlan plan = FaultPlan::Generate(pc, kPlanSeed);
    std::printf("%s", plan.DebugString().c_str());
    injector = std::make_unique<FaultInjector>(&cluster, plan,
                                               MapFactory(config));
    injector->set_monitor(&monitor);
  }

  hermes::workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1337;
  hermes::workload::YcsbWorkload gen(wl, nullptr);
  hermes::workload::ClosedLoopDriver driver(
      &cluster, kClients,
      [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();

  if (injector) {
    injector->RunUntil(kHorizon);
    injector->Drain();
  } else {
    cluster.RunUntil(kHorizon);
    cluster.Drain();
  }

  BenchOutcome out;
  const auto& m = cluster.metrics();
  out.window_us = m.window_us();
  const size_t windows = kHorizon / m.window_us();
  for (size_t w = 0; w < windows; ++w) {
    const bool have = w < m.windows().size();
    out.commits.push_back(have ? m.windows()[w].commits : 0.0);
    out.sent.push_back(have ? m.windows()[w].net_bytes : 0.0);
    out.received.push_back(have ? m.windows()[w].net_bytes_received : 0.0);
  }
  out.total_commits = cluster.metrics().total_commits();
  out.dropped = cluster.network().messages_dropped();
  out.duplicated = cluster.network().messages_duplicated();
  out.unavailable = cluster.degraded_ledger().unavailable_aborts();
  out.parked = cluster.degraded_ledger().parked_total();
  out.watchdog_aborts = cluster.degraded_ledger().watchdog_aborts();
  if (injector) {
    out.recoveries = injector->recoveries();
    out.monitors_ok = monitor.ok();
    if (!monitor.ok()) std::printf("%s", monitor.FailureReport().c_str());
  }
  return out;
}

/// Commits inside the windows overlapping any crash->resume span of
/// `faulty`, for both runs, as faulty/baseline — the availability
/// criterion: how much of fault-free throughput survives the outage.
double OutageThroughputRatio(const BenchOutcome& faulty,
                             const BenchOutcome& baseline) {
  double f = 0.0, b = 0.0;
  for (const RecoveryStats& r : faulty.recoveries) {
    const size_t w0 = r.crash_at / faulty.window_us;
    const size_t w1 = r.resumed_at / faulty.window_us;
    for (size_t w = w0; w <= w1 && w < faulty.commits.size(); ++w) {
      f += faulty.commits[w];
      if (w < baseline.commits.size()) b += baseline.commits[w];
    }
  }
  return b > 0.0 ? f / b : 0.0;
}

void PrintRecoveries(const char* label, const BenchOutcome& out) {
  std::printf("\n%s recoveries (virtual time):\n", label);
  for (const RecoveryStats& r : out.recoveries) {
    std::printf(
        "  node %d: crash at %.3fs, outage to %.3fs, replay %.1fms "
        "(%llu batches), stall %.1fms, recovered in %.1fms\n",
        r.node, r.crash_at / 1e6, r.rejoin_at / 1e6, r.replay_us / 1e3,
        static_cast<unsigned long long>(r.replayed_batches),
        r.stall_us() / 1e3, r.time_to_recover_us() / 1e3);
  }
}

}  // namespace

int main() {
  std::printf("Fault recovery bench: stall vs degraded crash handling, "
              "against a fault-free baseline\n");
  BenchOutcome baseline = Run(Mode::kFaultFree);
  BenchOutcome stall = Run(Mode::kStall);
  BenchOutcome degraded = Run(Mode::kNoStall);

  PrintSeriesTable("throughput under chaos",
                   {"fault_free", "stall", "degraded"},
                   {baseline.commits, stall.commits, degraded.commits}, 1.0,
                   "commits per window");
  PrintSeriesTable("degraded run wire traffic", {"sent", "received"},
                   {degraded.sent, degraded.received}, 1.0,
                   "bytes per window");

  PrintRecoveries(ModeName(Mode::kStall), stall);
  PrintRecoveries(ModeName(Mode::kNoStall), degraded);

  const double stall_ratio = OutageThroughputRatio(stall, baseline);
  const double degraded_ratio = OutageThroughputRatio(degraded, baseline);
  std::printf("\noutage-window throughput vs fault-free: stall=%.1f%% "
              "degraded=%.1f%%\n",
              100.0 * stall_ratio, 100.0 * degraded_ratio);
  std::printf("degraded handling: parked=%llu unavailable=%llu "
              "watchdog_aborts=%llu\n",
              static_cast<unsigned long long>(degraded.parked),
              static_cast<unsigned long long>(degraded.unavailable),
              static_cast<unsigned long long>(degraded.watchdog_aborts));

  std::printf("\ntotals: fault-free=%llu stall=%llu degraded=%llu "
              "dropped=%llu duplicated=%llu monitors=%s\n",
              static_cast<unsigned long long>(baseline.total_commits),
              static_cast<unsigned long long>(stall.total_commits),
              static_cast<unsigned long long>(degraded.total_commits),
              static_cast<unsigned long long>(degraded.dropped),
              static_cast<unsigned long long>(degraded.duplicated),
              stall.monitors_ok && degraded.monitors_ok ? "ok" : "FAILED");
  std::printf("paper shape: stall drops to ~0 during outages; degraded "
              "keeps the survivors' share (>=50%% of fault-free) and pays "
              "only retries/parking on the victim's keys\n");
  const bool ok =
      stall.monitors_ok && degraded.monitors_ok && degraded_ratio >= 0.5;
  if (degraded_ratio < 0.5) {
    std::printf("FAIL: degraded outage-window ratio %.1f%% < 50%%\n",
                100.0 * degraded_ratio);
  }
  return ok ? 0 : 1;
}
