// Recovery (§4.3): a crashed cluster is rebuilt from a consistent
// checkpoint plus a replay of the command-log suffix; determinism
// guarantees the rebuilt cluster matches the pre-crash state bit for bit.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/recovery.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "storage/serialization.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

ClusterConfig RecoveryConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 10'000;
  config.hermes.fusion_table_capacity = 300;
  return config;
}

std::unique_ptr<partition::PartitionMap> BaseMap(const ClusterConfig& c) {
  return std::make_unique<partition::RangePartitionMap>(c.num_records,
                                                        c.num_nodes);
}

void RunPhase(Cluster* cluster, workload::YcsbWorkload* gen, SimTime until) {
  workload::ClosedLoopDriver driver(
      cluster, 16, [gen](int, SimTime now) { return gen->Next(now); });
  driver.set_stop_time(until);
  driver.Start();
  cluster->RunUntil(until);
  cluster->Drain();
}

TEST(RecoveryTest, ReplayFromCheckpointReproducesState) {
  const ClusterConfig config = RecoveryConfig();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 777;

  // Primary: run phase 1, checkpoint at quiescence, run phase 2, "crash".
  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  RunPhase(&primary, &gen, MsToSim(300));
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();
  RunPhase(&primary, &gen, MsToSim(600));
  const uint64_t pre_crash = primary.StateChecksum();
  const uint64_t pre_crash_fusion = primary.fusion_table()->Checksum();

  // Replacement: restore + replay the suffix of the command log.
  auto recovered =
      engine::RecoverCluster(config, RouterKind::kHermes, BaseMap(config),
                             checkpoint, primary.command_log());
  EXPECT_EQ(recovered->StateChecksum(), pre_crash);
  EXPECT_EQ(recovered->fusion_table()->Checksum(), pre_crash_fusion);
}

TEST(RecoveryTest, CheckpointAloneIsNotEnough) {
  // Sanity: the phase-2 workload actually changes state, so replay is
  // doing real work in the test above.
  const ClusterConfig config = RecoveryConfig();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 777;

  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  RunPhase(&primary, &gen, MsToSim(300));
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();
  RunPhase(&primary, &gen, MsToSim(600));

  Cluster restored_only(config, RouterKind::kHermes, BaseMap(config));
  restored_only.RestoreFromCheckpoint(checkpoint);
  EXPECT_NE(restored_only.StateChecksum(), primary.StateChecksum());
}

TEST(RecoveryTest, RecoveryWorksForCalvinToo) {
  ClusterConfig config = RecoveryConfig();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 31;

  Cluster primary(config, RouterKind::kCalvin, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  RunPhase(&primary, &gen, MsToSim(200));
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();
  RunPhase(&primary, &gen, MsToSim(400));

  auto recovered =
      engine::RecoverCluster(config, RouterKind::kCalvin, BaseMap(config),
                             checkpoint, primary.command_log());
  EXPECT_EQ(recovered->StateChecksum(), primary.StateChecksum());
}

TEST(RecoveryTest, FreshCheckpointRoundTrips) {
  // Checkpoint immediately after Load: restore must equal the original.
  const ClusterConfig config = RecoveryConfig();
  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();

  Cluster restored(config, RouterKind::kHermes, BaseMap(config));
  restored.RestoreFromCheckpoint(checkpoint);
  EXPECT_EQ(restored.StateChecksum(), primary.StateChecksum());
}

TEST(RecoveryTest, DurableRecoveryThroughFiles) {
  // Full durability loop: checkpoint and command log go to disk, a fresh
  // process-equivalent reads them back and recovers the exact state.
  const ClusterConfig config = RecoveryConfig();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 91;

  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  RunPhase(&primary, &gen, MsToSim(250));
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();
  RunPhase(&primary, &gen, MsToSim(500));

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(
      storage::WriteCheckpoint(checkpoint, dir + "/recovery_ckpt.bin").ok());
  ASSERT_TRUE(storage::WriteCommandLog(primary.command_log(),
                                       dir + "/recovery_log.bin")
                  .ok());

  storage::Checkpoint restored_ckpt;
  storage::CommandLog restored_log;
  ASSERT_TRUE(
      storage::ReadCheckpoint(dir + "/recovery_ckpt.bin", &restored_ckpt)
          .ok());
  ASSERT_TRUE(
      storage::ReadCommandLog(dir + "/recovery_log.bin", &restored_log).ok());

  auto recovered =
      engine::RecoverCluster(config, RouterKind::kHermes, BaseMap(config),
                             restored_ckpt, restored_log);
  EXPECT_EQ(recovered->StateChecksum(), primary.StateChecksum());
}

TEST(RecoveryTest, MidElasticCheckpointReplaysInFlightMigration) {
  // A checkpoint taken at a batch boundary in the MIDDLE of a scale-out —
  // cold chunk migrations half done, the rest still queued or parked at
  // the paused sequencer — plus a replay of the suffix must reproduce the
  // final state exactly. The queued-but-unsequenced chunks are absent from
  // the checkpoint by design: they enter the total order after the
  // boundary, so the suffix covers them.
  ClusterConfig config = RecoveryConfig();
  config.migration_chunk_records = 500;
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 4711;

  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &primary, 16, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(300));
  driver.Start();
  primary.RunUntil(MsToSim(200));

  // Scale out: 2500 records re-home onto the new node in 500-record
  // chunks, interleaved with the regular workload.
  primary.AddNode({{0, 2499, 4}}, /*migrate_cold=*/true);
  primary.RunUntil(MsToSim(225));

  // Checkpoint at the next batch boundary: pause intake, drain to
  // quiescence. The migration must genuinely be mid-flight here.
  primary.PauseIntake();
  primary.Drain();
  const size_t moved = primary.node(4).store().size();
  ASSERT_GT(moved, 0u) << "no chunk landed yet - checkpoint too early";
  ASSERT_LT(moved, 2500u) << "migration already done - checkpoint too late";
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();
  EXPECT_EQ(checkpoint.stores.size(), 5u);
  primary.ResumeIntake();

  // Finish the elastic phase and the workload. The new node ends up with
  // the cold part of the range; hot keys promoted to the fusion table are
  // placed by the router and may live elsewhere, so < 2500 is expected.
  primary.RunUntil(MsToSim(450));
  primary.Drain();
  EXPECT_GT(primary.node(4).store().size(), 2000u);

  // The replacement restores the mid-elastic checkpoint and replays the
  // suffix - including the chunks that were still queued at the boundary.
  auto recovered =
      engine::RecoverCluster(config, RouterKind::kHermes, BaseMap(config),
                             checkpoint, primary.command_log());
  EXPECT_EQ(recovered->num_nodes(), 5);
  EXPECT_EQ(recovered->StateChecksum(), primary.StateChecksum());
  EXPECT_EQ(recovered->fusion_table()->Checksum(),
            primary.fusion_table()->Checksum());

  // Digest equality vs a full-replay oracle: the routing-decision stream
  // of the live elastic run is reproduced bit for bit from the log alone.
  fault::InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckAgainstOracle(
      primary, RouterKind::kHermes,
      [&config] { return BaseMap(config); }, "mid-elastic"))
      << monitor.FailureReport();
}

TEST(RecoveryTest, ReplayIncludesColdMigrations) {
  // Scale-out happens in phase 2; replaying the log must reproduce the
  // migrated placement (markers and chunk transactions are all logged).
  ClusterConfig config = RecoveryConfig();
  config.migration_chunk_records = 500;
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 55;

  Cluster primary(config, RouterKind::kHermes, BaseMap(config));
  primary.Load();
  workload::YcsbWorkload gen(wl, nullptr);
  RunPhase(&primary, &gen, MsToSim(200));
  const storage::Checkpoint checkpoint = primary.TakeCheckpoint();

  primary.AddNode({{0, 2499, 4}}, /*migrate_cold=*/true);
  RunPhase(&primary, &gen, MsToSim(500));

  auto recovered =
      engine::RecoverCluster(config, RouterKind::kHermes, BaseMap(config),
                             checkpoint, primary.command_log());
  EXPECT_EQ(recovered->num_nodes(), 5);
  EXPECT_EQ(recovered->StateChecksum(), primary.StateChecksum());
}

}  // namespace
}  // namespace hermes
