#include "storage/record_store.h"

#include "common/rng.h"

namespace hermes::storage {

void RecordStore::Insert(Key key, const Record& record) {
  records_[key] = record;
}

std::optional<Record> RecordStore::Extract(Key key) {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  Record r = it->second;
  records_.erase(it);
  return r;
}

const Record* RecordStore::Get(Key key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

bool RecordStore::ApplyWrite(Key key, TxnId writer) {
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  Record& r = it->second;
  r.value = Mix64(r.value ^ Mix64(writer) ^ Mix64(key));
  r.last_writer = writer;
  ++r.version;
  return true;
}

void RecordStore::Restore(Key key, const Record& pre_image) {
  records_[key] = pre_image;
}

uint64_t RecordStore::Checksum() const {
  // XOR of per-record digests is order-insensitive, so two stores with the
  // same contents hash equal regardless of hash-map iteration order.
  uint64_t sum = 0;
  // detlint:allow(unordered-iter) order-insensitive XOR fold, not a decision
  for (const auto& [key, r] : records_) {
    sum ^= Mix64(Mix64(key) ^ r.value ^ (static_cast<uint64_t>(r.version) << 32));
  }
  return sum;
}

}  // namespace hermes::storage
