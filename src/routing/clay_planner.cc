#include "routing/clay_planner.h"

#include <algorithm>

namespace hermes::routing {

ClayPlanner::ClayPlanner(const partition::OwnershipMap* ownership,
                         uint64_t num_records, ClayConfig config)
    : ownership_(ownership), config_(config) {
  num_ranges_ = (num_records + config_.range_size - 1) / config_.range_size;
  if (num_ranges_ == 0) num_ranges_ = 1;
}

void ClayPlanner::Observe(const TxnRequest& txn) {
  ++observed_;
  auto note = [&](Key k) {
    ++range_heat_[k / config_.range_size];
    ++node_load_[ownership_->Owner(k)];
  };
  for (Key k : txn.read_set) note(k);
  for (Key k : txn.write_set) note(k);
}

std::vector<ClumpMove> ClayPlanner::MaybePlan(SimTime now, int num_nodes) {
  if (now - window_start_ < config_.monitor_window_us) return {};
  window_start_ = now;

  std::vector<ClumpMove> plan;
  if (observed_ == 0 || num_nodes <= 1) {
    range_heat_.clear();
    node_load_.clear();
    observed_ = 0;
    return plan;
  }

  // Identify hottest and coldest nodes from the window statistics.
  uint64_t total = 0;
  // detlint:allow(unordered-iter) order-insensitive commutative sum
  for (const auto& [node, load] : node_load_) total += load;
  const double avg = static_cast<double>(total) / num_nodes;

  NodeId hottest = 0;
  uint64_t hottest_load = 0;
  // detlint:allow(unordered-iter) max under total order (load desc, node asc)
  for (const auto& [node, load] : node_load_) {
    if (load > hottest_load || (load == hottest_load && node < hottest)) {
      hottest = node;
      hottest_load = load;
    }
  }
  if (static_cast<double>(hottest_load) <= avg * (1.0 + config_.overload_slack)) {
    range_heat_.clear();
    node_load_.clear();
    observed_ = 0;
    return plan;
  }
  NodeId coldest = kInvalidNode;
  uint64_t coldest_load = UINT64_MAX;
  for (NodeId node = 0; node < num_nodes; ++node) {
    auto it = node_load_.find(node);
    const uint64_t load = it == node_load_.end() ? 0 : it->second;
    if (load < coldest_load) {
      coldest = node;
      coldest_load = load;
    }
  }

  // Clump construction: the hottest node's ranges, hottest first, until
  // the predicted load excess is covered (or the coldest node would
  // itself become overloaded).
  std::vector<std::pair<uint64_t, uint64_t>> hot_ranges;  // (heat, range)
  // detlint:allow(unordered-iter) collection only; sorted by total order below
  for (const auto& [range, heat] : range_heat_) {
    const Key probe = range * config_.range_size;
    if (ownership_->Owner(probe) == hottest) hot_ranges.emplace_back(heat, range);
  }
  std::sort(hot_ranges.begin(), hot_ranges.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  const auto excess = static_cast<uint64_t>(hottest_load - avg);
  uint64_t moved_heat = 0;
  uint64_t dest_load = coldest_load;
  for (const auto& [heat, range] : hot_ranges) {
    if (moved_heat >= excess) break;
    if (static_cast<double>(dest_load + heat) >
        avg * (1.0 + config_.overload_slack)) {
      continue;  // would just shift the hot spot; try a cooler clump
    }
    plan.push_back(ClumpMove{range * config_.range_size,
                             (range + 1) * config_.range_size - 1, coldest});
    moved_heat += heat;
    dest_load += heat;
  }
  if (!plan.empty()) ++plans_produced_;

  range_heat_.clear();
  node_load_.clear();
  observed_ = 0;
  return plan;
}

}  // namespace hermes::routing
