#include "obs/telemetry.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace hermes::obs {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

void Registry::RegisterCounter(std::string name,
                               std::function<uint64_t()> read) {
  counters_[std::move(name)] = std::move(read);
}

void Registry::RegisterGauge(std::string name, std::function<int64_t()> read) {
  gauges_[std::move(name)] = std::move(read);
}

void Registry::RegisterHistogram(std::string name,
                                 std::function<HistogramSnapshot()> read) {
  histograms_[std::move(name)] = std::move(read);
}

std::vector<std::pair<std::string, int64_t>> Registry::Snapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, read] : counters_) {
    out.emplace_back(name, static_cast<int64_t>(read()));
  }
  for (const auto& [name, read] : gauges_) {
    out.emplace_back(name, read());
  }
  return out;
}

std::string Registry::PrometheusText() const {
  std::string out;
  for (const auto& [name, read] : counters_) {
    Append(&out, "# TYPE %s counter\n", name.c_str());
    Append(&out, "%s %" PRIu64 "\n", name.c_str(), read());
  }
  for (const auto& [name, read] : gauges_) {
    Append(&out, "# TYPE %s gauge\n", name.c_str());
    Append(&out, "%s %" PRId64 "\n", name.c_str(), read());
  }
  for (const auto& [name, read] : histograms_) {
    const HistogramSnapshot snap = read();
    Append(&out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : snap.buckets) {
      cumulative += count;
      Append(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name.c_str(),
             bound, cumulative);
    }
    Append(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
           snap.count);
    Append(&out, "%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
    Append(&out, "%s_count %" PRIu64 "\n", name.c_str(), snap.count);
  }
  return out;
}

}  // namespace hermes::obs
