// Microbenchmarks for the routing algorithms (google-benchmark), backing
// the paper's §3.2.4 cost analysis: the prescient routing at n=20 nodes
// and b=1000 requests per batch must take only a few milliseconds of real
// CPU per batch (amortized to microseconds per transaction).

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/hermes_router.h"
#include "partition/partition_map.h"
#include "routing/calvin_router.h"
#include "routing/tpart_router.h"

namespace {

using hermes::Batch;
using hermes::ClusterConfig;
using hermes::CostModel;
using hermes::HermesConfig;
using hermes::Key;
using hermes::Rng;
using hermes::TxnRequest;

Batch MakeBatch(size_t b, uint64_t records, int reads_per_txn,
                uint64_t seed) {
  Rng rng(seed);
  Batch batch;
  batch.txns.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    TxnRequest txn;
    txn.id = i;
    for (int r = 0; r < reads_per_txn; ++r) {
      txn.read_set.push_back(rng.NextBounded(records));
    }
    txn.write_set = {txn.read_set.front()};
    batch.txns.push_back(std::move(txn));
  }
  return batch;
}

void BM_HermesRouteBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const size_t b = static_cast<size_t>(state.range(1));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  HermesConfig config;
  config.fusion_table_capacity = records / 40;
  hermes::core::HermesRouter router(&ownership, &costs, n, config);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_HermesRouteBatch)
    ->ArgsProduct({{4, 10, 20}, {100, 1000}})
    ->Unit(benchmark::kMillisecond);

void BM_CalvinRouteBatch(benchmark::State& state) {
  const int n = 20;
  const size_t b = static_cast<size_t>(state.range(0));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::routing::CalvinRouter router(&ownership, &costs, n);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_CalvinRouteBatch)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_TPartRouteBatch(benchmark::State& state) {
  const int n = 20;
  const size_t b = static_cast<size_t>(state.range(0));
  const uint64_t records = 1'000'000;
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::routing::TPartRouter router(&ownership, &costs, n);

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_TPartRouteBatch)->Arg(1000)->Unit(benchmark::kMillisecond);

// Hot-key contention: many transactions share few keys, stressing the
// reorder/reroute machinery (step 3 does the most work here).
void BM_HermesRouteBatchContended(benchmark::State& state) {
  const int n = 20;
  const size_t b = 1000;
  const uint64_t records = 1000;  // tiny key space: heavy conflicts
  CostModel costs;
  hermes::partition::OwnershipMap ownership(
      std::make_unique<hermes::partition::RangePartitionMap>(records, n));
  hermes::core::HermesRouter router(&ownership, &costs, n, HermesConfig{});

  uint64_t seed = 7;
  for (auto _ : state) {
    Batch batch = MakeBatch(b, records, 4, seed++);
    benchmark::DoNotOptimize(router.RouteBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_HermesRouteBatchContended)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
