#include "storage/lock_manager.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::storage {
namespace {

std::vector<LockRequest> Reqs(std::initializer_list<LockRequest> list) {
  return {list};
}

TEST(LockManagerTest, ImmediateGrantOnFreeKeys) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, true}, {20, false}}), &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 1u);
  EXPECT_TRUE(lm.HoldsAll(1));
}

TEST(LockManagerTest, EmptyRequestIsGrantedImmediately) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, {}, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_TRUE(lm.HoldsAll(1));
}

TEST(LockManagerTest, ExclusiveBlocksExclusive) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, true}}), &granted);
  granted.clear();
  lm.Acquire(2, Reqs({{10, true}}), &granted);
  EXPECT_TRUE(granted.empty());
  EXPECT_FALSE(lm.HoldsAll(2));

  lm.Release(1, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);
  EXPECT_TRUE(lm.HoldsAll(2));
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, false}}), &granted);
  lm.Acquire(2, Reqs({{10, false}}), &granted);
  lm.Acquire(3, Reqs({{10, false}}), &granted);
  EXPECT_EQ(granted.size(), 3u);
}

TEST(LockManagerTest, SharedDoesNotJumpExclusiveQueue) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, false}}), &granted);  // granted shared
  granted.clear();
  lm.Acquire(2, Reqs({{10, true}}), &granted);  // waits
  lm.Acquire(3, Reqs({{10, false}}), &granted);  // must wait behind 2
  EXPECT_TRUE(granted.empty());

  lm.Release(1, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);  // FIFO: exclusive first

  granted.clear();
  lm.Release(2, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 3u);
}

TEST(LockManagerTest, GrantsAllSharedPrefixOnRelease) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, true}}), &granted);
  lm.Acquire(2, Reqs({{10, false}}), &granted);
  lm.Acquire(3, Reqs({{10, false}}), &granted);
  lm.Acquire(4, Reqs({{10, true}}), &granted);
  granted.clear();

  lm.Release(1, &granted);
  ASSERT_EQ(granted.size(), 2u);  // both shared readers
  EXPECT_EQ(granted[0], 2u);
  EXPECT_EQ(granted[1], 3u);
  EXPECT_FALSE(lm.HoldsAll(4));
}

TEST(LockManagerTest, MultiKeyTxnGrantedOnlyWhenAllKeysHeld) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, true}}), &granted);
  granted.clear();
  lm.Acquire(2, Reqs({{10, true}, {20, true}}), &granted);
  EXPECT_TRUE(granted.empty());  // holds 20, waits on 10

  lm.Release(1, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 2u);
}

TEST(LockManagerTest, ReleaseOfWaitingTxnRemovesItFromQueues) {
  LockManager lm;
  std::vector<TxnId> granted;
  lm.Acquire(1, Reqs({{10, true}}), &granted);
  lm.Acquire(2, Reqs({{10, true}}), &granted);
  lm.Acquire(3, Reqs({{10, true}}), &granted);
  granted.clear();

  // Txn 2 gives up its (waiting) request; txn 3 should follow txn 1.
  lm.Release(2, &granted);
  EXPECT_TRUE(granted.empty());
  lm.Release(1, &granted);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 3u);
}

TEST(LockManagerTest, TotalOrderPreservedUnderInterleaving) {
  // Conservative ordered locking invariant: grants per key follow the
  // acquire order regardless of release interleavings.
  LockManager lm;
  std::vector<TxnId> granted;
  for (TxnId t = 1; t <= 5; ++t) {
    lm.Acquire(t, Reqs({{7, true}}), &granted);
  }
  granted.clear();
  for (TxnId t = 1; t <= 4; ++t) {
    lm.Release(t, &granted);
    ASSERT_EQ(granted.size(), t);
    EXPECT_EQ(granted.back(), t + 1);
  }
}

TEST(LockManagerTest, ManyKeysManyTxnsDrainCompletely) {
  LockManager lm;
  std::vector<TxnId> granted;
  constexpr int kTxns = 200;
  int total_granted = 0;
  for (TxnId t = 0; t < kTxns; ++t) {
    std::vector<LockRequest> reqs;
    for (Key k = t % 5; k < 20; k += 5) reqs.push_back({k, (t % 3) == 0});
    granted.clear();
    lm.Acquire(t, reqs, &granted);
    total_granted += static_cast<int>(granted.size());
  }
  // Release in order; everything must eventually be granted exactly once.
  for (TxnId t = 0; t < kTxns; ++t) {
    granted.clear();
    lm.Release(t, &granted);
    total_granted += static_cast<int>(granted.size());
  }
  EXPECT_EQ(total_granted, kTxns);
  EXPECT_EQ(lm.num_txns(), 0u);
  EXPECT_EQ(lm.num_active_keys(), 0u);
}

}  // namespace
}  // namespace hermes::storage
