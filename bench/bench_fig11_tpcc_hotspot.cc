// Reproduces Fig. 11: average TPC-C throughput (New-Order + Payment) as
// the fraction of requests concentrating on the first node's warehouses
// grows: Normal (uniform), 50%, 80%, 90%.
//
// Expected shape (paper): with the ordinary workload all systems are
// similar (warehouse partitioning is already good; Hermes pays a small
// batch-analysis overhead). As concentration grows, everything degrades,
// but Hermes and Clay — the two systems that can shed hot warehouses off
// the first node — degrade the least.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "workload/client.h"
#include "workload/tpcc.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

double RunTpcc(RouterKind kind, bool enable_clay, double concentration) {
  hermes::workload::TpccConfig tc;
  tc.num_warehouses = 16;
  tc.num_nodes = 8;
  tc.hotspot_concentration = concentration;
  hermes::workload::TpccWorkload gen(tc);

  ClusterConfig config;
  config.num_nodes = tc.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 40;  // 2.5%
  Cluster cluster(config, kind, gen.WarehousePartitioning());
  cluster.Load();
  if (enable_clay) {
    hermes::routing::ClayConfig clay;
    clay.monitor_window_us = SecToSim(2);
    // Clumps of 1/16 warehouse: small enough that moving one off the hot
    // node does not just relocate the hot spot.
    clay.range_size = gen.BlockSize() / 16;
    cluster.EnableClay(clay);
  }

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 1600, [&gen](int, SimTime now) { return gen.Next(now); });
  const SimTime horizon = SecToSim(16);
  driver.set_stop_time(horizon);
  driver.Start();
  cluster.RunUntil(horizon);
  cluster.Drain();
  return cluster.metrics().Throughput(SecToSim(6), horizon);
}

}  // namespace

int main() {
  std::printf("Fig. 11 reproduction: TPC-C (New-Order+Payment) with a "
              "hot-spot concentration on node 0\n\n");
  const std::vector<std::pair<const char*, double>> settings = {
      {"normal", 0.0}, {"50%", 0.5}, {"80%", 0.8}, {"90%", 0.9}};

  std::printf("concentration,calvin,clay,gstore,tpart,leap,hermes  "
              "(txn/s)\n");
  for (const auto& [label, conc] : settings) {
    std::printf("%s", label);
    std::printf(",%.0f", RunTpcc(RouterKind::kCalvin, false, conc));
    std::printf(",%.0f", RunTpcc(RouterKind::kCalvin, true, conc));
    std::printf(",%.0f", RunTpcc(RouterKind::kGStore, false, conc));
    std::printf(",%.0f", RunTpcc(RouterKind::kTPart, false, conc));
    std::printf(",%.0f", RunTpcc(RouterKind::kLeap, false, conc));
    std::printf(",%.0f", RunTpcc(RouterKind::kHermes, false, conc));
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: parity at normal (hermes slightly lower from "
              "batch analysis); under concentration hermes and clay "
              "degrade least\n");
  return 0;
}
