#include "engine/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/env.h"
#include "common/rng.h"
#include "obs/export.h"
#include "routing/calvin_router.h"
#include "routing/gstore_router.h"
#include "routing/leap_router.h"
#include "routing/tpart_router.h"

namespace hermes::engine {
namespace {

std::unique_ptr<routing::Router> MakeRouter(
    RouterKind kind, partition::OwnershipMap* ownership,
    const ClusterConfig& config) {
  switch (kind) {
    case RouterKind::kCalvin:
      return std::make_unique<routing::CalvinRouter>(ownership, &config.costs,
                                                     config.num_nodes);
    case RouterKind::kGStore:
      return std::make_unique<routing::GStoreRouter>(ownership, &config.costs,
                                                     config.num_nodes);
    case RouterKind::kLeap:
      return std::make_unique<routing::LeapRouter>(ownership, &config.costs,
                                                   config.num_nodes);
    case RouterKind::kTPart:
      return std::make_unique<routing::TPartRouter>(
          ownership, &config.costs, config.num_nodes, config.hermes.alpha);
    case RouterKind::kHermes:
      return std::make_unique<core::HermesRouter>(ownership, &config.costs,
                                                  config.num_nodes,
                                                  config.hermes);
  }
  return nullptr;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config, RouterKind kind,
                 std::unique_ptr<partition::PartitionMap> initial_partitioning)
    : config_(config),
      kind_(kind),
      metrics_(SecToSim(1)),
      net_(&sim_, &config_.costs, config.num_nodes),
      wire_(&sim_, &net_, &config_.costs, &config_.net, config.num_nodes),
      ownership_(std::move(initial_partitioning)),
      router_(MakeRouter(kind, &ownership_, config_)),
      lease_mgr_(config.num_nodes),
      executor_(&sim_, &wire_, &metrics_, &config_.costs, &nodes_),
      sequencer_(&sim_, &config_,
                 [this](Batch&& batch) { OnBatchSequenced(std::move(batch)); }),
      scheduler_(&sim_, router_.get(), &executor_, &command_log_, &config_,
                 [this](const TxnRequest& txn) { return ResolveCallback(txn); },
                 &digest_, &placement_digest_) {
  // Parallel simulation (DESIGN.md §5 "Parallel simulation"): one event
  // lane per node, executed by config.sim.threads real threads under an
  // epoch barrier. threads == 0 (the default) runs the identical epoch
  // schedule sequentially and is the oracle mode; HERMES_SIM_THREADS
  // overrides it so scripts can sweep thread counts without config edits.
  int sim_threads = config_.sim.threads;
  if (sim_threads == 0) {
    sim_threads = EnvReadInt("HERMES_SIM_THREADS", 0);
  }
  sim_.ConfigureLanes(config_.num_nodes, sim_threads);
  nodes_.reserve(config_.num_nodes);
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(i, &sim_, config_.workers_per_node));
  }
  sim_.set_decision_digest(&digest_);
  if (kind_ == RouterKind::kHermes) {
    static_cast<core::HermesRouter*>(router_.get())
        ->mutable_fusion_table()
        .set_digest(&digest_);
  }
  // Degraded-mode wiring. Inert while every node is alive: the candidate
  // set degenerates to active_nodes_, the batch filter takes its fast
  // path, and no executor gate fires — fault-free digests are unchanged.
  router_->set_membership(&membership_);
  scheduler_.set_batch_filter(
      [this](BatchId id, std::vector<TxnRequest>* txns) {
        ClassifyBatch(id, txns);
      });
  executor_.EnableDegraded(
      &membership_, &config_.degraded, &degraded_ledger_,
      [this](TxnRequest txn, TxnExecutor::CommitCallback cb,
             std::vector<Key> stranded) {
        OnWatchdogAbort(std::move(txn), std::move(cb), std::move(stranded));
      });
  // Observability wiring: the tracer is passive (components only write
  // into it), timestamps come from the virtual clock, and the env vars
  // keep the historical UX — HERMES_TRACE=1 records everything,
  // HERMES_TRACE_KEY=<key> mirrors one key's events to stderr.
  // Rings are pre-sized so lane-side Record() calls never grow the ring
  // vector; the clock closure reads the lane-aware virtual clock.
  tracer_.Configure(config_.obs.trace_ring_capacity,
                    static_cast<size_t>(config_.num_nodes));
  tracer_.set_clock([this] { return sim_.Now(); });
  if (config_.obs.trace_enabled) tracer_.set_enabled(true);
  if (EnvReadBool("HERMES_TRACE")) tracer_.set_enabled(true);
  if (const char* env = EnvRead("HERMES_TRACE_KEY")) {
    tracer_.set_mirror_key(std::strtoull(env, nullptr, 10));
  }
  executor_.set_tracer(&tracer_);
  scheduler_.set_tracer(&tracer_);
  if (kind_ == RouterKind::kHermes) {
    static_cast<core::HermesRouter*>(router_.get())->set_tracer(&tracer_);
  }
  // Replica-lease wiring (DESIGN.md §5 "Replica leases"). Only the Hermes
  // router grants leases; with replication disabled the manager stays
  // empty and every hook below is a no-op.
  if (replication_enabled()) {
    static_cast<core::HermesRouter*>(router_.get())
        ->EnableReplication(&config_.replication);
    executor_.set_lease_manager(&lease_mgr_);
    lease_mgr_.set_tracer(&tracer_);
  }
  if (config_.detector.enabled) {
    detector_ = std::make_unique<FailureDetector>(this, config_.detector);
  }
  RegisterTelemetry();
}

void Cluster::RegisterTelemetry() {
  // All closures read live engine state that is itself salt-invariant, so
  // TelemetryText() is byte-identical across reruns and hash salts.
  telemetry_.RegisterCounter("hermes_txn_committed_total",
                             [this] { return executor_.committed(); });
  telemetry_.RegisterCounter("hermes_txn_aborted_total",
                             [this] { return executor_.aborted(); });
  telemetry_.RegisterCounter("hermes_batches_routed_total",
                             [this] { return scheduler_.batches_routed(); });
  telemetry_.RegisterCounter("hermes_ollp_reconnaissance_total",
                             [this] { return ollp_recons_; });
  telemetry_.RegisterCounter("hermes_ollp_retries_total",
                             [this] { return ollp_retries_; });
  telemetry_.RegisterCounter("hermes_degraded_parked_total", [this] {
    return degraded_ledger_.parked_total();
  });
  telemetry_.RegisterCounter("hermes_degraded_retries_total", [this] {
    return degraded_ledger_.retries_scheduled();
  });
  telemetry_.RegisterCounter("hermes_degraded_unavailable_total", [this] {
    return degraded_ledger_.unavailable_aborts();
  });
  telemetry_.RegisterCounter("hermes_degraded_watchdog_aborts_total", [this] {
    return degraded_ledger_.watchdog_aborts();
  });
  telemetry_.RegisterCounter("hermes_degraded_reclaims_total", [this] {
    return degraded_ledger_.reclaims();
  });
  telemetry_.RegisterCounter("hermes_degraded_reships_total", [this] {
    return degraded_ledger_.reships();
  });
  telemetry_.RegisterCounter("hermes_trace_events_total",
                             [this] { return tracer_.total_recorded(); });
  telemetry_.RegisterGauge("hermes_trace_dropped", [this] {
    return static_cast<int64_t>(tracer_.total_dropped());
  });
  telemetry_.RegisterGauge("hermes_txn_inflight", [this] {
    return static_cast<int64_t>(executor_.inflight());
  });
  telemetry_.RegisterGauge("hermes_degraded_parked", [this] {
    return static_cast<int64_t>(parked_.size());
  });
  telemetry_.RegisterGauge("hermes_membership_epoch", [this] {
    return static_cast<int64_t>(membership_.epoch());
  });
  telemetry_.RegisterGauge("hermes_net_bytes_sent_total", [this] {
    return static_cast<int64_t>(net_.total_bytes());
  });
  telemetry_.RegisterGauge("hermes_net_bytes_received_total", [this] {
    return static_cast<int64_t>(net_.total_bytes_received());
  });
  telemetry_.RegisterGauge("hermes_sim_events_executed_total", [this] {
    return static_cast<int64_t>(sim_.events_executed());
  });
  telemetry_.RegisterHistogram("hermes_txn_latency_us", [this] {
    return metrics_.latency_histogram().Snapshot();
  });
  // Partition/detector metrics exist only when the detector is enabled,
  // so the existing TelemetryText goldens are unchanged for every other
  // configuration (same gating pattern as the lease metrics below).
  if (config_.detector.enabled) {
    telemetry_.RegisterCounter("hermes_partition_cuts_total",
                               [this] { return partitions_cut_; });
    telemetry_.RegisterCounter("hermes_partition_heals_total",
                               [this] { return partitions_healed_; });
    telemetry_.RegisterCounter("hermes_partition_messages_held_total",
                               [this] { return net_.total_held(); });
    telemetry_.RegisterGauge("hermes_partition_messages_held", [this] {
      return static_cast<int64_t>(net_.messages_held());
    });
    telemetry_.RegisterCounter("hermes_detector_heartbeat_misses_total", [this] {
      return detector_->heartbeat_misses();
    });
    telemetry_.RegisterCounter("hermes_detector_suspects_total",
                               [this] { return detector_->suspects(); });
    telemetry_.RegisterCounter("hermes_detector_restores_total",
                               [this] { return detector_->restores(); });
  }
  // Wire-substrate metrics exist only when the substrate is enabled, so
  // the existing TelemetryText goldens are unchanged for every other
  // configuration (same gating pattern as the detector metrics above).
  if (config_.net.enabled) {
    telemetry_.RegisterCounter("hermes_wire_envelopes_total",
                               [this] { return wire_.envelopes_sent(); });
    telemetry_.RegisterCounter("hermes_wire_coalesced_messages_total", [this] {
      return wire_.coalesced_messages();
    });
    telemetry_.RegisterCounter("hermes_wire_fg_transmits_total", [this] {
      return wire_.transmits(TrafficClass::kForeground);
    });
    telemetry_.RegisterCounter("hermes_wire_bulk_transmits_total", [this] {
      return wire_.transmits(TrafficClass::kBulk);
    });
    telemetry_.RegisterCounter("hermes_wire_credit_stalls_total",
                               [this] { return wire_.credit_stalls(); });
    telemetry_.RegisterGauge("hermes_wire_queued", [this] {
      return static_cast<int64_t>(wire_.queued_now());
    });
    telemetry_.RegisterGauge("hermes_net_fg_bytes_sent_total", [this] {
      return static_cast<int64_t>(
          net_.class_bytes_sent(TrafficClass::kForeground));
    });
    telemetry_.RegisterGauge("hermes_net_bulk_bytes_sent_total", [this] {
      return static_cast<int64_t>(net_.class_bytes_sent(TrafficClass::kBulk));
    });
    telemetry_.RegisterHistogram("hermes_wire_fg_queue_delay_us", [this] {
      return wire_.MergedQueueDelay(TrafficClass::kForeground).Snapshot();
    });
    telemetry_.RegisterHistogram("hermes_wire_bulk_queue_delay_us", [this] {
      return wire_.MergedQueueDelay(TrafficClass::kBulk).Snapshot();
    });
  }
  if (kind_ == RouterKind::kHermes) {
    const auto* router = static_cast<const core::HermesRouter*>(router_.get());
    telemetry_.RegisterGauge("hermes_fusion_table_size", [router] {
      return static_cast<int64_t>(router->fusion_table().size());
    });
    telemetry_.RegisterCounter("hermes_router_routed_txns_total", [router] {
      return router->stats().routed_txns;
    });
    telemetry_.RegisterCounter("hermes_router_remote_reads_total", [router] {
      return router->stats().remote_reads;
    });
    telemetry_.RegisterCounter("hermes_router_migrations_total", [router] {
      return router->stats().migrations;
    });
    telemetry_.RegisterCounter("hermes_router_evictions_total", [router] {
      return router->stats().evictions;
    });
    telemetry_.RegisterCounter("hermes_router_reroutes_total", [router] {
      return router->stats().reroutes;
    });
    telemetry_.RegisterCounter("hermes_router_reorders_total", [router] {
      return router->stats().reorders;
    });
    // Lease metrics exist only when replication is on, so the existing
    // TelemetryText goldens are unchanged for every other configuration.
    if (config_.replication.enabled) {
      telemetry_.RegisterCounter("hermes_replica_reads_total", [router] {
        return router->stats().replica_reads;
      });
      telemetry_.RegisterCounter("hermes_lease_grants_total", [router] {
        return router->lease_table().stats().grants;
      });
      telemetry_.RegisterCounter("hermes_lease_revokes_total", [router] {
        return router->lease_table().stats().revokes;
      });
      telemetry_.RegisterCounter("hermes_lease_lapses_total", [router] {
        return router->lease_table().stats().lapses;
      });
      telemetry_.RegisterCounter("hermes_replica_installs_total",
                                 [this] { return lease_mgr_.installs(); });
      telemetry_.RegisterCounter("hermes_replica_updates_total",
                                 [this] { return lease_mgr_.updates(); });
      telemetry_.RegisterCounter("hermes_replica_stale_drops_total",
                                 [this] { return lease_mgr_.stale_drops(); });
      telemetry_.RegisterGauge("hermes_replica_copies", [this] {
        return static_cast<int64_t>(lease_mgr_.num_copies());
      });
      telemetry_.RegisterGauge("hermes_leases_active", [this] {
        return static_cast<int64_t>(lease_mgr_.num_leased_keys());
      });
    }
  }
}

void Cluster::Load() {
  for (Key k = 0; k < config_.num_records; ++k) {
    const NodeId owner = ownership_.Owner(k);
    assert(owner >= 0 && owner < num_nodes());
    storage::Record record;
    record.value = Mix64(k);
    nodes_[owner]->store().Insert(k, record);
  }
}

void Cluster::Submit(TxnRequest txn, TxnExecutor::CommitCallback on_commit) {
  txn.submit_time = sim_.Now();
  if (txn.requires_reconnaissance && txn.kind == TxnKind::kRegular) {
    SubmitWithReconnaissance(std::move(txn), std::move(on_commit));
    return;
  }
  SubmitSequenced(std::move(txn), std::move(on_commit));
}

void Cluster::SubmitSequenced(TxnRequest txn,
                              TxnExecutor::CommitCallback on_commit) {
  // One network hop from the client to its sequencer.
  sim_.Schedule(config_.costs.net_latency_us,
                [this, txn = std::move(txn),
                 cb = std::move(on_commit)]() mutable {
                  const TxnId id = sequencer_.next_txn_id();
                  sequencer_.Submit(std::move(txn));
                  if (cb) pending_callbacks_[id] = std::move(cb);
                });
}

void Cluster::SubmitWithReconnaissance(
    TxnRequest txn, TxnExecutor::CommitCallback on_commit) {
  // OLLP (§2.1): a low-isolation reconnaissance read against the current
  // owners of the read-set discovers the lock locations before the
  // transaction enters the total order. The probe costs one network round
  // trip plus real storage work on every probed node.
  ++ollp_recons_;
  if (ollp_rng_ == nullptr) {
    ollp_rng_ = std::make_unique<Rng>(Mix64(config_.seed ^ 0x011f0llu));
  }
  std::map<NodeId, size_t> probed;
  for (Key k : txn.read_set) ++probed[ownership_.Owner(k)];
  SimTime max_probe = 0;
  for (const auto& [node, keys] : probed) {
    const SimTime start = nodes_[node]->workers().Submit(
        config_.costs.storage_op_us * keys, [] {});
    max_probe = std::max(max_probe,
                         start + config_.costs.storage_op_us * keys -
                             sim_.Now());
  }
  const bool stale = ollp_rng_->NextDouble() < config_.ollp_stale_prob;
  const SimTime probe_done = 2 * config_.costs.net_latency_us + max_probe;
  sim_.Schedule(probe_done, [this, txn = std::move(txn),
                             cb = std::move(on_commit), stale]() mutable {
    txn.requires_reconnaissance = false;
    if (!stale) {
      SubmitSequenced(std::move(txn), std::move(cb));
      return;
    }
    // Stale prediction: the first attempt deterministically aborts (it
    // still executes and migrates per plan), then the corrected request
    // is resubmitted and its commit completes the client's call.
    ++ollp_retries_;
    TxnRequest first = txn;
    first.user_abort = true;
    SubmitSequenced(std::move(first),
                    [this, txn = std::move(txn),
                     cb = std::move(cb)](const TxnResult&) mutable {
                      SubmitSequenced(std::move(txn), std::move(cb));
                    });
  });
}

void Cluster::OnBatchSequenced(Batch&& batch) {
  // Membership transitions anchor to the next batch id so the replay
  // cursor applies them at the same point in the total order.
  next_expected_batch_ = batch.id + 1;
  HERMES_TRACE(&tracer_, obs::EventKind::kBatchSequenced, kInvalidNode,
               batch.id, static_cast<Key>(-1), batch.txns.size());
  if (batch_tap_) batch_tap_(batch);
  if (clay_) {
    for (const TxnRequest& txn : batch.txns) {
      if (txn.kind == TxnKind::kRegular) clay_->Observe(txn);
    }
  }
  scheduler_.OnBatch(std::move(batch));
}

void Cluster::InjectBatch(const Batch& batch) {
  Batch copy = batch;
  scheduler_.OnBatch(std::move(copy));
}

TxnExecutor::CommitCallback Cluster::ResolveCallback(const TxnRequest& txn) {
  auto it = pending_callbacks_.find(txn.id);
  if (it == pending_callbacks_.end()) return nullptr;
  TxnExecutor::CommitCallback cb = std::move(it->second);
  pending_callbacks_.erase(it);
  return cb;
}

void Cluster::SampleWindow() {
  const SimTime stamp = sim_.Now() == 0 ? 0 : sim_.Now() - 1;
  uint64_t busy = 0;
  for (auto& node : nodes_) busy += node->workers().TakeBusyDelta();
  metrics_.RecordBusy(stamp, busy);
  static_assert(sizeof(uint64_t) == 8);
  const uint64_t total = net_.total_bytes();
  metrics_.RecordNetBytes(stamp, total - sampled_net_bytes_);
  sampled_net_bytes_ = total;
  const uint64_t received = net_.total_bytes_received();
  metrics_.RecordNetBytesReceived(stamp, received - sampled_net_recv_bytes_);
  sampled_net_recv_bytes_ = received;
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    const auto cls = static_cast<TrafficClass>(c);
    const uint64_t class_total = net_.class_bytes_sent(cls);
    metrics_.RecordNetClassBytes(stamp, cls,
                                 class_total - sampled_net_class_bytes_[c]);
    sampled_net_class_bytes_[c] = class_total;
  }
  metrics_.RecordDecisionDigest(stamp, digest_.value());
}

void Cluster::RunUntil(SimTime deadline) {
  const SimTime window = metrics_.window_us();
  while (sim_.Now() < deadline) {
    const SimTime next = std::min(deadline, ((sim_.Now() / window) + 1) * window);
    sim_.RunUntil(next);
    if (clay_) {
      const auto plan =
          clay_->MaybePlan(sim_.Now(), router_->num_active_nodes());
      if (!plan.empty()) SubmitMigrationPlan(plan, /*replace_pending=*/true);
    }
    SampleWindow();
  }
}

SimTime Cluster::Drain() {
  sim_.RunAll();
  SampleWindow();
  return sim_.Now();
}

TxnRequest Cluster::MakeChunkTxn(Key lo, Key hi, NodeId target) const {
  TxnRequest txn;
  txn.kind = TxnKind::kChunkMigration;
  txn.migration_target = target;
  txn.write_set.reserve(hi - lo + 1);
  for (Key k = lo; k <= hi; ++k) txn.write_set.push_back(k);
  return txn;
}

void Cluster::SubmitMigrationPlan(
    const std::vector<routing::ClumpMove>& moves, bool replace_pending) {
  if (replace_pending) chunk_queue_.clear();
  const uint64_t chunk = std::max<uint64_t>(config_.migration_chunk_records, 1);
  for (const routing::ClumpMove& mv : moves) {
    for (Key lo = mv.lo; lo <= mv.hi;) {
      const Key hi = std::min(mv.hi, lo + chunk - 1);
      chunk_queue_.push_back(MakeChunkTxn(lo, hi, mv.target));
      if (hi == mv.hi) break;
      lo = hi + 1;
    }
  }
  SubmitNextChunk();
}

void Cluster::SubmitNextChunk() {
  if (chunk_in_flight_ || chunk_queue_.empty()) return;
  chunk_in_flight_ = true;
  TxnRequest txn = std::move(chunk_queue_.front());
  chunk_queue_.pop_front();
  HERMES_TRACE(&tracer_, obs::EventKind::kChunkMigration,
               txn.migration_target, kInvalidTxn,
               txn.write_set.empty() ? static_cast<Key>(-1)
                                     : txn.write_set.front(),
               txn.write_set.size());
  Submit(std::move(txn), [this](const TxnResult&) {
    chunk_in_flight_ = false;
    SubmitNextChunk();
  });
}

void Cluster::EnableClay(const routing::ClayConfig& clay_config) {
  clay_config_ = clay_config;
  clay_ = std::make_unique<routing::ClayPlanner>(
      &ownership_, config_.num_records, clay_config);
}

NodeId Cluster::AddNode(const std::vector<RangeMove>& cold_plan,
                        bool migrate_cold) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  sim_.EnsureLanes(id + 1);
  tracer_.EnsureNode(id);
  nodes_.push_back(std::make_unique<Node>(id, &sim_, config_.workers_per_node));
  net_.EnsureCapacity(id + 1);
  wire_.GrowLinks(id + 1);
  lease_mgr_.EnsureNode(id);

  TxnRequest marker;
  marker.kind = TxnKind::kAddNode;
  marker.migration_target = id;
  marker.range_moves = cold_plan;
  Submit(std::move(marker));

  if (migrate_cold) {
    std::vector<routing::ClumpMove> moves;
    moves.reserve(cold_plan.size());
    for (const RangeMove& mv : cold_plan) {
      moves.push_back(routing::ClumpMove{mv.lo, mv.hi, mv.target});
    }
    SubmitMigrationPlan(moves);
  }
  return id;
}

void Cluster::RemoveNode(NodeId node, const std::vector<RangeMove>& cold_plan,
                         bool migrate_cold) {
  TxnRequest marker;
  marker.kind = TxnKind::kRemoveNode;
  marker.migration_target = node;
  marker.range_moves = cold_plan;
  Submit(std::move(marker));

  if (migrate_cold) {
    std::vector<routing::ClumpMove> moves;
    moves.reserve(cold_plan.size());
    for (const RangeMove& mv : cold_plan) {
      moves.push_back(routing::ClumpMove{mv.lo, mv.hi, mv.target});
    }
    SubmitMigrationPlan(moves);
  }
}

storage::Checkpoint Cluster::TakeCheckpoint() const {
  // Quiescence: nothing executing and no event in flight. Requests pending
  // at a paused sequencer are legitimately excluded — they have not entered
  // the total order yet, so batches sequenced after this checkpoint cover
  // them (the fault injector checkpoints mid-run with intake paused).
  assert(executor_.inflight() == 0 &&
         (sequencer_.pending() == 0 || sequencer_.paused()) && sim_.idle() &&
         "checkpoints must be taken at quiescence");
  storage::Checkpoint cp;
  cp.next_batch = sequencer_.next_batch_id();
  cp.next_txn_id = sequencer_.next_txn_id();
  cp.stores.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    cp.stores.push_back(node->store().records());
  }
  cp.ownership_overlay = ownership_.key_overlay();
  cp.intervals = ownership_.ExportIntervals();
  cp.active_nodes = router_->active_nodes();
  if (kind_ == RouterKind::kHermes) {
    cp.fusion_order =
        static_cast<const core::HermesRouter*>(router_.get())
            ->fusion_table()
            .ExportOrder();
  }
  return cp;
}

void Cluster::RestoreFromCheckpoint(const storage::Checkpoint& checkpoint) {
  while (nodes_.size() < checkpoint.stores.size()) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    sim_.EnsureLanes(id + 1);
    tracer_.EnsureNode(id);
    lease_mgr_.EnsureNode(id);
    nodes_.push_back(
        std::make_unique<Node>(id, &sim_, config_.workers_per_node));
  }
  net_.EnsureCapacity(static_cast<int>(nodes_.size()));
  wire_.GrowLinks(static_cast<int>(nodes_.size()));
  // Leases are soft state: checkpoints capture only primaries, so a
  // restore starts with no copies and no lease bookkeeping — the router
  // re-grants from fresh counters during replay, exactly as the live run
  // did from its own start.
  if (replication_enabled()) {
    lease_mgr_.LapseAll();
    static_cast<core::HermesRouter*>(router_.get())->ResetReplication();
  }
  for (size_t i = 0; i < checkpoint.stores.size(); ++i) {
    for (const auto& [key, record] : checkpoint.stores[i]) {
      nodes_[i]->store().Insert(key, record);
    }
  }
  ownership_.RestoreKeyOverlay(checkpoint.ownership_overlay);
  ownership_.RestoreIntervals(checkpoint.intervals);
  router_->RestoreActiveNodes(checkpoint.active_nodes);
  if (kind_ == RouterKind::kHermes) {
    static_cast<core::HermesRouter*>(router_.get())
        ->mutable_fusion_table()
        .Restore(checkpoint.ownership_overlay, checkpoint.fusion_order);
  }
  sequencer_.RestoreCounters(checkpoint.next_batch, checkpoint.next_txn_id);
}

void Cluster::ReplayBatches(const std::vector<Batch>& batches) {
  replaying_ = true;
  for (const Batch& batch : batches) {
    // Degraded schedule: membership transitions and stranded sets recorded
    // against this point in the total order apply before the batch routes.
    ApplyScheduledEventsBefore(batch.id);
    // Physical nodes referenced by provisioning markers must exist before
    // the marker is routed.
    for (const TxnRequest& txn : batch.txns) {
      if (txn.kind == TxnKind::kAddNode &&
          txn.migration_target >= num_nodes()) {
        while (num_nodes() <= txn.migration_target) {
          const NodeId id = static_cast<NodeId>(nodes_.size());
          sim_.EnsureLanes(id + 1);
          tracer_.EnsureNode(id);
          lease_mgr_.EnsureNode(id);
          nodes_.push_back(
              std::make_unique<Node>(id, &sim_, config_.workers_per_node));
        }
        net_.EnsureCapacity(num_nodes());
        wire_.GrowLinks(num_nodes());
      }
    }
    Batch copy = batch;
    scheduler_.OnBatch(std::move(copy));
    sim_.RunAll();
  }
  // Trailing events (e.g. the final rejoin, which releases the parked
  // queue) land after the last logged batch.
  ApplyScheduledEventsBefore(~BatchId{0});
  sim_.RunAll();
  replaying_ = false;
}

uint64_t Cluster::StateChecksum() const {
  uint64_t sum = 0;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    // detlint:allow(unordered-iter) order-insensitive XOR fold, not a decision
    for (const auto& [key, r] : nodes_[node]->store().records()) {
      sum ^= Mix64(Mix64(key) ^ r.value ^
                   (static_cast<uint64_t>(r.version) << 32) ^
                   Mix64(node + 1));
    }
  }
  return sum;
}

uint64_t Cluster::ContentChecksum() const {
  uint64_t sum = 0;
  for (const auto& node : nodes_) sum ^= node->store().Checksum();
  return sum;
}

int Cluster::total_workers() const {
  int total = 0;
  for (const auto& node : nodes_) total += node->workers().num_workers();
  return total;
}

const core::FusionTable* Cluster::fusion_table() const {
  if (kind_ != RouterKind::kHermes) return nullptr;
  return &static_cast<const core::HermesRouter*>(router_.get())
              ->fusion_table();
}

// --- Degraded mode (no-stall crash handling). ---

void Cluster::CrashNoStall(NodeId node) {
  assert(membership_.alive(node) && "node is already down");
  assert(!replaying_ && "replay applies the recorded schedule instead");
  membership_.MarkDown(node);
  degraded_schedule_.events.push_back(
      MembershipEvent{next_expected_batch_, node, /*alive=*/false,
                      membership_.epoch(), degraded_seq_++});
  HERMES_TRACE(&tracer_, obs::EventKind::kCrash, node, kInvalidTxn,
               static_cast<Key>(-1), membership_.epoch());
  // Every replica lease lapses at the membership transition: copies at the
  // dead node are gone, and surviving holders must not serve reads the
  // router no longer routes to them. Waking copy-waiters is safe — a
  // lapsed replica read degrades to a plain local read (reads are
  // cost-model only). The router's LeaseTable lapses itself at the next
  // batch boundary off the epoch change; both are pure functions of the
  // membership schedule.
  lease_mgr_.LapseAll();
  executor_.OnNodeDown(node);
}

void Cluster::RejoinNoStall(NodeId node) {
  assert(!membership_.alive(node) && "node is not down");
  assert(!replaying_ && "replay applies the recorded schedule instead");
  membership_.MarkUp(node);
  degraded_schedule_.events.push_back(
      MembershipEvent{next_expected_batch_, node, /*alive=*/true,
                      membership_.epoch(), degraded_seq_++});
  HERMES_TRACE(&tracer_, obs::EventKind::kRejoin, node, kInvalidTxn,
               static_cast<Key>(-1), membership_.epoch());
  // Leases lapse again (epoch changed): stale copies granted under the
  // degraded membership must not survive into the healed cluster. The
  // router re-grants from fresh counters at the next batch boundary.
  lease_mgr_.LapseAll();
  // Order matters: suppressed shipments flush first (their records land
  // where ownership points), then divergent records reship, and only then
  // does the parked queue route — so a released chunk migration finds
  // every record where the ownership map says it is (or inbound, which a
  // presence wait covers).
  executor_.OnNodeUp(node);
  ReconcileDisplaced();
  stranded_.clear();
  ReleaseParked();
}

// --- Partitions & failure detection (DESIGN.md §5). ---

void Cluster::PartitionCut(NodeId node, bool cut_inbound, bool cut_outbound) {
  assert(node >= 0 && node < num_nodes());
  assert((cut_inbound || cut_outbound) && "a cut must sever something");
  assert(!replaying_ && "replay applies the recorded schedule instead");
  for (NodeId peer = 0; peer < num_nodes(); ++peer) {
    if (peer == node) continue;
    // Cut the fabric first, then drain the wire substrate's transmit
    // queue (and any open envelope) into the link's holding pen: the
    // drained sends see the live cut and park in FIFO order, so a queue
    // that was non-empty at cut time survives the partition intact.
    if (cut_inbound) {
      net_.CutLink(peer, node);
      wire_.OnLinkCut(peer, node);
    }
    if (cut_outbound) {
      net_.CutLink(node, peer);
      wire_.OnLinkCut(node, peer);
    }
  }
  ++partitions_cut_;
  HERMES_TRACE(&tracer_, obs::EventKind::kPartitionCut, node, kInvalidTxn,
               static_cast<Key>(-1),
               static_cast<uint64_t>((cut_inbound ? 1 : 0) |
                                     (cut_outbound ? 2 : 0)));
  // The cut itself changes nothing above the network layer; the detector
  // notices the silence and degrades membership after its miss threshold.
  ArmDetector(0);
}

void Cluster::PartitionHeal(NodeId node) {
  assert(node >= 0 && node < num_nodes());
  assert(!replaying_ && "replay applies the recorded schedule instead");
  const uint64_t held_before = net_.messages_held();
  for (NodeId peer = 0; peer < num_nodes(); ++peer) {
    if (peer == node) continue;
    net_.HealLink(peer, node);
    net_.HealLink(node, peer);
  }
  ++partitions_healed_;
  HERMES_TRACE(&tracer_, obs::EventKind::kPartitionHeal, node, kInvalidTxn,
               static_cast<Key>(-1), held_before - net_.messages_held());
  // Membership restoration is the detector's job (confirm hysteresis),
  // not the heal's: the cut and the suspicion are separate facts.
}

void Cluster::ArmDetector(SimTime active_until) {
  if (detector_) detector_->Arm(active_until);
}

void Cluster::SetReplayMembershipSchedule(const DegradedSchedule& schedule) {
  assert(degraded_schedule_.empty() && "schedule already installed");
  degraded_schedule_ = schedule;
  for (const AbortRecord& r : schedule.aborts) {
    replay_abort_ids_.insert(r.txn);
  }
}

bool Cluster::KeyBlocked(Key key) const {
  return !membership_.alive(ownership_.Owner(key)) ||
         (!stranded_.empty() && stranded_.contains(key));
}

// First blocked key of `txn` (read set, then write set) for trace events;
// Key(-1) when the block is membership-wide rather than key-specific.
Key Cluster::BlockingKey(const TxnRequest& txn) const {
  for (Key k : txn.read_set) {
    if (KeyBlocked(k)) return k;
  }
  for (Key k : txn.write_set) {
    if (KeyBlocked(k)) return k;
  }
  return static_cast<Key>(-1);
}

bool Cluster::TxnBlocked(const TxnRequest& txn) const {
  switch (txn.kind) {
    case TxnKind::kRegular:
      for (Key k : txn.read_set) {
        if (KeyBlocked(k)) return true;
      }
      for (Key k : txn.write_set) {
        if (KeyBlocked(k)) return true;
      }
      return false;
    case TxnKind::kChunkMigration:
      if (!membership_.alive(txn.migration_target)) return true;
      for (Key k : txn.write_set) {
        if (KeyBlocked(k)) return true;
      }
      return false;
    case TxnKind::kRemoveNode:
      // Decommissioning during an outage would re-home ranges with a
      // stale view; park it until the membership is whole again.
      return membership_.any_down();
    case TxnKind::kAddNode:
      return false;
  }
  return false;
}

void Cluster::ClassifyBatch(BatchId /*id*/, std::vector<TxnRequest>* txns) {
  const bool flip_aborts = !replay_abort_ids_.empty();
  if (!flip_aborts && !membership_.any_down() && stranded_.empty()) return;

  std::vector<TxnRequest> keep;
  keep.reserve(txns->size());
  for (TxnRequest& txn : *txns) {
    // Replay of a recorded watchdog abort: the transaction was dispatched
    // live (its batch preceded the crash), so here — where the membership
    // event has not applied yet — it routes identically and executes as a
    // §4.2 user abort: writes roll back, planned migrations still happen.
    // MixPlacement does not digest user_abort, so placements align.
    if (flip_aborts && replay_abort_ids_.contains(txn.id)) {
      txn.user_abort = true;
    }
    if (!TxnBlocked(txn)) {
      keep.push_back(std::move(txn));
      continue;
    }
    const uint32_t epoch = membership_.epoch();
    if (txn.kind == TxnKind::kRegular) {
      if (replaying_) continue;  // its retry appears later in the log
      TxnExecutor::CommitCallback cb = ResolveCallback(txn);
      ScheduleRetryOrFail(std::move(txn), std::move(cb), epoch);
    } else {
      // Chunk migrations and provisioning markers park: they are not
      // client-visible and must run exactly once, after the outage.
      HERMES_TRACE(&tracer_, obs::EventKind::kPark, kInvalidNode, txn.id,
                   BlockingKey(txn), epoch);
      degraded_ledger_.RecordPark(txn.id, epoch);
      parked_.push_back(ParkedTxn{std::move(txn), epoch});
    }
  }
  *txns = std::move(keep);
}

SimTime Cluster::RetryDelay(TxnId retry_of, uint32_t attempt) const {
  const DegradedConfig& d = config_.degraded;
  const SimTime backoff =
      std::min(d.retry_backoff_base_us << attempt, d.retry_backoff_cap_us);
  const SimTime jitter =
      d.retry_jitter_us == 0
          ? 0
          : Mix64(retry_of ^ (0x9e3779b97f4a7c15ULL * (attempt + 1))) %
                (d.retry_jitter_us + 1);
  return backoff + jitter;
}

void Cluster::ScheduleRetryOrFail(TxnRequest txn,
                                  TxnExecutor::CommitCallback cb,
                                  uint32_t epoch) {
  const TxnId blocked_id = txn.id;
  const TxnId retry_of =
      txn.retry_of != kInvalidTxn ? txn.retry_of : txn.id;
  if (txn.attempt >= config_.degraded.max_retries) {
    // Attempts exhausted: a deterministic UNAVAILABLE abort reaches the
    // client one network hop from now. The transaction performed no
    // writes (it never dispatched, or was UNDO-aborted un-acked), so
    // dropping it loses nothing.
    HERMES_TRACE(&tracer_, obs::EventKind::kUnavailable, kInvalidNode,
                 blocked_id, BlockingKey(txn), txn.attempt);
    degraded_ledger_.RecordRetry(
        RetryRecord{blocked_id, retry_of, txn.attempt, epoch, 0, true});
    TxnResult result;
    result.id = blocked_id;
    result.aborted = true;
    sim_.Schedule(config_.costs.net_latency_us,
                  [cb = std::move(cb), result]() {
                    if (cb) cb(result);
                  });
    return;
  }
  const SimTime delay = RetryDelay(retry_of, txn.attempt);
  HERMES_TRACE_SPAN(&tracer_, obs::EventKind::kRetry, kInvalidNode,
                    blocked_id, BlockingKey(txn), sim_.Now(), delay,
                    txn.attempt);
  degraded_ledger_.RecordRetry(
      RetryRecord{blocked_id, retry_of, txn.attempt, epoch, delay, false});
  txn.attempt += 1;
  txn.retry_of = retry_of;
  sim_.Schedule(delay, [this, txn = std::move(txn),
                        cb = std::move(cb)]() mutable {
    txn.submit_time = sim_.Now();
    const TxnId new_id = sequencer_.next_txn_id();
    sequencer_.Submit(std::move(txn));
    if (cb) pending_callbacks_[new_id] = std::move(cb);
  });
}

void Cluster::OnWatchdogAbort(TxnRequest txn, TxnExecutor::CommitCallback cb,
                              std::vector<Key> stranded) {
  assert(!replaying_ &&
         "replay drains each batch fully, so nothing freezes mid-flight");
  AbortRecord rec;
  rec.from_batch = next_expected_batch_;
  rec.txn = txn.id;
  rec.stranded = stranded;
  rec.seq = degraded_seq_++;
  degraded_schedule_.aborts.push_back(std::move(rec));
  if (HERMES_TRACE_ACTIVE(&tracer_)) {
    for (Key k : stranded) {
      tracer_.Record(obs::EventKind::kStranded, kInvalidNode, txn.id, k);
    }
  }
  for (Key k : stranded) stranded_.insert(k);
  const uint32_t epoch = membership_.epoch();
  if (txn.kind == TxnKind::kRegular) {
    ScheduleRetryOrFail(std::move(txn), std::move(cb), epoch);
    return;
  }
  // An aborted chunk migration reports failure so the chunk chain keeps
  // moving; the re-cut happens naturally — the next chunk parks at
  // classification, and records this chunk left behind are reshipped at
  // rejoin reconciliation.
  TxnResult result;
  result.id = txn.id;
  result.aborted = true;
  sim_.Schedule(config_.costs.net_latency_us,
                [cb = std::move(cb), result]() {
                  if (cb) cb(result);
                });
}

void Cluster::ReconcileDisplaced() {
  const std::map<Key, NodeId> displaced = executor_.TakeDisplaced();
  for (const auto& [key, loc] : displaced) {
    const NodeId owner = ownership_.Owner(key);
    if (owner == loc) continue;  // ownership drifted back to the record
    executor_.ReshipRecord(key, loc, owner);
  }
}

void Cluster::ReleaseParked() {
  if (parked_.empty()) return;
  std::vector<TxnRequest> txns;
  txns.reserve(parked_.size());
  for (ParkedTxn& p : parked_) txns.push_back(std::move(p.txn));
  parked_.clear();
  scheduler_.RouteParked(next_expected_batch_, std::move(txns));
}

void Cluster::ApplyScheduledEventsBefore(BatchId id) {
  const auto& events = degraded_schedule_.events;
  const auto& aborts = degraded_schedule_.aborts;
  while (true) {
    const bool abort_ready =
        replay_abort_cursor_ < aborts.size() &&
        aborts[replay_abort_cursor_].from_batch <= id;
    const bool event_ready =
        replay_event_cursor_ < events.size() &&
        events[replay_event_cursor_].from_batch <= id;
    if (!abort_ready && !event_ready) return;
    // Both streams carry a shared seq stamp: several aborts and events can
    // anchor to the same from_batch (a watchdog sweep between detector
    // flaps), and whether an abort strands its keys before or after a
    // rejoin clears the set is observable — merge in recorded order.
    const uint64_t ab = abort_ready ? aborts[replay_abort_cursor_].seq
                                    : ~uint64_t{0};
    const uint64_t ev = event_ready ? events[replay_event_cursor_].seq
                                    : ~uint64_t{0};
    if (abort_ready && ab <= ev) {
      // Stranded keys block the same touchers the live run blocked. (The
      // flipped abort itself already executed — its migrations landed —
      // but classification must match the live transcript, and the
      // rejoin event below clears the set just as the live rejoin did.)
      for (Key k : aborts[replay_abort_cursor_].stranded) {
        stranded_.insert(k);
      }
      ++replay_abort_cursor_;
      continue;
    }
    const MembershipEvent& e = events[replay_event_cursor_];
    ++replay_event_cursor_;
    if (!e.alive) {
      membership_.MarkDown(e.node);
      // Replay mirrors the live CrashNoStall: leases lapse at the same
      // point in the total order, so the router's grant stream — and with
      // it placement_digest — matches the live run.
      lease_mgr_.LapseAll();
    } else {
      membership_.MarkUp(e.node);
      lease_mgr_.LapseAll();
      // Mirror the live rejoin path: the recorded schedule flips the
      // shared membership view, so replay's executor runs the same
      // dead-node gates as live — its suppressed shipments must flush and
      // its stalled machines must resume here too, or transactions that
      // froze during replay (the flip timing differs from live, so the
      // frozen sets differ) would wedge instead of converging to the
      // same final state. Watchdog aborts are NOT re-derived: the
      // recorded abort stream already replays them as §4.2 user-aborts.
      executor_.OnNodeUp(e.node);
      ReconcileDisplaced();
      stranded_.clear();
      ReleaseParked();
    }
  }
}

std::string Cluster::DegradedDebugString() const {
  std::string out = membership_.DebugString();
  out += "\n";
  out += degraded_ledger_.DebugString();
  char buf[128];
  for (const ParkedTxn& p : parked_) {
    std::snprintf(buf, sizeof(buf),
                  "parked txn=%llu kind=%d attempt=%u epoch=%u\n",
                  static_cast<unsigned long long>(p.txn.id),
                  static_cast<int>(p.txn.kind), p.txn.attempt, p.epoch);
    out += buf;
  }
  for (Key k : stranded_) {
    std::snprintf(buf, sizeof(buf), "stranded key=%llu\n",
                  static_cast<unsigned long long>(k));
    out += buf;
  }
  if (replication_enabled()) out += lease_mgr_.DebugString();
  if (net_.any_cut() || net_.total_held() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "partition: any_cut=%d held=%llu held_total=%llu "
                  "cut_deliveries=%llu cuts=%llu heals=%llu\n",
                  net_.any_cut() ? 1 : 0,
                  static_cast<unsigned long long>(net_.messages_held()),
                  static_cast<unsigned long long>(net_.total_held()),
                  static_cast<unsigned long long>(net_.cut_deliveries()),
                  static_cast<unsigned long long>(partitions_cut_),
                  static_cast<unsigned long long>(partitions_healed_));
    out += buf;
  }
  if (detector_) out += detector_->DebugString();
  return out;
}

std::string Cluster::TraceJson() const {
  return obs::ChromeTraceJson(tracer_, config_.workers_per_node);
}

bool Cluster::DumpTrace(const std::string& path) const {
  return obs::WriteChromeTrace(tracer_, path, config_.workers_per_node);
}

}  // namespace hermes::engine
