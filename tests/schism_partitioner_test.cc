#include "routing/schism_partitioner.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hermes::routing {
namespace {

TxnRequest TxnOn(std::vector<Key> keys) {
  TxnRequest txn;
  txn.read_set = keys;
  txn.write_set = {keys.front()};
  return txn;
}

TEST(SchismPartitionerTest, CoAccessedRangesColocate) {
  SchismPartitioner schism(2000, /*range_size=*/100);
  // Background uniform traffic keeps vertex weights balanced enough that
  // the co-access structure (0 with 9, 1 with 2) decides placement.
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    schism.Observe(TxnOn({rng.NextBounded(2000), rng.NextBounded(2000)}));
  }
  for (int i = 0; i < 200; ++i) {
    schism.Observe(TxnOn({5, 1905}));
    schism.Observe(TxnOn({205, 405}));
  }
  auto map = schism.Partition(4);
  EXPECT_EQ(map->Owner(5), map->Owner(1905));
  EXPECT_EQ(map->Owner(205), map->Owner(405));
  EXPECT_EQ(map->num_partitions(), 4);
}

TEST(SchismPartitionerTest, BalancesAccessWeight) {
  SchismPartitioner schism(1000, 100);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Key a = rng.NextBounded(1000);
    const Key b = rng.NextBounded(1000);
    schism.Observe(TxnOn({a, b}));
  }
  auto map = schism.Partition(4);
  std::vector<int> ranges_per(4, 0);
  for (Key r = 0; r < 10; ++r) ++ranges_per[map->Owner(r * 100)];
  // With uniform weights, no partition hoards most ranges.
  for (int c : ranges_per) EXPECT_LE(c, 5);
}

TEST(SchismPartitionerTest, ResetClearsTrace) {
  SchismPartitioner schism(1000, 100);
  schism.Observe(TxnOn({5, 905}));
  EXPECT_EQ(schism.observed_txns(), 1u);
  schism.Reset();
  EXPECT_EQ(schism.observed_txns(), 0u);
}

TEST(SchismPartitionerTest, DifferentWindowsDifferentPlans) {
  // The Fig. 6a effect: a plan trained on one window does not fit another.
  SchismPartitioner w1(2000, 100), w2(2000, 100);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const Key a = rng.NextBounded(2000), b = rng.NextBounded(2000);
    w1.Observe(TxnOn({a, b}));
    w2.Observe(TxnOn({a, b}));
  }
  for (int i = 0; i < 200; ++i) {
    w1.Observe(TxnOn({5, 1905}));   // window 1: ranges 0+19 together
    w2.Observe(TxnOn({5, 1005}));   // window 2: ranges 0+10 together
  }
  auto m1 = w1.Partition(4);
  auto m2 = w2.Partition(4);
  EXPECT_EQ(m1->Owner(5), m1->Owner(1905));
  EXPECT_EQ(m2->Owner(5), m2->Owner(1005));
}

TEST(SchismPartitionerTest, EmptyTraceStillCoversAllPartitions) {
  SchismPartitioner schism(1000, 100);
  auto map = schism.Partition(4);
  for (Key k = 0; k < 1000; k += 100) {
    EXPECT_GE(map->Owner(k), 0);
    EXPECT_LT(map->Owner(k), 4);
  }
}

}  // namespace
}  // namespace hermes::routing
