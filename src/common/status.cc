#include "common/status.h"

namespace hermes {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace hermes
