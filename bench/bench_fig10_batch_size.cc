// Reproduces Fig. 10: Hermes throughput as a function of the batch size
// analyzed by the prescient routing.
//
// Expected shape (paper): throughput rises with batch size (better routing
// plans from a longer look-ahead), peaks, then drops when the quadratic
// routing analysis saturates the scheduler pipeline.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::RunGoogleWorkload;
using hermes::engine::RouterKind;

int main() {
  std::printf("Fig. 10 reproduction: batch size vs Hermes throughput\n\n");
  std::printf("batch_size,throughput_txn_s\n");
  for (size_t batch : {10u, 30u, 100u, 300u, 1000u, 3000u}) {
    GoogleRunParams params;
    params.windows = 5;
    params.max_batch = batch;
    // Batch size is set by how long the sequencer collects requests: at
    // the ~28k txn/s this configuration sustains, an epoch of batch*35us
    // accumulates ~batch requests. Larger batches therefore also pay
    // batching latency — part of the trade-off the paper measures.
    params.epoch_us = std::max<hermes::SimTime>(batch * 35, 400);
    const double tput =
        RunGoogleWorkload(RouterKind::kHermes, std::move(params))
            .mean_throughput;
    std::printf("%zu,%.0f\n", batch, tput);
    std::fflush(stdout);
  }
  std::printf("\npaper shape: rising, a plateau/peak at a moderate batch "
              "size, then a decline for very large batches\n");
  return 0;
}
