#include "engine/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace hermes::engine {

Scheduler::Scheduler(sim::Simulator* sim, routing::Router* router,
                     TxnExecutor* executor, storage::CommandLog* command_log,
                     const ClusterConfig* config, CallbackResolver resolver)
    : sim_(sim),
      router_(router),
      executor_(executor),
      command_log_(command_log),
      config_(config),
      resolver_(std::move(resolver)) {}

void Scheduler::OnBatch(Batch&& batch) {
  if (batch.txns.empty()) return;
  if (config_->enable_command_log) command_log_->Append(batch);
  ++batches_routed_;

  // The routing algorithm runs now (its decisions are a pure function of
  // the router state at this point in the total order); its CPU cost plus
  // command logging delays when the executors see the plan.
  routing::RoutePlan plan = router_->RouteBatch(batch);
  const SimTime log_cost =
      config_->enable_command_log
          ? config_->costs.log_entry_us * batch.txns.size()
          : 0;
  const SimTime start = std::max(sim_->Now(), busy_until_);
  const SimTime dispatch_at = start + plan.routing_cost_us + log_cost;
  busy_until_ = dispatch_at;

  auto shared_plan =
      std::make_shared<routing::RoutePlan>(std::move(plan));
  sim_->ScheduleAt(dispatch_at, [this, shared_plan]() {
    for (routing::RoutedTxn& rt : shared_plan->txns) {
      if (observer_) observer_(rt);
      TxnExecutor::CommitCallback cb = resolver_(rt.txn);
      executor_->Dispatch(rt, std::move(cb));
    }
  });
}

}  // namespace hermes::engine
