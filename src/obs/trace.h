#ifndef HERMES_OBS_TRACE_H_
#define HERMES_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/digest.h"
#include "common/types.h"

namespace hermes::obs {

/// What happened. One enum for the whole cluster so the exported stream
/// (and its digest) has a single total order of event descriptions.
///
/// kPhase* are spans (they carry a duration); everything else is an
/// instant. The phase spans reconstruct the per-transaction lifecycle of
/// §2.1: sequence → route → lock-wait → remote-wait → execute →
/// commit/abort.
enum class EventKind : uint8_t {
  // Transaction lifecycle.
  kTxnDispatch = 0,   ///< scheduler handed the routed txn to the executor
  kTxnCommit,         ///< client acknowledged, committed (arg = total_us)
  kTxnAbort,          ///< client acknowledged, aborted (arg = total_us)
  kPhaseSequence,     ///< span: submit → dispatch (scheduling + sequencing)
  kPhaseLockWait,     ///< span: dispatch → last master lock grant
  kPhaseRemoteWait,   ///< span: lock grant → last remote shipment arrived
  kPhaseExecute,      ///< span: execution work on the master worker
  // Batch pipeline.
  kBatchSequenced,    ///< total-order protocol emitted a batch (txn = batch)
  kBatchRouted,       ///< span: scheduler routing cost (txn = batch id)
  // Record movement (the fusion/migration machinery).
  kAccess,            ///< one planned access (node = owner, arg = new owner)
  kRecordExtract,     ///< record left a store onto the wire
  kRecordDeliver,     ///< record landed in the destination store
  kRecordSuppress,    ///< delivery suppressed: destination died in flight
  kRecordReclaim,     ///< suppressed record re-inserted at its sender
  kRecordReship,      ///< displaced record moved to its ownership-map home
  kFusionEvict,       ///< fusion table evicted a key (arg = owner node)
  // Replica leases (src/replication/).
  kLeaseGrant,        ///< lease granted (node = holder, arg = copy source)
  kLeaseRevoke,       ///< lease revoked (node = holder, arg = 1 if lapse)
  kReplicaInstall,    ///< read-only copy landed at the holder
  kReplicaUpdate,     ///< post-commit update applied at the holder
  kChunkMigration,    ///< chunk migration planned (key = lo, arg = #records)
  kNodeProvision,     ///< add/remove-node marker materialized (arg = kind)
  // Faults and degraded mode.
  kCrash,             ///< node marked down (arg = membership epoch)
  kRejoin,            ///< node marked up (arg = membership epoch)
  kWatchdogAbort,     ///< watchdog UNDO-aborted a frozen transaction
  kTxnResume,         ///< rejoin re-drove a stalled machine (arg = #thunks)
  kStranded,          ///< key left at a dead node by a watchdog abort
  kPark,              ///< blocked chunk/marker parked FIFO (key = blocker)
  kRetry,             ///< blocked regular rescheduled (dur = delay, arg = attempt)
  kUnavailable,       ///< retries exhausted, UNAVAILABLE abort to client
  // Partitions & failure detection (DESIGN.md §5).
  kPartitionCut,      ///< links around node cut (arg = 1 in | 2 out | 3 both)
  kPartitionHeal,     ///< cut removed, holding pens released (arg = released)
  kHeartbeatMiss,     ///< heartbeat node->arg missed (key = consecutive misses)
  kDetectorSuspect,   ///< detector marked node down (arg = membership epoch)
  kDetectorRestore,   ///< detector marked node up (arg = membership epoch)
  kInvariantViolation,  ///< an InvariantMonitor check failed (arg = failure #)
};

/// Stable lower-case name used by the exporters ("txn_commit", ...).
const char* EventKindName(EventKind kind);

/// True for kinds that carry a duration (exported as Chrome "X" events).
bool IsSpan(EventKind kind);

/// One trace record. Fixed-size POD; rings store these by value.
struct TraceEvent {
  SimTime when = 0;  ///< virtual time the event (or span) starts
  SimTime dur = 0;   ///< span duration; 0 for instants
  uint64_t seq = 0;  ///< ring-local emission order (see Tracer docs)
  TxnId txn = kInvalidTxn;
  Key key = static_cast<Key>(-1);
  uint64_t arg = 0;  ///< kind-specific payload (see EventKind comments)
  NodeId node = kInvalidNode;
  EventKind kind = EventKind::kTxnDispatch;
};

/// Fixed-capacity overwrite-oldest buffer of TraceEvents. Bounded memory
/// is part of the determinism contract: a long run cannot change its
/// allocation behavior (and thereby timing in a real deployment) based on
/// how many events fired; instead `dropped` counts overwritten events,
/// deterministically.
struct TraceRing {
  explicit TraceRing(size_t capacity) : capacity_(capacity) {
    events.reserve(capacity);
  }

  void Push(const TraceEvent& e) {
    ++recorded;
    if (events.size() < capacity_) {
      events.push_back(e);
      return;
    }
    ++dropped;
    events[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }

  /// Events oldest-first (unwraps the ring).
  std::vector<TraceEvent> InOrder() const;

  size_t size() const { return events.size(); }
  size_t capacity() const { return capacity_; }

  std::vector<TraceEvent> events;
  uint64_t recorded = 0;  ///< total Push() calls
  uint64_t dropped = 0;   ///< events overwritten after the ring filled
  uint64_t next_seq = 0;  ///< ring-local emission sequence
  /// Order-sensitive digest of every enabled-mode event emitted into this
  /// ring. Per-ring state keeps emission fully lane-local under the
  /// parallel simulator; Tracer::digest() folds the rings in index order.
  DecisionDigest digest;

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< oldest element once the ring wrapped
};

/// Deterministic structured tracer over virtual time.
///
/// Strictly passive: components write events in, nothing in `src/` reads
/// tracer state back into a decision (detlint's obs-decision rule audits
/// the routing layers for exactly that). Events land in per-node rings
/// (ring 0 holds cluster-scope events with node == kInvalidNode) and fold
/// into an order-sensitive FNV-1a digest, so two runs traced the same way
/// are bit-identical — the trace is itself a determinism oracle.
///
/// Cost model: a disabled tracer costs one pointer null check plus one
/// bool load per HERMES_TRACE site (arguments are evaluated lazily inside
/// the macro's if). The `HERMES_TRACE_KEY` stderr mirror runs through the
/// same Record() path, filtered by key.
class Tracer {
 public:
  static constexpr Key kNoMirror = static_cast<Key>(-1);

  /// Sets the per-ring capacity (events per node) and, when `num_nodes` is
  /// non-zero, pre-sizes the rings (ring 0 plus one per node). Must be
  /// called before the first Record(); existing rings are discarded.
  /// Pre-sizing matters under the parallel simulator: lane-side Record()
  /// calls index into `rings_` concurrently, so the vector must not grow
  /// from a lane. EnsureNode() grows it from exclusive context.
  void Configure(size_t ring_capacity, size_t num_nodes = 0);

  /// Grows the ring set to cover `node` (exclusive context only — used by
  /// dynamic provisioning before the new node's lane runs).
  void EnsureNode(NodeId node) { RingFor(node); }

  /// Points the tracer at the simulator's virtual clock. The tracer only
  /// ever reads through this function (passivity). Function-valued so the
  /// parallel simulator can hand out its lane-aware clock.
  void set_clock(std::function<SimTime()> now) { now_ = std::move(now); }

  /// Convenience overload for tests driving a raw SimTime variable.
  void set_clock(const SimTime* now) {
    now_ = [now] { return *now; };
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Key mirrored to stderr (HERMES_TRACE_KEY UX); kNoMirror disables.
  void set_mirror_key(Key key) { mirror_key_ = key; }
  Key mirror_key() const { return mirror_key_; }

  /// True iff Record() would do any work — the macro guard.
  bool active() const { return enabled_ || mirror_key_ != kNoMirror; }

  /// Records an instant event at the current virtual time.
  void Record(EventKind kind, NodeId node, TxnId txn,
              Key key = static_cast<Key>(-1), uint64_t arg = 0) {
    Emit(kind, node, txn, key, arg, now_ ? now_() : 0, 0);
  }

  /// Records a span [begin, begin + dur).
  void RecordSpan(EventKind kind, NodeId node, TxnId txn, Key key,
                  SimTime begin, SimTime dur, uint64_t arg = 0) {
    Emit(kind, node, txn, key, arg, begin, dur);
  }

  /// Digest over every enabled-mode event: each ring keeps its own
  /// order-sensitive digest (full event — kind, when, dur, node, txn, key,
  /// arg — mixed per Record()), and this folds the per-ring digests in
  /// ring-index order (= deterministic node order). A match means the
  /// traced runs saw identical per-node histories, independent of how lane
  /// events interleaved in real time.
  DecisionDigest digest() const;

  /// Ring 0 = cluster scope (node == kInvalidNode); ring i+1 = node i.
  size_t num_rings() const { return rings_.size(); }
  const TraceRing& ring(size_t i) const { return rings_[i]; }

  uint64_t total_recorded() const;
  uint64_t total_dropped() const;

 private:
  void Emit(EventKind kind, NodeId node, TxnId txn, Key key, uint64_t arg,
            SimTime when, SimTime dur);
  TraceRing& RingFor(NodeId node);

  std::function<SimTime()> now_;
  bool enabled_ = false;
  Key mirror_key_ = kNoMirror;
  size_t ring_capacity_ = 1 << 15;
  std::vector<TraceRing> rings_;
};

}  // namespace hermes::obs

// Trace macros. Arguments after the tracer pointer are NOT evaluated when
// the tracer is inactive (or compiled out), so call sites may compute
// event payloads inline without a guard of their own. Multi-event loops
// should still guard with HERMES_TRACE_ACTIVE and call Record() directly.
#if defined(HERMES_OBS_DISABLED)
#define HERMES_TRACE_ACTIVE(tracer) false
#define HERMES_TRACE(tracer, ...) \
  do {                            \
  } while (0)
#define HERMES_TRACE_SPAN(tracer, ...) \
  do {                                 \
  } while (0)
#else
#define HERMES_TRACE_ACTIVE(tracer) ((tracer) != nullptr && (tracer)->active())
#define HERMES_TRACE(tracer, ...)                          \
  do {                                                     \
    if (HERMES_TRACE_ACTIVE(tracer)) {                     \
      (tracer)->Record(__VA_ARGS__);                       \
    }                                                      \
  } while (0)
#define HERMES_TRACE_SPAN(tracer, ...)                     \
  do {                                                     \
    if (HERMES_TRACE_ACTIVE(tracer)) {                     \
      (tracer)->RecordSpan(__VA_ARGS__);                   \
    }                                                      \
  } while (0)
#endif

#endif  // HERMES_OBS_TRACE_H_
