// Server consolidation (§3.3): the paper evaluates scale-out (Fig. 14) and
// argues the same hybrid hot/cold mechanism covers consolidation; this
// bench exercises that direction. A 4-node cluster removes node 3 at
// runtime: its hot records leave via the fusion table (evicted to their
// future homes by the removal marker), the cold ranges via chunk
// transactions, and the survivors absorb the load.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "migration/provisioning.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

constexpr SimTime kRemoveAt = SecToSim(15);
constexpr SimTime kHorizon = SecToSim(45);

std::vector<double> RunScaleIn(RouterKind kind) {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 4;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 20'000;
  mt.rotation_us = SecToSim(100'000);
  mt.hot_fraction = 0.4;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 20;
  config.migration_chunk_records = 500;
  Cluster cluster(config, kind, gen.PerfectPartitioning());
  cluster.Load();

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 600, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();

  cluster.RunUntil(kRemoveAt);
  // Drain node 3: its ranges re-home round-robin across the survivors.
  const auto plan = hermes::migration::PlanDrainNode(
      cluster.ownership(), config.num_records, /*leaving=*/3, {0, 1, 2});
  cluster.RemoveNode(3, plan, /*migrate_cold=*/true);
  cluster.RunUntil(kHorizon);
  cluster.Drain();

  std::printf("  [%s] node 3 records after drain: %zu\n",
              hermes::bench::KindName(kind).c_str(),
              cluster.node(3).store().size());

  std::vector<double> series;
  const auto& windows = cluster.metrics().windows();
  for (size_t w = 0; w + 1 < kHorizon / SecToSim(1); w += 2) {
    double commits = 0;
    for (size_t i = w; i < w + 2 && i < windows.size(); ++i) {
      commits += static_cast<double>(windows[i].commits);
    }
    series.push_back(commits);
  }
  return series;
}

}  // namespace

int main() {
  std::printf("Consolidation (§3.3): remove node 3 from a 4-node cluster "
              "at t=%llus\n",
              static_cast<unsigned long long>(kRemoveAt / 1'000'000));

  const auto calvin = RunScaleIn(RouterKind::kCalvin);
  const auto hermes_series = RunScaleIn(RouterKind::kHermes);

  PrintSeriesTable("Consolidation: throughput during scale-in",
                   {"calvin_squall", "hermes"}, {calvin, hermes_series}, 2.0,
                   "committed txns per 2s window");
  std::printf("\nexpected shape: both drop to ~3/4 capacity after the node "
              "leaves; hermes transitions smoothly (hot records leave via "
              "data fusion, chunks skip them), calvin+squall dips during "
              "the migration\n");
  return 0;
}
