#include "storage/command_log.h"

namespace hermes::storage {

std::vector<Batch> CommandLog::Suffix(BatchId from) const {
  std::vector<Batch> out;
  for (const Batch& b : batches_) {
    if (b.id >= from) out.push_back(b);
  }
  return out;
}

}  // namespace hermes::storage
