#ifndef HERMES_COMMON_CONFIG_H_
#define HERMES_COMMON_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace hermes {

/// CPU / wire cost model for the discrete-event cluster. All times are in
/// simulated microseconds. Defaults approximate the paper's testbed
/// (Core i5-4460, 10 GbE switch, 1 KB records).
struct CostModel {
  /// One local storage read or write of a record.
  SimTime storage_op_us = 30;
  /// Fixed transaction-logic cost charged on an executor worker.
  SimTime txn_logic_us = 400;
  /// Per-record transaction-logic cost.
  SimTime txn_logic_per_record_us = 40;
  /// CPU time a master spends receiving/deserializing one inbound record
  /// shipment (charged with the execution work).
  SimTime msg_processing_us = 25;
  /// One-way message latency between any two nodes (same data center).
  SimTime net_latency_us = 100;
  /// Wire time per byte; 10 Gbps is 0.8 ns/byte, rounded up.
  double net_us_per_byte = 0.001;
  /// Payload size of one migrated/remotely-read record.
  uint32_t record_bytes = 1024;
  /// Fixed per-message framing overhead in bytes.
  uint32_t message_overhead_bytes = 64;
  /// Round trip to the total-order (Zab) leader for batch sequencing.
  SimTime total_order_us = 400;
  /// Scheduler cost of routing one transaction (linear term).
  SimTime route_linear_us = 1;
  /// Scheduler cost per transaction-pair interaction in a batch
  /// (quadratic term; makes oversized batches clog the scheduler,
  /// reproducing the Fig. 10 trade-off).
  double route_quadratic_us = 0.04;
  /// Cost to persist one command-log entry.
  SimTime log_entry_us = 1;
};

/// Policy for evicting entries from a bounded fusion table (§4.1). Both
/// policies are deterministic, which the replicated table requires.
enum class EvictionPolicy { kFifo, kLru };

/// Configuration of the prescient transaction routing and fusion table.
struct HermesConfig {
  /// Load-imbalance tolerance alpha in theta = ceil(b/n * (1+alpha)).
  double alpha = 0.0;
  /// Maximum number of (key, partition) entries in the fusion table;
  /// 0 means unbounded.
  size_t fusion_table_capacity = 0;
  EvictionPolicy eviction_policy = EvictionPolicy::kLru;
  /// Upper bound on delta relaxation rounds in step 3 before giving up
  /// (the trivial even split always exists, so this is a safety valve).
  int max_delta = 64;

  /// Route with the straightforward O(b²·n) reference implementation of
  /// Steps 1–3 instead of the interned/bucketed fast path. The two are
  /// bit-for-bit equivalent (enforced by hermes_equivalence_test); the
  /// reference exists as the equivalence oracle, for debugging, and for
  /// before/after benchmarking.
  bool use_reference_routing = false;

  // --- Ablation switches (all true in the paper's algorithm). ---
  /// Step 1 reorders transactions; off = keep the sequencer order and only
  /// choose routes (isolates the benefit of reordering, e.g. the Fig. 3
  /// ping-pong avoidance).
  bool enable_reorder = true;
  /// Step 3 rebalances off overloaded nodes; off = pure locality routing
  /// (degenerates toward LEAP-like pile-up under skew).
  bool enable_rebalance = true;
  /// Step 3 walks the reordered batch backward (the paper's choice: later
  /// transactions disturb fewer subsequent reads); off = forward walk.
  bool backward_pass = true;
};

/// Replica-lease parameters (adaptive read-replication for hot keys; see
/// DESIGN.md §5 "Replica leases"). Every decision derived from these knobs
/// is a pure function of (routing plan, config, seed): grants and revokes
/// are evaluated at batch boundaries from windowed access counters, holders
/// are the lowest-id alive candidates — never hash order, never wall clock.
struct ReplicationConfig {
  /// Master switch. Off by default: the lease subsystem costs nothing and
  /// changes no digest when disabled.
  bool enabled = false;
  /// Read-only copies per leased key (clamped to the candidate set minus
  /// the primary).
  int replicas = 3;
  /// Reads a key must accumulate inside the decay window to be granted a
  /// lease.
  uint32_t read_hot_threshold = 8;
  /// Writes inside the window above which a lease is revoked (and a grant
  /// suppressed): read-mostly keys keep their leases, write-heavy keys
  /// fall back to plain migration.
  uint32_t write_revoke_threshold = 2;
  /// Batches between counter decays (counters halve), bounding how long
  /// stale popularity lingers.
  uint64_t window_batches = 8;
  /// Upper bound on concurrently leased keys; the oldest grant is revoked
  /// first when full.
  size_t max_leases = 64;
};

/// Degraded-mode (no-stall crash) parameters. Every value feeds a pure
/// function of (txn id, attempt, config) or of virtual time, so retry
/// slots, watchdog sweeps and reclaim deadlines are identical across
/// hash salts and across live vs. replay runs.
struct DegradedConfig {
  /// Retries a blocked regular transaction gets before the cluster
  /// returns a deterministic UNAVAILABLE abort to the client.
  uint32_t max_retries = 3;
  /// Exponential backoff base: delay(attempt) =
  /// min(base << attempt, cap) + jitter, in virtual microseconds.
  SimTime retry_backoff_base_us = 2000;
  SimTime retry_backoff_cap_us = 64'000;
  /// Deterministic "jitter" drawn as Mix64(txn id ^ attempt) % (j + 1):
  /// decorrelates retry slots without consulting any RNG stream.
  SimTime retry_jitter_us = 1000;
  /// Virtual time an executor presence-wait may point at a dead node
  /// before the watchdog aborts the waiter.
  SimTime watchdog_deadline_us = 5000;
  /// Watchdog re-sweep period while any node is down.
  SimTime watchdog_period_us = 5000;
  /// Timeout after which a record shipped toward a node that died in
  /// flight is reclaimed by re-inserting it at the sender.
  SimTime reclaim_timeout_us = 2000;
  /// Virtual cost charged per replayed batch when a no-stall victim
  /// rebuilds in the background (the stall model measures this live;
  /// degraded mode charges it without pausing intake).
  SimTime replay_us_per_batch = 150;
};

/// Heartbeat failure-detector parameters (partition-aware degraded mode;
/// DESIGN.md §5 "Partitions & failure detection"). The detector ticks on
/// the control lane in virtual time: every decision it makes — miss
/// counts, suspicion, restore — is a pure function of (tick index, link
/// reachability, config), so detector-driven membership epochs are
/// identical across hash salts and simulator thread counts.
struct DetectorConfig {
  /// Master switch. Off by default: no tick chain is ever armed and the
  /// cluster behaves exactly as before (digests unchanged).
  bool enabled = false;
  /// Virtual time between heartbeat rounds.
  SimTime heartbeat_period_us = 2500;
  /// Consecutive missed heartbeats on a directed link before that
  /// direction is considered unhealthy. Detection latency is
  /// miss_threshold * heartbeat_period_us after a cut.
  int miss_threshold = 3;
  /// Consecutive healthy rounds a suspected node must string together
  /// after a heal before it is marked up again (hysteresis against a
  /// flapping or gray link re-admitting a peer too early).
  int confirm_threshold = 2;
};

/// Wire-substrate (src/net/) parameters: bounded-bandwidth links, envelope
/// coalescing, and deterministic backpressure (DESIGN.md §5 "Wire
/// substrate"). Every queueing, scheduling and coalescing decision is a
/// pure function of (config, totally ordered per-link send sequence) in
/// virtual time — never wall clock, never hash order — so digests are
/// identical across hash salts and simulator thread counts.
struct NetConfig {
  /// Master switch. Off by default: Wire::Send degenerates to a direct
  /// sim::Network::Send and every digest is bit-identical to a build
  /// without the substrate.
  bool enabled = false;
  /// Serialization rate of each directed link's transmitter. 0 derives the
  /// rate from the cost model (1 / net_us_per_byte), which makes the
  /// substrate's queueing occupancy agree exactly with the per-byte wire
  /// time the network already charges: delivery = propagation + queueing +
  /// size/rate with no double-charging. A non-zero override models a NIC
  /// slower (or faster) than the wire; it changes occupancy only.
  double bytes_per_us = 0;
  /// Outstanding-bytes window per directed link: transmitted-but-not-yet-
  /// delivered wire bytes above which the transmitter stalls until credits
  /// return on delivery. A message is always admitted when the link has
  /// nothing outstanding, so one oversized message can never wedge a link.
  /// 0 disables backpressure.
  uint64_t link_credit_bytes = 64 * 1024;
  /// Two-class weighted round-robin: foreground slots per cycle. When the
  /// selected class cannot transmit (empty queue or no credits), the other
  /// class is tried — so under saturation bulk traffic queues behind
  /// foreground rather than ahead of it.
  int fg_weight = 4;
  /// Bulk (migration/replica/lease) slots per cycle.
  int bulk_weight = 1;
  /// Virtual time a bulk envelope stays open collecting messages for one
  /// destination before it is sealed onto the transmit queue. All bulk
  /// messages appended within the window ride one wire message (one
  /// framing header) and are opened in append order at delivery.
  /// 0 disables coalescing (every bulk message is its own envelope).
  SimTime coalesce_window_us = 50;
  /// Seals an open envelope early once its payload reaches this size;
  /// 0 means no size cap.
  uint64_t coalesce_max_bytes = 16 * 1024;
};

/// Observability (src/obs/) parameters. Tracing is strictly passive —
/// nothing here may change a decision — so these knobs only affect what
/// gets recorded, never what the cluster does.
struct ObsConfig {
  /// Record span/instant events into the per-node trace rings. Off by
  /// default: a disabled tracer costs one null check per trace site.
  /// The HERMES_TRACE env var (any non-"0" value) also enables it.
  bool trace_enabled = false;
  /// Capacity of each per-node event ring; older events are overwritten
  /// (and counted in the drop counter) once a ring fills.
  size_t trace_ring_capacity = 1 << 15;
};

/// Parallel-simulation (src/sim/) parameters. The simulator partitions
/// events into per-node lanes and executes each virtual-time quantum as an
/// epoch: one exclusive control slice, then all node lanes in parallel,
/// then a deterministic barrier that merges staged cross-lane work in lane
/// order. The schedule is a pure function of the event DAG — never of the
/// thread count — so decision/placement/trace digests are identical for
/// every `threads` value.
struct SimConfig {
  /// Real worker threads executing node lanes. 0 (the default and the
  /// oracle mode) runs the identical epoch schedule on the calling thread.
  int threads = 0;
};

/// Top-level configuration of a simulated cluster.
struct ClusterConfig {
  int num_nodes = 4;
  /// Executor worker threads per node (paper hardware had 4 cores).
  int workers_per_node = 4;
  /// Sequencer epoch: requests are cut into batches every epoch.
  SimTime epoch_us = 10 * 1000;
  /// Upper bound on transactions per node-batch; 0 means unbounded.
  size_t max_batch_size = 0;
  /// Total number of records in the database.
  uint64_t num_records = 1'000'000;
  /// Deterministic seed for all engine-side randomness.
  uint64_t seed = 42;
  CostModel costs;
  HermesConfig hermes;
  /// Number of records moved by one cold-migration chunk transaction.
  size_t migration_chunk_records = 1000;
  /// Whether to append every sequenced batch to the command log
  /// (required for recovery replay; costs log_entry_us per txn).
  bool enable_command_log = true;
  /// Probability that an OLLP reconnaissance prediction is stale by the
  /// time the transaction executes, forcing a deterministic abort and one
  /// retry (§2.1). Drawn from the cluster's seeded RNG.
  double ollp_stale_prob = 0.05;
  DegradedConfig degraded;
  DetectorConfig detector;
  ReplicationConfig replication;
  NetConfig net;
  ObsConfig obs;
  SimConfig sim;
};

}  // namespace hermes

#endif  // HERMES_COMMON_CONFIG_H_
