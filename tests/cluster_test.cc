#include "engine/cluster.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 10'000;
  config.workers_per_node = 2;
  config.epoch_us = MsToSim(10);
  config.hermes.fusion_table_capacity = 1'000;
  return config;
}

std::unique_ptr<Cluster> MakeCluster(const ClusterConfig& config,
                                     RouterKind kind) {
  auto cluster = std::make_unique<Cluster>(
      config, kind,
      std::make_unique<partition::RangePartitionMap>(config.num_records,
                                                     config.num_nodes));
  cluster->Load();
  return cluster;
}

class ClusterRouterTest : public ::testing::TestWithParam<RouterKind> {};

TEST_P(ClusterRouterTest, RunsYcsbToCompletion) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, GetParam());

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 99;
  workload::YcsbWorkload gen(wl, nullptr);

  workload::ClosedLoopDriver driver(
      cluster.get(), 32,
      [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(2));
  driver.Start();
  cluster->RunUntil(SecToSim(2));
  cluster->Drain();

  EXPECT_EQ(cluster->executor().inflight(), 0u);
  EXPECT_GT(cluster->metrics().total_commits(), 100u);
  EXPECT_EQ(driver.completed(), cluster->metrics().total_commits() +
                                    cluster->metrics().total_aborts());

  // Record conservation: every key lives on exactly one node.
  uint64_t total = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    total += cluster->node(n).store().size();
  }
  EXPECT_EQ(total, config.num_records);
}

TEST_P(ClusterRouterTest, IdenticalRunsProduceIdenticalState) {
  const ClusterConfig config = SmallConfig();
  uint64_t checksums[2];
  uint64_t commits[2];
  for (int run = 0; run < 2; ++run) {
    auto cluster = MakeCluster(config, GetParam());
    workload::YcsbConfig wl;
    wl.num_records = config.num_records;
    wl.num_partitions = config.num_nodes;
    wl.seed = 4242;
    workload::YcsbWorkload gen(wl, nullptr);
    workload::ClosedLoopDriver driver(
        cluster.get(), 16,
        [&gen](int, SimTime now) { return gen.Next(now); });
    driver.set_stop_time(SecToSim(1));
    driver.Start();
    cluster->RunUntil(SecToSim(1));
    cluster->Drain();
    checksums[run] = cluster->StateChecksum();
    commits[run] = cluster->metrics().total_commits();
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(commits[0], commits[1]);
}

INSTANTIATE_TEST_SUITE_P(AllRouters, ClusterRouterTest,
                         ::testing::Values(RouterKind::kCalvin,
                                           RouterKind::kGStore,
                                           RouterKind::kLeap,
                                           RouterKind::kTPart,
                                           RouterKind::kHermes),
                         [](const auto& info) {
                           switch (info.param) {
                             case RouterKind::kCalvin: return "Calvin";
                             case RouterKind::kGStore: return "GStore";
                             case RouterKind::kLeap: return "Leap";
                             case RouterKind::kTPart: return "TPart";
                             case RouterKind::kHermes: return "Hermes";
                           }
                           return "Unknown";
                         });

TEST(ClusterTest, LoadPlacesRecordsAtHome) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, RouterKind::kCalvin);
  for (Key k = 0; k < config.num_records; k += 997) {
    const NodeId home = cluster->ownership().Home(k);
    EXPECT_TRUE(cluster->node(home).store().Contains(k));
  }
}

TEST(ClusterTest, SingleTxnCommitsAndWrites) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, RouterKind::kHermes);
  TxnRequest txn;
  txn.read_set = {1, 9999};  // spans two partitions
  txn.write_set = {1, 9999};
  bool done = false;
  cluster->Submit(txn, [&done](const engine::TxnResult& r) {
    EXPECT_FALSE(r.aborted);
    EXPECT_TRUE(r.distributed);
    done = true;
  });
  cluster->Drain();
  ASSERT_TRUE(done);

  // Both records fused on one node with version 1.
  const NodeId owner1 = cluster->ownership().Owner(1);
  const NodeId owner2 = cluster->ownership().Owner(9999);
  EXPECT_EQ(owner1, owner2);
  const storage::Record* r1 = cluster->node(owner1).store().Get(1);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->version, 1u);
}

TEST(ClusterTest, EmptyAccessSetTxnCommits) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, RouterKind::kHermes);
  TxnRequest txn;  // no reads, no writes (e.g. a pure logic ping)
  bool done = false;
  cluster->Submit(txn, [&done](const engine::TxnResult& r) {
    EXPECT_FALSE(r.aborted);
    done = true;
  });
  cluster->Drain();
  EXPECT_TRUE(done);
}

TEST(ClusterTest, FusionTableOnlyForHermes) {
  const ClusterConfig config = SmallConfig();
  auto calvin = MakeCluster(config, RouterKind::kCalvin);
  EXPECT_EQ(calvin->fusion_table(), nullptr);
  auto hermes = MakeCluster(config, RouterKind::kHermes);
  EXPECT_NE(hermes->fusion_table(), nullptr);
}

TEST(ClusterTest, MaxBatchSizeSplitsLoad) {
  ClusterConfig config = SmallConfig();
  config.max_batch_size = 5;
  auto cluster = MakeCluster(config, RouterKind::kHermes);
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 5;
  workload::YcsbWorkload gen(wl, nullptr);
  for (int i = 0; i < 50; ++i) cluster->Submit(gen.Next(0));
  cluster->Drain();
  EXPECT_EQ(cluster->metrics().total_commits() +
                cluster->metrics().total_aborts(),
            50u);
  // 50 submissions with batches capped at 5 -> at least 10 batches.
  EXPECT_GE(cluster->command_log().size(), 10u);
  for (const auto& batch : cluster->command_log().batches()) {
    EXPECT_LE(batch.txns.size(), 5u);
  }
}

TEST(ClusterTest, MetricsWindowsCoverTheRun) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, RouterKind::kCalvin);
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 6;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      cluster.get(), 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(3));
  driver.Start();
  cluster->RunUntil(SecToSim(3));
  cluster->Drain();
  ASSERT_GE(cluster->metrics().windows().size(), 3u);
  // Every covered window saw commits and busy CPU.
  for (size_t w = 0; w < 3; ++w) {
    EXPECT_GT(cluster->metrics().windows()[w].commits, 0u) << "window " << w;
    EXPECT_GT(cluster->metrics().windows()[w].busy_us, 0u) << "window " << w;
  }
}

TEST(ClusterTest, UserAbortRollsBackButStillMigrates) {
  const ClusterConfig config = SmallConfig();
  auto cluster = MakeCluster(config, RouterKind::kHermes);
  const storage::Record before = *cluster->node(0).store().Get(5);

  TxnRequest txn;
  txn.read_set = {5, 9000};
  txn.write_set = {5, 9000};
  txn.user_abort = true;
  bool done = false;
  cluster->Submit(txn, [&done](const engine::TxnResult& r) {
    EXPECT_TRUE(r.aborted);
    done = true;
  });
  cluster->Drain();
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster->metrics().total_aborts(), 1u);

  // Values rolled back...
  const NodeId owner = cluster->ownership().Owner(5);
  const storage::Record* after = cluster->node(owner).store().Get(5);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->value, before.value);
  // ...but the migration plan still executed (§4.2): both keys fused.
  EXPECT_EQ(cluster->ownership().Owner(5), cluster->ownership().Owner(9000));
}

}  // namespace
}  // namespace hermes
