#include "sim/network.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace hermes::sim {

Network::Network(Simulator* sim, const CostModel* costs, int num_nodes)
    : sim_(sim), costs_(costs), bytes_sent_(num_nodes, 0) {}

void Network::EnsureCapacity(int num_nodes) {
  if (static_cast<int>(bytes_sent_.size()) < num_nodes) {
    bytes_sent_.resize(num_nodes, 0);
  }
}

void Network::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                   std::function<void()> on_delivery) {
  assert(src >= 0 && src < static_cast<NodeId>(bytes_sent_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(bytes_sent_.size()));
  if (src == dst) {
    // Local hand-off: no wire bytes, no latency, but still asynchronous so
    // that callers never re-enter themselves.
    sim_->Schedule(0, std::move(on_delivery));
    return;
  }
  const uint64_t bytes = payload_bytes + costs_->message_overhead_bytes;
  bytes_sent_[src] += bytes;
  total_bytes_ += bytes;
  ++total_messages_;
  const SimTime wire =
      costs_->net_latency_us +
      static_cast<SimTime>(std::llround(bytes * costs_->net_us_per_byte));
  sim_->Schedule(wire, std::move(on_delivery));
}

}  // namespace hermes::sim
