#include "engine/degraded.h"

#include <cstdio>

namespace hermes::engine {

uint64_t DegradedLedger::RetryDigest() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const RetryRecord& r : transcript_) {
    mix(r.blocked_id);
    mix(r.retry_of);
    mix((static_cast<uint64_t>(r.epoch) << 32) | r.attempt);
    mix(static_cast<uint64_t>(r.delay_us));
    mix(r.exhausted ? 1 : 0);
  }
  return h;
}

std::string DegradedLedger::DebugString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "degraded: parked=%llu retries=%llu unavailable=%llu "
                "watchdog_aborts=%llu reclaims=%llu reships=%llu "
                "retry_digest=%016llx\n",
                static_cast<unsigned long long>(parked_total_.value()),
                static_cast<unsigned long long>(retries_scheduled_.value()),
                static_cast<unsigned long long>(unavailable_aborts_.value()),
                static_cast<unsigned long long>(watchdog_aborts_.value()),
                static_cast<unsigned long long>(reclaims_.value()),
                static_cast<unsigned long long>(reships_.value()),
                static_cast<unsigned long long>(RetryDigest()));
  out += buf;
  // Transcript entries are already in classification order (a total
  // order), so printing them as-is is deterministic.
  for (const RetryRecord& r : transcript_) {
    std::snprintf(
        buf, sizeof(buf),
        "  blocked txn=%llu retry_of=%llu attempt=%u epoch=%u "
        "delay=%llu%s\n",
        static_cast<unsigned long long>(r.blocked_id),
        static_cast<unsigned long long>(r.retry_of), r.attempt, r.epoch,
        static_cast<unsigned long long>(r.delay_us),
        r.exhausted ? " UNAVAILABLE" : "");
    out += buf;
  }
  return out;
}

}  // namespace hermes::engine
