#include "storage/serialization.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace hermes::storage {
namespace {

constexpr uint64_t kLogMagic = 0x48524d53'4c4f4731ULL;   // "HRMSLOG1"
constexpr uint64_t kCkptMagic = 0x48524d53'434b5031ULL;  // "HRMSCKP1"

/// Buffered little-endian writer with a running XOR-fold checksum.
class Writer {
 public:
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
    sum_ = (sum_ << 1 | sum_ >> 63) ^ v;
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  Status Flush(const std::string& path) {
    U64(sum_);  // trailing checksum (folds everything before it)
    std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "wb"),
                                            &std::fclose);
    if (!f) return Status::Internal("cannot open " + path + " for writing");
    if (std::fwrite(buf_.data(), 1, buf_.size(), f.get()) != buf_.size()) {
      return Status::Internal("short write to " + path);
    }
    return Status::Ok();
  }

 private:
  std::vector<char> buf_;
  uint64_t sum_ = 0;
};

/// Whole-file reader validating the trailing checksum up front.
class Reader {
 public:
  static Status Open(const std::string& path, Reader* out) {
    std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                            &std::fclose);
    if (!f) return Status::NotFound("cannot open " + path);
    std::fseek(f.get(), 0, SEEK_END);
    const long size = std::ftell(f.get());
    std::fseek(f.get(), 0, SEEK_SET);
    if (size < 16 || size % 8 != 0) {
      return Status::FailedPrecondition(path + ": truncated file");
    }
    out->buf_.resize(static_cast<size_t>(size));
    if (std::fread(out->buf_.data(), 1, out->buf_.size(), f.get()) !=
        out->buf_.size()) {
      return Status::Internal("short read from " + path);
    }
    // Validate the checksum over everything but the final word.
    uint64_t sum = 0;
    const size_t words = out->buf_.size() / 8 - 1;
    for (size_t w = 0; w < words; ++w) {
      sum = (sum << 1 | sum >> 63) ^ out->WordAt(w);
    }
    if (sum != out->WordAt(words)) {
      return Status::FailedPrecondition(path + ": checksum mismatch");
    }
    out->limit_ = words;
    return Status::Ok();
  }

  Status U64(uint64_t* v) {
    if (pos_ >= limit_) return Status::OutOfRange("read past end of file");
    *v = WordAt(pos_++);
    return Status::Ok();
  }
  Status I64(int64_t* v) {
    uint64_t u;
    Status s = U64(&u);
    *v = static_cast<int64_t>(u);
    return s;
  }
  /// Reads a length that must fit in remaining words (defends against
  /// corrupted counts causing huge allocations).
  Status Count(uint64_t* v) {
    Status s = U64(v);
    if (!s.ok()) return s;
    if (*v > limit_ - pos_) {
      return Status::FailedPrecondition("implausible element count");
    }
    return Status::Ok();
  }
  bool AtEnd() const { return pos_ >= limit_; }

 private:
  uint64_t WordAt(size_t w) const {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(buf_[w * 8 + i]);
    }
    return v;
  }
  std::vector<char> buf_;
  size_t pos_ = 0;
  size_t limit_ = 0;
};

#define HERMES_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::hermes::Status _s = (expr);               \
    if (!_s.ok()) return _s;                    \
  } while (0)

void WriteTxn(Writer& w, const TxnRequest& txn) {
  w.U64(txn.id);
  w.U64(static_cast<uint64_t>(txn.kind));
  w.U64(txn.read_set.size());
  for (Key k : txn.read_set) w.U64(k);
  w.U64(txn.write_set.size());
  for (Key k : txn.write_set) w.U64(k);
  w.U64((txn.user_abort ? 1u : 0u) | (txn.requires_reconnaissance ? 2u : 0u));
  w.I64(txn.client);
  w.I64(txn.tag);
  w.I64(txn.home_sequencer);
  w.I64(txn.migration_target);
  w.U64(txn.submit_time);
  w.U64(txn.attempt);
  w.U64(txn.retry_of);
  w.U64(txn.range_moves.size());
  for (const RangeMove& mv : txn.range_moves) {
    w.U64(mv.lo);
    w.U64(mv.hi);
    w.I64(mv.target);
  }
}

Status ReadTxn(Reader& r, TxnRequest* txn) {
  uint64_t u;
  int64_t i;
  HERMES_RETURN_IF_ERROR(r.U64(&txn->id));
  HERMES_RETURN_IF_ERROR(r.U64(&u));
  if (u > static_cast<uint64_t>(TxnKind::kRemoveNode)) {
    return Status::FailedPrecondition("invalid txn kind");
  }
  txn->kind = static_cast<TxnKind>(u);
  HERMES_RETURN_IF_ERROR(r.Count(&u));
  txn->read_set.resize(u);
  for (Key& k : txn->read_set) HERMES_RETURN_IF_ERROR(r.U64(&k));
  HERMES_RETURN_IF_ERROR(r.Count(&u));
  txn->write_set.resize(u);
  for (Key& k : txn->write_set) HERMES_RETURN_IF_ERROR(r.U64(&k));
  HERMES_RETURN_IF_ERROR(r.U64(&u));
  txn->user_abort = (u & 1u) != 0;
  txn->requires_reconnaissance = (u & 2u) != 0;
  HERMES_RETURN_IF_ERROR(r.I64(&i));
  txn->client = static_cast<int32_t>(i);
  HERMES_RETURN_IF_ERROR(r.I64(&i));
  txn->tag = static_cast<int32_t>(i);
  HERMES_RETURN_IF_ERROR(r.I64(&i));
  txn->home_sequencer = static_cast<NodeId>(i);
  HERMES_RETURN_IF_ERROR(r.I64(&i));
  txn->migration_target = static_cast<NodeId>(i);
  HERMES_RETURN_IF_ERROR(r.U64(&txn->submit_time));
  HERMES_RETURN_IF_ERROR(r.U64(&u));
  txn->attempt = static_cast<uint32_t>(u);
  HERMES_RETURN_IF_ERROR(r.U64(&txn->retry_of));
  HERMES_RETURN_IF_ERROR(r.Count(&u));
  txn->range_moves.resize(u);
  for (RangeMove& mv : txn->range_moves) {
    HERMES_RETURN_IF_ERROR(r.U64(&mv.lo));
    HERMES_RETURN_IF_ERROR(r.U64(&mv.hi));
    HERMES_RETURN_IF_ERROR(r.I64(&i));
    mv.target = static_cast<NodeId>(i);
  }
  return Status::Ok();
}

}  // namespace

Status WriteCommandLog(const CommandLog& log, const std::string& path) {
  Writer w;
  w.U64(kLogMagic);
  w.U64(log.batches().size());
  for (const Batch& batch : log.batches()) {
    w.U64(batch.id);
    w.U64(batch.sequenced_at);
    w.U64(batch.txns.size());
    for (const TxnRequest& txn : batch.txns) WriteTxn(w, txn);
  }
  return w.Flush(path);
}

Status ReadCommandLog(const std::string& path, CommandLog* log) {
  if (log->size() != 0) {
    return Status::InvalidArgument("target command log is not empty");
  }
  Reader r;
  HERMES_RETURN_IF_ERROR(Reader::Open(path, &r));
  uint64_t magic;
  HERMES_RETURN_IF_ERROR(r.U64(&magic));
  if (magic != kLogMagic) {
    return Status::FailedPrecondition(path + ": not a command log");
  }
  uint64_t batches;
  HERMES_RETURN_IF_ERROR(r.Count(&batches));
  for (uint64_t b = 0; b < batches; ++b) {
    Batch batch;
    HERMES_RETURN_IF_ERROR(r.U64(&batch.id));
    HERMES_RETURN_IF_ERROR(r.U64(&batch.sequenced_at));
    uint64_t txns;
    HERMES_RETURN_IF_ERROR(r.Count(&txns));
    batch.txns.resize(txns);
    for (TxnRequest& txn : batch.txns) {
      HERMES_RETURN_IF_ERROR(ReadTxn(r, &txn));
    }
    log->Append(batch);
  }
  return Status::Ok();
}

Status WriteCheckpoint(const Checkpoint& checkpoint,
                       const std::string& path) {
  Writer w;
  w.U64(kCkptMagic);
  w.U64(checkpoint.next_batch);
  w.U64(checkpoint.next_txn_id);
  // Checkpoint files must be byte-identical across replicas (and across
  // HERMES_HASH_SALT values), so hash-map contents are written in sorted
  // key order, never in iteration order.
  w.U64(checkpoint.stores.size());
  std::vector<Key> keys;
  for (const HashMap<Key, Record>& store : checkpoint.stores) {
    keys.clear();
    keys.reserve(store.size());
    // detlint:allow(unordered-iter) key collection, sorted before writing
    for (const auto& [key, record] : store) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.U64(store.size());
    for (Key key : keys) {
      const Record& record = store.at(key);
      w.U64(key);
      w.U64(record.value);
      w.U64(record.last_writer);
      w.U64(record.version);
    }
  }
  keys.clear();
  keys.reserve(checkpoint.ownership_overlay.size());
  // detlint:allow(unordered-iter) key collection, sorted before writing
  for (const auto& [key, node] : checkpoint.ownership_overlay) {
    (void)node;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  w.U64(checkpoint.ownership_overlay.size());
  for (Key key : keys) {
    w.U64(key);
    w.I64(checkpoint.ownership_overlay.at(key));
  }
  w.U64(checkpoint.intervals.size());
  for (const auto& [lo, hi, node] : checkpoint.intervals) {
    w.U64(lo);
    w.U64(hi);
    w.I64(node);
  }
  w.U64(checkpoint.fusion_order.size());
  for (Key k : checkpoint.fusion_order) w.U64(k);
  w.U64(checkpoint.active_nodes.size());
  for (NodeId n : checkpoint.active_nodes) w.I64(n);
  return w.Flush(path);
}

Status ReadCheckpoint(const std::string& path, Checkpoint* checkpoint) {
  Reader r;
  HERMES_RETURN_IF_ERROR(Reader::Open(path, &r));
  uint64_t magic;
  HERMES_RETURN_IF_ERROR(r.U64(&magic));
  if (magic != kCkptMagic) {
    return Status::FailedPrecondition(path + ": not a checkpoint");
  }
  HERMES_RETURN_IF_ERROR(r.U64(&checkpoint->next_batch));
  HERMES_RETURN_IF_ERROR(r.U64(&checkpoint->next_txn_id));
  uint64_t stores;
  HERMES_RETURN_IF_ERROR(r.Count(&stores));
  checkpoint->stores.resize(stores);
  for (auto& store : checkpoint->stores) {
    uint64_t records;
    HERMES_RETURN_IF_ERROR(r.Count(&records));
    store.reserve(records);
    for (uint64_t i = 0; i < records; ++i) {
      Key key;
      Record record;
      uint64_t version;
      HERMES_RETURN_IF_ERROR(r.U64(&key));
      HERMES_RETURN_IF_ERROR(r.U64(&record.value));
      HERMES_RETURN_IF_ERROR(r.U64(&record.last_writer));
      HERMES_RETURN_IF_ERROR(r.U64(&version));
      record.version = static_cast<uint32_t>(version);
      store[key] = record;
    }
  }
  uint64_t count;
  int64_t node;
  HERMES_RETURN_IF_ERROR(r.Count(&count));
  checkpoint->ownership_overlay.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Key key;
    HERMES_RETURN_IF_ERROR(r.U64(&key));
    HERMES_RETURN_IF_ERROR(r.I64(&node));
    checkpoint->ownership_overlay[key] = static_cast<NodeId>(node);
  }
  HERMES_RETURN_IF_ERROR(r.Count(&count));
  checkpoint->intervals.resize(count);
  for (auto& [lo, hi, target] : checkpoint->intervals) {
    HERMES_RETURN_IF_ERROR(r.U64(&lo));
    HERMES_RETURN_IF_ERROR(r.U64(&hi));
    HERMES_RETURN_IF_ERROR(r.I64(&node));
    target = static_cast<NodeId>(node);
  }
  HERMES_RETURN_IF_ERROR(r.Count(&count));
  checkpoint->fusion_order.resize(count);
  for (Key& k : checkpoint->fusion_order) HERMES_RETURN_IF_ERROR(r.U64(&k));
  HERMES_RETURN_IF_ERROR(r.Count(&count));
  checkpoint->active_nodes.resize(count);
  for (NodeId& n : checkpoint->active_nodes) {
    HERMES_RETURN_IF_ERROR(r.I64(&node));
    n = static_cast<NodeId>(node);
  }
  return Status::Ok();
}

}  // namespace hermes::storage
