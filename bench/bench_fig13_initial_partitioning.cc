// Reproduces Fig. 13: robustness to the initial data partitioning on the
// multi-tenant workload — perfect ranges, hash placement (scatters tenants
// and creates distributed transactions), and a skewed placement (the first
// 7 of 16 tenants on one node).
//
// Expected shape (paper): everyone is fine with the perfect placement;
// with hash, the migrating systems (LEAP, Hermes) recover locality; with
// skew, Clay and Hermes rebalance while LEAP preserves the skew; only
// Hermes is strong across all three.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

enum class Placement { kPerfect, kHash, kSkewed };

double Run(RouterKind kind, bool enable_clay, Placement placement) {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 4;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 25'000;
  mt.rotation_us = SecToSim(10'000);  // static hot spot
  mt.hot_fraction = 0.5;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 40;
  config.migration_chunk_records = 1000;

  std::unique_ptr<hermes::partition::PartitionMap> map;
  switch (placement) {
    case Placement::kPerfect:
      map = gen.PerfectPartitioning();
      break;
    case Placement::kHash:
      map = gen.HashPartitioning();
      break;
    case Placement::kSkewed:
      map = gen.SkewedPartitioning(7);
      break;
  }
  Cluster cluster(config, kind, std::move(map));
  cluster.Load();
  if (enable_clay) {
    hermes::routing::ClayConfig clay;
    clay.monitor_window_us = SecToSim(2);
    clay.range_size = mt.records_per_tenant / 5;
    cluster.EnableClay(clay);
  }

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 800, [&gen](int, SimTime now) { return gen.Next(now); });
  const SimTime horizon = SecToSim(12);
  driver.set_stop_time(horizon);
  driver.Start();
  cluster.RunUntil(horizon);
  cluster.Drain();
  return cluster.metrics().Throughput(SecToSim(4), horizon);
}

}  // namespace

int main() {
  std::printf("Fig. 13 reproduction: impact of initial partitioning "
              "(multi-tenant workload, txn/s)\n\n");
  std::printf("placement,calvin,clay,gstore,tpart,leap,hermes\n");
  const std::pair<const char*, Placement> placements[] = {
      {"perfect", Placement::kPerfect},
      {"hash", Placement::kHash},
      {"skewed", Placement::kSkewed}};
  for (const auto& [label, placement] : placements) {
    std::printf("%s", label);
    std::printf(",%.0f", Run(RouterKind::kCalvin, false, placement));
    std::printf(",%.0f", Run(RouterKind::kCalvin, true, placement));
    std::printf(",%.0f", Run(RouterKind::kGStore, false, placement));
    std::printf(",%.0f", Run(RouterKind::kTPart, false, placement));
    std::printf(",%.0f", Run(RouterKind::kLeap, false, placement));
    std::printf(",%.0f", Run(RouterKind::kHermes, false, placement));
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: all fine on perfect; migrating systems "
              "recover on hash; hermes consistently good on all three\n");
  return 0;
}
