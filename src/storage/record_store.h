#ifndef HERMES_STORAGE_RECORD_STORE_H_
#define HERMES_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <optional>

#include "common/hash.h"
#include "common/types.h"

namespace hermes::storage {

/// One stored record. The prototype keeps a 64-bit content fingerprint
/// instead of the paper's 1 KB / 10-field payload: every write folds the
/// writing transaction's id into the fingerprint deterministically, so two
/// replicas that executed the same history end with bit-identical stores —
/// which is exactly what the determinism and recovery tests compare. Wire
/// and storage costs still use the configured full record size.
struct Record {
  uint64_t value = 0;
  /// Id of the last transaction that wrote the record.
  TxnId last_writer = kInvalidTxn;
  /// Number of committed writes applied to the record.
  uint32_t version = 0;
};

/// Per-node main-memory table: key -> Record. A record is present in
/// exactly one node's store at any instant; migrations Extract() it from
/// the source and Insert() it at the destination when the simulated
/// message lands.
class RecordStore {
 public:
  RecordStore() = default;

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Loads a record during initial population or migration arrival.
  /// Overwrites any existing entry.
  void Insert(Key key, const Record& record);

  /// Removes the record (it migrated away). Returns the removed record, or
  /// nullopt if the key was not present.
  std::optional<Record> Extract(Key key);

  bool Contains(Key key) const { return records_.contains(key); }

  /// Returns the record, or nullptr if not stored on this node.
  const Record* Get(Key key) const;

  /// Applies a committed write: fingerprint is folded with the writer id.
  /// Returns false if the key is not present (engine bug — callers treat
  /// this as fatal in debug builds).
  bool ApplyWrite(Key key, TxnId writer);

  /// Reverts a write using the pre-image captured in the undo log.
  void Restore(Key key, const Record& pre_image);

  /// Drops every record. Models a node crash losing its (volatile)
  /// main-memory table; only the fault injector calls this, immediately
  /// followed by a checkpoint+replay rebuild before the node serves again.
  void Clear() { records_.clear(); }

  size_t size() const { return records_.size(); }

  /// Order-insensitive fingerprint of the whole store (for determinism and
  /// recovery equivalence checks).
  uint64_t Checksum() const;

  const HashMap<Key, Record>& records() const { return records_; }

 private:
  HashMap<Key, Record> records_;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_RECORD_STORE_H_
