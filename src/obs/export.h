#ifndef HERMES_OBS_EXPORT_H_
#define HERMES_OBS_EXPORT_H_

#include <string>

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hermes::obs {

/// Renders the tracer's rings as Chrome trace_event JSON
/// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
/// loadable in Perfetto / chrome://tracing.
///
/// Layout: pid 0 is the cluster scope (ring 0), pid i+1 is node i. Within
/// a node, phase spans land on tid `1 + txn % lanes` (a deterministic
/// worker-lane assignment — the simulator has no real threads) and system
/// events on tid 0. Every field is an integer and events are written in
/// ring order, so the output is byte-identical across reruns and
/// HERMES_HASH_SALT values whenever the trace digest matches.
std::string ChromeTraceJson(const Tracer& tracer, int lanes = 4);

/// Writes ChromeTraceJson(tracer) to `path`. Returns false on I/O error.
bool WriteChromeTrace(const Tracer& tracer, const std::string& path,
                      int lanes = 4);

}  // namespace hermes::obs

#endif  // HERMES_OBS_EXPORT_H_
