// detlint-fixture: path=src/engine/wall_clock_pos.cc
uint64_t NowUs() { return std::chrono::system_clock::now().time_since_epoch().count(); }
long Stamp() { return time(nullptr); }
