#ifndef HERMES_TOOLS_DETLINT_LEXER_H_
#define HERMES_TOOLS_DETLINT_LEXER_H_

// detlint lexer: turns a C++ source file into the three streams the rule
// pass consumes — a token stream (identifiers, numbers, punctuation),
// the comment list (suppressions and contract annotations live there),
// and the #include directives (the include-graph rules live there).
//
// This replaces detlint v1's regex-over-stripped-text approach: string
// literals (including raw strings, which v1 could not lex) and comments
// can never produce a false token, multi-character operators like `->`
// and `::` are single tokens so angle-bracket matching does not
// mis-count, and every token carries its line so findings stay precise.
//
// It is still a lexer, not a compiler front end: no preprocessing, no
// template instantiation, no name lookup. The rules built on top are
// deliberately tripwires; the runtime digest oracles (multi-salt
// perturbation, sequential-vs-parallel digests) remain the ground truth.

#include <cstddef>
#include <string>
#include <vector>

namespace detlint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals
  kPunct,   // operators/punctuation; multi-char: :: -> << >> <= >= == != && ||
};

struct Token {
  TokKind kind;
  std::string text;
  size_t offset = 0;  // byte offset into the raw file
  int line = 0;       // 1-based
};

struct Comment {
  std::string text;   // comment body, delimiters included
  size_t offset = 0;  // offset of the first delimiter character
  size_t end = 0;     // offset one past the comment's last character
  int line = 0;
};

struct IncludeDirective {
  std::string target;  // header name between the delimiters
  bool system = false; // <...> vs "..."
  size_t offset = 0;   // offset of the '#'
  int line = 0;
};

struct LexedFile {
  std::string path;          // path as reported in diagnostics
  std::string virtual_path;  // rule-scoping path (fixtures override it)
  std::string raw;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
  std::vector<size_t> line_starts;  // offset of each line's first byte
};

/// Lexes `raw`. `path` is used verbatim in diagnostics; `virtual_path`
/// (usually equal) is what path-scoped rules test against.
LexedFile Lex(std::string path, std::string virtual_path, std::string raw);

/// 1-based line containing `offset`.
int LineOf(const LexedFile& f, size_t offset);

/// Trimmed (and truncated) source text of `line`, for finding excerpts.
std::string LineText(const LexedFile& f, int line);

}  // namespace detlint

#endif  // HERMES_TOOLS_DETLINT_LEXER_H_
