#ifndef HERMES_STORAGE_COMMAND_LOG_H_
#define HERMES_STORAGE_COMMAND_LOG_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace hermes::storage {

/// Command log (§4.3): the totally ordered stream of input batches. In a
/// deterministic system this log *is* the database — replaying it through
/// the (deterministic) router and executors from a checkpoint reproduces
/// the exact post-crash state, including fusion-table contents and
/// in-flight cold migrations. The prototype keeps the log in memory; the
/// cost model charges log_entry_us per transaction for persistence.
class CommandLog {
 public:
  CommandLog() = default;

  CommandLog(const CommandLog&) = delete;
  CommandLog& operator=(const CommandLog&) = delete;

  void Append(const Batch& batch) { batches_.push_back(batch); }

  const std::vector<Batch>& batches() const { return batches_; }

  /// Batches with id >= `from`, for replay after restoring a checkpoint
  /// taken at batch watermark `from`.
  std::vector<Batch> Suffix(BatchId from) const;

  size_t size() const { return batches_.size(); }

 private:
  std::vector<Batch> batches_;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_COMMAND_LOG_H_
