#ifndef HERMES_PARTITION_PARTITION_MAP_H_
#define HERMES_PARTITION_PARTITION_MAP_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace hermes::partition {

/// Static (initial) placement policy mapping keys to home partitions.
/// Implementations must be pure functions of the key.
class PartitionMap {
 public:
  virtual ~PartitionMap() = default;

  /// Home partition of `key`.
  virtual NodeId Owner(Key key) const = 0;

  virtual int num_partitions() const = 0;

  virtual std::unique_ptr<PartitionMap> Clone() const = 0;
};

/// Equal-width contiguous ranges: key k lives on k / range_size (the
/// paper's "naive range partition" default).
class RangePartitionMap : public PartitionMap {
 public:
  RangePartitionMap(uint64_t num_records, int num_partitions);

  NodeId Owner(Key key) const override;
  int num_partitions() const override { return num_partitions_; }
  std::unique_ptr<PartitionMap> Clone() const override;

 private:
  uint64_t num_records_;
  int num_partitions_;
  uint64_t range_size_;
};

/// Hash placement: Owner = mix(key) % n. Co-accessed ranges scatter, which
/// creates distributed transactions (Fig. 13's "hash-based" setting).
class HashPartitionMap : public PartitionMap {
 public:
  HashPartitionMap(uint64_t num_records, int num_partitions);

  NodeId Owner(Key key) const override;
  int num_partitions() const override { return num_partitions_; }
  std::unique_ptr<PartitionMap> Clone() const override;

 private:
  uint64_t num_records_;
  int num_partitions_;
};

/// Explicit range boundaries: partition i owns [bounds[i], bounds[i+1]).
/// Used for skewed initial placements (Fig. 13) and as Schism's output
/// representation.
class CustomRangePartitionMap : public PartitionMap {
 public:
  /// `bounds` holds num_partitions+1 ascending split points covering the
  /// whole key space.
  explicit CustomRangePartitionMap(std::vector<Key> bounds);

  NodeId Owner(Key key) const override;
  int num_partitions() const override {
    return static_cast<int>(bounds_.size()) - 1;
  }
  std::unique_ptr<PartitionMap> Clone() const override;

 private:
  std::vector<Key> bounds_;
};

/// Arbitrary (non-contiguous) assignment of fixed-size key ranges to
/// partitions: Owner(k) = owners[k / range_size]. This is the output
/// representation of the Schism/MetisLite offline partitioner.
class MappedRangePartitionMap : public PartitionMap {
 public:
  MappedRangePartitionMap(uint64_t range_size, std::vector<NodeId> owners,
                          int num_partitions);

  NodeId Owner(Key key) const override;
  int num_partitions() const override { return num_partitions_; }
  std::unique_ptr<PartitionMap> Clone() const override;

 private:
  uint64_t range_size_;
  std::vector<NodeId> owners_;
  int num_partitions_;
};

/// Live ownership view used by every scheduler: a static base map, an
/// interval overlay for coarse-grained (cold/Clay) reassignments, and a
/// per-key overlay for fine-grained (fusion) placements. Lookup order:
/// per-key overlay, interval overlay, base.
class OwnershipMap {
 public:
  explicit OwnershipMap(std::unique_ptr<PartitionMap> base);

  OwnershipMap(const OwnershipMap&) = delete;
  OwnershipMap& operator=(const OwnershipMap&) = delete;

  NodeId Owner(Key key) const;

  /// Home of a key: interval overlay then base (ignores fusion placements).
  /// Evicted fusion-table records migrate back here.
  NodeId Home(Key key) const;

  /// Fine-grained placement (fusion-table bookkeeping writes through here).
  void SetKeyOwner(Key key, NodeId node);
  void ClearKeyOwner(Key key);
  bool HasKeyOverride(Key key) const { return key_overlay_.contains(key); }

  /// Coarse-grained reassignment of [lo, hi] (inclusive), splitting any
  /// overlapping interval entries.
  void SetRangeOwner(Key lo, Key hi, NodeId node);

  /// Interval overlay as (lo, hi, owner) triples, for checkpointing.
  std::vector<std::tuple<Key, Key, NodeId>> ExportIntervals() const;
  void RestoreIntervals(const std::vector<std::tuple<Key, Key, NodeId>>& iv);

  const HashMap<Key, NodeId>& key_overlay() const {
    return key_overlay_;
  }
  void RestoreKeyOverlay(HashMap<Key, NodeId> overlay) {
    key_overlay_ = std::move(overlay);
  }

  const PartitionMap& base() const { return *base_; }
  size_t num_interval_entries() const { return intervals_.size(); }

 private:
  std::unique_ptr<PartitionMap> base_;
  /// lo -> (hi inclusive, owner); non-overlapping.
  std::map<Key, std::pair<Key, NodeId>> intervals_;
  HashMap<Key, NodeId> key_overlay_;
};

}  // namespace hermes::partition

#endif  // HERMES_PARTITION_PARTITION_MAP_H_
