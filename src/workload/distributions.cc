#include "workload/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hermes::workload {
namespace {

double Zeta(uint64_t n, double theta) {
  // Exact zeta for small n; the p-series tail approximation keeps setup
  // O(1e6) even for very large key spaces.
  constexpr uint64_t kExactLimit = 1'000'000;
  double sum = 0;
  const uint64_t limit = std::min(n, kExactLimit);
  for (uint64_t i = 1; i <= limit; ++i) sum += 1.0 / std::pow(i, theta);
  if (n > limit) {
    // Integral approximation of sum_{limit+1}^{n} x^-theta.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(static_cast<double>(limit), 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0 && theta < 1);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(v, n_ - 1);
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n, double theta)
    : zipf_(n, theta), n_(n) {}

uint64_t ScrambledZipfianGenerator::Next(Rng& rng) const {
  return Mix64(zipf_.Next(rng)) % n_;
}

TwoSidedZipfian::TwoSidedZipfian(uint64_t n, double theta)
    : distance_(n, theta), n_(n) {}

uint64_t TwoSidedZipfian::Next(Rng& rng, uint64_t peak) const {
  const uint64_t d = distance_.Next(rng);
  const bool left = (rng.Next() & 1) != 0;
  if (left) {
    return (peak + n_ - (d % n_)) % n_;
  }
  return (peak + d) % n_;
}

uint64_t SampleClampedNormal(Rng& rng, double mean, double stddev,
                             uint64_t min, uint64_t max) {
  const double v = mean + stddev * rng.NextGaussian();
  const double clamped = std::clamp(
      v, static_cast<double>(min), static_cast<double>(max));
  return static_cast<uint64_t>(std::llround(clamped));
}

size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double u = rng.NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace hermes::workload
