#include "routing/schism_partitioner.h"

#include <algorithm>
#include <vector>

#include "routing/metis_lite.h"

namespace hermes::routing {

SchismPartitioner::SchismPartitioner(uint64_t num_records,
                                     uint64_t range_size)
    : num_records_(num_records), range_size_(range_size) {
  num_ranges_ = (num_records_ + range_size_ - 1) / range_size_;
  if (num_ranges_ == 0) num_ranges_ = 1;
}

void SchismPartitioner::Observe(const TxnRequest& txn) {
  ++observed_;
  std::vector<uint64_t> ranges;
  ranges.reserve(txn.read_set.size() + txn.write_set.size());
  for (Key k : txn.read_set) ranges.push_back(k / range_size_);
  for (Key k : txn.write_set) ranges.push_back(k / range_size_);
  std::sort(ranges.begin(), ranges.end());
  ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
  for (uint64_t r : ranges) ++range_weight_[r];
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      ++edge_weight_[(ranges[i] << 32) | ranges[j]];
    }
  }
}

void SchismPartitioner::Reset() {
  range_weight_.clear();
  edge_weight_.clear();
  observed_ = 0;
}

std::unique_ptr<partition::PartitionMap> SchismPartitioner::Partition(
    int num_partitions, double imbalance) const {
  Graph graph;
  graph.vertex_weight.assign(num_ranges_, 1);  // never leave a range weightless
  graph.adj.assign(num_ranges_, {});
  // detlint:allow(unordered-iter) commutative sums into indexed slots
  for (const auto& [range, weight] : range_weight_) {
    if (range < num_ranges_) graph.vertex_weight[range] += weight;
  }
  // detlint:allow(unordered-iter) adjacency fill; every list is sorted below
  for (const auto& [packed, weight] : edge_weight_) {
    const auto a = static_cast<uint32_t>(packed >> 32);
    const auto b = static_cast<uint32_t>(packed & 0xffffffffULL);
    if (a >= num_ranges_ || b >= num_ranges_) continue;
    graph.adj[a].emplace_back(b, weight);
    graph.adj[b].emplace_back(a, weight);
  }
  // Deterministic adjacency order (hash-map insertion order is not).
  for (auto& neighbors : graph.adj) {
    std::sort(neighbors.begin(), neighbors.end());
  }

  const std::vector<int> assignment =
      PartitionGraph(graph, num_partitions, imbalance);
  std::vector<NodeId> owners(num_ranges_);
  for (uint64_t r = 0; r < num_ranges_; ++r) {
    owners[r] = static_cast<NodeId>(assignment[r]);
  }
  return std::make_unique<partition::MappedRangePartitionMap>(
      range_size_, std::move(owners), num_partitions);
}

}  // namespace hermes::routing
