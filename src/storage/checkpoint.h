#ifndef HERMES_STORAGE_CHECKPOINT_H_
#define HERMES_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "storage/record_store.h"

namespace hermes::storage {

/// A consistent checkpoint of cluster state, taken at a batch boundary
/// (when no transaction is in flight). Restoring a checkpoint and
/// replaying the command-log suffix reproduces the pre-crash state; the
/// recovery integration test asserts checksum equality.
struct Checkpoint {
  /// First batch id NOT covered by this checkpoint (replay starts here).
  BatchId next_batch = 0;
  /// Per-node record stores.
  std::vector<HashMap<Key, Record>> stores;
  /// Dynamic-ownership overlay (fusion table contents + migrated ranges),
  /// shared by all schedulers.
  HashMap<Key, NodeId> ownership_overlay;
  /// Interval (cold-migration) overlay as (lo, hi, owner) triples.
  std::vector<std::tuple<Key, Key, NodeId>> intervals;
  /// Keys in fusion-table recency order (front = next eviction victim),
  /// needed so the restored replica evicts identically.
  std::vector<Key> fusion_order;
  /// Nodes active in the routers at checkpoint time.
  std::vector<NodeId> active_nodes;
  uint64_t next_txn_id = 0;

  /// Combined checksum over all per-node stores.
  uint64_t Checksum() const;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_CHECKPOINT_H_
