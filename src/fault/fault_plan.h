#ifndef HERMES_FAULT_FAULT_PLAN_H_
#define HERMES_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hermes::fault {

/// Per-message link chaos parameters. All draws come from one seeded
/// hermes::Rng consumed in Network::Send order (which is itself
/// deterministic), so a (plan seed, workload seed) pair fixes every fault.
///
/// Chaos rides ON TOP of a reliable transport — the engine's correctness
/// invariants assume messages eventually arrive exactly once, so:
///   - a "drop" is a lost wire attempt that the transport retransmits:
///     the sender pays the bytes again and delivery slips by a
///     retransmit timeout, but the payload still lands exactly once;
///   - a "duplicate" is an extra wire copy the receiver's dedup layer
///     absorbs: bytes flow twice, the callback fires once;
///   - "jitter" is plain extra delivery delay.
/// This perturbs timing, byte counters and therefore the event
/// interleaving — which is exactly the surface a deterministic database
/// must be immune to — without ever forging or losing a record.
struct LinkChaosConfig {
  double drop_prob = 0.0;       ///< per wire attempt
  double duplicate_prob = 0.0;  ///< per delivered message
  SimTime max_jitter_us = 0;    ///< uniform extra delay in [0, max]
  SimTime retransmit_delay_us = 200;  ///< added per lost attempt
  int max_drops_per_message = 3;      ///< bounds the retransmit storm
};

/// One scheduled fault.
struct FaultEvent {
  enum class Kind {
    kCrash,         ///< node loses its volatile store; cluster intake stalls
    kRejoin,        ///< crashed node rebuilds from checkpoint + log replay
    kFailover,      ///< replica-group primary dies mid-flight, standby promoted
    kCrashNoStall,  ///< node dies but the cluster keeps sequencing: routers
                    ///< route around it, ordered txns touching it are parked
                    ///< or retried deterministically (degraded mode)
  };
  SimTime at = 0;
  Kind kind = Kind::kCrash;
  /// Crashed/rejoining node for kCrash/kRejoin; ignored for kFailover.
  NodeId node = kInvalidNode;

  bool operator<(const FaultEvent& o) const {
    if (at != o.at) return at < o.at;
    if (kind != o.kind) return static_cast<int>(kind) < static_cast<int>(o.kind);
    return node < o.node;
  }
};

struct FaultPlanConfig {
  SimTime horizon_us = SecToSim(10);  ///< faults are drawn within [0, horizon)
  int num_nodes = 4;
  /// Crash/rejoin pairs to schedule. Each cycle picks a node and an outage
  /// window inside its own slot of the horizon, so cycles never overlap.
  int crash_cycles = 1;
  SimTime min_outage_us = MsToSim(50);
  SimTime max_outage_us = MsToSim(400);
  /// Schedule one mid-run primary failover (replica-group runs only).
  bool inject_failover = false;
  /// Emit kCrashNoStall instead of kCrash: the cluster degrades (keeps
  /// sequencing around the victim) instead of stalling intake.
  bool no_stall = false;
  LinkChaosConfig link;
};

/// A seeded, totally ordered schedule of fault events plus the link-chaos
/// parameters to install for the run. Pure function of (config, seed).
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< sorted by (at, kind, node)
  LinkChaosConfig link;
  uint64_t seed = 0;

  static FaultPlan Generate(const FaultPlanConfig& config, uint64_t seed);

  std::string DebugString() const;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_FAULT_PLAN_H_
