#include "common/hash.h"

#include <cstdlib>

namespace hermes {
namespace detail {
namespace {

uint64_t SaltFromEnv() {
  const char* env = std::getenv("HERMES_HASH_SALT");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 0);
}

}  // namespace

uint64_t g_hash_salt = SaltFromEnv();

}  // namespace detail

uint64_t HashSalt() { return detail::g_hash_salt; }

void SetHashSalt(uint64_t salt) { detail::g_hash_salt = salt; }

}  // namespace hermes
