#include "engine/executor.h"

#include <memory>

#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "engine/node.h"
#include "net/wire.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hermes::engine {
namespace {

using routing::Access;
using routing::RoutedTxn;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : metrics_(SecToSim(1)),
        net_(&sim_, &costs_, 4),
        wire_(&sim_, &net_, &costs_, &net_config_, 4),
        executor_(&sim_, &wire_, &metrics_, &costs_, &nodes_) {
    for (NodeId i = 0; i < 4; ++i) {
      nodes_.push_back(std::make_unique<Node>(i, &sim_, 2));
    }
    // Records 0..99 on node 0, 100..199 on node 1, etc.
    for (Key k = 0; k < 400; ++k) {
      nodes_[k / 100]->store().Insert(k, storage::Record{.value = k});
    }
  }

  RoutedTxn SingleMaster(TxnId id, NodeId master,
                         std::vector<Access> accesses,
                         std::vector<Key> write_set = {}) {
    RoutedTxn rt;
    rt.txn.id = id;
    rt.txn.write_set = std::move(write_set);
    for (const Access& a : accesses) {
      rt.txn.read_set.push_back(a.key);
    }
    rt.masters = {master};
    rt.accesses = std::move(accesses);
    return rt;
  }

  sim::Simulator sim_;
  CostModel costs_;
  Metrics metrics_;
  sim::Network net_;
  NetConfig net_config_;
  net::Wire wire_;
  std::vector<std::unique_ptr<Node>> nodes_;
  TxnExecutor executor_;
};

TEST_F(ExecutorTest, LocalReadOnlyTxnCommits) {
  bool done = false;
  auto rt = SingleMaster(1, 0, {{5, 0, false, false, kInvalidNode}});
  executor_.Dispatch(rt, [&](const TxnResult& r) {
    EXPECT_FALSE(r.aborted);
    EXPECT_FALSE(r.distributed);
    done = true;
  });
  sim_.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(executor_.inflight(), 0u);
  EXPECT_EQ(executor_.committed(), 1u);
}

TEST_F(ExecutorTest, RemoteReadWaitsForShipment) {
  bool done = false;
  SimTime commit_time = 0;
  auto rt = SingleMaster(1, 0,
                         {{5, 0, false, false, kInvalidNode},
                          {105, 1, false, true, kInvalidNode}});
  executor_.Dispatch(rt, [&](const TxnResult& r) {
    EXPECT_TRUE(r.distributed);
    commit_time = sim_.Now();
    done = true;
  });
  sim_.RunAll();
  EXPECT_TRUE(done);
  // At least one network hop for the read plus one for the client ack.
  EXPECT_GE(commit_time, 2 * costs_.net_latency_us);
  EXPECT_GT(net_.total_bytes(), 1000u);
  // Remote read does NOT move the record.
  EXPECT_TRUE(nodes_[1]->store().Contains(105));
  EXPECT_FALSE(nodes_[0]->store().Contains(105));
}

TEST_F(ExecutorTest, MigrationMovesRecordAndAppliesWrite) {
  auto rt = SingleMaster(1, 0,
                         {{5, 0, true, false, kInvalidNode},
                          {105, 1, true, true, 0}},
                         {5, 105});
  executor_.Dispatch(rt, nullptr);
  sim_.RunAll();
  EXPECT_FALSE(nodes_[1]->store().Contains(105));
  ASSERT_TRUE(nodes_[0]->store().Contains(105));
  EXPECT_EQ(nodes_[0]->store().Get(105)->version, 1u);
  EXPECT_EQ(nodes_[0]->store().Get(5)->version, 1u);
  EXPECT_EQ(nodes_[0]->store().Get(105)->last_writer, 1u);
}

TEST_F(ExecutorTest, UserAbortRollsBackWrites) {
  auto rt = SingleMaster(1, 0, {{5, 0, true, false, kInvalidNode}}, {5});
  rt.txn.user_abort = true;
  bool done = false;
  executor_.Dispatch(rt, [&](const TxnResult& r) {
    EXPECT_TRUE(r.aborted);
    done = true;
  });
  sim_.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(nodes_[0]->store().Get(5)->version, 0u);
  EXPECT_EQ(nodes_[0]->store().Get(5)->value, 5u);
  EXPECT_EQ(executor_.aborted(), 1u);
}

TEST_F(ExecutorTest, OnCommitReturnShipsRecordHome) {
  // G-Store style: record 105 checks out to node 0 and returns on commit.
  auto rt = SingleMaster(1, 0,
                         {{105, 1, true, true, 0}}, {105});
  rt.on_commit_returns.push_back(routing::ReturnShipment{105, 0, 1});
  executor_.Dispatch(rt, nullptr);
  sim_.RunAll();
  EXPECT_FALSE(nodes_[0]->store().Contains(105));
  ASSERT_TRUE(nodes_[1]->store().Contains(105));
  EXPECT_EQ(nodes_[1]->store().Get(105)->version, 1u);  // post-commit value
}

TEST_F(ExecutorTest, ConflictingTxnsSerializeInOrder) {
  std::vector<TxnId> commit_order;
  for (TxnId id = 1; id <= 3; ++id) {
    auto rt = SingleMaster(id, 0, {{5, 0, true, false, kInvalidNode}}, {5});
    executor_.Dispatch(rt, [&commit_order, id](const TxnResult&) {
      commit_order.push_back(id);
    });
  }
  sim_.RunAll();
  EXPECT_EQ(commit_order, (std::vector<TxnId>{1, 2, 3}));
  EXPECT_EQ(nodes_[0]->store().Get(5)->version, 3u);
}

TEST_F(ExecutorTest, SharedReadersProceedInParallel) {
  // Two read-only transactions on the same key both commit without
  // serializing behind each other (shared locks).
  SimTime t1 = 0, t2 = 0;
  auto r1 = SingleMaster(1, 0, {{5, 0, false, false, kInvalidNode}});
  auto r2 = SingleMaster(2, 0, {{5, 0, false, false, kInvalidNode}});
  executor_.Dispatch(r1, [&](const TxnResult&) { t1 = sim_.Now(); });
  executor_.Dispatch(r2, [&](const TxnResult&) { t2 = sim_.Now(); });
  sim_.RunAll();
  EXPECT_EQ(t1, t2);
}

TEST_F(ExecutorTest, MultiMasterCalvinBothApplyTheirWrites) {
  RoutedTxn rt;
  rt.txn.id = 1;
  rt.txn.read_set = {5, 105};
  rt.txn.write_set = {5, 105};
  rt.masters = {0, 1};
  rt.accesses = {{5, 0, true, true, kInvalidNode},
                 {105, 1, true, true, kInvalidNode}};
  bool done = false;
  executor_.Dispatch(rt, [&](const TxnResult& r) {
    EXPECT_TRUE(r.distributed);
    done = true;
  });
  sim_.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(nodes_[0]->store().Get(5)->version, 1u);
  EXPECT_EQ(nodes_[1]->store().Get(105)->version, 1u);
  // Records never moved.
  EXPECT_TRUE(nodes_[0]->store().Contains(5));
  EXPECT_TRUE(nodes_[1]->store().Contains(105));
}

TEST_F(ExecutorTest, SuccessorWaitsForInFlightMigration) {
  // Txn 1 migrates key 105 to node 0; txn 2 (later in total order) reads
  // it at node 0 and must see txn 1's write.
  auto rt1 = SingleMaster(1, 0, {{105, 1, true, true, 0}}, {105});
  auto rt2 = SingleMaster(2, 0, {{105, 0, false, false, kInvalidNode}});
  uint32_t version_seen = 99;
  executor_.Dispatch(rt1, nullptr);
  executor_.Dispatch(rt2, [&](const TxnResult&) {
    version_seen = nodes_[0]->store().Get(105)->version;
  });
  sim_.RunAll();
  EXPECT_EQ(version_seen, 1u);
}

TEST_F(ExecutorTest, EvictionShipsAfterCommitWithoutDelayingClient) {
  // Eviction access: record 105 ships home (node 1 -> node 2's range? no:
  // to node 2 as its new overlay home) without the master waiting for it.
  auto rt = SingleMaster(1, 0,
                         {{5, 0, true, false, kInvalidNode},
                          {105, 1, true, false, /*new_owner=*/2}},
                         {5});
  bool done = false;
  executor_.Dispatch(rt, [&](const TxnResult&) { done = true; });
  sim_.RunAll();
  EXPECT_TRUE(done);
  EXPECT_FALSE(nodes_[1]->store().Contains(105));
  EXPECT_TRUE(nodes_[2]->store().Contains(105));
  EXPECT_EQ(executor_.inflight(), 0u);
}

TEST_F(ExecutorTest, LatencyBreakdownAccountsPhases) {
  auto rt = SingleMaster(1, 0, {{105, 1, false, true, kInvalidNode}});
  rt.txn.submit_time = 0;
  LatencyBreakdown lat;
  executor_.Dispatch(rt, [&](const TxnResult& r) { lat = r.latency; });
  sim_.RunAll();
  EXPECT_GT(lat.total_us, 0u);
  EXPECT_GT(lat.remote_wait_us, 0u);
  EXPECT_GT(lat.storage_us, 0u);
  EXPECT_GE(lat.total_us, lat.scheduling_us + lat.lock_wait_us +
                              lat.remote_wait_us + lat.storage_us);
}

TEST_F(ExecutorTest, ChunkMigrationMovesWholeChunkWithoutRewriting) {
  RoutedTxn rt;
  rt.txn.id = 1;
  rt.txn.kind = TxnKind::kChunkMigration;
  rt.masters = {2};
  for (Key k = 100; k < 110; ++k) {
    rt.txn.write_set.push_back(k);
    rt.accesses.push_back(Access{k, 1, true, true, 2});
  }
  executor_.Dispatch(rt, nullptr);
  sim_.RunAll();
  for (Key k = 100; k < 110; ++k) {
    EXPECT_FALSE(nodes_[1]->store().Contains(k));
    ASSERT_TRUE(nodes_[2]->store().Contains(k));
    EXPECT_EQ(nodes_[2]->store().Get(k)->version, 0u);  // values untouched
  }
}

}  // namespace
}  // namespace hermes::engine
