#ifndef HERMES_TXN_TRANSACTION_H_
#define HERMES_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hermes {

/// Kind of a transaction request. Regular OLTP transactions come from
/// clients; chunk migrations are synthesized by the migration controller
/// (§3.3); provisioning markers are the special totally-ordered
/// transactions that tell every scheduler a node joined or left.
enum class TxnKind : uint8_t {
  kRegular = 0,
  kChunkMigration,
  kAddNode,
  kRemoveNode,
};

/// One entry of a cold-migration plan carried by a provisioning marker:
/// the key range [lo, hi] will be re-homed to `target`.
struct RangeMove {
  Key lo;
  Key hi;
  NodeId target;
};

/// A transaction request as the sequencer sees it: a stored-procedure
/// invocation whose read- and write-sets are known up front (Calvin's
/// standard assumption; OLLP would fill these in otherwise).
///
/// Keys in `write_set` may also appear in `read_set` (read-modify-write);
/// keys only in `write_set` are blind writes.
struct TxnRequest {
  TxnId id = kInvalidTxn;
  TxnKind kind = TxnKind::kRegular;
  std::vector<Key> read_set;
  std::vector<Key> write_set;
  /// True if the user logic deterministically aborts this transaction
  /// (e.g. insufficient stock); aborted transactions still perform their
  /// planned migrations (§4.2).
  bool user_abort = false;
  /// True if the read/write sets cannot be derived from the stored
  /// procedure up front: the cluster first runs an OLLP reconnaissance
  /// read (Calvin's Optimistic Lock Location Prediction) to discover
  /// them, and deterministically aborts + retries if the prediction went
  /// stale by execution time (§2.1).
  bool requires_reconnaissance = false;
  /// Client that issued the request (closed-loop driver bookkeeping);
  /// -1 for synthesized transactions.
  int32_t client = -1;
  /// Workload tag (e.g. TPC-C NewOrder=1 / Payment=2, tenant id); purely
  /// informational.
  int32_t tag = 0;
  /// Node the request entered the system through (its sequencer).
  NodeId home_sequencer = 0;
  /// For kChunkMigration / provisioning markers: the migration target
  /// (chunk destination, added node, or leaving node respectively).
  NodeId migration_target = kInvalidNode;
  /// For provisioning markers: where each of the subject node's ranges
  /// will be re-homed (lets schedulers evict hot records to their future
  /// homes deterministically).
  std::vector<RangeMove> range_moves;
  /// Simulated time the client issued the request.
  SimTime submit_time = 0;
  /// Degraded-mode retry generation: 0 for the first submission, +1 per
  /// deterministic re-enqueue after a dead-node classification.
  uint32_t attempt = 0;
  /// Id of the original submission this retry descends from (kInvalidTxn
  /// for first submissions); anchors the deterministic backoff draw.
  TxnId retry_of = kInvalidTxn;

  /// Number of distinct storage operations this transaction performs.
  size_t NumOps() const { return read_set.size() + write_set.size(); }
};

/// A sequenced batch: the unit the total-order protocol orders and the unit
/// the prescient router analyzes.
struct Batch {
  BatchId id = 0;
  /// Time the leader finished ordering the batch (schedulers receive it
  /// one network hop later).
  SimTime sequenced_at = 0;
  std::vector<TxnRequest> txns;
};

/// Phases of a transaction's life used for the Fig. 7 latency breakdown.
struct LatencyBreakdown {
  SimTime scheduling_us = 0;      ///< queueing for batch + routing analysis
  SimTime lock_wait_us = 0;       ///< waiting for conservative ordered locks
  SimTime remote_wait_us = 0;     ///< waiting for reads/records off the wire
  SimTime storage_us = 0;         ///< local storage + executor work
  SimTime other_us = 0;           ///< worker queueing, commit notification
  SimTime total_us = 0;

  LatencyBreakdown& operator+=(const LatencyBreakdown& o);
};

}  // namespace hermes

#endif  // HERMES_TXN_TRANSACTION_H_
