// Property test: OwnershipMap (base + interval overlay + per-key overlay)
// against a brute-force reference model under random operation sequences.

#include <map>
#include <memory>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/partition_map.h"

namespace hermes::partition {
namespace {

constexpr uint64_t kKeys = 2000;
constexpr int kNodes = 5;

/// Reference model: fully materialized per-key state.
struct Reference {
  std::vector<NodeId> home;
  std::unordered_map<Key, NodeId> overlay;

  explicit Reference(const PartitionMap& base) {
    home.resize(kKeys);
    for (Key k = 0; k < kKeys; ++k) home[k] = base.Owner(k);
  }
  NodeId Owner(Key k) const {
    auto it = overlay.find(k);
    return it != overlay.end() ? it->second : home[k];
  }
};

class OwnershipPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OwnershipPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  OwnershipMap map(std::make_unique<RangePartitionMap>(kKeys, kNodes));
  Reference ref(map.base());

  for (int step = 0; step < 500; ++step) {
    const int op = static_cast<int>(rng.NextBounded(4));
    if (op == 0) {
      // Re-home a random interval.
      Key lo = rng.NextBounded(kKeys);
      Key hi = std::min<Key>(kKeys - 1, lo + rng.NextBounded(200));
      const NodeId target = static_cast<NodeId>(rng.NextBounded(kNodes));
      map.SetRangeOwner(lo, hi, target);
      for (Key k = lo; k <= hi; ++k) ref.home[k] = target;
    } else if (op == 1) {
      const Key k = rng.NextBounded(kKeys);
      const NodeId target = static_cast<NodeId>(rng.NextBounded(kNodes));
      map.SetKeyOwner(k, target);
      ref.overlay[k] = target;
    } else if (op == 2) {
      const Key k = rng.NextBounded(kKeys);
      map.ClearKeyOwner(k);
      ref.overlay.erase(k);
    } else {
      // Spot-check a batch of random keys.
      for (int i = 0; i < 20; ++i) {
        const Key k = rng.NextBounded(kKeys);
        ASSERT_EQ(map.Owner(k), ref.Owner(k)) << "key " << k;
        ASSERT_EQ(map.Home(k), ref.home[k]) << "key " << k;
      }
    }
  }
  // Full sweep at the end.
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_EQ(map.Owner(k), ref.Owner(k)) << "key " << k;
    ASSERT_EQ(map.Home(k), ref.home[k]) << "key " << k;
  }

  // Export/restore round-trips the interval state.
  OwnershipMap copy(std::make_unique<RangePartitionMap>(kKeys, kNodes));
  copy.RestoreIntervals(map.ExportIntervals());
  copy.RestoreKeyOverlay(map.key_overlay());
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_EQ(copy.Owner(k), map.Owner(k)) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OwnershipPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace hermes::partition
