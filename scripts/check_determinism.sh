#!/usr/bin/env sh
# Multi-salt determinism check, cross-process edition.
#
# The in-process determinism_perturbation_test already reruns the workload
# under several SetHashSalt() values. This wrapper additionally proves the
# HERMES_HASH_SALT *environment* path: it runs the test binary in separate
# processes under distinct env salts and requires every DECISION_DIGEST it
# prints — across all processes and all in-process salts — to be one value.
# Any difference means some decision depends on hash iteration order.
#
# The chaos profile does the same for a seeded fault plan (mid-run crash
# + rejoin + link drop/duplicate/jitter): every CHAOS_PROFILE line —
# decision digest, placement digest, state checksum, commit count, chaos
# counters and recovery times — must be one value across the env salts.
#
# The degraded profile covers the kCrashNoStall path: the cluster keeps
# sequencing through the outage, so the DEGRADED_PROFILE line additionally
# folds in the retry-transcript digest and the park/retry/watchdog
# counters — the full degraded decision history must be salt-invariant,
# not just the end state.
#
# The partition profile covers the network-partition path: a seeded
# plan cuts links (two-sided and one-way), runs a gray link, and lets
# the heartbeat failure detector drive membership epochs; its
# PARTITION_PROFILE line (digests, checksums, held/miss/suspect/restore
# counters, retry digest) must be one value across salts x threads.
#
# The trace block does the same for the observability subsystem: every
# TRACE_DIGEST line trace_determinism_test prints (the FNV-1a digest over
# the full structured event stream) must be one value across the env
# salts — the trace, like the decisions it observes, is a pure function
# of (config, seeds).
#
# Usage: scripts/check_determinism.sh [build-dir]   (default: build)

set -eu

BUILD_DIR="${1:-build}"
TEST_BIN="$BUILD_DIR/tests/determinism_perturbation_test"
CHAOS_BIN="$BUILD_DIR/tests/chaos_property_test"
TRACE_BIN="$BUILD_DIR/tests/trace_determinism_test"
LEASE_BIN="$BUILD_DIR/tests/replica_lease_test"

if [ ! -x "$TEST_BIN" ] || [ ! -x "$CHAOS_BIN" ] || [ ! -x "$TRACE_BIN" ] \
    || [ ! -x "$LEASE_BIN" ]; then
  echo "error: $TEST_BIN or $CHAOS_BIN not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 2
fi

# Env salts for the separate processes. 0 is the unsalted default; the
# others are arbitrary and distinct from the test's in-process constants.
SALTS="0 0x5bd1e9955bd1e995 0x94d049bb133111eb"

# Simulator thread counts for the perturbation runs: the epoch-parallel
# simulator (HERMES_SIM_THREADS, DESIGN.md §5 "Parallel simulation") must
# produce the same digests as the sequential oracle, so the multi-salt
# sweep doubles as a multi-thread sweep — every DECISION_DIGEST across
# salts x threads must still be one value.
SIM_THREADS="${SIM_THREADS:-1 8}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

for salt in $SALTS; do
  echo "== HERMES_HASH_SALT=$salt (sequential) =="
  HERMES_HASH_SALT="$salt" "$TEST_BIN" \
    --gtest_filter='DeterminismPerturbationTest.*' | tee -a "$out"
  for threads in $SIM_THREADS; do
    echo "== HERMES_HASH_SALT=$salt HERMES_SIM_THREADS=$threads =="
    HERMES_HASH_SALT="$salt" HERMES_SIM_THREADS="$threads" "$TEST_BIN" \
      --gtest_filter='DeterminismPerturbationTest.*' | tee -a "$out"
  done
done

digests="$(sed -n 's/.*DECISION_DIGEST \([0-9a-f]*\) .*/\1/p' "$out" | sort -u)"
count="$(printf '%s\n' "$digests" | grep -c . || true)"

if [ "$count" -ne 1 ]; then
  echo "FAIL: expected one decision digest across all salts, got $count:" >&2
  printf '%s\n' "$digests" >&2
  exit 1
fi

echo "OK: decision digest $digests identical across all env/in-process salts and sim thread counts ($SIM_THREADS)"

# Chaos profile: one seeded fault plan per process, identical outcome line
# (digests, checksum, commits, drop/dup counts, recovery times) required.
chaos_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out"' EXIT

for salt in $SALTS; do
  echo "== chaos HERMES_HASH_SALT=$salt =="
  HERMES_HASH_SALT="$salt" "$CHAOS_BIN" \
    --gtest_filter='ChaosScriptProfile.*' | tee -a "$chaos_out"
done

profiles="$(sed -n 's/^CHAOS_PROFILE //p' "$chaos_out" | sort -u)"
profile_count="$(printf '%s\n' "$profiles" | grep -c . || true)"

if [ "$profile_count" -ne 1 ]; then
  echo "FAIL: expected one chaos outcome across all salts, got $profile_count:" >&2
  printf '%s\n' "$profiles" >&2
  exit 1
fi

echo "OK: chaos outcome identical across all env salts:"
echo "  $profiles"

# Degraded profile: the same processes also print a DEGRADED_PROFILE line
# for a seeded no-stall plan (crash without intake pause). Its retry
# transcript digest and counters must be one value across the env salts.
degraded="$(sed -n 's/^DEGRADED_PROFILE //p' "$chaos_out" | sort -u)"
degraded_count="$(printf '%s\n' "$degraded" | grep -c . || true)"

if [ "$degraded_count" -ne 1 ]; then
  echo "FAIL: expected one degraded outcome across all salts, got $degraded_count:" >&2
  printf '%s\n' "$degraded" >&2
  exit 1
fi

echo "OK: degraded outcome identical across all env salts:"
echo "  $degraded"

# Trace digests: every TRACE_DIGEST printed by trace_determinism_test —
# across all processes and all in-process salts — must be one value.
trace_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out" "$trace_out"' EXIT

for salt in $SALTS; do
  echo "== trace HERMES_HASH_SALT=$salt =="
  HERMES_HASH_SALT="$salt" "$TRACE_BIN" \
    --gtest_filter='TraceDeterminismTest.TraceBitIdenticalAcrossSalts' \
    | tee -a "$trace_out"
done

trace_digests="$(sed -n 's/.*TRACE_DIGEST \([0-9a-f]*\) .*/\1/p' "$trace_out" | sort -u)"
trace_count="$(printf '%s\n' "$trace_digests" | grep -c . || true)"

if [ "$trace_count" -ne 1 ]; then
  echo "FAIL: expected one trace digest across all salts, got $trace_count:" >&2
  printf '%s\n' "$trace_digests" >&2
  exit 1
fi

echo "OK: trace digest $trace_digests identical across all env and in-process salts"

# Replication profile: the replica-lease digest oracle reruns a
# read-heavy leased workload (with a mid-run crash/rejoin lapsing every
# lease) per in-process salt and prints a REPLICATION_PROFILE line —
# decision/placement/trace digests, replica checksum, state checksum,
# commit and lease counters. The test's sim.threads stays 0 (oracle), so
# HERMES_SIM_THREADS steers the parallel simulator here: every line
# across env salts x thread counts must be one value.
lease_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out" "$trace_out" "$lease_out"' EXIT

for salt in $SALTS; do
  for threads in $SIM_THREADS; do
    echo "== replication HERMES_HASH_SALT=$salt HERMES_SIM_THREADS=$threads =="
    HERMES_HASH_SALT="$salt" HERMES_SIM_THREADS="$threads" "$LEASE_BIN" \
      --gtest_filter='ReplicaLeaseTest.DigestsInvariantAcrossThreadsAndSalts' \
      | tee -a "$lease_out"
  done
done

lease_profiles="$(sed -n 's/^REPLICATION_PROFILE //p' "$lease_out" | sort -u)"
lease_count="$(printf '%s\n' "$lease_profiles" | grep -c . || true)"

if [ "$lease_count" -ne 1 ]; then
  echo "FAIL: expected one replication profile across salts x threads, got $lease_count:" >&2
  printf '%s\n' "$lease_profiles" >&2
  exit 1
fi

echo "OK: replication profile identical across env salts x sim thread counts ($SIM_THREADS):"
echo "  $lease_profiles"

# Partition profile: a seeded partition plan (two-sided + one-way cuts,
# gray link, heartbeat failure detector converting sustained
# unreachability into membership epochs) runs once per env salt x thread
# count and prints a PARTITION_PROFILE line — decision/placement/trace
# digests, state checksum, replica checksum, commit count, held-message
# and heartbeat-miss counters, suspect/restore counts, and the degraded
# retry-transcript digest. The detector's verdicts and the holding-pen
# release order must be pure functions of (plan seed, config), so every
# line across salts x threads must be one value.
partition_bin="$BUILD_DIR/tests/partition_chaos_test"
if [ ! -x "$partition_bin" ]; then
  echo "error: $partition_bin not found — build first" >&2
  exit 2
fi

partition_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out" "$trace_out" "$lease_out" "$partition_out"' EXIT

for salt in $SALTS; do
  for threads in $SIM_THREADS; do
    echo "== partition HERMES_HASH_SALT=$salt HERMES_SIM_THREADS=$threads =="
    HERMES_HASH_SALT="$salt" HERMES_SIM_THREADS="$threads" "$partition_bin" \
      --gtest_filter='PartitionScriptProfile.*' | tee -a "$partition_out"
  done
done

partition_profiles="$(sed -n 's/^PARTITION_PROFILE //p' "$partition_out" | sort -u)"
partition_count="$(printf '%s\n' "$partition_profiles" | grep -c . || true)"

if [ "$partition_count" -ne 1 ]; then
  echo "FAIL: expected one partition profile across salts x threads, got $partition_count:" >&2
  printf '%s\n' "$partition_profiles" >&2
  exit 1
fi

echo "OK: partition profile identical across env salts x sim thread counts ($SIM_THREADS):"
echo "  $partition_profiles"

# Net profile: a seeded net-enabled lifetime (bounded-bandwidth links,
# envelope coalescing, credit backpressure; plus a mid-run AddNode and a
# partition cut/heal cycle draining a transmit queue into the pens) runs
# once per env salt x thread count and prints a NET_PROFILE line —
# decision/placement/trace digests, state checksum, commit count,
# envelope/coalesce/transmit/stall counters, and the per-class queueing
# p99s. Queueing, arbitration and coalescing must be pure functions of
# (config, send order, virtual time), so every line across salts x
# threads must be one value.
net_bin="$BUILD_DIR/tests/wire_determinism_test"
if [ ! -x "$net_bin" ]; then
  echo "error: $net_bin not found — build first" >&2
  exit 2
fi

net_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out" "$trace_out" "$lease_out" "$partition_out" "$net_out"' EXIT

for salt in $SALTS; do
  for threads in $SIM_THREADS; do
    echo "== net HERMES_HASH_SALT=$salt HERMES_SIM_THREADS=$threads =="
    HERMES_HASH_SALT="$salt" HERMES_SIM_THREADS="$threads" "$net_bin" \
      --gtest_filter='NetScriptProfile.*' | tee -a "$net_out"
  done
done

net_profiles="$(sed -n 's/^NET_PROFILE //p' "$net_out" | sort -u)"
net_count="$(printf '%s\n' "$net_profiles" | grep -c . || true)"

if [ "$net_count" -ne 1 ]; then
  echo "FAIL: expected one net profile across salts x threads, got $net_count:" >&2
  printf '%s\n' "$net_profiles" >&2
  exit 1
fi

echo "OK: net profile identical across env salts x sim thread counts ($SIM_THREADS):"
echo "  $net_profiles"
