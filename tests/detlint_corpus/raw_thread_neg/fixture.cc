// detlint-fixture: path=src/sim/raw_thread_neg.cc
#include <thread>

std::thread worker_;
