// detlint-fixture: path=src/engine/lane_confinement_pos.cc
// detlint:requires(exclusive)
void FinishTxn(uint64_t id);

void LaneStep(uint64_t id) {
  FinishTxn(id);
}
