#include "workload/multitenant.h"

#include <gtest/gtest.h>

namespace hermes::workload {
namespace {

MultiTenantConfig SmallMt() {
  MultiTenantConfig config;
  config.num_nodes = 4;
  config.tenants_per_node = 4;
  config.records_per_tenant = 10'000;
  config.rotation_us = 1'000'000;
  config.seed = 8;
  return config;
}

TEST(MultiTenantTest, TxnStaysWithinOneTenant) {
  MultiTenantWorkload gen(SmallMt());
  for (int i = 0; i < 2000; ++i) {
    const TxnRequest txn = gen.Next(0);
    const uint64_t tenant = txn.read_set.front() / gen.tenant_size();
    for (Key k : txn.read_set) EXPECT_EQ(k / gen.tenant_size(), tenant);
    EXPECT_EQ(txn.read_set, txn.write_set);  // read-modify-write
    EXPECT_EQ(txn.tag, static_cast<int32_t>(tenant));
  }
}

TEST(MultiTenantTest, HotNodeRotates) {
  MultiTenantWorkload gen(SmallMt());
  EXPECT_EQ(gen.HotNode(0), 0);
  EXPECT_EQ(gen.HotNode(1'000'000), 1);
  EXPECT_EQ(gen.HotNode(3'999'999), 3);
  EXPECT_EQ(gen.HotNode(4'000'000), 0);  // wraps
}

TEST(MultiTenantTest, HotFractionTargetsHotNode) {
  MultiTenantConfig config = SmallMt();
  config.hot_fraction = 0.9;
  MultiTenantWorkload gen(config);
  int hot = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnRequest txn = gen.Next(0);  // hot node 0
    if (txn.tag < config.tenants_per_node) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / kSamples, 0.9, 0.02);
}

TEST(MultiTenantTest, ColdTenantsStillServed) {
  MultiTenantWorkload gen(SmallMt());
  std::vector<int> tenant_hits(gen.num_tenants(), 0);
  for (int i = 0; i < 50'000; ++i) ++tenant_hits[gen.Next(0).tag];
  for (int t = 0; t < gen.num_tenants(); ++t) {
    EXPECT_GT(tenant_hits[t], 0) << "tenant " << t;
  }
}

TEST(MultiTenantTest, PerfectPartitioningAlignsTenantsToNodes) {
  MultiTenantWorkload gen(SmallMt());
  auto map = gen.PerfectPartitioning();
  for (int t = 0; t < gen.num_tenants(); ++t) {
    const Key first = static_cast<Key>(t) * gen.tenant_size();
    const Key last = first + gen.tenant_size() - 1;
    EXPECT_EQ(map->Owner(first), t / 4);
    EXPECT_EQ(map->Owner(last), t / 4);
  }
}

TEST(MultiTenantTest, SkewedPartitioningPilesOnNodeZero) {
  MultiTenantWorkload gen(SmallMt());
  auto map = gen.SkewedPartitioning(7);
  // First 7 tenants on node 0.
  for (int t = 0; t < 7; ++t) {
    EXPECT_EQ(map->Owner(static_cast<Key>(t) * gen.tenant_size()), 0);
  }
  // Remaining tenants spread over nodes 1..3.
  std::vector<int> counts(4, 0);
  for (int t = 7; t < gen.num_tenants(); ++t) {
    ++counts[map->Owner(static_cast<Key>(t) * gen.tenant_size())];
  }
  EXPECT_EQ(counts[0], 0);
  for (int n = 1; n < 4; ++n) EXPECT_GT(counts[n], 0);
}

TEST(MultiTenantTest, HashPartitioningScattersTenants) {
  MultiTenantWorkload gen(SmallMt());
  auto map = gen.HashPartitioning();
  // A single tenant's keys land on several nodes (creates distributed
  // transactions from an originally local workload).
  std::vector<bool> seen(4, false);
  for (Key k = 0; k < gen.tenant_size(); ++k) seen[map->Owner(k)] = true;
  int nodes = 0;
  for (bool s : seen) nodes += s;
  EXPECT_GE(nodes, 3);
}

TEST(MultiTenantTest, DeterministicForSeed) {
  MultiTenantWorkload a(SmallMt()), b(SmallMt());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Next(i * 1000).read_set, b.Next(i * 1000).read_set);
  }
}

}  // namespace
}  // namespace hermes::workload
