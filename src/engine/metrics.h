#ifndef HERMES_ENGINE_METRICS_H_
#define HERMES_ENGINE_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/telemetry.h"
#include "txn/transaction.h"

namespace hermes::engine {

/// Per-window cluster statistics (window length is configurable; defaults
/// to one simulated second).
struct WindowStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t distributed_commits = 0;  ///< commits touching >1 node
  uint64_t migrations = 0;           ///< records that changed node
  uint64_t busy_us = 0;              ///< summed worker busy time, all nodes
  uint64_t net_bytes = 0;            ///< wire bytes sent in the window
  /// Wire bytes delivered in the window. Equals `net_bytes` modulo in-flight
  /// skew on a healthy fabric; under fault injection the gap is the cost of
  /// dropped wire attempts (sent, never delivered).
  uint64_t net_bytes_received = 0;
  /// Per-class split of `net_bytes`: foreground (transaction-critical
  /// participant shipments) vs bulk (migration/replica/reship traffic) —
  /// the Fig. 8 foreground-vs-migration wire series.
  uint64_t net_fg_bytes = 0;
  uint64_t net_bulk_bytes = 0;
  /// DecisionDigest value sampled at the window boundary. A prefix of the
  /// run's decision stream: two replicas agreeing up to window w have
  /// identical values here, so the first differing window brackets where
  /// a determinism divergence happened.
  uint64_t decision_digest = 0;
};

/// Log-bucketed latency histogram (4 linear sub-buckets per power of two,
/// covering 1 us .. ~1100 s) with percentile queries. Bucketing error is
/// bounded by 1/4 of the bucket width (~6%).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(SimTime latency_us);

  uint64_t count() const { return count_; }

  /// Latency at quantile `q` in [0, 1] (upper bound of the bucket the
  /// quantile falls into); 0 when empty.
  SimTime Percentile(double q) const;

  /// Export view: (upper_bound_us, count) for every non-empty bucket,
  /// ascending, plus totals — the telemetry registry renders this as a
  /// Prometheus histogram.
  obs::HistogramSnapshot Snapshot() const;

 private:
  static constexpr int kSubBuckets = 4;
  static constexpr int kBuckets = 30 * kSubBuckets;
  static size_t BucketFor(SimTime v);
  static SimTime UpperBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
};

/// Collects commit events and sampled resource usage into fixed windows;
/// the bench binaries turn these into the paper's throughput-over-time,
/// CPU-usage and network-usage series (Figs. 6, 8, 12, 14) and the
/// latency breakdown (Fig. 7).
class Metrics {
 public:
  explicit Metrics(SimTime window_us);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void RecordCommit(SimTime when, const LatencyBreakdown& latency,
                    bool distributed, bool aborted);
  void RecordMigrations(SimTime when, uint64_t count);
  /// Adds worker busy time observed for the window containing `when`.
  void RecordBusy(SimTime when, uint64_t busy_us);
  void RecordNetBytes(SimTime when, uint64_t bytes);
  void RecordNetBytesReceived(SimTime when, uint64_t bytes);
  /// Adds wire bytes of one traffic class to `when`'s window.
  void RecordNetClassBytes(SimTime when, TrafficClass cls, uint64_t bytes);
  /// Snapshots the cluster's decision digest into `when`'s window.
  void RecordDecisionDigest(SimTime when, uint64_t digest);

  SimTime window_us() const { return window_us_; }
  const std::vector<WindowStats>& windows() const { return windows_; }

  uint64_t total_commits() const { return total_commits_; }
  uint64_t total_aborts() const { return total_aborts_; }
  uint64_t total_distributed() const { return total_distributed_; }

  /// Average latency phases across all committed transactions.
  LatencyBreakdown AverageLatency() const;

  /// End-to-end latency distribution of committed transactions.
  const LatencyHistogram& latency_histogram() const { return histogram_; }

  /// Committed transactions per simulated second over [from, to).
  double Throughput(SimTime from, SimTime to) const;

  /// Fraction of worker capacity used in window `w`, given total worker
  /// count across the cluster.
  double CpuUtilization(size_t w, int total_workers) const;

  /// Wire bytes per committed transaction in window `w`.
  double NetBytesPerTxn(size_t w) const;

 private:
  WindowStats& WindowAt(SimTime when);

  SimTime window_us_;
  std::vector<WindowStats> windows_;
  LatencyBreakdown latency_sum_;
  LatencyHistogram histogram_;
  uint64_t total_commits_ = 0;
  uint64_t total_aborts_ = 0;
  uint64_t total_distributed_ = 0;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_METRICS_H_
