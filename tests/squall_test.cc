#include "migration/squall.h"

#include <gtest/gtest.h>

namespace hermes::migration {
namespace {

TEST(SquallTest, SplitsMovesIntoChunks) {
  const auto txns = BuildChunkTransactions({{0, 2499, 3}}, 1000);
  ASSERT_EQ(txns.size(), 3u);
  EXPECT_EQ(txns[0].write_set.size(), 1000u);
  EXPECT_EQ(txns[1].write_set.size(), 1000u);
  EXPECT_EQ(txns[2].write_set.size(), 500u);
  for (const auto& t : txns) {
    EXPECT_EQ(t.kind, TxnKind::kChunkMigration);
    EXPECT_EQ(t.migration_target, 3);
  }
  EXPECT_EQ(txns[0].write_set.front(), 0u);
  EXPECT_EQ(txns[2].write_set.back(), 2499u);
}

TEST(SquallTest, ExactMultipleProducesFullChunks) {
  const auto txns = BuildChunkTransactions({{10, 29, 1}}, 10);
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0].write_set.front(), 10u);
  EXPECT_EQ(txns[0].write_set.back(), 19u);
  EXPECT_EQ(txns[1].write_set.front(), 20u);
  EXPECT_EQ(txns[1].write_set.back(), 29u);
}

TEST(SquallTest, MultipleMovesConcatenate) {
  const auto txns = BuildChunkTransactions({{0, 9, 1}, {100, 109, 2}}, 100);
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0].migration_target, 1);
  EXPECT_EQ(txns[1].migration_target, 2);
}

TEST(SquallTest, ZeroChunkSizeClampedToOne) {
  const auto txns = BuildChunkTransactions({{0, 2, 1}}, 0);
  EXPECT_EQ(txns.size(), 3u);
}

TEST(SquallTest, SingleKeyRange) {
  const auto txns = BuildChunkTransactions({{7, 7, 2}}, 1000);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0].write_set, (std::vector<Key>{7}));
}

}  // namespace
}  // namespace hermes::migration
