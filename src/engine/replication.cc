#include "engine/replication.h"

#include <cassert>

namespace hermes::engine {

ReplicaGroup::ReplicaGroup(const ClusterConfig& config, RouterKind kind,
                           const MapFactory& map_factory, int num_replicas) {
  assert(num_replicas >= 1);
  replicas_.reserve(num_replicas);
  for (int i = 0; i < num_replicas; ++i) {
    replicas_.push_back(
        std::make_unique<Cluster>(config, kind, map_factory()));
  }
  alive_.assign(num_replicas, true);
  WireTap(primary_);
}

void ReplicaGroup::WireTap(int index) {
  replicas_[index]->set_batch_tap([this, index](const Batch& batch) {
    last_batch_ = batch.id + 1;
    if (!batch.txns.empty()) last_txn_ = batch.txns.back().id + 1;
    for (int r = 0; r < num_replicas(); ++r) {
      if (r == index || !alive_[r]) continue;
      replicas_[r]->InjectBatch(batch);
    }
  });
}

void ReplicaGroup::Load() {
  for (auto& replica : replicas_) replica->Load();
}

void ReplicaGroup::Submit(TxnRequest txn,
                          TxnExecutor::CommitCallback on_commit) {
  replicas_[primary_]->Submit(std::move(txn), std::move(on_commit));
}

void ReplicaGroup::RunUntil(SimTime deadline) {
  // Advance in small slices so the primary's batches reach standbys with
  // bounded skew between the independent simulations.
  const SimTime slice = MsToSim(100);
  SimTime now = replicas_[primary_]->Now();
  while (now < deadline) {
    now = std::min(deadline, now + slice);
    for (int r = 0; r < num_replicas(); ++r) {
      if (alive_[r]) replicas_[r]->RunUntil(now);
    }
  }
}

void ReplicaGroup::Drain() {
  // The primary drains first (producing its final batches), then the
  // standbys consume everything that was fanned out.
  replicas_[primary_]->Drain();
  for (int r = 0; r < num_replicas(); ++r) {
    if (alive_[r] && r != primary_) replicas_[r]->Drain();
  }
}

int ReplicaGroup::Failover() {
  assert(num_replicas() >= 2);
  // Let the failed primary's in-flight work finish before it "dies" — a
  // real deployment would replay its unacknowledged suffix from the
  // total-order log; modeling the cutoff at a batch boundary keeps the
  // test surface focused on the takeover itself.
  replicas_[primary_]->Drain();
  return Promote();
}

int ReplicaGroup::FailoverNow() {
  assert(num_replicas() >= 2);
  // No drain: the primary drops dead with batches in flight. Everything it
  // sequenced already reached the standbys through the tap (the tap fires
  // at sequencing time, before the primary itself executes), so the
  // promoted standby's history is a prefix-complete copy of the total
  // order. Unsequenced requests pending at the dead primary are lost, as
  // they would be in any deployment that acknowledges after sequencing.
  return Promote();
}

int ReplicaGroup::Promote() {
  alive_[primary_] = false;
  replicas_[primary_]->set_batch_tap(nullptr);

  int next = -1;
  for (int r = 0; r < num_replicas(); ++r) {
    if (alive_[r]) {
      next = r;
      break;
    }
  }
  assert(next >= 0);
  Cluster& promoted = *replicas_[next];
  promoted.Drain();  // consume the fanned-out backlog
  // Continue the total order where the old primary left off.
  promoted.RestoreSequencerCounters(last_batch_, last_txn_);
  primary_ = next;
  WireTap(next);
  return next;
}

bool ReplicaGroup::ReplicasConsistent() const {
  uint64_t checksum = 0;
  bool first = true;
  for (int r = 0; r < num_replicas(); ++r) {
    if (!alive_[r]) continue;
    const uint64_t c = replicas_[r]->StateChecksum();
    if (first) {
      checksum = c;
      first = false;
    } else if (c != checksum) {
      return false;
    }
  }
  return true;
}

}  // namespace hermes::engine
