#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/thread_pool.h"

namespace hermes::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

/// Execution context of the calling thread: which simulator's event it is
/// running, on which lane, at what virtual time. Thread-local so each pool
/// worker (and the coordinator) carries its own epoch clock; saved and
/// restored around Run* so nested simulators (replay oracles running a
/// second cluster inside an event) see their own context.
struct ExecContext {
  const Simulator* sim = nullptr;
  int lane = kControlLane;
  SimTime now = 0;
};

thread_local ExecContext tls_ctx;

}  // namespace

Simulator::Simulator() = default;

Simulator::~Simulator() = default;

SimTime Simulator::Now() const {
  return tls_ctx.sim == this ? tls_ctx.now : now_;
}

int Simulator::current_lane() const {
  return tls_ctx.sim == this ? tls_ctx.lane : kControlLane;
}

bool Simulator::in_lane_context() const {
  return tls_ctx.sim == this && tls_ctx.lane != kControlLane;
}

void Simulator::ConfigureLanes(int num_lanes, int threads) {
  EnsureLanes(num_lanes);
  threads_ = std::max(threads, 0);
  if (threads_ > 0 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

void Simulator::EnsureLanes(int num_lanes) {
  assert(!in_lane_context() && "lane growth must happen in exclusive context");
  while (static_cast<int>(lanes_.size()) < num_lanes) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  ScheduleOnLaneAt(current_lane(), Now() + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  ScheduleOnLaneAt(current_lane(), when, std::move(fn));
}

void Simulator::ScheduleOnLane(int lane, SimTime delay,
                               std::function<void()> fn) {
  ScheduleOnLaneAt(lane, Now() + delay, std::move(fn));
}

void Simulator::ScheduleOnLaneAt(int lane, SimTime when,
                                 std::function<void()> fn) {
  // Past times fire "now", where now is the caller's epoch-local clock:
  // under partitioned execution there is no meaningful global "now" to
  // clamp to while lanes run, and the executing event's time is the only
  // clock the caller can observe anyway.
  const SimTime local_now = Now();
  if (when < local_now) when = local_now;
  if (lane < 0 || lane >= static_cast<int>(lanes_.size())) lane = kControlLane;
  if (in_lane_context()) {
    const int self = tls_ctx.lane;
    if (lane == self) {
      // Same-lane work needs no barrier: the push order is the lane's own
      // program order.
      lanes_[static_cast<size_t>(self)]->queue.Push(when, std::move(fn));
      return;
    }
    lanes_[static_cast<size_t>(self)]->staged.push_back(
        StagedOp{false, lane, when, std::move(fn)});
    return;
  }
  PushDirect(lane, when, std::move(fn));
}

void Simulator::PushDirect(int lane, SimTime when, std::function<void()> fn) {
  if (lane == kControlLane) {
    control_.Push(when, std::move(fn));
  } else {
    lanes_[static_cast<size_t>(lane)]->queue.Push(when, std::move(fn));
  }
}

void Simulator::Defer(std::function<void()> fn) {
  if (in_lane_context()) {
    lanes_[static_cast<size_t>(tls_ctx.lane)]->staged.push_back(
        StagedOp{true, kControlLane, 0, std::move(fn)});
    return;
  }
  fn();
}

void Simulator::MixPop(SimTime when, int lane, uint64_t seq) {
  if (digest_ == nullptr) return;
  digest_->Mix(when);
  digest_->Mix((static_cast<uint64_t>(lane + 1) << 40) ^ seq);
}

void Simulator::ExecuteLane(int i, SimTime t) {
  Lane& lane = *lanes_[static_cast<size_t>(i)];
  const ExecContext saved = tls_ctx;
  tls_ctx = ExecContext{this, i, t};
  while (!lane.queue.empty() && lane.queue.NextTime() == t) {
    EventQueue::Popped e = lane.queue.PopEntry();
    lane.popped_seqs.push_back(e.seq);
    e.fn();
  }
  tls_ctx = saved;
}

void Simulator::RunUntil(SimTime deadline) {
  RunLoop(deadline, /*run_all=*/false);
}

void Simulator::RunAll() { RunLoop(0, /*run_all=*/true); }

void Simulator::RunLoop(SimTime deadline, bool run_all) {
  const ExecContext entry_ctx = tls_ctx;
  for (;;) {
    // Next epoch: the earliest pending timestamp across all queues.
    SimTime t = control_.empty() ? kNoEvent : control_.NextTime();
    for (const auto& lane : lanes_) {
      if (!lane->queue.empty()) t = std::min(t, lane->queue.NextTime());
    }
    if (t == kNoEvent || (!run_all && t > deadline)) break;
    now_ = t;

    // 1. Control slice: exclusive, on this thread.
    while (!control_.empty() && control_.NextTime() == t) {
      EventQueue::Popped e = control_.PopEntry();
      MixPop(t, kControlLane, e.seq);
      ++events_executed_;
      tls_ctx = ExecContext{this, kControlLane, t};
      e.fn();
      tls_ctx = entry_ctx;
    }

    // 2. Lane slice: every lane with events at t, concurrently when a
    // pool is configured.
    active_lanes_.clear();
    for (int i = 0; i < static_cast<int>(lanes_.size()); ++i) {
      const EventQueue& q = lanes_[static_cast<size_t>(i)]->queue;
      if (!q.empty() && q.NextTime() == t) active_lanes_.push_back(i);
    }
    if (active_lanes_.empty()) continue;
    if (pool_ != nullptr && threads_ > 0) {
      pool_->RunBatch(static_cast<int>(active_lanes_.size()),
                      [this, t](int k) {
                        ExecuteLane(active_lanes_[static_cast<size_t>(k)], t);
                      });
    } else {
      for (int i : active_lanes_) ExecuteLane(i, t);
    }

    // 3. Barrier: fold pop transcripts and apply staged work in ascending
    // lane order — the merge order is part of the total order and does
    // not depend on which thread ran which lane.
    for (int i : active_lanes_) {
      Lane& lane = *lanes_[static_cast<size_t>(i)];
      for (uint64_t seq : lane.popped_seqs) MixPop(t, i, seq);
      events_executed_ += lane.popped_seqs.size();
      lane.popped_seqs.clear();
    }
    for (int i : active_lanes_) {
      // Effects run exclusively (and may push directly or Defer inline),
      // so the staged vector cannot grow while we drain it.
      std::vector<StagedOp> ops =
          std::move(lanes_[static_cast<size_t>(i)]->staged);
      lanes_[static_cast<size_t>(i)]->staged.clear();
      for (StagedOp& op : ops) {
        if (op.is_effect) {
          tls_ctx = ExecContext{this, kControlLane, t};
          op.fn();
          tls_ctx = entry_ctx;
        } else {
          PushDirect(op.lane, op.when, std::move(op.fn));
        }
      }
    }
  }
  if (!run_all && now_ < deadline) now_ = deadline;
  tls_ctx = entry_ctx;
}

bool Simulator::idle() const {
  if (!control_.empty()) return false;
  for (const auto& lane : lanes_) {
    if (!lane->queue.empty()) return false;
  }
  return true;
}

}  // namespace hermes::sim
