#!/usr/bin/env sh
# Runs the headline benchmarks and emits BENCH_overall.json: the Fig. 6
# overall-throughput summary (parsed from bench_fig06_overall's series
# table) plus the routing microbenchmark numbers (google-benchmark JSON
# from bench_micro_routing), one file for dashboards and regression
# tracking. EXPERIMENTS.md records the paper-vs-measured comparison.
#
# Usage: scripts/bench_all.sh
#   BUILD_DIR  cmake build tree containing bench/ (default: build)
#   OUT        output JSON path (default: BENCH_overall.json in repo root)
#   FILTER     bench_micro_routing --benchmark_filter (default: all)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_overall.json}"
FILTER="${FILTER:-.}"
FIG06="$BUILD_DIR/bench/bench_fig06_overall"
MICRO="$BUILD_DIR/bench/bench_micro_routing"

for bin in "$FIG06" "$MICRO"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

fig06_txt="$(mktemp)"
micro_json="$(mktemp)"
trap 'rm -f "$fig06_txt" "$micro_json"' EXIT

echo "== $FIG06 =="
"$FIG06" | tee "$fig06_txt"

echo "== $MICRO =="
"$MICRO" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$micro_json" \
  --benchmark_out_format=json

# Merge: the fig06 summary rows ("  <system> <mean> (<delta>% vs calvin)")
# become {"system": ..., "mean_txn_per_window": ..., "vs_calvin_pct": ...}
# and the google-benchmark JSON is embedded whole under "micro_routing".
python3 - "$fig06_txt" "$micro_json" "$OUT" <<'EOF'
import json
import re
import sys

fig06_path, micro_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

summary = []
in_summary = False
for line in open(fig06_path):
    if line.startswith("summary ("):
        in_summary = True
        continue
    if not in_summary:
        continue
    m = re.match(r"\s+(\S+)\s+(\d+)\s+\(([+-]\d+)% vs calvin\)", line)
    if m:
        summary.append({
            "system": m.group(1),
            "mean_txn_per_window": int(m.group(2)),
            "vs_calvin_pct": int(m.group(3)),
        })

if not summary:
    sys.exit("error: no summary rows parsed from bench_fig06_overall output")

with open(micro_path) as f:
    micro = json.load(f)

with open(out_path, "w") as f:
    json.dump({"fig06_overall": summary, "micro_routing": micro}, f,
              indent=2, sort_keys=True)
    f.write("\n")
EOF

echo "wrote $OUT"
