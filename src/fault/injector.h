#ifndef HERMES_FAULT_INJECTOR_H_
#define HERMES_FAULT_INJECTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "engine/cluster.h"
#include "engine/replication.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "fault/link_chaos.h"
#include "obs/telemetry.h"
#include "partition/partition_map.h"
#include "storage/checkpoint.h"

namespace hermes::fault {

/// What one crash/rejoin cycle cost, in virtual time.
struct RecoveryStats {
  NodeId node = kInvalidNode;
  bool no_stall = false;   ///< kCrashNoStall cycle (degraded mode)
  SimTime crash_at = 0;    ///< fault fired
  SimTime drained_at = 0;  ///< cluster quiesced (== crash_at for no-stall)
  SimTime rejoin_at = 0;   ///< scheduled rejoin point
  SimTime replay_us = 0;   ///< virtual cost of checkpoint+log replay
  SimTime resumed_at = 0;  ///< node serving again
  /// When cluster-wide intake accepted new work again: the stall model
  /// pauses the sequencer until the node is rebuilt, so this equals
  /// resumed_at; degraded mode never pauses, so it equals crash_at.
  SimTime intake_resumed_at = 0;
  size_t replayed_batches = 0;

  /// Virtual time the cluster could not accept new work. NOT the same
  /// thing as time_to_recover_us(): the stall ends when cluster-wide
  /// intake resumes (zero in degraded mode), recovery ends when the
  /// crashed node serves again.
  SimTime stall_us() const { return intake_resumed_at - crash_at; }
  /// Virtual time from the fault to the node serving again.
  SimTime time_to_recover_us() const { return resumed_at - crash_at; }
};

/// What one partition cut/heal cycle looked like, in virtual time.
struct PartitionStats {
  NodeId node = kInvalidNode;
  PartitionMode mode = PartitionMode::kTwoSided;
  SimTime cut_at = 0;
  SimTime healed_at = 0;       ///< 0 while the cut is still up
  uint64_t held_released = 0;  ///< messages parked during this cut
};

/// Drives a Cluster (or ReplicaGroup) through a FaultPlan in virtual time.
///
/// Crash model — stall-and-rebuild: this prototype hosts exactly one
/// partition per node with no intra-group partition replication (replicas
/// are whole-cluster copies in other data centers), so a node crash makes
/// its partition unavailable and the cluster stalls:
///   1. kCrash: pause sequencer intake (submissions accumulate but nothing
///      new enters the total order), drain in-flight work to quiescence —
///      records in flight TOWARD the dead node still land first, modeling
///      the receiver's transport buffer surviving into the rebuild — then
///      discard the node's volatile store.
///   2. kRejoin: rebuild the node's store by running §4.3 recovery in a
///      SHADOW cluster (restore latest checkpoint, replay the live command
///      log's suffix — determinism makes the shadow's store bit-identical
///      to what the live node held at the drain point), copy the rebuilt
///      store back, refresh the checkpoint, and resume intake at
///      max(rejoin time, drain time) + replay cost.
///   3. kCrashNoStall (degraded mode, DESIGN.md §5): the victim's store is
///      lost mid-flight but the cluster keeps sequencing — new batches
///      route around the dead node, already-ordered touchers are parked or
///      UNDO-aborted and retried on a deterministic backoff, and the
///      matching kRejoin charges the background replay cost before the
///      node serves again (no drain, no intake pause at any point).
///   4. kFailover (ReplicaGroup mode): the primary dies mid-flight with NO
///      drain; a standby is promoted on the already-fanned-out batch
///      stream (ReplicaGroup::FailoverNow).
///   5. kPartitionStart/kPartitionHeal (DESIGN.md §5 "Partitions & failure
///      detection"): the victim's links are cut in the network's
///      reachability matrix (two-sided or one-way per the event's mode);
///      payloads sent into the cut park in per-link FIFO pens and release
///      on heal. The cluster's heartbeat failure detector — required for
///      partition plans — converts sustained unreachability into the same
///      membership epochs kCrashNoStall uses, and restores membership
///      after the heal via its confirmation hysteresis. Drain() then runs
///      the partition oracle: pens drained, nothing crossed a live cut,
///      and the command log replays to the same placements and state.
/// Link chaos (drops/duplicates/jitter) is installed for the whole run; a
/// gray window (plan.link.gray_*) additionally degrades one node's links —
/// slower, lossier, heartbeats eaten with high probability — without
/// cutting anything; the injector arms the detector across the window.
///
/// Everything is a pure function of (config, workload seed, plan seed):
/// the chaos property test reruns plans under several hash salts and
/// asserts bit-identical digests, commit counts and recovery times.
class FaultInjector {
 public:
  using MapFactory =
      std::function<std::unique_ptr<partition::PartitionMap>()>;

  /// Single-cluster mode (kCrash/kRejoin events; kFailover events are
  /// rejected). The cluster must be Load()ed and idle: the constructor
  /// takes the initial checkpoint recovery rebuilds from, and requires
  /// config.enable_command_log.
  FaultInjector(engine::Cluster* cluster, const FaultPlan& plan,
                MapFactory map_factory);

  /// Replica-group mode (kFailover events; kCrash/kRejoin are rejected —
  /// intra-replica node crashes are a single-cluster concern). Installs an
  /// independently seeded LinkChaos per replica (each replica is its own
  /// data center with its own fabric).
  FaultInjector(engine::ReplicaGroup* group, const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Advances virtual time to `deadline`, applying every fault event due
  /// on the way. A rejoin whose replay cost pushes the resume point past
  /// `deadline` overshoots it (time never runs backwards); Now() reports
  /// the actual position.
  void RunUntil(SimTime deadline);

  /// Applies any remaining events (a crashed node is always rejoined so
  /// the run ends whole), then drains the cluster/group.
  SimTime Drain();

  /// Runs the monitor's record-singularity check at every whole-state
  /// point: after a crash's drain (before the store is discarded) and
  /// after a rejoin's rebuild. Single-cluster mode only.
  void set_monitor(InvariantMonitor* monitor) { monitor_ = monitor; }

  SimTime Now() const;
  const std::vector<RecoveryStats>& recoveries() const { return recoveries_; }
  const std::vector<PartitionStats>& partitions() const { return partitions_; }
  int failovers_applied() const {
    return static_cast<int>(failovers_applied_.value());
  }
  size_t events_applied() const { return next_event_; }
  const FaultPlan& plan() const { return plan_; }

  /// Deferred-refresh observability (single-cluster mode).
  bool refresh_pending() const { return refresh_pending_; }
  int checkpoint_refreshes() const {
    return static_cast<int>(checkpoint_refreshes_.value());
  }
  /// First batch the next replay would have to process: a refreshed
  /// checkpoint pushes this forward, shortening that replay.
  BatchId baseline_next_batch() const { return checkpoint_.next_batch; }

 private:
  void Apply(const FaultEvent& event);
  void RunMonitor(const char* what);
  void ApplyCrash(const FaultEvent& event);
  void ApplyRejoin(const FaultEvent& event);
  void ApplyCrashNoStall(const FaultEvent& event);
  void ApplyRejoinNoStall(const FaultEvent& event);
  void ApplyFailover();
  void ApplyPartitionStart(const FaultEvent& event);
  void ApplyPartitionHeal(const FaultEvent& event);
  void AdvanceTo(SimTime t);
  void MaybeRefreshCheckpoint();

  engine::Cluster* cluster_ = nullptr;
  engine::ReplicaGroup* group_ = nullptr;
  FaultPlan plan_;
  MapFactory map_factory_;
  std::vector<std::unique_ptr<LinkChaos>> chaos_;
  storage::Checkpoint checkpoint_;
  InvariantMonitor* monitor_ = nullptr;

  size_t next_event_ = 0;
  NodeId down_node_ = kInvalidNode;
  bool down_no_stall_ = false;
  SimTime drained_at_ = 0;
  std::vector<RecoveryStats> recoveries_;
  obs::Counter failovers_applied_;
  /// Deferred checkpoint refresh (degraded mode): a no-stall rejoin under
  /// load has no quiescent point to snapshot at, so the refresh is armed
  /// and retaken at the next quiescent window instead of silently keeping
  /// the stale baseline (which would lengthen every later replay).
  bool refresh_pending_ = false;
  obs::Counter checkpoint_refreshes_;
  bool had_no_stall_ = false;

  // --- Partition state (single-cluster mode). ---
  NodeId partitioned_node_ = kInvalidNode;
  uint64_t held_at_cut_ = 0;  ///< Network::total_held() when the cut landed
  std::vector<PartitionStats> partitions_;
  bool had_partition_ = false;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_INJECTOR_H_
