#include "core/hermes_router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>

#include "common/hash.h"

namespace hermes::core {
namespace {

using routing::Access;
using routing::RoutedTxn;
using routing::RoutePlan;

/// Sorted, deduplicated copy of a key list (reference path only; the
/// optimized path dedups in place inside the interner's arena).
std::vector<Key> SortedUnique(const std::vector<Key>& keys) {
  std::vector<Key> out = keys;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

HermesRouter::HermesRouter(partition::OwnershipMap* ownership,
                           const CostModel* costs, int num_nodes,
                           const HermesConfig& config)
    : Router(ownership, costs, num_nodes),
      config_(config),
      fusion_table_(config.fusion_table_capacity, config.eviction_policy) {
  // Degraded mode: never pick an eviction victim whose homeward shipment
  // would touch a dead node (either end). Such entries keep their slot
  // until the node rejoins; with no membership view installed the filter
  // always passes, so fault-free routing is unchanged.
  fusion_table_.set_eviction_filter([this](Key k) {
    return NodeAlive(ownership_->Owner(k)) && NodeAlive(ownership_->Home(k));
  });
}

RoutePlan HermesRouter::RouteBatch(const Batch& batch) {
  RoutePlan plan;
  plan.routing_cost_us = AnalysisCost(batch.txns.size());
  plan.txns.reserve(batch.txns.size());

  // Replica-lease batch boundary: lapse / revoke / grant decisions are
  // evaluated before any transaction of the batch routes, and ride the
  // first routed transaction so dispatch order puts them ahead of every
  // access that depends on them.
  lease_ops_.clear();
  if (lease_table_.enabled()) {
    const MembershipView* view = membership();
    lease_table_.BeginBatch(view == nullptr ? 0 : view->epoch(),
                            view == nullptr || !view->any_down(),
                            candidate_nodes(), *ownership_, &lease_ops_);
  }

  // Special transactions (provisioning markers, chunk migrations) are
  // barriers: regular transactions are reordered only within the runs
  // between them, preserving the relative order the total-order protocol
  // fixed for cluster-topology changes.
  std::vector<const TxnRequest*> segment;
  for (const TxnRequest& txn : batch.txns) {
    if (txn.kind == TxnKind::kRegular) {
      segment.push_back(&txn);
      continue;
    }
    RouteSegment(segment, &plan.txns);
    segment.clear();
    if (txn.kind == TxnKind::kChunkMigration) {
      plan.txns.push_back(PlanChunkMigration(txn));
    } else {
      plan.txns.push_back(PlanProvisioning(txn));
    }
  }
  RouteSegment(segment, &plan.txns);
  if (!lease_ops_.empty() && !plan.txns.empty()) {
    std::vector<routing::ReplicaOp>& ops = plan.txns.front().replica_ops;
    ops.insert(ops.begin(), lease_ops_.begin(), lease_ops_.end());
  }
  return plan;
}

void HermesRouter::RouteSegment(const std::vector<const TxnRequest*>& txns,
                                std::vector<RoutedTxn>* out) {
  if (config_.use_reference_routing) {
    RouteSegmentReference(txns, out);
  } else {
    RouteSegmentOptimized(txns, out);
  }
}

// ---------------------------------------------------------------------------
// Optimized implementation.
//
// The reference implementation below is O(b²·n) per segment: every Step-1
// placement rescans all b candidates, and all per-key state (`view`,
// `readers_of`, `pos_readers`, ...) lives in per-batch hash maps.
// This path computes the bit-for-bit identical plan in
// O((K + b + R)·log + R·n) where K is the number of distinct keys and R the
// number of fusion rescores:
//  - keys are interned to dense ids once, turning every map lookup into a
//    vector index;
//  - Step-1 selection uses a bucket queue over remote-read counts with
//    lazy revalidation (amortized O(log b) per placement, same
//    fewest-remote-reads / earliest-submission order);
//  - Step-3 hoists the per-candidate edge computation out of the per-node
//    loop: added_edges(p, u) = hist[from] - hist[u] over one histogram of
//    the move's "edge nodes", so each overloaded position costs
//    O(keys + n) instead of O(keys · n);
//  - all working state lives in scratch_, cleared (not freed) between
//    batches: steady-state routing performs no heap allocation.
// ---------------------------------------------------------------------------
void HermesRouter::RouteSegmentOptimized(
    const std::vector<const TxnRequest*>& txns, std::vector<RoutedTxn>* out) {
  const int32_t b = static_cast<int32_t>(txns.size());
  if (b == 0) return;
  // Route over the alive subset of active nodes (== active_nodes_ unless
  // degraded mode marked a node down); dead nodes never appear as a
  // candidate destination, so new batches route around the victim.
  const std::vector<NodeId>& nodes = candidate_nodes();
  const int32_t n = static_cast<int32_t>(nodes.size());
  assert(n > 0);
  RouterScratch& s = scratch_;

  // Dense index over candidate nodes (sorted ascending); -1 for nodes
  // outside the candidate set (inactive or dead).
  auto node_index = [&](NodeId node) -> int32_t {
    const auto it = std::lower_bound(nodes.begin(), nodes.end(), node);
    if (it == nodes.end() || *it != node) return -1;
    return static_cast<int32_t>(it - nodes.begin());
  };

  // ---- Intern this segment's keys to dense ids. ----
  s.interner.BeginBatch();
  s.read_span.resize(b);
  s.write_span.resize(b);
  int32_t max_reads = 0;
  for (int32_t j = 0; j < b; ++j) {
    s.read_span[j] = s.interner.AddSet(txns[j]->read_set);
    s.write_span[j] = s.interner.AddSet(txns[j]->write_set);
    max_reads = std::max(max_reads, s.read_span[j].size());
  }
  s.interner.Seal();
  const int32_t num_keys = s.interner.num_keys();

  // Pre-batch owner of every key. Sound to cache: ownership_ is only
  // mutated by Materialize / special transactions, which run after
  // Steps 1–3 of this segment complete.
  s.base_owner.resize(num_keys);
  s.base_owner_idx.resize(num_keys);
  s.cur_owner.resize(num_keys);
  s.cur_owner_idx.resize(num_keys);
  for (int32_t id = 0; id < num_keys; ++id) {
    const NodeId owner = ownership_->Owner(s.interner.KeyOf(id));
    s.base_owner[id] = owner;
    s.base_owner_idx[id] = node_index(owner);
    s.cur_owner[id] = owner;
    s.cur_owner_idx[id] = s.base_owner_idx[id];
  }

  // key id -> candidates reading / writing it (ascending candidate index,
  // because the fill pass walks candidates in order).
  s.readers_of.Reset(num_keys);
  s.writers_of.Reset(num_keys);
  for (int32_t j = 0; j < b; ++j) {
    for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
      s.readers_of.CountItem(id);
    }
    for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
      s.writers_of.CountItem(id);
    }
  }
  s.readers_of.CommitCounts();
  s.writers_of.CommitCounts();
  for (int32_t j = 0; j < b; ++j) {
    for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
      s.readers_of.Fill(id, j);
    }
    for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
      s.writers_of.Fill(id, j);
    }
  }

  // ---- Step 1: order and route requests by minimizing remote reads. ----
  s.read_cnt.assign(static_cast<size_t>(b) * n, 0);
  s.write_cnt.assign(static_cast<size_t>(b) * n, 0);
  s.best_idx.resize(b);
  s.best_remote.resize(b);
  s.placed.assign(b, 0);

  auto compute_best = [&](int32_t j) {
    const int32_t nreads = s.read_span[j].size();
    const int32_t* rc = s.read_cnt.data() + static_cast<size_t>(j) * n;
    const int32_t* wc = s.write_cnt.data() + static_cast<size_t>(j) * n;
    int32_t best_idx = 0;
    int32_t best_remote = nreads + 1;
    int32_t best_wlocal = -1;
    for (int32_t i = 0; i < n; ++i) {
      const int32_t remote = nreads - rc[i];
      const int32_t wlocal = wc[i];
      // Ties: prefer more local write keys, then the lower node id (scan
      // order is ascending node id, so strict improvement keeps it).
      if (remote < best_remote ||
          (remote == best_remote && wlocal > best_wlocal)) {
        best_remote = remote;
        best_wlocal = wlocal;
        best_idx = i;
      }
    }
    s.best_idx[j] = best_idx;
    s.best_remote[j] = best_remote;
  };

  for (int32_t j = 0; j < b; ++j) {
    int32_t* rc = s.read_cnt.data() + static_cast<size_t>(j) * n;
    int32_t* wc = s.write_cnt.data() + static_cast<size_t>(j) * n;
    for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
      const int32_t oi = s.cur_owner_idx[id];
      if (oi >= 0) ++rc[oi];
    }
    for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
      const int32_t oi = s.cur_owner_idx[id];
      if (oi >= 0) ++wc[oi];
    }
    compute_best(j);
  }

  // Every best_remote is in [0, max_reads]: candidates live in a bucket
  // per remote-read count, re-pushed on rescore, stale entries dropped at
  // pop time. With reordering ablated, placement follows sequencer order
  // and the queue is unused.
  const bool reorder = config_.enable_reorder;
  if (reorder) {
    s.bucket_queue.Reset(max_reads + 1);
    for (int32_t j = 0; j < b; ++j) s.bucket_queue.Push(s.best_remote[j], j);
  }

  s.order.clear();
  s.route.assign(b, kInvalidNode);
  s.route_idx.assign(b, -1);

  auto rescore = [&](int32_t t, int32_t old_idx, int32_t new_idx,
                     std::vector<int32_t>& cnt) {
    int32_t* c = cnt.data() + static_cast<size_t>(t) * n;
    if (old_idx >= 0) --c[old_idx];
    ++c[new_idx];
    const int32_t prev_remote = s.best_remote[t];
    compute_best(t);
    if (reorder && s.best_remote[t] != prev_remote) {
      s.bucket_queue.Push(s.best_remote[t], t);
    }
  };

  for (int32_t step = 0; step < b; ++step) {
    // Pick the unplaced candidate with the fewest remote reads; ties go
    // to the earliest submission (the bucket heaps pop ascending index).
    const int32_t pick =
        reorder ? s.bucket_queue.Pop([&](int32_t idx, int32_t v) {
          return !s.placed[idx] && s.best_remote[idx] == v;
        })
                : step;
    s.placed[pick] = 1;
    const int32_t x_idx = s.best_idx[pick];
    const NodeId x = nodes[x_idx];
    s.route[pick] = x;
    s.route_idx[pick] = x_idx;
    s.order.push_back(pick);

    // Data fusion: the write-set keys of the placed transaction move to
    // its route, which re-scores transactions that touch those keys.
    for (int32_t id : s.interner.IdsOf(s.write_span[pick])) {
      if (s.cur_owner[id] == x) continue;
      const int32_t old_idx = s.cur_owner_idx[id];
      s.cur_owner[id] = x;
      s.cur_owner_idx[id] = x_idx;
      for (int32_t r : s.readers_of.Items(id)) {
        if (!s.placed[r]) rescore(r, old_idx, x_idx, s.read_cnt);
      }
      for (int32_t w : s.writers_of.Items(id)) {
        if (!s.placed[w]) rescore(w, old_idx, x_idx, s.write_cnt);
      }
    }
  }

  // ---- Step 2: loads, threshold, overloaded / underloaded sets. ----
  const auto theta = static_cast<int64_t>(
      std::ceil(static_cast<double>(b) / n * (1.0 + config_.alpha)));
  s.load.assign(n, 0);
  for (int32_t j = 0; j < b; ++j) ++s.load[s.route_idx[j]];
  bool any_over = false;
  for (int32_t i = 0; i < n; ++i) any_over |= s.load[i] > theta;

  // ---- Step 3: backward rerouting off overloaded nodes. ----
  if (any_over && config_.enable_rebalance) {
    // Reader / writer positions per key id, ascending B' position.
    s.pos_readers.Reset(num_keys);
    s.pos_writers.Reset(num_keys);
    for (int32_t p = 0; p < b; ++p) {
      const int32_t j = s.order[p];
      for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
        s.pos_readers.CountItem(id);
      }
      for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
        s.pos_writers.CountItem(id);
      }
    }
    s.pos_readers.CommitCounts();
    s.pos_writers.CommitCounts();
    for (int32_t p = 0; p < b; ++p) {
      const int32_t j = s.order[p];
      for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
        s.pos_readers.Fill(id, p);
      }
      for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
        s.pos_writers.Fill(id, p);
      }
    }

    // Dense node index of key id's placement just before position pos:
    // the latest earlier writer's (live) route, else the pre-batch owner.
    auto owner_idx_at = [&](int32_t pos, int32_t id) -> int32_t {
      const auto ws = s.pos_writers.Items(id);
      const auto lb = std::lower_bound(ws.begin(), ws.end(), pos);
      if (lb != ws.begin()) return s.route_idx[s.order[*std::prev(lb)]];
      return s.base_owner_idx[id];
    };

    for (int delta = 1; delta <= config_.max_delta; ++delta) {
      bool still_over = false;
      for (int32_t step = 0; step < b; ++step) {
        const int32_t p = config_.backward_pass ? b - 1 - step : step;
        const int32_t j = s.order[p];
        const int32_t from_idx = s.route_idx[j];
        if (s.load[from_idx] <= theta) continue;  // not overloaded

        // Histogram over the move's "edge nodes": the owner feeding each
        // of this txn's reads, plus the routes of later readers inside
        // each write key's window (up to the next writer). Moving the txn
        // from `from` to `to` changes the remote-edge count by
        //   sum over edge nodes of (node != to) - (node != from)
        //     = hist[from] - hist[to],
        // so one O(keys) histogram prices all n candidate destinations.
        // Nodes outside the active set contribute to neither side.
        s.edge_hist.assign(n, 0);
        for (int32_t id : s.interner.IdsOf(s.read_span[j])) {
          const int32_t at = owner_idx_at(p, id);
          if (at >= 0) ++s.edge_hist[at];
        }
        for (int32_t id : s.interner.IdsOf(s.write_span[j])) {
          const auto ws = s.pos_writers.Items(id);
          const auto self = std::upper_bound(ws.begin(), ws.end(), p);
          const int32_t limit = self == ws.end() ? b : *self;
          const auto rs = s.pos_readers.Items(id);
          for (auto it = std::upper_bound(rs.begin(), rs.end(), p);
               it != rs.end() && *it <= limit; ++it) {
            ++s.edge_hist[s.route_idx[s.order[*it]]];
          }
        }

        const int32_t c_from = s.edge_hist[from_idx];
        int32_t best_cost = 0;
        int32_t best_u = -1;
        for (int32_t u = 0; u < n; ++u) {
          if (s.load[u] >= theta) continue;  // not underloaded
          const int32_t cost = c_from - s.edge_hist[u];
          if (best_u < 0 || cost < best_cost) {
            best_u = u;
            best_cost = cost;
          }
        }
        if (best_u >= 0 && best_cost <= delta) {
          --s.load[from_idx];
          ++s.load[best_u];
          s.route[j] = nodes[best_u];
          s.route_idx[j] = best_u;
          ++stats_.reroutes;
        }
      }
      for (int32_t i = 0; i < n; ++i) still_over |= s.load[i] > theta;
      if (!still_over) break;
    }
  }

  // ---- Final pass: materialize plans against the live ownership map. ----
  for (int32_t p = 0; p < b; ++p) {
    const int32_t j = s.order[p];
    if (j != p) ++stats_.reorders;
    out->push_back(Materialize(*txns[j], s.route[j]));
  }
}

// ---------------------------------------------------------------------------
// Reference implementation: the straightforward transcription of Algorithm 1,
// kept as the oracle for hermes_equivalence_test (and selectable via
// HermesConfig::use_reference_routing for debugging / benchmarking).
// ---------------------------------------------------------------------------
void HermesRouter::RouteSegmentReference(
    const std::vector<const TxnRequest*>& txns, std::vector<RoutedTxn>* out) {
  const size_t b = txns.size();
  if (b == 0) return;
  // Same alive-filtered candidate set as the optimized path (the two
  // must stay bit-for-bit identical).
  const std::vector<NodeId>& nodes = candidate_nodes();
  const int n = static_cast<int>(nodes.size());
  assert(n > 0);

  // Dense index over candidate nodes (sorted ascending).
  HashMap<NodeId, int> node_index;
  for (int i = 0; i < n; ++i) node_index[nodes[i]] = i;

  // ---- Step 1: order and route requests by minimizing remote reads. ----
  struct Cand {
    std::vector<Key> reads;
    std::vector<Key> writes;
    std::vector<int> read_cnt;   // local read-set keys per active node
    std::vector<int> write_cnt;  // local write-set keys per active node
    int best_idx = 0;
    int best_remote = 0;
    bool placed = false;
  };
  std::vector<Cand> cands(b);

  // Placements made so far in this segment (write keys follow their route).
  HashMap<Key, NodeId> view;
  auto view_owner = [&](Key k) -> NodeId {
    auto it = view.find(k);
    return it != view.end() ? it->second : ownership_->Owner(k);
  };

  HashMap<Key, std::vector<int>> readers_of;
  HashMap<Key, std::vector<int>> writers_of;

  auto compute_best = [&](Cand& c) {
    int best_idx = 0;
    int best_remote = static_cast<int>(c.reads.size()) + 1;
    int best_wlocal = -1;
    for (int i = 0; i < n; ++i) {
      const int remote = static_cast<int>(c.reads.size()) - c.read_cnt[i];
      const int wlocal = c.write_cnt[i];
      // Ties: prefer more local write keys, then the lower node id (scan
      // order is ascending node id, so strict improvement keeps it).
      if (remote < best_remote ||
          (remote == best_remote && wlocal > best_wlocal)) {
        best_remote = remote;
        best_wlocal = wlocal;
        best_idx = i;
      }
    }
    c.best_idx = best_idx;
    c.best_remote = best_remote;
  };

  for (size_t j = 0; j < b; ++j) {
    Cand& c = cands[j];
    c.reads = SortedUnique(txns[j]->read_set);
    c.writes = SortedUnique(txns[j]->write_set);
    c.read_cnt.assign(n, 0);
    c.write_cnt.assign(n, 0);
    for (Key k : c.reads) {
      readers_of[k].push_back(static_cast<int>(j));
      auto it = node_index.find(view_owner(k));
      if (it != node_index.end()) ++c.read_cnt[it->second];
    }
    for (Key k : c.writes) {
      writers_of[k].push_back(static_cast<int>(j));
      auto it = node_index.find(view_owner(k));
      if (it != node_index.end()) ++c.write_cnt[it->second];
    }
    compute_best(c);
  }

  std::vector<int> order;      // candidate index by position in B'
  std::vector<NodeId> route;   // route by candidate index
  order.reserve(b);
  route.assign(b, kInvalidNode);

  for (size_t step = 0; step < b; ++step) {
    // Pick the unplaced candidate with the fewest remote reads; ties go to
    // the earliest submission (stable, deterministic). With reordering
    // ablated, transactions are placed in sequencer order.
    int pick = -1;
    if (config_.enable_reorder) {
      for (size_t j = 0; j < b; ++j) {
        if (cands[j].placed) continue;
        if (pick < 0 || cands[j].best_remote < cands[pick].best_remote) {
          pick = static_cast<int>(j);
        }
      }
    } else {
      pick = static_cast<int>(step);
    }
    Cand& c = cands[pick];
    c.placed = true;
    const NodeId x = nodes[c.best_idx];
    route[pick] = x;
    order.push_back(pick);

    // Data fusion: the write-set keys of the placed transaction move to
    // its route, which re-scores transactions that touch those keys.
    // Lookups use find(): operator[] would insert empty lists for
    // write-only keys from inside the hot loop (wasted churn, and a map
    // mutation the optimized path has no reason to mirror).
    for (Key k : c.writes) {
      const NodeId old_owner = view_owner(k);
      if (old_owner == x) continue;
      view[k] = x;
      const auto old_it = node_index.find(old_owner);
      const int old_idx = old_it == node_index.end() ? -1 : old_it->second;
      const int new_idx = c.best_idx;
      if (const auto rit = readers_of.find(k); rit != readers_of.end()) {
        for (int r : rit->second) {
          if (cands[r].placed) continue;
          if (old_idx >= 0) --cands[r].read_cnt[old_idx];
          ++cands[r].read_cnt[new_idx];
          compute_best(cands[r]);
        }
      }
      if (const auto wit = writers_of.find(k); wit != writers_of.end()) {
        for (int w : wit->second) {
          if (cands[w].placed) continue;
          if (old_idx >= 0) --cands[w].write_cnt[old_idx];
          ++cands[w].write_cnt[new_idx];
          compute_best(cands[w]);
        }
      }
    }
  }

  // ---- Step 2: loads, threshold, overloaded / underloaded sets. ----
  // theta = ceil(b/n * (1 + alpha)); the ceiling guarantees the trivial
  // even split is always feasible.
  const auto theta = static_cast<int64_t>(
      std::ceil(static_cast<double>(b) / n * (1.0 + config_.alpha)));
  std::vector<int64_t> load(n, 0);
  for (size_t j = 0; j < b; ++j) ++load[node_index[route[j]]];

  auto overloaded = [&](int idx) { return load[idx] > theta; };
  auto underloaded = [&](int idx) { return load[idx] < theta; };
  bool any_over = false;
  for (int i = 0; i < n; ++i) any_over |= overloaded(i);

  // ---- Step 3: backward rerouting off overloaded nodes. ----
  if (any_over && config_.enable_rebalance) {
    // Reader / writer positions per key, in B' position order.
    HashMap<Key, std::vector<int>> pos_readers;
    HashMap<Key, std::vector<int>> pos_writers;
    for (size_t p = 0; p < b; ++p) {
      const Cand& c = cands[order[p]];
      for (Key k : c.reads) pos_readers[k].push_back(static_cast<int>(p));
      for (Key k : c.writes) pos_writers[k].push_back(static_cast<int>(p));
    }
    auto owner_at = [&](int pos, Key k) -> NodeId {
      // Placement of k just before position pos: latest earlier writer's
      // route, else the pre-batch owner.
      auto it = pos_writers.find(k);
      if (it != pos_writers.end()) {
        const auto& ws = it->second;
        auto lb = std::lower_bound(ws.begin(), ws.end(), pos);
        if (lb != ws.begin()) return route[order[*std::prev(lb)]];
      }
      return ownership_->Owner(k);
    };
    // Extra remote edges if the txn at `pos` moved from its route to `to`.
    auto added_edges = [&](int pos, NodeId to) -> int {
      const int j = order[pos];
      const NodeId from = route[j];
      int added = 0;
      for (Key k : cands[j].reads) {
        const NodeId at = owner_at(pos, k);
        added += static_cast<int>(at != to) - static_cast<int>(at != from);
      }
      for (Key k : cands[j].writes) {
        // find(), not operator[]: the map must not grow mid-scan (the
        // entry always exists — this txn writes k, so k was indexed).
        const auto wit = pos_writers.find(k);
        assert(wit != pos_writers.end());
        const auto& ws = wit->second;
        auto self = std::upper_bound(ws.begin(), ws.end(), pos);
        const int limit = self == ws.end() ? static_cast<int>(b) : *self;
        auto rit = pos_readers.find(k);
        if (rit == pos_readers.end()) continue;
        for (int q : rit->second) {
          if (q <= pos) continue;
          if (q > limit) break;
          const NodeId rq = route[order[q]];
          added += static_cast<int>(rq != to) - static_cast<int>(rq != from);
        }
      }
      return added;
    };

    for (int delta = 1; delta <= config_.max_delta; ++delta) {
      bool still_over = false;
      for (int step = 0; step < static_cast<int>(b); ++step) {
        const int p = config_.backward_pass ? static_cast<int>(b) - 1 - step
                                            : step;
        const int j = order[p];
        const int from_idx = node_index[route[j]];
        if (!overloaded(from_idx)) continue;
        int best_cost = 0;
        int best_u = -1;
        for (int u = 0; u < n; ++u) {
          if (!underloaded(u)) continue;
          const int cost = added_edges(p, nodes[u]);
          if (best_u < 0 || cost < best_cost) {
            best_u = u;
            best_cost = cost;
          }
        }
        if (best_u >= 0 && best_cost <= delta) {
          --load[from_idx];
          ++load[best_u];
          route[j] = nodes[best_u];
          ++stats_.reroutes;
        }
      }
      for (int i = 0; i < n; ++i) still_over |= overloaded(i);
      if (!still_over) break;
    }
  }

  // ---- Final pass: materialize plans against the live ownership map. ----
  for (size_t p = 0; p < b; ++p) {
    const int j = order[p];
    if (j != static_cast<int>(p)) ++stats_.reorders;
    out->push_back(Materialize(*txns[j], route[j]));
  }
}

RoutedTxn HermesRouter::Materialize(const TxnRequest& txn, NodeId x) {
  RoutedTxn rt;
  rt.txn = txn;
  rt.masters = {x};
  ++stats_.routed_txns;

  auto& merged = scratch_.merged;
  MergedAccessSetInto(txn, &merged);
  rt.accesses.reserve(merged.size());
  for (const auto& [k, is_write] : merged) {
    const NodeId cur = ownership_->Owner(k);
    Access a;
    a.key = k;
    a.owner = cur;
    a.is_write = is_write;
    a.ship_to_master = (cur != x);
    if (is_write && cur != x) {
      a.new_owner = x;
      ++stats_.migrations;
    }
    if (lease_table_.enabled()) {
      // Feed the windowed popularity counters, and serve reads of leased
      // keys from the route's own copy: no shipment, no remote wait. The
      // primary record (and its lock order) is untouched — the shared
      // lock moves to the reading master itself.
      if (is_write) {
        lease_table_.ObserveWrite(k);
      } else {
        // Only remote reads feed the hotness counter: a lease localizes
        // reads arriving from non-owner masters, so reads that are
        // already local carry no signal (a locally hot key would pay
        // write fan-out for zero read benefit).
        if (cur != x) lease_table_.ObserveRead(k);
        if (cur != x && lease_table_.IsHolder(k, x)) {
          a.owner = x;
          a.ship_to_master = false;
          a.replica_read = true;
          ++stats_.replica_reads;
        }
      }
    }
    if (a.ship_to_master) ++stats_.remote_reads;
    rt.accesses.push_back(a);
  }

  // Fusion-table maintenance: write keys now live at the route (entries
  // exist only for keys away from home); read hits refresh LRU recency.
  // The transaction's own write keys are pinned against eviction — they
  // are mid-migration to the master and cannot also ship home. `merged`
  // is key-sorted, so the filtered write-key list stays sorted and the
  // fusion table can binary-search it.
  auto& pinned = scratch_.pinned;
  pinned.clear();
  for (const auto& [k, is_write] : merged) {
    if (is_write) pinned.push_back(k);
  }
  auto& evicted = scratch_.evicted;
  evicted.clear();
  for (const auto& [k, is_write] : merged) {
    if (!is_write) {
      fusion_table_.Lookup(k, /*touch=*/true);
      continue;
    }
    if (ownership_->Home(k) == x) {
      fusion_table_.Erase(k);
      ownership_->ClearKeyOwner(k);
    } else {
      fusion_table_.PutPinned(k, x, std::span<const Key>(pinned), &evicted);
      ownership_->SetKeyOwner(k, x);
    }
  }

  // Evicted keys migrate back home, appended to this transaction's plan
  // (§4.1); the client-visible commit does not wait for these shipments.
  for (Key ev : evicted) {
    ++stats_.evictions;
    const NodeId cur = ownership_->Owner(ev);
    const NodeId home = ownership_->Home(ev);
    ownership_->ClearKeyOwner(ev);
    if (cur == home) continue;
    Access a;
    a.key = ev;
    a.owner = cur;
    a.is_write = true;
    a.ship_to_master = false;
    a.new_owner = home;
    rt.accesses.push_back(a);
    ++stats_.migrations;
  }
  return rt;
}

RoutedTxn HermesRouter::PlanChunkMigration(const TxnRequest& txn) {
  RoutedTxn rt;
  rt.txn = txn;
  const NodeId dst = txn.migration_target;
  rt.masters = {dst};
  Key lo = 0, hi = 0;
  bool first = true;
  for (Key k : txn.write_set) {
    if (first) {
      lo = hi = k;
      first = false;
    } else {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    // Hot keys tracked by the fusion table are skipped: they keep moving
    // with normal traffic and the chunk transaction never touches them,
    // so cold migration does not interfere with hot-data access (§3.3).
    if (fusion_table_.Peek(k).has_value()) continue;
    const NodeId cur = ownership_->Owner(k);
    if (cur == dst) continue;
    rt.accesses.push_back(Access{k, cur, /*is_write=*/true,
                                 /*ship_to_master=*/true,
                                 /*new_owner=*/dst});
  }
  if (!first) ownership_->SetRangeOwner(lo, hi, dst);
  HERMES_TRACE(tracer_, obs::EventKind::kChunkMigration, dst, txn.id, lo,
               rt.accesses.size());
  return rt;
}

RoutedTxn HermesRouter::PlanProvisioning(const TxnRequest& txn) {
  RoutedTxn rt;
  rt.txn = txn;
  rt.masters = {active_nodes_.empty() ? 0 : active_nodes_.front()};
  HERMES_TRACE(tracer_, obs::EventKind::kNodeProvision, txn.migration_target,
               txn.id, static_cast<Key>(-1),
               static_cast<uint64_t>(txn.kind));
  if (txn.kind == TxnKind::kAddNode) {
    OnAddNode(txn.migration_target);
    return rt;
  }
  // Removal: hot records on the leaving node are re-homed via data fusion
  // — each fusion entry pointing at the leaver ships to the node that will
  // own its range (from the marker's range plan), or its current home.
  const NodeId leaver = txn.migration_target;
  auto dest_for = [&](Key k) -> NodeId {
    for (const auto& mv : txn.range_moves) {
      if (k >= mv.lo && k <= mv.hi) return mv.target;
    }
    return ownership_->Home(k);
  };
  for (Key k : fusion_table_.ExportOrder()) {
    if (fusion_table_.Peek(k) != leaver) continue;
    const NodeId dest = dest_for(k);
    fusion_table_.Erase(k);
    if (dest == leaver) continue;
    ownership_->SetKeyOwner(k, dest);
    rt.accesses.push_back(Access{k, leaver, /*is_write=*/true,
                                 /*ship_to_master=*/false,
                                 /*new_owner=*/dest});
    ++stats_.migrations;
  }
  OnRemoveNode(leaver);
  return rt;
}

void HermesRouter::OnRemoveNode(NodeId node) { Router::OnRemoveNode(node); }

}  // namespace hermes::core
