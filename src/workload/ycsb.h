#ifndef HERMES_WORKLOAD_YCSB_H_
#define HERMES_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "txn/transaction.h"
#include "workload/distributions.h"
#include "workload/google_trace.h"

namespace hermes::workload {

/// Configuration of the YCSB-on-Google-trace workload (§5.2.2).
struct YcsbConfig {
  uint64_t num_records = 1'000'000;
  int num_partitions = 20;
  /// Fraction of transactions that touch a globally distributed record.
  double distributed_ratio = 0.5;
  /// Fraction of read-modify-write transactions (rest are read-only).
  double rw_ratio = 0.5;
  /// Zipf skew inside a partition.
  double zipf_theta = 0.8;
  /// Zipf skew of the moving global hotspot.
  double global_zipf_theta = 0.7;
  /// Records accessed per transaction: sampled from a clamped normal
  /// (stddev 0 gives the paper's fixed 2-record transactions).
  double length_mean = 2.0;
  double length_stddev = 0.0;
  /// Period over which the global hotspot sweeps the whole key space
  /// ("active users around the world in 24 hours").
  SimTime hotspot_cycle_us = 2160 * 1'000'000ULL;
  uint64_t seed = 1;
};

/// Generates the paper's complex Google workload: local transactions pick
/// a partition with probability proportional to the traced machine load
/// and access Zipfian-hot records inside it; distributed transactions add
/// a record from a global two-sided Zipfian whose peak circles the key
/// space over time. 50% distributed / 50% read-write by default.
class YcsbWorkload {
 public:
  /// `trace` may be null, in which case partitions are weighted uniformly.
  YcsbWorkload(const YcsbConfig& config, const SyntheticGoogleTrace* trace);

  YcsbWorkload(const YcsbWorkload&) = delete;
  YcsbWorkload& operator=(const YcsbWorkload&) = delete;

  TxnRequest Next(SimTime now);

  const YcsbConfig& config() const { return config_; }
  uint64_t partition_size() const { return partition_size_; }

  /// Key the moving global hotspot peaks at, at time `now`.
  uint64_t GlobalPeak(SimTime now) const;

 private:
  Key LocalKey(int partition);
  int PickPartition(SimTime now);

  YcsbConfig config_;
  const SyntheticGoogleTrace* trace_;
  Rng rng_;
  ZipfianGenerator partition_zipf_;
  TwoSidedZipfian global_zipf_;
  uint64_t partition_size_;
  /// Cached trace weights (refreshed when the trace window changes).
  std::vector<double> cached_weights_;
  size_t cached_window_ = SIZE_MAX;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_YCSB_H_
