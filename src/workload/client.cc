#include "workload/client.h"

#include <utility>

namespace hermes::workload {

ClosedLoopDriver::ClosedLoopDriver(engine::Cluster* cluster, int num_clients,
                                   Generator gen)
    : cluster_(cluster), num_clients_(num_clients), gen_(std::move(gen)) {}

void ClosedLoopDriver::Start() {
  for (int c = 0; c < num_clients_; ++c) SubmitNext(c);
}

void ClosedLoopDriver::SubmitNext(int client) {
  const SimTime now = cluster_->Now();
  if (now >= stop_time_) return;
  TxnRequest txn = gen_(client, now);
  txn.client = client;
  cluster_->Submit(std::move(txn),
                   [this, client](const engine::TxnResult&) {
                     ++completed_;
                     SubmitNext(client);
                   });
}

}  // namespace hermes::workload
