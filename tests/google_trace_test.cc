#include "workload/google_trace.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hermes::workload {
namespace {

TEST(GoogleTraceTest, DeterministicForSeed) {
  GoogleTraceConfig config;
  SyntheticGoogleTrace a(config), b(config);
  for (int m = 0; m < config.num_machines; ++m) {
    EXPECT_EQ(a.Series(m), b.Series(m));
  }
}

TEST(GoogleTraceTest, DifferentSeedsDiffer) {
  GoogleTraceConfig c1, c2;
  c2.seed = 99;
  SyntheticGoogleTrace a(c1), b(c2);
  EXPECT_NE(a.Series(0), b.Series(0));
}

TEST(GoogleTraceTest, LoadsPositive) {
  SyntheticGoogleTrace trace{GoogleTraceConfig{}};
  for (int m = 0; m < trace.config().num_machines; ++m) {
    for (double v : trace.Series(m)) EXPECT_GT(v, 0.0);
  }
}

TEST(GoogleTraceTest, WeightsNormalized) {
  GoogleTraceConfig config;
  SyntheticGoogleTrace trace(config);
  for (SimTime t = 0; t < 10 * config.window_us; t += config.window_us) {
    const auto w = trace.Weights(t);
    double sum = 0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GoogleTraceTest, TimeWrapsAroundTrace) {
  GoogleTraceConfig config;
  config.num_windows = 10;
  SyntheticGoogleTrace trace(config);
  const SimTime span = config.num_windows * config.window_us;
  EXPECT_EQ(trace.Load(0, 0), trace.Load(0, span));
  EXPECT_EQ(trace.Load(3, 2 * config.window_us),
            trace.Load(3, span + 2 * config.window_us));
}

TEST(GoogleTraceTest, HasEpisodicVariation) {
  // The trace must actually fluctuate: the max/min ratio within a series
  // should be large for at least some machines (spikes + regime shifts).
  GoogleTraceConfig config;
  config.num_windows = 200;
  SyntheticGoogleTrace trace(config);
  int varied = 0;
  for (int m = 0; m < config.num_machines; ++m) {
    double lo = 1e30, hi = 0;
    for (double v : trace.Series(m)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi / lo > 5.0) ++varied;
  }
  EXPECT_GT(varied, config.num_machines / 2);
}

TEST(GoogleTraceTest, MachinesAreNotCorrelated) {
  GoogleTraceConfig config;
  SyntheticGoogleTrace trace(config);
  EXPECT_NE(trace.Series(0), trace.Series(1));
}

}  // namespace
}  // namespace hermes::workload
