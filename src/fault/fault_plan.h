#ifndef HERMES_FAULT_FAULT_PLAN_H_
#define HERMES_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hermes::fault {

/// Per-message link chaos parameters. All draws come from one seeded
/// hermes::Rng consumed in Network::Send order (which is itself
/// deterministic), so a (plan seed, workload seed) pair fixes every fault.
///
/// Chaos rides ON TOP of a reliable transport — the engine's correctness
/// invariants assume messages eventually arrive exactly once, so:
///   - a "drop" is a lost wire attempt that the transport retransmits:
///     the sender pays the bytes again and delivery slips by a
///     retransmit timeout, but the payload still lands exactly once;
///   - a "duplicate" is an extra wire copy the receiver's dedup layer
///     absorbs: bytes flow twice, the callback fires once;
///   - "jitter" is plain extra delivery delay.
/// This perturbs timing, byte counters and therefore the event
/// interleaving — which is exactly the surface a deterministic database
/// must be immune to — without ever forging or losing a record.
struct LinkChaosConfig {
  double drop_prob = 0.0;       ///< per wire attempt
  double duplicate_prob = 0.0;  ///< per delivered message
  SimTime max_jitter_us = 0;    ///< uniform extra delay in [0, max]
  SimTime retransmit_delay_us = 200;  ///< added per lost attempt
  int max_drops_per_message = 3;      ///< bounds the retransmit storm

  // --- Gray failure (DESIGN.md §5 "Partitions & failure detection"). ---
  // A persistently slow/lossy window on every link touching gray_node:
  // within [gray_from_us, gray_until_us) data-plane messages suffer extra
  // drops (still bounded retransmits — timing and bytes only, never
  // message loss) and extra delay, and heartbeats are dropped with their
  // own probability so the failure detector can see the gray link even
  // though payloads keep (slowly) landing. All draws stay pure functions
  // of (seed, link, sequence number / tick): the window boundary is
  // virtual time, which is itself deterministic.
  SimTime gray_from_us = 0;
  SimTime gray_until_us = 0;  ///< 0 = no gray window
  NodeId gray_node = kInvalidNode;
  double gray_drop_prob = 0.0;       ///< extra per-attempt drop inside window
  SimTime gray_extra_delay_us = 0;   ///< added to every delivery in window
  double gray_heartbeat_drop_prob = 0.0;  ///< per heartbeat per direction

  bool has_gray() const {
    return gray_until_us > gray_from_us && gray_node != kInvalidNode;
  }
};

/// Shape of one network partition event (which directions of the victim's
/// links are cut). Asymmetric cuts model one-way failures (a NIC that can
/// send but not receive, or vice versa).
enum class PartitionMode : uint8_t {
  kTwoSided,  ///< both directions between the victim and every peer
  kInbound,   ///< sends TOWARD the victim are cut; victim can still send
  kOutbound,  ///< sends FROM the victim are cut; victim still receives
};

const char* PartitionModeName(PartitionMode mode);

/// One scheduled fault.
struct FaultEvent {
  enum class Kind {
    kCrash,         ///< node loses its volatile store; cluster intake stalls
    kRejoin,        ///< crashed node rebuilds from checkpoint + log replay
    kFailover,      ///< replica-group primary dies mid-flight, standby promoted
    kCrashNoStall,  ///< node dies but the cluster keeps sequencing: routers
                    ///< route around it, ordered txns touching it are parked
                    ///< or retried deterministically (degraded mode)
    kPartitionStart,  ///< cut the victim's links per `mode`; the network
                      ///< parks cut sends in per-link FIFO pens and the
                      ///< failure detector converts sustained
                      ///< unreachability into degraded-mode epochs
    kPartitionHeal,   ///< remove the cut and release the pens in FIFO order
  };
  SimTime at = 0;
  Kind kind = Kind::kCrash;
  /// Crashed/rejoining/partitioned node; ignored for kFailover.
  NodeId node = kInvalidNode;
  /// Cut shape for kPartitionStart (a heal always removes every cut the
  /// matching start installed); ignored for other kinds.
  PartitionMode mode = PartitionMode::kTwoSided;

  bool operator<(const FaultEvent& o) const {
    if (at != o.at) return at < o.at;
    if (kind != o.kind) return static_cast<int>(kind) < static_cast<int>(o.kind);
    if (node != o.node) return node < o.node;
    return static_cast<int>(mode) < static_cast<int>(o.mode);
  }
};

struct FaultPlanConfig {
  SimTime horizon_us = SecToSim(10);  ///< faults are drawn within [0, horizon)
  int num_nodes = 4;
  /// Crash/rejoin pairs to schedule. Each cycle picks a node and an outage
  /// window inside its own slot of the horizon, so cycles never overlap.
  int crash_cycles = 1;
  SimTime min_outage_us = MsToSim(50);
  SimTime max_outage_us = MsToSim(400);
  /// Schedule one mid-run primary failover (replica-group runs only).
  bool inject_failover = false;
  /// Emit kCrashNoStall instead of kCrash: the cluster degrades (keeps
  /// sequencing around the victim) instead of stalling intake.
  bool no_stall = false;
  /// Partition start/heal pairs to schedule. Like crash cycles, each pair
  /// lives in its own slot of the horizon so a link is never cut twice
  /// concurrently; every start is always paired with a heal inside its
  /// slot (the pen must drain before the run ends). Partition victims are
  /// drawn from nodes that no crash cycle touches, so a detector-suspected
  /// node never collides with an injector-crashed one. Requires
  /// `no_stall` crashes when combined with crash_cycles > 0: a
  /// stall-and-drain crash would drain against a cut and never quiesce.
  int partition_cycles = 0;
  SimTime min_partition_us = MsToSim(50);
  SimTime max_partition_us = MsToSim(400);
  /// Probability a partition is asymmetric (one-way); direction is then a
  /// fair coin between inbound and outbound.
  double one_way_fraction = 0.0;
  /// Draw one gray-failure window (slow/lossy links around one node) in
  /// the middle of the horizon; parameters below are copied into
  /// LinkChaosConfig with a seeded victim and window.
  bool gray = false;
  double gray_drop_prob = 0.35;
  SimTime gray_extra_delay_us = 400;
  double gray_heartbeat_drop_prob = 0.9;
  LinkChaosConfig link;
};

/// A seeded, totally ordered schedule of fault events plus the link-chaos
/// parameters to install for the run. Pure function of (config, seed).
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< sorted by (at, kind, node)
  LinkChaosConfig link;
  uint64_t seed = 0;

  static FaultPlan Generate(const FaultPlanConfig& config, uint64_t seed);

  std::string DebugString() const;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_FAULT_PLAN_H_
