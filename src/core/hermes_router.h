#ifndef HERMES_CORE_HERMES_ROUTER_H_
#define HERMES_CORE_HERMES_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/fusion_table.h"
#include "routing/router.h"

namespace hermes::core {

/// The prescient transaction routing algorithm (paper §3.2, Algorithm 1)
/// plus fusion-table maintenance (§3.1, §4.1) and provisioning support
/// (§3.3).
///
/// Per batch:
///  1. Greedily reorders and routes transactions, picking at each step the
///     (transaction, node) pair with the fewest remote read-set records
///     under the evolving placement P_i (write-set keys move to the chosen
///     route — data fusion).
///  2. Computes theta = ceil(b/n * (1+alpha)) and the overloaded /
///     underloaded node sets.
///  3. Walks the reordered batch backward, rerouting transactions off
///     overloaded nodes when the move adds at most delta remote edges
///     (the txn's own remote reads plus reads of its write-set by later
///     transactions not on the new node), relaxing delta until the load
///     constraint holds.
///
/// Determinism: all ties break on (fewest remote reads, most local write
/// keys, lowest node id) and candidate scans use original batch order, so
/// every scheduler replica computes the identical plan.
class HermesRouter : public routing::Router {
 public:
  HermesRouter(partition::OwnershipMap* ownership, const CostModel* costs,
               int num_nodes, const HermesConfig& config);

  routing::RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "hermes"; }

  void OnRemoveNode(NodeId node) override;

  const FusionTable& fusion_table() const { return fusion_table_; }
  FusionTable& mutable_fusion_table() { return fusion_table_; }

  /// Cumulative counters for tests and benches.
  struct Stats {
    uint64_t routed_txns = 0;
    uint64_t remote_reads = 0;   ///< accesses shipped to a remote master
    uint64_t migrations = 0;     ///< records that changed owner
    uint64_t evictions = 0;      ///< fusion-table evictions
    uint64_t reroutes = 0;       ///< step-3 load-balancing moves
    uint64_t reorders = 0;       ///< txns whose position changed in step 1
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Routes one run of regular transactions (special transactions act as
  /// segment barriers) and appends the plans.
  void RouteSegment(const std::vector<const TxnRequest*>& txns,
                    std::vector<routing::RoutedTxn>* out);

  /// Materializes the plan for one placed transaction against the live
  /// ownership map and applies its fusion-table updates (including
  /// evictions, which append extra migration accesses).
  routing::RoutedTxn Materialize(const TxnRequest& txn, NodeId route);

  /// Chunk migrations ship cold records to the target and re-home the
  /// chunk's range; keys currently in the fusion table are skipped (§3.3).
  routing::RoutedTxn PlanChunkMigration(const TxnRequest& txn);

  /// Provisioning markers: adjusts the active set; on removal, evicts
  /// every fusion entry on the leaving node so its hot records migrate
  /// out with normal traffic.
  routing::RoutedTxn PlanProvisioning(const TxnRequest& txn);

  HermesConfig config_;
  FusionTable fusion_table_;
  Stats stats_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_HERMES_ROUTER_H_
