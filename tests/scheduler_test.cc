#include "engine/scheduler.h"

#include <memory>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/node.h"
#include "net/wire.h"
#include "partition/partition_map.h"
#include "routing/calvin_router.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hermes::engine {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : ownership_(std::make_unique<partition::RangePartitionMap>(100, 2)),
        router_(&ownership_, &config_.costs, 2),
        metrics_(SecToSim(1)),
        net_(&sim_, &config_.costs, 2),
        wire_(&sim_, &net_, &config_.costs, &config_.net, 2),
        executor_(&sim_, &wire_, &metrics_, &config_.costs, &nodes_),
        scheduler_(&sim_, &router_, &executor_, &log_, &config_,
                   [](const TxnRequest&) { return nullptr; }) {
    config_.costs.route_linear_us = 50;
    for (NodeId i = 0; i < 2; ++i) {
      nodes_.push_back(std::make_unique<Node>(i, &sim_, 2));
    }
    for (Key k = 0; k < 100; ++k) {
      nodes_[k / 50]->store().Insert(k, storage::Record{.value = k});
    }
  }

  Batch MakeBatch(BatchId id, size_t n) {
    Batch batch;
    batch.id = id;
    for (size_t i = 0; i < n; ++i) {
      TxnRequest txn;
      txn.id = id * 1000 + i;
      txn.read_set = {i % 100};
      batch.txns.push_back(std::move(txn));
    }
    return batch;
  }

  ClusterConfig config_;
  sim::Simulator sim_;
  partition::OwnershipMap ownership_;
  routing::CalvinRouter router_;
  Metrics metrics_;
  sim::Network net_;
  net::Wire wire_;
  std::vector<std::unique_ptr<Node>> nodes_;
  TxnExecutor executor_;
  storage::CommandLog log_;
  Scheduler scheduler_;
};

TEST_F(SchedulerTest, AppendsBatchesToCommandLog) {
  scheduler_.OnBatch(MakeBatch(0, 3));
  scheduler_.OnBatch(MakeBatch(1, 2));
  sim_.RunAll();
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_.batches()[0].txns.size(), 3u);
  EXPECT_EQ(scheduler_.batches_routed(), 2u);
}

TEST_F(SchedulerTest, EmptyBatchIsIgnored) {
  scheduler_.OnBatch(Batch{});
  sim_.RunAll();
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(scheduler_.batches_routed(), 0u);
}

TEST_F(SchedulerTest, DispatchDelayedByAnalysisCost) {
  // Routing cost = 50us/txn linear (set in fixture) + log cost.
  scheduler_.OnBatch(MakeBatch(0, 10));
  EXPECT_GE(scheduler_.busy_until(),
            10 * config_.costs.route_linear_us);
  sim_.RunAll();
  EXPECT_EQ(executor_.committed(), 10u);
}

TEST_F(SchedulerTest, PipelineBacklogsSequentially) {
  // Two batches routed back-to-back: the second's dispatch time starts
  // where the first's analysis ended.
  scheduler_.OnBatch(MakeBatch(0, 10));
  const SimTime first = scheduler_.busy_until();
  scheduler_.OnBatch(MakeBatch(1, 10));
  EXPECT_GE(scheduler_.busy_until(), 2 * first);
  sim_.RunAll();
  EXPECT_EQ(executor_.committed(), 20u);
}

TEST_F(SchedulerTest, ObserverSeesEveryRoutedTxn) {
  int observed = 0;
  scheduler_.set_observer(
      [&observed](const routing::RoutedTxn&) { ++observed; });
  scheduler_.OnBatch(MakeBatch(0, 7));
  sim_.RunAll();
  EXPECT_EQ(observed, 7);
}

TEST_F(SchedulerTest, CommandLogDisabledSkipsAppend) {
  config_.enable_command_log = false;
  scheduler_.OnBatch(MakeBatch(0, 3));
  sim_.RunAll();
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(executor_.committed(), 3u);
}

}  // namespace
}  // namespace hermes::engine
