// Multi-seed chaos property test: many seeded fault plans (crash/rejoin
// cycles + link chaos) run against seeded workloads; for every plan the
// invariant monitors must hold, the fault-free oracle must agree, and the
// entire outcome — decision digest, placement digest, state checksum,
// commit count, chaos counters, recovery times — must be bit-identical
// under several hash salts. Chaos multiplies the event interleavings the
// engine sees; this test proves none of them leaks nondeterminism.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

constexpr int kNumSeeds = 25;
constexpr uint64_t kSeedBase = 20'260'000;

std::vector<uint64_t> PerturbationSalts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

ClusterConfig ChaosConfig() {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

FaultPlan MakePlan(const ClusterConfig& config, uint64_t seed) {
  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(120);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(10);
  pc.max_outage_us = MsToSim(40);
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  return FaultPlan::Generate(pc, seed);
}

struct ChaosOutcome {
  uint64_t decision_digest = 0;
  uint64_t decision_count = 0;
  uint64_t placement_digest = 0;
  uint64_t state_checksum = 0;
  uint64_t commits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  std::vector<SimTime> recovery_us;
  bool monitors_ok = true;
  std::string report;
};

bool SameOutcome(const ChaosOutcome& a, const ChaosOutcome& b) {
  return a.decision_digest == b.decision_digest &&
         a.decision_count == b.decision_count &&
         a.placement_digest == b.placement_digest &&
         a.state_checksum == b.state_checksum && a.commits == b.commits &&
         a.dropped == b.dropped && a.duplicated == b.duplicated &&
         a.recovery_us == b.recovery_us;
}

/// One chaos lifetime: seeded plan + seeded skewed YCSB on the Hermes
/// router. `deep_checks` additionally replays the command log through a
/// fault-free oracle (run it on one salt per seed; it is pure overhead on
/// the others since the compared digests are already in the outcome).
ChaosOutcome RunChaos(uint64_t plan_seed, bool deep_checks) {
  const ClusterConfig config = ChaosConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  const FaultPlan plan = MakePlan(config, plan_seed);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = Mix64(plan_seed ^ 0x5c5bULL);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(120));
  driver.Start();

  injector.RunUntil(MsToSim(120));
  injector.Drain();

  monitor.CheckRecordSingularity(cluster, "final");
  monitor.CheckNoLostRecords(cluster, "final");
  if (deep_checks) {
    monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                               MapFactory(config), "oracle");
  }

  ChaosOutcome out;
  out.decision_digest = cluster.decision_digest().value();
  out.decision_count = cluster.decision_digest().count();
  out.placement_digest = cluster.placement_digest().value();
  out.state_checksum = cluster.StateChecksum();
  out.commits = cluster.metrics().total_commits();
  out.dropped = cluster.network().messages_dropped();
  out.duplicated = cluster.network().messages_duplicated();
  for (const fault::RecoveryStats& r : injector.recoveries()) {
    out.recovery_us.push_back(r.time_to_recover_us());
  }
  out.monitors_ok = monitor.ok();
  out.report = monitor.FailureReport();
  return out;
}

TEST(ChaosPropertyTest, ManySeededPlansHoldInvariantsAndStayDeterministic) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  uint64_t total_chaos = 0;

  for (int s = 0; s < kNumSeeds; ++s) {
    const uint64_t plan_seed = kSeedBase + s;
    std::vector<ChaosOutcome> outcomes;
    for (size_t i = 0; i < salts.size(); ++i) {
      SetHashSalt(salts[i]);
      outcomes.push_back(RunChaos(plan_seed, /*deep_checks=*/i == 0));
    }
    SetHashSalt(old_salt);

    const ChaosOutcome& base = outcomes[0];
    ASSERT_TRUE(base.monitors_ok)
        << "plan seed " << plan_seed << ":\n" << base.report;
    ASSERT_GT(base.commits, 50u) << "plan seed " << plan_seed;
    ASSERT_FALSE(base.recovery_us.empty()) << "plan seed " << plan_seed;
    // A single low-traffic plan can legitimately draw zero drops; require
    // link chaos to fire across the corpus (asserted after the loop).
    total_chaos += base.dropped + base.duplicated;

    for (size_t i = 1; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].monitors_ok)
          << "plan seed " << plan_seed << " salt 0x" << std::hex << salts[i]
          << ":\n" << outcomes[i].report;
      EXPECT_TRUE(SameOutcome(base, outcomes[i]))
          << "plan seed " << plan_seed << " diverged under salt 0x"
          << std::hex << salts[i] << ": digest "
          << outcomes[i].decision_digest << " vs " << base.decision_digest
          << ", placement " << outcomes[i].placement_digest << " vs "
          << base.placement_digest << std::dec << ", commits "
          << outcomes[i].commits << " vs " << base.commits
          << " — a fault-path decision depends on hash iteration order";
    }
  }
  EXPECT_GT(total_chaos, 0u) << "link chaos never fired across any seed";
}

// One seeded chaos lifetime under the PROCESS salt (HERMES_HASH_SALT),
// printing a parseable outcome line. scripts/check_determinism.sh --chaos
// runs this binary under several env salts and requires every printed
// CHAOS_PROFILE line to be identical across processes.
TEST(ChaosScriptProfile, SingleSeededPlanPrintsOutcome) {
  const ChaosOutcome out = RunChaos(kSeedBase + 1000, /*deep_checks=*/true);
  ASSERT_TRUE(out.monitors_ok) << out.report;
  ASSERT_FALSE(out.recovery_us.empty());
  std::string recoveries;
  char buf[32];
  for (SimTime t : out.recovery_us) {
    std::snprintf(buf, sizeof(buf), "%s%llu", recoveries.empty() ? "" : ",",
                  static_cast<unsigned long long>(t));
    recoveries += buf;
  }
  std::printf("CHAOS_PROFILE digest=%016llx placement=%016llx "
              "checksum=%016llx commits=%llu dropped=%llu dup=%llu "
              "recovery_us=%s\n",
              static_cast<unsigned long long>(out.decision_digest),
              static_cast<unsigned long long>(out.placement_digest),
              static_cast<unsigned long long>(out.state_checksum),
              static_cast<unsigned long long>(out.commits),
              static_cast<unsigned long long>(out.dropped),
              static_cast<unsigned long long>(out.duplicated),
              recoveries.c_str());
}

}  // namespace
}  // namespace hermes
