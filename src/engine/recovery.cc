#include "engine/recovery.h"

#include <utility>

namespace hermes::engine {

std::unique_ptr<Cluster> RecoverCluster(
    const ClusterConfig& config, RouterKind kind,
    std::unique_ptr<partition::PartitionMap> initial_partitioning,
    const storage::Checkpoint& checkpoint,
    const storage::CommandLog& command_log) {
  auto cluster = std::make_unique<Cluster>(
      config, kind, std::move(initial_partitioning));
  cluster->RestoreFromCheckpoint(checkpoint);
  cluster->ReplayBatches(command_log.Suffix(checkpoint.next_batch));
  return cluster;
}

}  // namespace hermes::engine
