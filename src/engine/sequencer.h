#ifndef HERMES_ENGINE_SEQUENCER_H_
#define HERMES_ENGINE_SEQUENCER_H_

#include <deque>
#include <functional>

#include "common/config.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace hermes::engine {

/// The sequencing layer (§2.1): client requests accumulate per epoch; at
/// each epoch boundary the pending requests form a batch that the
/// total-order protocol (a Zab-style leader, modeled as a fixed round-trip
/// cost) stamps with a batch id and delivers to every scheduler replica.
///
/// The prototype collapses the per-node sequencers into one logical queue:
/// requests already arrive tagged with their entry node (home_sequencer),
/// and the leader would interleave per-node sub-batches deterministically
/// anyway, so a single queue ordered by arrival is an equivalent model.
class Sequencer {
 public:
  using BatchCallback = std::function<void(Batch&&)>;

  Sequencer(sim::Simulator* sim, const ClusterConfig* config,
            BatchCallback on_sequenced);

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Enqueues a request (assigning its transaction id in arrival order)
  /// and arms the next epoch cut if none is pending.
  void Submit(TxnRequest txn);

  /// Stops cutting batches: submissions keep accumulating (and keep their
  /// arrival-order transaction ids) but never enter the total order until
  /// Resume(). The fault injector pauses intake while a crashed node
  /// recovers — requests pending at a pause are NOT covered by checkpoints
  /// taken during the stall, exactly like requests a real sequencer has
  /// received but not yet run through the total-order protocol.
  void Pause() { paused_ = true; }

  /// Resumes batch cutting, arming an epoch cut if requests are pending.
  void Resume() {
    paused_ = false;
    ArmEpochCut();
  }

  bool paused() const { return paused_; }

  /// Batches sequenced so far; the next batch gets this id.
  BatchId next_batch_id() const { return next_batch_id_; }
  TxnId next_txn_id() const { return next_txn_id_; }

  /// Restores id counters from a checkpoint.
  void RestoreCounters(BatchId next_batch, TxnId next_txn) {
    next_batch_id_ = next_batch;
    next_txn_id_ = next_txn;
  }

  size_t pending() const { return pending_.size(); }

 private:
  void ArmEpochCut();
  void CutBatch();

  sim::Simulator* sim_;
  const ClusterConfig* config_;
  BatchCallback on_sequenced_;
  std::deque<TxnRequest> pending_;
  BatchId next_batch_id_ = 0;
  TxnId next_txn_id_ = 0;
  bool cut_armed_ = false;
  bool paused_ = false;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_SEQUENCER_H_
