// detlint-fixture: path=src/common/span.h
#include <vector>

template <class T>
struct Span {
  const T* data;
  int size;
};
