#include "sim/simulator.h"

#include <utility>

namespace hermes::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  queue_.Push(when < now_ ? now_ : when, std::move(fn));
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    now_ = queue_.NextTime();
    auto fn = queue_.Pop();
    ++events_executed_;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    now_ = queue_.NextTime();
    auto fn = queue_.Pop();
    ++events_executed_;
    fn();
  }
}

}  // namespace hermes::sim
