#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace hermes::obs {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

/// True for lifecycle kinds drawn on a per-transaction worker lane;
/// system events (migrations, faults, evictions) stay on tid 0.
bool OnWorkerLane(EventKind kind) {
  switch (kind) {
    case EventKind::kPhaseSequence:
    case EventKind::kPhaseLockWait:
    case EventKind::kPhaseRemoteWait:
    case EventKind::kPhaseExecute:
    case EventKind::kTxnDispatch:
    case EventKind::kTxnCommit:
    case EventKind::kTxnAbort:
      return true;
    default:
      return false;
  }
}

void AppendEvent(std::string* out, const TraceEvent& e, uint64_t pid,
                 int lanes, bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  const uint64_t tid =
      OnWorkerLane(e.kind) && e.txn != kInvalidTxn
          ? 1 + e.txn % static_cast<uint64_t>(lanes > 0 ? lanes : 1)
          : 0;
  Append(out,
         "{\"name\":\"%s\",\"cat\":\"hermes\",\"pid\":%" PRIu64
         ",\"tid\":%" PRIu64 ",\"ts\":%" PRIu64,
         EventKindName(e.kind), pid, tid, e.when);
  if (IsSpan(e.kind)) {
    Append(out, ",\"ph\":\"X\",\"dur\":%" PRIu64, e.dur);
  } else {
    out->append(",\"ph\":\"i\",\"s\":\"t\"");
  }
  Append(out,
         ",\"args\":{\"txn\":%" PRIu64 ",\"key\":%" PRIu64 ",\"arg\":%" PRIu64
         ",\"seq\":%" PRIu64 "}}",
         e.txn, e.key, e.arg, e.seq);
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer, int lanes) {
  std::string out;
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  // Process-name metadata, one per ring, so Perfetto labels the tracks.
  for (size_t i = 0; i < tracer.num_rings(); ++i) {
    if (!first) out.append(",\n");
    first = false;
    if (i == 0) {
      Append(&out,
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
             "\"args\":{\"name\":\"cluster\"}}");
    } else {
      Append(&out,
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":0,"
             "\"args\":{\"name\":\"node %zu\"}}",
             i, i - 1);
    }
  }
  for (size_t i = 0; i < tracer.num_rings(); ++i) {
    for (const TraceEvent& e : tracer.ring(i).InOrder()) {
      AppendEvent(&out, e, static_cast<uint64_t>(i), lanes, &first);
    }
  }
  Append(&out,
         "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
         "\"trace_digest\":\"%016" PRIx64 "\",\"events\":%" PRIu64
         ",\"dropped\":%" PRIu64 "}}\n",
         tracer.digest().value(), tracer.total_recorded(),
         tracer.total_dropped());
  return out;
}

bool WriteChromeTrace(const Tracer& tracer, const std::string& path,
                      int lanes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson(tracer, lanes);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == json.size() && closed;
}

}  // namespace hermes::obs
