// detlint-fixture: path=src/routing/obs_decision_pos.cc
bool Prefer(uint64_t key) {
  if (tracer_.count(key) > 0) return true;
  return obs::SampleRate() > 1;
}
