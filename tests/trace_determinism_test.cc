// Trace determinism: the observability subsystem must be as deterministic
// as the decisions it observes. A seeded workload traced under several
// hash salts must produce a bit-identical trace digest, byte-identical
// Chrome trace_event JSON, and byte-identical Prometheus text — and a
// traced run's decision digest must equal an untraced run's (passivity:
// attaching the tracer changes nothing). Chaos and degraded-mode seeds get
// the same treatment so fault-path events are covered too.
//
// Prints `SALT 0x... TRACE_DIGEST ...` lines; scripts/check_determinism.sh
// reruns this binary under several HERMES_HASH_SALT env values and
// requires every printed digest to match across processes as well.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;

std::vector<uint64_t> PerturbationSalts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

struct TracedRun {
  uint64_t decision_digest = 0;
  uint64_t trace_digest = 0;
  uint64_t trace_count = 0;
  uint64_t events = 0;
  uint64_t dropped = 0;
  std::string trace_json;
  std::string telemetry;
};

ClusterConfig BaseConfig(bool traced) {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  config.obs.trace_enabled = traced;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

/// Healthy-cluster run: skewed YCSB plus a mid-run scale-out so the trace
/// covers routing, phase spans, evictions and chunk migrations.
TracedRun RunHealthy(bool traced) {
  ClusterConfig config = BaseConfig(traced);
  config.migration_chunk_records = 300;
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 20'260'805;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(300));
  driver.Start();

  cluster.RunUntil(MsToSim(100));
  cluster.AddNode({{0, config.num_records / 4 - 1, 3}},
                  /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(300));
  cluster.Drain();

  TracedRun r;
  r.decision_digest = cluster.decision_digest().value();
  r.trace_digest = cluster.trace_digest().value();
  r.trace_count = cluster.trace_digest().count();
  r.events = cluster.tracer().total_recorded();
  r.dropped = cluster.tracer().total_dropped();
  r.trace_json = cluster.TraceJson();
  r.telemetry = cluster.TelemetryText();
  return r;
}

/// Fault run: seeded crash/rejoin plus link chaos (stall mode or degraded
/// no-stall mode) so crash, rejoin, park, retry, suppress and reclaim
/// events enter the trace.
TracedRun RunFaulted(uint64_t plan_seed, bool no_stall) {
  ClusterConfig config = BaseConfig(/*traced=*/true);
  if (no_stall) config.migration_chunk_records = 300;
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(120);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(10);
  pc.max_outage_us = MsToSim(40);
  pc.no_stall = no_stall;
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  const FaultPlan plan = FaultPlan::Generate(pc, plan_seed);
  FaultInjector injector(&cluster, plan, MapFactory(config));

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = Mix64(plan_seed ^ 0x5c5bULL);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(120));
  driver.Start();

  if (no_stall) {
    injector.RunUntil(MsToSim(15));
    const Key lo =
        Mix64(plan_seed ^ 0x6d1eULL) % (config.num_records - 1'500);
    const NodeId target =
        static_cast<NodeId>(Mix64(plan_seed ^ 0x3a7fULL) % config.num_nodes);
    cluster.SubmitMigrationPlan({{lo, lo + 1'199, target}});
  }
  injector.RunUntil(MsToSim(120));
  injector.Drain();

  TracedRun r;
  r.decision_digest = cluster.decision_digest().value();
  r.trace_digest = cluster.trace_digest().value();
  r.trace_count = cluster.trace_digest().count();
  r.events = cluster.tracer().total_recorded();
  r.dropped = cluster.tracer().total_dropped();
  r.trace_json = cluster.TraceJson();
  r.telemetry = cluster.TelemetryText();
  return r;
}

TEST(TraceDeterminismTest, TraceBitIdenticalAcrossSalts) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  std::vector<TracedRun> runs;
  for (uint64_t salt : salts) {
    SetHashSalt(salt);
    runs.push_back(RunHealthy(/*traced=*/true));
    std::printf("SALT 0x%016llx TRACE_DIGEST %016llx count=%llu "
                "events=%llu dropped=%llu\n",
                static_cast<unsigned long long>(salt),
                static_cast<unsigned long long>(runs.back().trace_digest),
                static_cast<unsigned long long>(runs.back().trace_count),
                static_cast<unsigned long long>(runs.back().events),
                static_cast<unsigned long long>(runs.back().dropped));
  }
  SetHashSalt(old_salt);

  ASSERT_GT(runs[0].events, 1'000u) << "trace too thin to mean anything";
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].trace_digest, runs[i].trace_digest)
        << "salt 0x" << std::hex << salts[i]
        << " changed the trace: some event consults hash order";
    EXPECT_EQ(runs[0].trace_count, runs[i].trace_count);
    EXPECT_EQ(runs[0].trace_json, runs[i].trace_json)
        << "Chrome trace export not byte-identical under salt 0x"
        << std::hex << salts[i];
    EXPECT_EQ(runs[0].telemetry, runs[i].telemetry)
        << "Prometheus export not byte-identical under salt 0x" << std::hex
        << salts[i];
  }
}

TEST(TraceDeterminismTest, TracingIsPassive) {
  // Same seeded workload with and without the tracer: identical decision
  // digests. This is the contract detlint's obs-decision rule audits
  // statically — here it is proven at run time.
  const TracedRun traced = RunHealthy(/*traced=*/true);
  const TracedRun untraced = RunHealthy(/*traced=*/false);
  EXPECT_EQ(traced.decision_digest, untraced.decision_digest)
      << "attaching the tracer changed a decision";
  EXPECT_EQ(untraced.events, 0u) << "disabled tracer recorded events";
  EXPECT_EQ(untraced.trace_count, 0u);
}

TEST(TraceDeterminismTest, ChaosSeedProducesValidDeterministicTrace) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  std::vector<TracedRun> runs;
  for (uint64_t salt : salts) {
    SetHashSalt(salt);
    runs.push_back(RunFaulted(20'260'000, /*no_stall=*/false));
  }
  SetHashSalt(old_salt);

  ASSERT_GT(runs[0].events, 100u);
  // crash + rejoin made it into the stream.
  EXPECT_NE(runs[0].trace_json.find("\"crash\""), std::string::npos);
  EXPECT_NE(runs[0].trace_json.find("\"rejoin\""), std::string::npos);
  // Loadable shape: opens as a trace_event container, closes cleanly.
  EXPECT_EQ(runs[0].trace_json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(runs[0].trace_json.find("\"otherData\""), std::string::npos);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].trace_digest, runs[i].trace_digest);
    EXPECT_EQ(runs[0].trace_json, runs[i].trace_json);
    EXPECT_EQ(runs[0].telemetry, runs[i].telemetry);
  }
}

TEST(TraceDeterminismTest, DegradedSeedProducesValidDeterministicTrace) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  std::vector<TracedRun> runs;
  for (uint64_t salt : salts) {
    SetHashSalt(salt);
    runs.push_back(RunFaulted(20'260'003, /*no_stall=*/true));
  }
  SetHashSalt(old_salt);

  ASSERT_GT(runs[0].events, 100u);
  EXPECT_NE(runs[0].trace_json.find("\"crash\""), std::string::npos);
  EXPECT_NE(runs[0].trace_json.find("\"rejoin\""), std::string::npos);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].trace_digest, runs[i].trace_digest);
    EXPECT_EQ(runs[0].trace_json, runs[i].trace_json);
    EXPECT_EQ(runs[0].telemetry, runs[i].telemetry);
  }
}

}  // namespace
}  // namespace hermes
