#include "routing/gstore_router.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch MakeBatch(std::vector<TxnRequest> txns) {
  Batch batch;
  batch.txns = std::move(txns);
  return batch;
}

class GStoreRouterTest : public ::testing::Test {
 protected:
  GStoreRouterTest()
      : ownership_(std::make_unique<RangePartitionMap>(100, 4)),
        router_(&ownership_, &costs_, 4) {}

  OwnershipMap ownership_;
  CostModel costs_;
  GStoreRouter router_;
};

TEST_F(GStoreRouterTest, GroupsPullToMajorityOwnerAndReturn) {
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  ASSERT_EQ(plan.txns.size(), 1u);
  const RoutedTxn& rt = plan.txns[0];
  EXPECT_EQ(rt.masters, (std::vector<NodeId>{0}));

  // Key 90 checks out to node 0 (exclusively, even though it is also
  // read) and returns home on commit.
  bool saw90 = false;
  for (const auto& acc : rt.accesses) {
    if (acc.key == 90) {
      saw90 = true;
      EXPECT_TRUE(acc.is_write);
      EXPECT_TRUE(acc.ship_to_master);
      EXPECT_EQ(acc.new_owner, 0);
    } else {
      EXPECT_EQ(acc.new_owner, kInvalidNode);
    }
  }
  EXPECT_TRUE(saw90);
  ASSERT_EQ(rt.on_commit_returns.size(), 1u);
  EXPECT_EQ(rt.on_commit_returns[0].key, 90u);
  EXPECT_EQ(rt.on_commit_returns[0].from, 0);
  EXPECT_EQ(rt.on_commit_returns[0].to, 3);
}

TEST_F(GStoreRouterTest, ReadOnlyRemoteKeysAlsoCheckOut) {
  // G-Store groups the whole access set, reads included.
  RoutePlan plan =
      router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {})}));
  const RoutedTxn& rt = plan.txns[0];
  ASSERT_EQ(rt.on_commit_returns.size(), 1u);
  EXPECT_EQ(rt.on_commit_returns[0].key, 90u);
}

TEST_F(GStoreRouterTest, OwnershipMapNeverChanges) {
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {10, 90})}));
  EXPECT_TRUE(ownership_.key_overlay().empty());
  EXPECT_EQ(ownership_.Owner(90), 3);
}

TEST_F(GStoreRouterTest, LocalTxnNoReturns) {
  RoutePlan plan = router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11}, {10})}));
  EXPECT_TRUE(plan.txns[0].on_commit_returns.empty());
}

TEST_F(GStoreRouterTest, NoLoadBalancing) {
  // All transactions hit node 0's keys: all route to node 0 regardless of
  // load (G-Store's documented weakness).
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 20; ++i) txns.push_back(MakeTxn(i, {1, 2}, {1}));
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  for (const auto& rt : plan.txns) EXPECT_EQ(rt.masters[0], 0);
}

}  // namespace
}  // namespace hermes::routing
