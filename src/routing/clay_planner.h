#ifndef HERMES_ROUTING_CLAY_PLANNER_H_
#define HERMES_ROUTING_CLAY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"

namespace hermes::routing {

/// One range of keys to migrate to `target` (executed by Squall-style
/// chunk-migration transactions).
struct ClumpMove {
  Key lo;
  Key hi;
  NodeId target;
};

struct ClayConfig {
  /// Length of the monitoring window before a plan may be produced.
  SimTime monitor_window_us = 5'000'000;
  /// A node is overloaded when its observed load exceeds the cluster
  /// average by this factor.
  double overload_slack = 0.15;
  /// Granularity of the ranges Clay tracks and migrates (the paper's Clay
  /// implementation also uses ranges instead of per-key clumps, see its
  /// footnote 4).
  uint64_t range_size = 10'000;
};

/// Clay baseline (Serafini et al., VLDB'16; paper §5.2.1): a *look-back*
/// migration planner. It monitors per-range access frequencies and
/// per-node loads over a window; when the hottest node exceeds the average
/// by a slack factor, it greedily builds a "clump" of that node's hottest
/// ranges and plans their migration to the least-loaded node, until the
/// predicted load drops below the threshold. The plan is handed to a
/// migration executor (Squall); Clay itself moves no data.
class ClayPlanner {
 public:
  ClayPlanner(const partition::OwnershipMap* ownership, uint64_t num_records,
              ClayConfig config);

  ClayPlanner(const ClayPlanner&) = delete;
  ClayPlanner& operator=(const ClayPlanner&) = delete;

  /// Feeds one observed transaction (its accesses are attributed to the
  /// owning nodes under the current ownership view).
  void Observe(const TxnRequest& txn);

  /// Produces a migration plan if the window elapsed and an overload is
  /// detected; returns an empty vector otherwise. Resets the window
  /// statistics whenever a plan is produced or the window expires.
  std::vector<ClumpMove> MaybePlan(SimTime now, int num_nodes);

  uint64_t plans_produced() const { return plans_produced_; }

 private:
  const partition::OwnershipMap* ownership_;
  ClayConfig config_;
  uint64_t num_ranges_;
  SimTime window_start_ = 0;
  HashMap<uint64_t, uint64_t> range_heat_;
  HashMap<NodeId, uint64_t> node_load_;
  uint64_t observed_ = 0;
  uint64_t plans_produced_ = 0;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_CLAY_PLANNER_H_
