#ifndef HERMES_WORKLOAD_MULTITENANT_H_
#define HERMES_WORKLOAD_MULTITENANT_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"
#include "workload/distributions.h"

namespace hermes::workload {

/// The multi-tenant workload of §5.3.2: each node hosts several
/// non-overlapping tenant databases; every transaction reads-modifies-
/// writes two Zipfian records of a single tenant; a large fraction of
/// requests concentrate on the tenants of one "hot" node, and the hot
/// node rotates periodically (different tenants serve users who wake up
/// at different times around the world).
struct MultiTenantConfig {
  int num_nodes = 4;
  int tenants_per_node = 4;
  uint64_t records_per_tenant = 250'000;
  double zipf_theta = 0.9;
  /// Fraction of requests aimed at the hot node's tenants.
  double hot_fraction = 0.9;
  /// Hot node rotation period (paper: 500 s).
  SimTime rotation_us = 500 * 1'000'000ULL;
  /// Records per transaction.
  int records_per_txn = 2;
  uint64_t seed = 2;
};

class MultiTenantWorkload {
 public:
  explicit MultiTenantWorkload(const MultiTenantConfig& config);

  MultiTenantWorkload(const MultiTenantWorkload&) = delete;
  MultiTenantWorkload& operator=(const MultiTenantWorkload&) = delete;

  TxnRequest Next(SimTime now);

  /// Node whose tenants are hot at time `now` (rotates).
  NodeId HotNode(SimTime now) const;

  uint64_t num_records() const { return num_records_; }
  int num_tenants() const { return num_tenants_; }
  uint64_t tenant_size() const { return config_.records_per_tenant; }
  const MultiTenantConfig& config() const { return config_; }

  /// Initial placements for the Fig. 13 sweep.
  std::unique_ptr<partition::PartitionMap> PerfectPartitioning() const;
  std::unique_ptr<partition::PartitionMap> HashPartitioning() const;
  /// Skewed: the first `skewed_tenants` tenants all on node 0, the rest
  /// spread over the other nodes.
  std::unique_ptr<partition::PartitionMap> SkewedPartitioning(
      int skewed_tenants) const;

 private:
  MultiTenantConfig config_;
  Rng rng_;
  ZipfianGenerator tenant_zipf_;
  int num_tenants_;
  uint64_t num_records_;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_MULTITENANT_H_
