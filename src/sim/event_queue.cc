#include "sim/event_queue.h"

#include <utility>

namespace hermes::sim {

void EventQueue::Push(SimTime when, std::function<void()> fn) {
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

std::function<void()> EventQueue::Pop() {
  const Entry& top = heap_.top();
  if (digest_ != nullptr) {
    digest_->Mix(top.when);
    digest_->Mix(top.seq);
  }
  std::function<void()> fn = std::move(top.fn);
  heap_.pop();
  return fn;
}

EventQueue::Popped EventQueue::PopEntry() {
  const Entry& top = heap_.top();
  Popped out{top.when, top.seq, std::move(top.fn)};
  heap_.pop();
  return out;
}

}  // namespace hermes::sim
