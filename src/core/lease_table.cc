#include "core/lease_table.h"

#include <algorithm>

namespace hermes::core {

namespace {

using routing::ReplicaOp;
using routing::ReplicaOpKind;

void EmitRevokeAll(Key key, const LeaseTable::Lease& lease,
                   std::vector<ReplicaOp>* ops) {
  for (NodeId holder : lease.holders) {
    ReplicaOp op;
    op.key = key;
    op.node = holder;
    op.kind = ReplicaOpKind::kRevoke;
    ops->push_back(op);
  }
}

}  // namespace

void LeaseTable::BeginBatch(uint32_t membership_epoch, bool all_alive,
                            const std::vector<NodeId>& candidates,
                            const partition::OwnershipMap& ownership,
                            std::vector<ReplicaOp>* ops) {
  if (!enabled()) return;

  // Membership moved since the last batch: lapse everything. The engine
  // side lapses its copies at the transition itself (Cluster marks the
  // node down/up), so by the time these revokes dispatch they are mostly
  // bookkeeping — but they are what makes the *routing* state converge on
  // the same schedule in live and replayed runs.
  if (membership_epoch != last_epoch_) {
    last_epoch_ = membership_epoch;
    for (const auto& [key, lease] : leases_) {
      EmitRevokeAll(key, lease, ops);
      ++stats_.lapses;
    }
    leases_.clear();
  }

  // Window decay: halve every counter, dropping the ones that reach zero,
  // so stale popularity ages out instead of pinning leases forever.
  if (++batches_seen_ % std::max<uint64_t>(config_->window_batches, 1) == 0) {
    window_reads_ /= 2;
    window_writes_ /= 2;
    for (auto it = counters_.begin(); it != counters_.end();) {
      it->second.reads /= 2;
      it->second.writes /= 2;
      if (it->second.reads == 0 && it->second.writes == 0) {
        it = counters_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Write-heavy revokes, in key order. A lease pays for itself only while
  // the remote reads it absorbs outweigh the write fan-out it forces —
  // and a fan-out apply rides the already-sequenced batch stream (one
  // storage op per holder) while every absorbed read saves a full
  // point-to-point shipment, several times costlier. Revoke on the hard
  // write threshold and on write parity (writes >= reads) — a margin
  // below the raw cost break-even, which buys headroom for the install
  // churn and stale-window fan-out the counters don't see — with a
  // writes >= 4 floor so a handful of stray writes cannot churn a lease.
  for (auto it = leases_.begin(); it != leases_.end();) {
    const auto cit = counters_.find(it->first);
    const uint32_t reads = cit == counters_.end() ? 0 : cit->second.reads;
    const uint32_t writes = cit == counters_.end() ? 0 : cit->second.writes;
    if (writes > config_->write_revoke_threshold ||
        (writes >= 4 && writes >= reads)) {
      EmitRevokeAll(it->first, it->second, ops);
      ++stats_.revokes;
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }

  // Grants, in key order, while capacity lasts. Suppressed entirely while
  // any node is down: the copy source (or a would-be holder) could be the
  // dead node, and a lease that starts mid-outage would only lapse at the
  // rejoin epoch anyway.
  if (!all_alive || candidates.size() < 2) return;
  // Global read-mostly gate: when writes make up more than a third of the
  // observed window (counting every write access against only the remote
  // reads a lease could absorb), new leases cannot earn back their
  // install fan-out before the write stream invalidates them — stop
  // extending replication and let the revoke rules drain what is left.
  if (2 * window_writes_ >= window_reads_) return;
  for (const auto& [key, c] : counters_) {
    if (leases_.size() >= config_->max_leases) break;
    if (c.reads < config_->read_hot_threshold) continue;
    if (c.writes > config_->write_revoke_threshold) continue;
    // Same cost balance as the revoke side: don't grant a lease whose
    // write fan-out would already outweigh the reads it localizes.
    if (c.writes >= c.reads) continue;
    if (leases_.count(key) > 0) continue;
    const NodeId primary = ownership.Owner(key);
    // The primary is always a holder: its "copy" snapshots the local
    // record for free, and it keeps the key locally readable at the old
    // home when a later write migrates the primary onto another holder
    // (without it, that node would fall back to remote ships for the
    // rest of the lease). Remaining slots go to the lowest-id alive
    // candidates.
    Lease lease;
    lease.holders.push_back(primary);
    for (NodeId n : candidates) {
      if (n == primary) continue;
      if (lease.holders.size() >= static_cast<size_t>(
                                      std::max(config_->replicas, 1))) {
        break;
      }
      lease.holders.push_back(n);
    }
    if (lease.holders.size() < 2) continue;
    std::sort(lease.holders.begin(), lease.holders.end());
    for (NodeId holder : lease.holders) {
      ReplicaOp op;
      op.key = key;
      op.node = holder;
      op.source = primary;
      op.kind = ReplicaOpKind::kInstall;
      ops->push_back(op);
    }
    ++stats_.grants;
    leases_.emplace(key, std::move(lease));
  }
}

bool LeaseTable::IsHolder(Key key, NodeId node) const {
  const auto it = leases_.find(key);
  if (it == leases_.end()) return false;
  return std::binary_search(it->second.holders.begin(),
                            it->second.holders.end(), node);
}

const LeaseTable::Lease* LeaseTable::Find(Key key) const {
  const auto it = leases_.find(key);
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseTable::Reset() {
  counters_.clear();
  leases_.clear();
  window_reads_ = 0;
  window_writes_ = 0;
  batches_seen_ = 0;
  last_epoch_ = 0;
}

}  // namespace hermes::core

