#ifndef HERMES_SIM_NETWORK_H_
#define HERMES_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace hermes::sim {

/// How the fault layer perturbs one message (see src/fault/link_chaos.h).
/// The engine above the network assumes a *reliable, exactly-once*
/// transport, so chaos is modeled underneath that contract: a dropped wire
/// attempt is retransmitted (costing extra bytes and delay), a duplicated
/// attempt is suppressed by receiver-side dedup (costing bytes in both
/// directions but delivering the callback exactly once), and jitter delays
/// delivery. Delivery is therefore delayed and more expensive, never lost —
/// which keeps record singularity and lock-ordering invariants intact.
struct Perturbation {
  /// Wire attempts lost before the one that lands (each costs sender bytes
  /// and contributes `extra_delay_us` backoff chosen by the fault layer).
  int dropped_attempts = 0;
  /// Redundant delivered copies deduplicated by the transport (each costs
  /// bytes at both ends; the delivery callback still fires once).
  int duplicates = 0;
  /// Extra delivery delay: jitter plus retransmission backoff.
  SimTime extra_delay_us = 0;
};

/// Point-to-point message fabric between simulated nodes. Delivery time is
/// latency + bytes * us_per_byte; per-node byte counters feed the Fig. 8
/// network-usage series. Messages between a node and itself are delivered
/// after zero wire time (still asynchronously, preserving event ordering).
///
/// Under partitioned execution the fabric is the epoch-crossing edge: a
/// Send may run on the source node's lane, and the delivery callback is
/// scheduled onto the *destination* node's lane. Send-side counters are
/// per-source rows (each touched only by its own lane or the exclusive
/// slice); receive-side counters are charged by the delivery event on the
/// destination lane; totals are summed on read.
class Network {
 public:
  /// Decides the perturbation for one inter-node message. Must be a pure
  /// function of (seed, src, dst, bytes, link_seq) — never of wall clock
  /// or shared mutable state — so chaos draws are deterministic even when
  /// source lanes send concurrently. `link_seq` is the 0-based sequence
  /// number of this message on the directed link src -> dst.
  using PerturbationFn =
      std::function<Perturbation(NodeId src, NodeId dst, uint64_t bytes,
                                 SimTime now, uint64_t link_seq)>;

  Network(Simulator* sim, const CostModel* costs, int num_nodes);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `payload_bytes` of application payload from `src` to `dst` and
  /// runs `on_delivery` when the message lands (on node `dst`'s lane).
  /// Framing overhead is added to the byte count automatically. May be
  /// called from `src`'s lane or from exclusive context.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes,
            std::function<void()> on_delivery);

  /// Grows counters when nodes are added by dynamic provisioning.
  /// Exclusive context only.
  void EnsureCapacity(int num_nodes);

  /// Installs (or clears, with nullptr) the fault-injection hook consulted
  /// for every inter-node message.
  void set_perturbation(PerturbationFn fn) { perturb_ = std::move(fn); }

  uint64_t total_bytes() const { return Sum(bytes_sent_); }
  uint64_t total_messages() const { return Sum(messages_sent_); }
  uint64_t bytes_sent(NodeId node) const { return bytes_sent_[node]; }

  /// Bytes successfully delivered to `node` (equals the send-side count
  /// minus in-flight and dropped wire attempts, plus duplicated copies).
  uint64_t bytes_received(NodeId node) const { return bytes_received_[node]; }
  uint64_t total_bytes_received() const { return Sum(bytes_received_); }
  uint64_t messages_received(NodeId node) const {
    return messages_received_[node];
  }

  /// Wire attempts (including drops and duplicates) on the directed link
  /// src -> dst.
  uint64_t link_messages(NodeId src, NodeId dst) const {
    return link_messages_[src][dst];
  }

  /// Wire attempts lost to fault injection (each was retransmitted).
  uint64_t messages_dropped() const { return Sum(messages_dropped_); }
  /// Redundant duplicate deliveries suppressed by transport dedup.
  uint64_t messages_duplicated() const { return Sum(messages_duplicated_); }

 private:
  static uint64_t Sum(const std::vector<uint64_t>& row);

  Simulator* sim_;
  const CostModel* costs_;
  /// All send-side state is per-source rows: row `n` is written only by
  /// node n's lane (or the exclusive slice), so concurrent sends from
  /// different lanes never share a counter.
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> messages_sent_;
  std::vector<uint64_t> messages_dropped_;
  std::vector<uint64_t> messages_duplicated_;
  /// link_messages_[src][dst]: wire attempts on the directed link.
  std::vector<std::vector<uint64_t>> link_messages_;
  /// send_seq_[src][dst]: messages initiated on the directed link; feeds
  /// the perturbation hook its per-link sequence number.
  std::vector<std::vector<uint64_t>> send_seq_;
  /// Receive-side rows, charged by the delivery event on the destination
  /// lane (row `n` written only by node n's lane or the exclusive slice).
  std::vector<uint64_t> bytes_received_;
  std::vector<uint64_t> messages_received_;
  PerturbationFn perturb_;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_NETWORK_H_
