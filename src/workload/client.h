#ifndef HERMES_WORKLOAD_CLIENT_H_
#define HERMES_WORKLOAD_CLIENT_H_

#include <functional>

#include "common/types.h"
#include "engine/cluster.h"
#include "txn/transaction.h"

namespace hermes::workload {

/// Closed-loop client driver (the paper's client machines): `num_clients`
/// clients each keep exactly one transaction outstanding — submit, wait
/// for the commit acknowledgment, submit the next. Generation stops at
/// `stop_time`, after which the cluster drains naturally.
class ClosedLoopDriver {
 public:
  using Generator = std::function<TxnRequest(int client, SimTime now)>;

  ClosedLoopDriver(engine::Cluster* cluster, int num_clients, Generator gen);

  ClosedLoopDriver(const ClosedLoopDriver&) = delete;
  ClosedLoopDriver& operator=(const ClosedLoopDriver&) = delete;

  /// Begins submission (call once, before or at simulated time 0 or any
  /// later point).
  void Start();

  /// Clients stop submitting once simulated time reaches `t`.
  void set_stop_time(SimTime t) { stop_time_ = t; }

  uint64_t completed() const { return completed_; }

 private:
  void SubmitNext(int client);

  engine::Cluster* cluster_;
  int num_clients_;
  Generator gen_;
  SimTime stop_time_ = kSimTimeMax;
  uint64_t completed_ = 0;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_CLIENT_H_
