// Example: dump the synthetic Google cluster trace as CSV (one column per
// machine), for plotting the Fig. 1-style load curves and for feeding
// external tools.
//
//   ./build/examples/example_google_trace_dump [machines] [windows] > trace.csv

#include <cstdio>
#include <cstdlib>

#include "workload/google_trace.h"

int main(int argc, char** argv) {
  hermes::workload::GoogleTraceConfig config;
  if (argc > 1) config.num_machines = std::atoi(argv[1]);
  if (argc > 2) config.num_windows = std::atoi(argv[2]);
  if (config.num_machines <= 0 || config.num_windows <= 0) {
    std::fprintf(stderr, "usage: %s [machines>0] [windows>0]\n", argv[0]);
    return 1;
  }
  hermes::workload::SyntheticGoogleTrace trace(config);

  std::printf("window");
  for (int m = 0; m < config.num_machines; ++m) std::printf(",machine%d", m);
  std::printf("\n");
  for (int w = 0; w < config.num_windows; ++w) {
    std::printf("%d", w);
    for (int m = 0; m < config.num_machines; ++m) {
      std::printf(",%.4f", trace.Series(m)[w]);
    }
    std::printf("\n");
  }
  return 0;
}
