#include "engine/metrics.h"

#include <gtest/gtest.h>

namespace hermes::engine {
namespace {

LatencyBreakdown Lat(SimTime total) {
  LatencyBreakdown lat;
  lat.total_us = total;
  lat.lock_wait_us = total / 2;
  return lat;
}

TEST(MetricsTest, BucketsCommitsByWindow) {
  Metrics m(1000);
  m.RecordCommit(100, Lat(10), false, false);
  m.RecordCommit(999, Lat(10), true, false);
  m.RecordCommit(1000, Lat(10), false, false);
  m.RecordCommit(2500, Lat(10), false, true);  // abort

  ASSERT_EQ(m.windows().size(), 3u);
  EXPECT_EQ(m.windows()[0].commits, 2u);
  EXPECT_EQ(m.windows()[0].distributed_commits, 1u);
  EXPECT_EQ(m.windows()[1].commits, 1u);
  EXPECT_EQ(m.windows()[2].commits, 0u);
  EXPECT_EQ(m.windows()[2].aborts, 1u);
  EXPECT_EQ(m.total_commits(), 3u);
  EXPECT_EQ(m.total_aborts(), 1u);
  EXPECT_EQ(m.total_distributed(), 1u);
}

TEST(MetricsTest, AverageLatency) {
  Metrics m(1000);
  m.RecordCommit(0, Lat(100), false, false);
  m.RecordCommit(0, Lat(300), false, false);
  const LatencyBreakdown avg = m.AverageLatency();
  EXPECT_EQ(avg.total_us, 200u);
  EXPECT_EQ(avg.lock_wait_us, 100u);
}

TEST(MetricsTest, AbortsExcludedFromLatency) {
  Metrics m(1000);
  m.RecordCommit(0, Lat(100), false, false);
  m.RecordCommit(0, Lat(900), false, true);
  EXPECT_EQ(m.AverageLatency().total_us, 100u);
}

TEST(MetricsTest, ThroughputOverRange) {
  Metrics m(1'000'000);  // 1 s windows
  for (int i = 0; i < 50; ++i) m.RecordCommit(500'000, Lat(1), false, false);
  for (int i = 0; i < 70; ++i) m.RecordCommit(1'500'000, Lat(1), false, false);
  EXPECT_DOUBLE_EQ(m.Throughput(0, 2'000'000), 60.0);
  EXPECT_DOUBLE_EQ(m.Throughput(0, 1'000'000), 50.0);
  EXPECT_DOUBLE_EQ(m.Throughput(5'000'000, 6'000'000), 0.0);
}

TEST(MetricsTest, CpuUtilization) {
  Metrics m(1000);
  m.RecordBusy(500, 2000);  // 2000 us busy in a 1000 us window, 4 workers
  EXPECT_DOUBLE_EQ(m.CpuUtilization(0, 4), 0.5);
  EXPECT_DOUBLE_EQ(m.CpuUtilization(5, 4), 0.0);  // out of range
}

TEST(MetricsTest, NetBytesPerTxn) {
  Metrics m(1000);
  m.RecordCommit(10, Lat(1), false, false);
  m.RecordCommit(20, Lat(1), false, false);
  m.RecordNetBytes(10, 4096);
  EXPECT_DOUBLE_EQ(m.NetBytesPerTxn(0), 2048.0);
  EXPECT_DOUBLE_EQ(m.NetBytesPerTxn(3), 0.0);
}

TEST(MetricsTest, EmptyMetrics) {
  Metrics m(1000);
  EXPECT_EQ(m.AverageLatency().total_us, 0u);
  EXPECT_DOUBLE_EQ(m.Throughput(0, 1000), 0.0);
  EXPECT_EQ(m.latency_histogram().Percentile(0.99), 0u);
}

TEST(LatencyHistogramTest, PercentilesApproximateDistribution) {
  LatencyHistogram h;
  for (SimTime v = 1; v <= 10'000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10'000u);
  // Bucketing error is bounded by ~25% of the value (upper bucket bound).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900.0, 2600.0);
  EXPECT_GE(h.Percentile(0.99), h.Percentile(0.5));
  EXPECT_GE(h.Percentile(0.5), h.Percentile(0.1));
}

TEST(LatencyHistogramTest, PercentileIsUpperBound) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  EXPECT_GE(h.Percentile(0.0), 1000u);
  EXPECT_GE(h.Percentile(1.0), 1000u);
  EXPECT_LE(h.Percentile(1.0), 1300u);
}

TEST(LatencyHistogramTest, HandlesExtremes) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(kSimTimeMax);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Percentile(1.0), h.Percentile(0.0));
}

TEST(LatencyHistogramTest, SkewedDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 990; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(1'000'000);
  EXPECT_LE(h.Percentile(0.5), 130u);
  EXPECT_GE(h.Percentile(0.995), 900'000u);
}

TEST(MetricsTest, HistogramTracksCommitTotals) {
  Metrics m(1000);
  m.RecordCommit(0, Lat(500), false, false);
  m.RecordCommit(0, Lat(900), false, true);  // abort: not recorded
  EXPECT_EQ(m.latency_histogram().count(), 1u);
}

TEST(LatencyHistogramTest, EmptyHistogramPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_TRUE(snap.buckets.empty());
}

TEST(LatencyHistogramTest, SubMicrosecondClampsToFirstBucket) {
  // The histogram covers 1 us up; a 0 us latency (possible for a local
  // read that never waits) lands in the first bucket, not out of range.
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Percentile(1.0), 2u);
  const obs::HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(snap.buckets[0].second, 2u);
}

TEST(LatencyHistogramTest, BeyondTopBandClampsToLastBand) {
  // Values past the ~1100 s top band all share the last band instead of
  // indexing out of bounds; ordering against smaller values survives.
  LatencyHistogram h;
  h.Record(1ULL << 40);
  h.Record(kSimTimeMax);
  h.Record(10);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GE(h.Percentile(1.0), 1ULL << 30);
  EXPECT_LE(h.Percentile(0.0), 13u);
}

TEST(LatencyHistogramTest, ZeroAndOneQuantilesBracketTheData) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(100);
  h.Record(1000);
  // q=0 is the smallest bucket's upper bound, q=1 the largest's; both
  // within one bucket width (25%) of the true extremes.
  EXPECT_GE(h.Percentile(0.0), 10u);
  EXPECT_LE(h.Percentile(0.0), 13u);
  EXPECT_GE(h.Percentile(1.0), 1000u);
  EXPECT_LE(h.Percentile(1.0), 1300u);
  EXPECT_GE(h.Percentile(1.0), h.Percentile(0.999));
}

TEST(LatencyHistogramTest, SnapshotMatchesRecordedCounts) {
  LatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.Record(100);
  for (int i = 0; i < 3; ++i) h.Record(5'000);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 8u);
  ASSERT_EQ(snap.buckets.size(), 2u);
  // Ascending bounds, per-bucket (not cumulative) counts; the Prometheus
  // exporter does the cumulative sum.
  EXPECT_LT(snap.buckets[0].first, snap.buckets[1].first);
  EXPECT_EQ(snap.buckets[0].second, 5u);
  EXPECT_EQ(snap.buckets[1].second, 3u);
  EXPECT_EQ(snap.sum, snap.buckets[0].first * 5 + snap.buckets[1].first * 3);
}

}  // namespace
}  // namespace hermes::engine
