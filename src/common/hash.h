#ifndef HERMES_COMMON_HASH_H_
#define HERMES_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace hermes {

/// Process-wide hash perturbation salt, parsed once from the
/// HERMES_HASH_SALT environment variable (decimal or 0x-hex; default 0).
///
/// Every hash container in the library goes through hermes::HashMap /
/// hermes::HashSet, whose hasher mixes this salt into every hash value.
/// Changing the salt permutes bucket assignment — and therefore iteration
/// order — of every such container, while leaving the set of stored
/// elements untouched. Runs of the deterministic pipeline must produce
/// identical decisions under every salt; determinism_perturbation_test and
/// scripts/check_determinism.sh assert exactly that, which turns latent
/// "iteration order leaked into a decision" bugs into test failures.
uint64_t HashSalt();

/// Overrides the salt (tests run one workload per salt in one process).
/// Must not be called while any salted container holds elements: the
/// container would be left with elements in buckets the new hash function
/// no longer maps them to.
void SetHashSalt(uint64_t salt);

namespace detail {
extern uint64_t g_hash_salt;

/// SplitMix64 finalizer over (hash + salt): full-avalanche, so even a
/// 1-bit salt change reshuffles every bucket assignment.
inline uint64_t SaltAndFinalize(uint64_t h) {
  uint64_t x = h + 0x9e3779b97f4a7c15ULL + g_hash_salt;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace detail

/// Adapts any hasher into a salted one (see HashSalt()).
template <typename Base>
struct Salted {
  template <typename T>
  size_t operator()(const T& v) const {
    return static_cast<size_t>(
        detail::SaltAndFinalize(static_cast<uint64_t>(Base{}(v))));
  }
};

/// Drop-in replacements for std::unordered_map / std::unordered_set with a
/// salt-perturbed hasher. All hash containers in src/ must use these (the
/// detlint `raw-unordered` rule enforces it) so HERMES_HASH_SALT can
/// exercise every iteration order in one binary.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
using HashMap = std::unordered_map<K, V, Salted<Hash>, Eq>;

template <typename K, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
using HashSet = std::unordered_set<K, Salted<Hash>, Eq>;

}  // namespace hermes

#endif  // HERMES_COMMON_HASH_H_
