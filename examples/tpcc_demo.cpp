// Example: running the TPC-C-derived workload (New-Order + Payment) with
// a hot-spot concentration, and using the recovery API: the cluster is
// checkpointed mid-run, more transactions execute, then a replacement
// cluster is rebuilt from checkpoint + command-log replay and verified
// against the original (§4.3).
//
//   ./build/examples/example_tpcc_demo

#include <cstdio>
#include <memory>

#include "engine/cluster.h"
#include "engine/recovery.h"
#include "workload/client.h"
#include "workload/tpcc.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

}  // namespace

int main() {
  hermes::workload::TpccConfig tc;
  tc.num_warehouses = 8;
  tc.num_nodes = 4;
  tc.hotspot_concentration = 0.8;
  hermes::workload::TpccWorkload gen(tc);

  ClusterConfig config;
  config.num_nodes = tc.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 40;

  std::printf("TPC-C demo: %d warehouses on %d nodes, 80%% of requests on "
              "node 0's warehouses, Hermes routing\n\n",
              tc.num_warehouses, tc.num_nodes);

  Cluster cluster(config, RouterKind::kHermes, gen.WarehousePartitioning());
  cluster.Load();

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 400, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(5));
  driver.Start();
  cluster.RunUntil(SecToSim(5));
  cluster.Drain();

  std::printf("phase 1: %llu commits, %llu user aborts (stock checks)\n",
              static_cast<unsigned long long>(
                  cluster.metrics().total_commits()),
              static_cast<unsigned long long>(
                  cluster.metrics().total_aborts()));

  std::printf("taking a consistent checkpoint...\n");
  const hermes::storage::Checkpoint checkpoint = cluster.TakeCheckpoint();

  hermes::workload::ClosedLoopDriver driver2(
      &cluster, 400, [&gen](int, SimTime now) { return gen.Next(now); });
  driver2.set_stop_time(SecToSim(8));
  driver2.Start();
  cluster.RunUntil(SecToSim(8));
  cluster.Drain();
  std::printf("phase 2: %llu total commits. Simulating a crash...\n",
              static_cast<unsigned long long>(
                  cluster.metrics().total_commits()));

  auto recovered = hermes::engine::RecoverCluster(
      config, RouterKind::kHermes, gen.WarehousePartitioning(), checkpoint,
      cluster.command_log());

  const bool match = recovered->StateChecksum() == cluster.StateChecksum();
  std::printf("recovered cluster checksum %s the pre-crash state "
              "(replayed %zu batches from the command log)\n",
              match ? "MATCHES" : "DOES NOT MATCH",
              cluster.command_log().Suffix(checkpoint.next_batch).size());

  const auto lat = cluster.metrics().AverageLatency();
  std::printf("\naverage latency: %.1f ms (locks %.1f ms, remote %.1f ms)\n",
              lat.total_us / 1e3, lat.lock_wait_us / 1e3,
              lat.remote_wait_us / 1e3);
  return match ? 0 : 1;
}
