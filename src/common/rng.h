#ifndef HERMES_COMMON_RNG_H_
#define HERMES_COMMON_RNG_H_

#include <cstdint>

namespace hermes {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every random decision in the library flows through an
/// explicitly seeded Rng so that emulations are exactly reproducible; this
/// is load-bearing for the determinism property tests.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard-normal variate (Box-Muller; consumes two uniforms).
  double NextGaussian();

  /// Splits off an independently seeded child generator; deterministic in
  /// the parent's state.
  Rng Split();

 private:
  uint64_t s_[4];
};

/// SplitMix64 step, exposed for hashing keys into pseudo-random streams.
uint64_t SplitMix64(uint64_t& state);

/// Stateless 64-bit finalizer-style hash (useful for scrambling key spaces).
uint64_t Mix64(uint64_t x);

}  // namespace hermes

#endif  // HERMES_COMMON_RNG_H_
