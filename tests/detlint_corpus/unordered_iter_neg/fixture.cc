// detlint-fixture: path=src/core/unordered_iter_neg.cc
std::vector<hermes::HashMap<uint64_t, int>> stores_;
std::vector<int> order_;
int Check() {
  int sum = 0;
  for (int v : order_) sum += v;
  for (auto& s : stores_) sum += static_cast<int>(s.size());
  return sum;
}
