// detlint-fixture: path=src/core/std_rand_neg.cc
int rand_calls = 0;
void Use(int rand) { rand_calls += rand; }
// a comment naming std::rand() is not a finding
