// Cross-module integration tests: Clay's monitor-plan-migrate loop, the
// Squall chunk pipeline, dynamic provisioning, and end-to-end behavioural
// comparisons between routers that mirror the paper's qualitative claims.

#include <memory>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/multitenant.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

TEST(IntegrationTest, ClayDetectsHotNodeAndMigrates) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.migration_chunk_records = 500;
  Cluster cluster(config, RouterKind::kCalvin,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  routing::ClayConfig clay;
  clay.monitor_window_us = MsToSim(200);
  clay.range_size = 1000;
  cluster.EnableClay(clay);

  // Heavy skew on node 0's first ranges.
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.distributed_ratio = 0.0;
  wl.zipf_theta = 0.95;
  wl.seed = 21;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(&cluster, 64, [&](int c, SimTime now) {
    TxnRequest txn = gen.Next(now);
    if (c % 4 != 0) {
      // 75% of clients hammer node 0's partition.
      for (Key& k : txn.read_set) k %= 5000;
      txn.write_set = txn.read_set;
    }
    return txn;
  });
  driver.set_stop_time(SecToSim(2));
  driver.Start();
  cluster.RunUntil(SecToSim(2));
  cluster.Drain();

  // Clay produced at least one plan and some of node 0's home ranges moved.
  EXPECT_GT(cluster.ownership().num_interval_entries(), 0u);
  int rehomed = 0;
  for (Key k = 0; k < 5000; k += 1000) {
    if (cluster.ownership().Home(k) != 0) ++rehomed;
  }
  EXPECT_GT(rehomed, 0);
  // Records physically followed the re-homing.
  uint64_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).store().size();
  }
  EXPECT_EQ(total, config.num_records);
}

TEST(IntegrationTest, ScaleOutSheddsLoadToNewNode) {
  workload::MultiTenantConfig mt;
  mt.num_nodes = 3;
  mt.tenants_per_node = 2;
  mt.records_per_tenant = 5000;
  mt.hot_fraction = 0.6;
  mt.rotation_us = SecToSim(1000);  // effectively static hot node 0
  workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = gen.num_records();
  config.hermes.fusion_table_capacity = 1000;
  config.migration_chunk_records = 500;
  Cluster cluster(config, RouterKind::kHermes, gen.PerfectPartitioning());
  cluster.Load();

  workload::ClosedLoopDriver driver(
      &cluster, 48, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(3));
  driver.Start();
  cluster.RunUntil(SecToSim(1));

  // Add node 3 and migrate the hot tenant's range to it.
  const NodeId added = cluster.AddNode({{0, mt.records_per_tenant - 1, 3}},
                                       /*migrate_cold=*/true);
  EXPECT_EQ(added, 3);
  cluster.RunUntil(SecToSim(3));
  cluster.Drain();

  // The new node ended up owning (most of) the hot tenant.
  EXPECT_GT(cluster.node(3).store().size(), mt.records_per_tenant / 2);
  // And it did real work after joining.
  EXPECT_GT(cluster.node(3).workers().busy_us(), 0u);
  // Conservation.
  uint64_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).store().size();
  }
  EXPECT_EQ(total, config.num_records);
}

TEST(IntegrationTest, RemoveNodeDrainsIt) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 8000;
  config.migration_chunk_records = 250;
  Cluster cluster(config, RouterKind::kHermes,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  // Drain node 3: its range re-homes to nodes 0..2 round-robin.
  cluster.RemoveNode(3,
                     {{6000, 7999, 0}},
                     /*migrate_cold=*/true);
  cluster.Drain();

  EXPECT_EQ(cluster.node(3).store().size(), 0u);
  uint64_t total = 0;
  for (int n = 0; n < 3; ++n) total += cluster.node(n).store().size();
  EXPECT_EQ(total, config.num_records);
  EXPECT_EQ(cluster.router().num_active_nodes(), 3);
}

TEST(IntegrationTest, HermesBeatsCalvinOnSkewedDistributedLoad) {
  // The paper's headline claim, in miniature: under a skewed workload with
  // many distributed transactions, prescient routing beats static
  // multi-master routing.
  auto run = [](RouterKind kind) {
    ClusterConfig config;
    config.num_nodes = 4;
    config.num_records = 50'000;
    config.hermes.fusion_table_capacity = 2000;
    Cluster cluster(config, kind,
                    std::make_unique<partition::RangePartitionMap>(
                        config.num_records, config.num_nodes));
    cluster.Load();
    workload::YcsbConfig wl;
    wl.num_records = config.num_records;
    wl.num_partitions = config.num_nodes;
    wl.distributed_ratio = 0.5;
    wl.seed = 6;
    workload::YcsbWorkload gen(wl, nullptr);
    workload::ClosedLoopDriver driver(
        &cluster, 400, [&gen](int, SimTime now) { return gen.Next(now); });
    driver.set_stop_time(SecToSim(5));
    driver.Start();
    cluster.RunUntil(SecToSim(5));
    cluster.Drain();
    return cluster.metrics().Throughput(SecToSim(1), SecToSim(5));
  };
  const double calvin = run(RouterKind::kCalvin);
  const double hermes = run(RouterKind::kHermes);
  EXPECT_GT(hermes, calvin * 1.15);
}

TEST(IntegrationTest, FusionTableCapBoundsOverlay) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.hermes.fusion_table_capacity = 100;
  Cluster cluster(config, RouterKind::kHermes,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 17;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 32, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(2));
  driver.Start();
  cluster.RunUntil(SecToSim(2));
  cluster.Drain();

  ASSERT_NE(cluster.fusion_table(), nullptr);
  EXPECT_LE(cluster.fusion_table()->size(), 100u);
  // Overlay only holds fusion entries once everything drained.
  EXPECT_LE(cluster.ownership().key_overlay().size(), 100u);
  EXPECT_GT(cluster.metrics().total_commits(), 100u);
}

TEST(IntegrationTest, AbortsDoNotLeakLocksOrRecords) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 10'000;
  config.hermes.fusion_table_capacity = 500;
  Cluster cluster(config, RouterKind::kHermes,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();
  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 19;
  workload::YcsbWorkload gen(wl, nullptr);
  Rng abort_rng(5);
  workload::ClosedLoopDriver driver(&cluster, 32, [&](int, SimTime now) {
    TxnRequest txn = gen.Next(now);
    txn.user_abort = abort_rng.NextDouble() < 0.2;
    return txn;
  });
  driver.set_stop_time(SecToSim(2));
  driver.Start();
  cluster.RunUntil(SecToSim(2));
  cluster.Drain();

  EXPECT_GT(cluster.metrics().total_aborts(), 50u);
  EXPECT_EQ(cluster.executor().inflight(), 0u);
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_EQ(cluster.node(n).locks().num_txns(), 0u);
    EXPECT_EQ(cluster.node(n).undo().active_txns(), 0u);
  }
  uint64_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).store().size();
  }
  EXPECT_EQ(total, config.num_records);
}

}  // namespace
}  // namespace hermes
