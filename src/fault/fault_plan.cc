#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/rng.h"

namespace hermes::fault {

FaultPlan FaultPlan::Generate(const FaultPlanConfig& config, uint64_t seed) {
  assert(config.num_nodes > 0);
  assert(config.max_outage_us >= config.min_outage_us);
  FaultPlan plan;
  plan.seed = seed;
  plan.link = config.link;
  Rng rng(Mix64(seed ^ 0xfa017ULL));

  // Each crash cycle lives in its own slot of the horizon so a node is
  // never crashed twice concurrently and every rejoin lands before the
  // next crash. The crash point is drawn from the first half of the slot
  // and the outage is clamped to fit.
  const int cycles = std::max(config.crash_cycles, 0);
  if (cycles > 0) {
    const SimTime slot = config.horizon_us / cycles;
    for (int c = 0; c < cycles; ++c) {
      const SimTime slot_start = c * slot;
      if (slot < 2 * config.min_outage_us) continue;  // degenerate horizon
      const SimTime crash_window = slot / 2;
      const SimTime crash_at =
          slot_start + rng.NextBounded(std::max<SimTime>(crash_window, 1));
      // Rejoin strictly before the slot ends, so it sorts strictly before
      // the next slot's crash even on timestamp ties.
      const SimTime slot_end = slot_start + slot - 1;
      const SimTime max_fit =
          slot_end > crash_at ? slot_end - crash_at : config.min_outage_us;
      const SimTime hi =
          std::min<SimTime>(config.max_outage_us, std::max<SimTime>(max_fit, 1));
      const SimTime lo = std::min<SimTime>(config.min_outage_us, hi);
      const SimTime outage = lo + rng.NextBounded(hi - lo + 1);
      const NodeId node =
          static_cast<NodeId>(rng.NextBounded(config.num_nodes));
      plan.events.push_back(FaultEvent{crash_at,
                                       config.no_stall
                                           ? FaultEvent::Kind::kCrashNoStall
                                           : FaultEvent::Kind::kCrash,
                                       node});
      plan.events.push_back(
          FaultEvent{crash_at + outage, FaultEvent::Kind::kRejoin, node});
    }
  }

  if (config.inject_failover) {
    // Anywhere in the middle 60% of the horizon, so batches are in flight.
    const SimTime lo = config.horizon_us / 5;
    const SimTime span = std::max<SimTime>(3 * config.horizon_us / 5, 1);
    plan.events.push_back(FaultEvent{lo + rng.NextBounded(span),
                                     FaultEvent::Kind::kFailover,
                                     kInvalidNode});
  }

  std::sort(plan.events.begin(), plan.events.end());
  return plan;
}

std::string FaultPlan::DebugString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "fault plan seed=%llx drop=%.3f dup=%.3f jitter<=%llu:\n",
                static_cast<unsigned long long>(seed), link.drop_prob,
                link.duplicate_prob,
                static_cast<unsigned long long>(link.max_jitter_us));
  out += buf;
  for (const FaultEvent& e : events) {
    const char* kind = e.kind == FaultEvent::Kind::kCrash ? "crash"
                       : e.kind == FaultEvent::Kind::kRejoin
                           ? "rejoin"
                           : e.kind == FaultEvent::Kind::kCrashNoStall
                                 ? "crash-nostall"
                                 : "failover";
    std::snprintf(buf, sizeof(buf), "  t=%llu %s node=%d\n",
                  static_cast<unsigned long long>(e.at), kind, e.node);
    out += buf;
  }
  return out;
}

}  // namespace hermes::fault
