// detlint-fixture: path=src/engine/lane_confinement_neg.cc
// detlint:requires(exclusive)
void FinishTxn(uint64_t id);

// detlint:runs(exclusive)
void BarrierStep(uint64_t id) {
  FinishTxn(id);
}

void LaneStep(Simulator& sim, uint64_t id) {
  sim.Defer([id] { FinishTxn(id); });
}
