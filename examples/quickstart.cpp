// Quickstart: build a 4-node deterministic database cluster, run a skewed
// YCSB workload with 50% distributed transactions against both vanilla
// Calvin routing and Hermes prescient routing, and compare throughput.
//
//   ./build/examples/example_quickstart

#include <cstdio>
#include <memory>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

double RunSystem(RouterKind kind, const char* label) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 100'000;
  config.workers_per_node = 4;
  config.hermes.fusion_table_capacity = 2'500;  // 2.5% of the database

  Cluster cluster(config, kind,
                  std::make_unique<hermes::partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  hermes::workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.distributed_ratio = 0.5;
  wl.rw_ratio = 0.5;
  wl.seed = 7;
  hermes::workload::YcsbWorkload gen(wl, nullptr);

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 800, [&gen](int, SimTime now) { return gen.Next(now); });

  constexpr SimTime kWarmup = SecToSim(5);
  constexpr SimTime kMeasure = SecToSim(30);
  driver.set_stop_time(kWarmup + kMeasure);
  driver.Start();
  cluster.RunUntil(kWarmup + kMeasure);
  cluster.Drain();

  const double tput = cluster.metrics().Throughput(kWarmup, kWarmup + kMeasure);
  const auto lat = cluster.metrics().AverageLatency();
  std::printf(
      "%-8s  throughput: %8.0f txn/s   avg latency: %6.2f ms "
      "(lock wait %.2f ms, remote wait %.2f ms)\n",
      label, tput, lat.total_us / 1000.0, lat.lock_wait_us / 1000.0,
      lat.remote_wait_us / 1000.0);
  return tput;
}

}  // namespace

int main() {
  std::printf("Hermes quickstart: 4 nodes, 100k records, YCSB "
              "(50%% distributed, 50%% read-write), 800 closed-loop clients\n\n");
  const double calvin = RunSystem(RouterKind::kCalvin, "calvin");
  const double hermes_tput = RunSystem(RouterKind::kHermes, "hermes");
  std::printf("\nHermes / Calvin throughput ratio: %.2fx\n",
              hermes_tput / calvin);
  return 0;
}
