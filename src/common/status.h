#ifndef HERMES_COMMON_STATUS_H_
#define HERMES_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hermes {

/// Lightweight error-reporting type used across the library instead of
/// exceptions. Mirrors the shape of absl::Status but carries only the
/// pieces this project needs.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
    kAborted,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "NOT_FOUND: key 42".
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

bool operator==(const Status& a, const Status& b);

}  // namespace hermes

#endif  // HERMES_COMMON_STATUS_H_
