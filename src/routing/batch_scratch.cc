#include "routing/batch_scratch.h"

namespace hermes::routing {

void KeyInterner::Seal() {
  uniq_.assign(arena_.begin(), arena_.end());
  std::sort(uniq_.begin(), uniq_.end());
  uniq_.erase(std::unique(uniq_.begin(), uniq_.end()), uniq_.end());
  ids_.resize(arena_.size());
  for (size_t i = 0; i < arena_.size(); ++i) {
    ids_[i] = static_cast<int32_t>(
        std::lower_bound(uniq_.begin(), uniq_.end(), arena_[i]) -
        uniq_.begin());
  }
}

}  // namespace hermes::routing
