#ifndef HERMES_FAULT_LINK_CHAOS_H_
#define HERMES_FAULT_LINK_CHAOS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "sim/network.h"

namespace hermes::fault {

/// Seeded per-message chaos source. Install()ed into a sim::Network, it is
/// consulted once per inter-node Send. Each draw is a *pure function* of
/// (seed, src, dst, link sequence number): there is no shared RNG stream
/// to advance, so draws are identical no matter how sends from different
/// node lanes interleave in real time — the perturbation history is a pure
/// function of (config, seed, per-link message order), which the network
/// keeps total.
class LinkChaos {
 public:
  LinkChaos(const LinkChaosConfig& config, uint64_t seed);

  /// Draws the perturbation for message `link_seq` on the directed link
  /// src -> dst. Stateless: same arguments, same draw.
  sim::Perturbation Draw(NodeId src, NodeId dst, uint64_t link_seq) const;

  /// Hooks this chaos source into `net`. The network keeps a copy of the
  /// std::function, but the config lives here — the LinkChaos must outlive
  /// the hook (the FaultInjector owns both).
  void Install(sim::Network* net);

 private:
  LinkChaosConfig config_;
  uint64_t seed_;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_LINK_CHAOS_H_
