// Reproduces Fig. 8: average CPU utilization and network bytes per
// transaction over time under the Google workload.
//
// Expected shape (paper): Hermes sustains the highest CPU utilization
// (better load balancing lets it use the cluster) while its per-txn
// network usage is comparable to — sometimes below — the baselines
// (fewer distributed transactions); Clay shows network spikes from its
// dedicated migration phases.

#include <cstdio>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::PrintSeriesTable;
using hermes::bench::RunGoogleWorkload;
using hermes::bench::RunResult;
using hermes::engine::RouterKind;

int main() {
  std::printf("Fig. 8 reproduction: CPU and network usage over time\n");
  GoogleRunParams defaults;
  const double window_s = defaults.window_us / 1e6;

  RunResult calvin = RunGoogleWorkload(RouterKind::kCalvin, GoogleRunParams{});
  GoogleRunParams clay_params;
  clay_params.enable_clay = true;
  RunResult clay = RunGoogleWorkload(RouterKind::kCalvin, std::move(clay_params));
  RunResult gstore = RunGoogleWorkload(RouterKind::kGStore, GoogleRunParams{});
  RunResult tpart = RunGoogleWorkload(RouterKind::kTPart, GoogleRunParams{});
  RunResult leap = RunGoogleWorkload(RouterKind::kLeap, GoogleRunParams{});
  RunResult hermes = RunGoogleWorkload(RouterKind::kHermes, GoogleRunParams{});

  auto pct = [](std::vector<double> v) {
    for (double& x : v) x *= 100.0;
    return v;
  };
  PrintSeriesTable("Fig 8a: average CPU usage",
                   {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
                   {pct(calvin.cpu), pct(clay.cpu), pct(gstore.cpu),
                    pct(tpart.cpu), pct(leap.cpu), pct(hermes.cpu)},
                   window_s, "percent of worker capacity");

  PrintSeriesTable(
      "Fig 8b: network usage per transaction",
      {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
      {calvin.net_per_txn, clay.net_per_txn, gstore.net_per_txn,
       tpart.net_per_txn, leap.net_per_txn, hermes.net_per_txn},
      window_s, "bytes per committed txn");

  // Receiver-side view of the same traffic. On the fault-free runs here it
  // tracks Fig 8b modulo messages in flight across a window boundary; under
  // a chaos profile (bench_fault_recovery) the two diverge by the dropped
  // and duplicated wire attempts.
  PrintSeriesTable(
      "Fig 8c: network bytes received per transaction",
      {"calvin", "clay", "gstore", "tpart", "leap", "hermes"},
      {calvin.net_recv_per_txn, clay.net_recv_per_txn, gstore.net_recv_per_txn,
       tpart.net_recv_per_txn, leap.net_recv_per_txn, hermes.net_recv_per_txn},
      window_s, "bytes per committed txn");

  std::printf("\npaper shape: hermes uses the most CPU (balanced load) with "
              "network per txn at or below the baselines\n");
  return 0;
}
