#ifndef HERMES_ROUTING_ROUTER_H_
#define HERMES_ROUTING_ROUTER_H_

#include <string>
#include <vector>

#include "common/config.h"
#include "common/membership.h"
#include "common/types.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"

namespace hermes::routing {

/// One key touched by a routed transaction, with fully resolved data
/// placement so executors need no further ownership lookups.
///
/// Semantics (executed by txn::Executor):
///  - A shared (read) or exclusive (write/migration) lock is taken at
///    `owner`, in total order.
///  - If `ship_to_master`, the owner reads the record and sends it to the
///    executing master once its local locks are granted.
///  - If `new_owner` != kInvalidNode, the record physically moves from
///    `owner` to `new_owner` (extract on send, insert on delivery); the
///    transaction also takes an exclusive lock at `new_owner` to fence
///    later transactions routed there.
struct Access {
  Key key = 0;
  NodeId owner = kInvalidNode;
  bool is_write = false;
  bool ship_to_master = false;
  NodeId new_owner = kInvalidNode;
  /// Read served from the executing node's local replica-lease copy
  /// (owner == the master in that case): no participant, no shipment. The
  /// primary record is untouched, so record singularity is unaffected.
  bool replica_read = false;
};

/// One replica-lease maintenance action decided at routing time and
/// executed by the engine's lease manager in dispatch (= total) order.
enum class ReplicaOpKind : uint8_t {
  kInstall = 0,  ///< ship a read-only copy of `key` from `source` to `node`
  kRevoke = 1,   ///< drop node's copy (write-heavy, capacity, or lapse)
};

struct ReplicaOp {
  Key key = 0;
  NodeId node = kInvalidNode;    ///< lease holder the op targets
  NodeId source = kInvalidNode;  ///< copy source (installs; owner at routing)
  ReplicaOpKind kind = ReplicaOpKind::kInstall;
};

/// A record shipped home when the transaction commits (G-Store returns its
/// group on commit; T-Part returns borrowed records after the last in-batch
/// user commits, attached to that last user's plan).
struct ReturnShipment {
  Key key;
  NodeId from;
  NodeId to;
};

/// A transaction with its route(s) and data-movement plan.
struct RoutedTxn {
  TxnRequest txn;
  /// Nodes that run the transaction logic. Exactly one for single-master
  /// schemes (Hermes, G-Store, LEAP, T-Part); every write-owning node for
  /// vanilla Calvin's multi-master scheme.
  std::vector<NodeId> masters;
  std::vector<Access> accesses;
  std::vector<ReturnShipment> on_commit_returns;
  /// Lease grants/revokes decided while routing this transaction's batch
  /// (batch-boundary decisions ride the first routed transaction). Folded
  /// into both digests by the scheduler and replayed deterministically.
  std::vector<ReplicaOp> replica_ops;
};

/// Output of routing one totally ordered batch: the (possibly reordered)
/// transactions with placements, plus the modeled scheduler CPU cost of
/// the analysis itself.
struct RoutePlan {
  std::vector<RoutedTxn> txns;
  SimTime routing_cost_us = 0;
};

/// A transaction-routing algorithm. One instance exists per cluster in the
/// simulation; conceptually every node runs an identical replica, which is
/// sound because implementations must be deterministic functions of
/// (constructor config, sequence of RouteBatch/provisioning calls).
///
/// The router reads and updates the shared OwnershipMap: placements it
/// decides (fusion migrations) become visible to subsequent batches.
class Router {
 public:
  Router(partition::OwnershipMap* ownership, const CostModel* costs,
         int num_nodes);
  virtual ~Router() = default;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one batch. Called once per sequenced batch, in order.
  virtual RoutePlan RouteBatch(const Batch& batch) = 0;

  virtual std::string name() const = 0;

  /// Provisioning notifications (§3.3), delivered in total order via the
  /// special marker transactions. Default: adjust the active node set.
  virtual void OnAddNode(NodeId node);
  virtual void OnRemoveNode(NodeId node);

  const std::vector<NodeId>& active_nodes() const { return active_nodes_; }
  int num_active_nodes() const { return static_cast<int>(active_nodes_.size()); }

  /// Restores the active node set from a checkpoint.
  void RestoreActiveNodes(std::vector<NodeId> nodes) {
    active_nodes_ = std::move(nodes);
    candidate_epoch_valid_ = false;
  }

  /// Installs the degraded-mode liveness view (nullptr = everything
  /// alive). Candidate sets shrink to the alive subset of active nodes
  /// while any node is down; the view's epoch counter invalidates the
  /// cached subset.
  void set_membership(const MembershipView* membership) {
    membership_ = membership;
    candidate_epoch_valid_ = false;
  }
  const MembershipView* membership() const { return membership_; }

  bool NodeAlive(NodeId node) const {
    return membership_ == nullptr || membership_->alive(node);
  }

 protected:
  /// Deduplicates a txn's key sets into per-key lock modes: keys in the
  /// write-set are exclusive; read-only keys shared. Returned pairs are
  /// sorted by key (deterministic iteration).
  static std::vector<std::pair<Key, bool>> MergedAccessSet(
      const TxnRequest& txn);

  /// MergedAccessSet into caller-owned storage (cleared, then filled), so
  /// per-batch hot loops can reuse one scratch vector instead of
  /// allocating a fresh one per transaction.
  static void MergedAccessSetInto(const TxnRequest& txn,
                                  std::vector<std::pair<Key, bool>>* out);

  /// Owner of `key` in the live ownership view.
  NodeId OwnerOf(Key key) const;

  /// Node owning the most keys of `txn`'s combined access set (ties to the
  /// lowest node id) — the "majority" master used by G-Store and LEAP.
  NodeId MajorityOwner(const TxnRequest& txn) const;

  /// Linear-cost routing model: cost = route_linear_us * b.
  SimTime LinearCost(size_t batch_size) const;

  /// Analysis-heavy routing model: linear + quadratic term (Hermes,
  /// T-Part); reproduces the Fig. 10 large-batch penalty.
  SimTime AnalysisCost(size_t batch_size) const;

  /// Default plan for a kChunkMigration transaction: exclusive-locks every
  /// chunk key at its current owner, ships it to the target, and re-homes
  /// the chunk's range. Baselines without a fusion table use this directly
  /// (it blocks any concurrent access to the chunk — Squall's documented
  /// interference).
  RoutedTxn PlanChunkMigrationDefault(const TxnRequest& txn);

  /// Default plan for provisioning markers: adjusts the active node set
  /// and emits a no-op plan.
  RoutedTxn PlanProvisioningDefault(const TxnRequest& txn);

  /// Active nodes filtered to the alive subset (== active_nodes_ when no
  /// membership view is installed or nothing is down). Cached per
  /// membership epoch; provisioning invalidates via the mutators above.
  const std::vector<NodeId>& candidate_nodes() const;

  partition::OwnershipMap* ownership_;
  const CostModel* costs_;
  std::vector<NodeId> active_nodes_;

 private:
  const MembershipView* membership_ = nullptr;
  mutable std::vector<NodeId> candidate_cache_;
  mutable uint32_t candidate_epoch_ = 0;
  mutable bool candidate_epoch_valid_ = false;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_ROUTER_H_
