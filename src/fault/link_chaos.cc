#include "fault/link_chaos.h"

namespace hermes::fault {

LinkChaos::LinkChaos(const LinkChaosConfig& config, uint64_t seed)
    : config_(config), rng_(Mix64(seed ^ 0x11c4a05ULL)) {}

sim::Perturbation LinkChaos::Draw(NodeId /*src*/, NodeId /*dst*/,
                                  uint64_t /*bytes*/, SimTime /*now*/) {
  ++draws_;
  sim::Perturbation p;
  // Wire attempts are lost independently until one gets through (bounded
  // so a pathological drop_prob cannot stall the simulation).
  while (p.dropped_attempts < config_.max_drops_per_message &&
         rng_.NextDouble() < config_.drop_prob) {
    ++p.dropped_attempts;
    p.extra_delay_us += config_.retransmit_delay_us;
  }
  if (rng_.NextDouble() < config_.duplicate_prob) p.duplicates = 1;
  if (config_.max_jitter_us > 0) {
    p.extra_delay_us += rng_.NextBounded(config_.max_jitter_us + 1);
  }
  return p;
}

void LinkChaos::Install(sim::Network* net) {
  net->set_perturbation(
      [this](NodeId src, NodeId dst, uint64_t bytes, SimTime now) {
        return Draw(src, dst, bytes, now);
      });
}

}  // namespace hermes::fault
