// detlint-fixture: path=src/core/obs_decision_neg.cc
void Note(uint64_t key) {
  if (HERMES_TRACE_ACTIVE(key)) {
    Emit(key);
  }
}
