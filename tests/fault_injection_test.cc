// Fault-injection integration tests: seeded crash/rejoin cycles, link
// chaos, and mid-flight replica failover, with the invariant monitor and
// the fault-free oracle asserting nothing was lost or invented.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "engine/replication.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::ReplicaGroup;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

ClusterConfig ChaosClusterConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 8'000;
  config.hermes.fusion_table_capacity = 300;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

TEST(FaultInjectionTest, CrashRejoinRebuildsExactState) {
  const ClusterConfig config = ChaosClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(300);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(20);
  pc.max_outage_us = MsToSim(80);
  const FaultPlan plan = FaultPlan::Generate(pc, 7);

  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1234;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();

  EXPECT_GT(cluster.metrics().total_commits(), 100u);
  ASSERT_EQ(injector.recoveries().size(), 1u);
  const fault::RecoveryStats& rec = injector.recoveries()[0];
  EXPECT_GE(rec.drained_at, rec.crash_at);
  EXPECT_GE(rec.rejoin_at, rec.drained_at);
  EXPECT_GE(rec.resumed_at, rec.rejoin_at);
  EXPECT_GT(rec.replay_us, 0u) << "the rebuild should cost virtual time";
  EXPECT_GT(rec.replayed_batches, 0u);

  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  EXPECT_TRUE(monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                                         MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(FaultInjectionTest, ServiceContinuesAfterRejoin) {
  // Work submitted DURING the outage parks at the paused sequencer and
  // commits after recovery — nothing accepted is dropped.
  const ClusterConfig config = ChaosClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(200);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(40);
  pc.max_outage_us = MsToSim(60);
  const FaultPlan plan = FaultPlan::Generate(pc, 3);
  FaultInjector injector(&cluster, plan, MapFactory(config));

  const SimTime crash_at = plan.events[0].at;
  injector.RunUntil(crash_at + MsToSim(1));  // mid-outage
  ASSERT_TRUE(cluster.intake_paused());

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 99;
  workload::YcsbWorkload gen(wl, nullptr);
  uint64_t committed = 0;
  for (int i = 0; i < 20; ++i) {
    cluster.Submit(gen.Next(cluster.Now()),
                   [&committed](const engine::TxnResult&) { ++committed; });
  }
  injector.RunUntil(pc.horizon_us);
  injector.Drain();
  EXPECT_FALSE(cluster.intake_paused());
  EXPECT_EQ(committed, 20u);
}

TEST(FaultInjectionTest, LinkChaosPreservesOracleEquality) {
  const ClusterConfig config = ChaosClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(250);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 0;
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 400;
  const FaultPlan plan = FaultPlan::Generate(pc, 11);
  FaultInjector injector(&cluster, plan, MapFactory(config));

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 555;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();

  EXPECT_GT(cluster.metrics().total_commits(), 100u);
  EXPECT_GT(cluster.network().messages_dropped(), 0u);
  EXPECT_GT(cluster.network().messages_duplicated(), 0u);
  // Dropped attempts cost the sender bytes that never arrive; duplicates
  // cost both sides. Either way sent != received under chaos.
  EXPECT_NE(cluster.network().total_bytes(),
            cluster.network().total_bytes_received());

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "final"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "final"));
  EXPECT_TRUE(monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                                         MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(FaultInjectionTest, CheckpointRefreshShortensSecondReplay) {
  const ClusterConfig config = ChaosClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(500);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 2;
  pc.min_outage_us = MsToSim(20);
  pc.max_outage_us = MsToSim(60);
  const FaultPlan plan = FaultPlan::Generate(pc, 21);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 4242;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();

  ASSERT_EQ(injector.recoveries().size(), 2u);
  // The first rejoin refreshed the checkpoint, so the second replay only
  // covers batches sequenced since — not the whole history.
  EXPECT_LT(injector.recoveries()[1].replayed_batches,
            cluster.command_log().size());
  EXPECT_TRUE(monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                                         MapFactory(config), "final"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

TEST(FaultInjectionTest, MidFlightFailoverKeepsReplicasConsistent) {
  const ClusterConfig config = ChaosClusterConfig();
  const int replicas = 3;
  ReplicaGroup group(config, RouterKind::kHermes,
                     [&config] {
                       return std::make_unique<partition::RangePartitionMap>(
                           config.num_records, config.num_nodes);
                     },
                     replicas);
  group.Load();

  // Hand-built plan: the primary dies at t=22ms — 1.6ms after a large
  // burst is sequenced (epoch cut at 20ms + 400us total order), while the
  // batch is still mid-pipeline (routing, logging, execution).
  FaultPlan plan;
  plan.seed = 17;
  plan.events.push_back(
      {MsToSim(22), fault::FaultEvent::Kind::kFailover, kInvalidNode});
  FaultInjector injector(&group, plan);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 31337;
  workload::YcsbWorkload gen(wl, nullptr);
  injector.RunUntil(MsToSim(19));
  for (int i = 0; i < 400; ++i) group.Submit(gen.Next(MsToSim(19)));

  injector.RunUntil(MsToSim(100));
  ASSERT_EQ(injector.failovers_applied(), 1);
  EXPECT_EQ(group.primary_index(), 1);
  // The old primary really died mid-batch: it is frozen with work it
  // never finished (its commit counter stopped short of the burst).
  EXPECT_LT(group.replica(0).metrics().total_commits(), 400u);

  // Service continues on the promoted standby.
  uint64_t committed = 0;
  for (int i = 0; i < 30; ++i) {
    group.Submit(gen.Next(group.replica(1).Now()),
                 [&committed](const engine::TxnResult&) { ++committed; });
  }
  injector.Drain();
  EXPECT_EQ(committed, 30u);
  // Every sequenced transaction reached the standby through the tap
  // before the primary died, so none of the 400 is lost.
  EXPECT_EQ(group.replica(1).metrics().total_commits(), 430u);

  InvariantMonitor monitor(config.num_records);
  EXPECT_TRUE(monitor.CheckReplicaChecksums(group, "final"))
      << monitor.FailureReport();
}

TEST(FaultInjectionTest, InFlightRecordsAppearInExecutorDebugString) {
  // Satellite: TxnExecutor::DebugString lists extracted-but-undelivered
  // records with their source and destination nodes. Step the simulation
  // in small increments until a migration is mid-wire and check both the
  // table and its rendering.
  const ClusterConfig config = ChaosClusterConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 808;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 12, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(200));
  driver.Start();

  bool seen = false;
  for (SimTime t = 100; t <= MsToSim(200) && !seen; t += 100) {
    cluster.RunUntil(t);
    if (cluster.executor().inflight_records().empty()) continue;
    seen = true;
    const auto& [key, rec] = *cluster.executor().inflight_records().begin();
    EXPECT_NE(rec.from, rec.to);
    EXPECT_FALSE(cluster.node(rec.from).store().Contains(key))
        << "in-flight record still present at its source";
    const std::string debug = cluster.executor().DebugString();
    EXPECT_NE(debug.find("in flight: key="), std::string::npos) << debug;
  }
  EXPECT_TRUE(seen) << "the skewed YCSB run never had a record mid-wire";
  cluster.Drain();
  EXPECT_TRUE(cluster.executor().inflight_records().empty());
}

}  // namespace
}  // namespace hermes
