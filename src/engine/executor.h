#ifndef HERMES_ENGINE_EXECUTOR_H_
#define HERMES_ENGINE_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/hash.h"
#include "common/membership.h"
#include "common/types.h"
#include "engine/degraded.h"
#include "engine/metrics.h"
#include "engine/node.h"
#include "net/wire.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "replication/lease_manager.h"
#include "routing/router.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace hermes::engine {

/// Outcome of one transaction, delivered to the submitting client.
struct TxnResult {
  TxnId id = kInvalidTxn;
  bool aborted = false;
  bool distributed = false;
  LatencyBreakdown latency;
};

/// Executes routed transactions across the simulated nodes, implementing
/// the deterministic transaction processing flow of §2.1 extended with
/// on-the-fly data fusion (§3.1):
///
///  1. Each involved node enqueues the transaction's local lock requests
///     in total order (conservative ordered locking). A node involved as
///     a migration destination takes an exclusive "fence" lock so later
///     transactions routed there cannot observe the record before this
///     transaction's writes commit.
///  2. Participant nodes, once their local locks are granted and their
///     records physically present, read the records on a worker and ship
///     them to the master(s); records that migrate are extracted at the
///     source when sent and inserted at the destination when the message
///     lands. Participants then release their locks (early release).
///  3. A master executes the transaction logic on a worker once its local
///     locks are granted and every shipped record has arrived, applies its
///     writes (with UNDO pre-images; user aborts roll back but still honor
///     the migration plan, §4.2), releases its locks, and commits.
///  4. On full commit, checked-out records ship home (G-Store / T-Part
///     return shipments) and the client is acknowledged.
///
/// Record presence is first-class: any action touching a record waits
/// until the record has physically arrived at the node, which is how
/// remote-data stalls — and the clogging they cause behind conservative
/// locks — emerge in the simulation.
class TxnExecutor {
 public:
  using CommitCallback = std::function<void(const TxnResult&)>;

  /// All cross-node shipments go through the wire substrate (`wire`): it
  /// tags each message foreground (transaction-critical participant
  /// shipments) or bulk (migration write-backs, replica traffic, reships)
  /// and, when config.net.enabled, applies bounded-bandwidth queueing,
  /// coalescing and backpressure before the message reaches the fabric.
  TxnExecutor(sim::Simulator* sim, net::Wire* wire, Metrics* metrics,
              const CostModel* costs,
              std::vector<std::unique_ptr<Node>>* nodes);

  TxnExecutor(const TxnExecutor&) = delete;
  TxnExecutor& operator=(const TxnExecutor&) = delete;

  /// Dispatches one routed transaction. Must be called in total order.
  /// Scheduled from the scheduler's dispatch events only (control lane):
  /// it enqueues locks at every involved node and applies replica-lease
  /// ops, both cross-node work.
  // detlint:runs(exclusive)
  void Dispatch(const routing::RoutedTxn& plan, CommitCallback on_commit);

  /// Wires the replica-lease mechanism (null = leases off). Dispatch
  /// applies the plan's replica ops through it, masters wait on lease
  /// copies for replica reads, and commits fan out write snapshots to
  /// holders.
  void set_lease_manager(replication::LeaseManager* mgr) {
    lease_mgr_ = mgr;
  }

  // --- Degraded mode (no-stall crash handling; see DESIGN.md §5). ---

  /// Receives every watchdog-aborted transaction: the original request,
  /// its client callback, and the keys left physically at a dead node
  /// while the ownership map points elsewhere. The cluster reclassifies
  /// it (deterministic retry, UNAVAILABLE abort, or chunk-chain
  /// continuation).
  using DegradedAbortHandler = std::function<void(
      TxnRequest txn, CommitCallback cb, std::vector<Key> stranded)>;

  /// Installs the degraded-mode wiring. `membership` drives the
  /// dead-node gates (null = every node alive, all gates inert);
  /// `ledger` records watchdog/reclaim/reship bookkeeping.
  void EnableDegraded(const MembershipView* membership,
                      const DegradedConfig* config, DegradedLedger* ledger,
                      DegradedAbortHandler on_abort);

  /// Arms the watchdog after the cluster marks `node` down. Transactions
  /// freeze lazily as their events reach the dead node; the watchdog
  /// sweeps frozen, un-acknowledged transactions on a deterministic
  /// virtual-time schedule and UNDO-aborts them.
  void OnNodeDown(NodeId node);

  /// Flushes records that were suppressed mid-flight toward `node` while
  /// it was down (their delivery resumes now; pending reclaim timers
  /// no-op), then resumes machines stalled at the node's dead gates.
  /// Called by the cluster at rejoin, before reconciliation.
  // detlint:requires(exclusive)
  void OnNodeUp(NodeId node);

  /// Moves a record whose physical location diverged from the ownership
  /// map (stranded by a watchdog abort or reclaimed mid-flight) to where
  /// ownership says it lives: extract at `from`, one network hop, insert
  /// at `to`, waking presence waiters. Record singularity holds
  /// throughout (the record rides inflight_records_ while moving).
  void ReshipRecord(Key key, NodeId from, NodeId to);

  /// Keys whose physical location diverged from the ownership map during
  /// an outage, keyed by record key, valued with the node the record
  /// actually sits on. The cluster drains this at rejoin and reships
  /// every divergent key; returns the map and clears the member.
  std::map<Key, NodeId> TakeDisplaced() {
    return std::exchange(displaced_, {});
  }
  const std::map<Key, NodeId>& displaced() const { return displaced_; }

  /// Number of transactions currently in flight.
  size_t inflight() const { return actives_.size(); }

  uint64_t committed() const { return committed_.value(); }
  uint64_t aborted() const { return aborted_.value(); }

  /// Installs the passive tracer (null = tracing off). The executor only
  /// ever writes events into it; no execution decision reads it back.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// One record currently extracted from its source store and riding a
  /// simulated message: absent from every store until delivery.
  struct InFlightRecord {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    /// Transaction whose shipment (migration or return) carries the record
    /// (kInvalidTxn for degraded-mode reships).
    TxnId txn = kInvalidTxn;
    /// Payload, kept so a shipment suppressed at a dead destination can be
    /// reclaimed by the sender or flushed at rejoin.
    storage::Record record;
    /// True once delivery was suppressed because the destination died
    /// mid-flight; a reclaim timer (or the rejoin flush) resolves it.
    bool suppressed = false;
  };

  /// Records extracted-but-undelivered right now, keyed by record key.
  /// A std::map so iteration order is deterministic without suppressions.
  /// This is the executor's half of the record-singularity invariant: at
  /// any instant every key is either in exactly one store or listed here;
  /// the fault InvariantMonitor checks exactly that, and DebugString()
  /// prints this table so a chaos-found violation is diagnosable.
  const std::map<Key, InFlightRecord>& inflight_records() const {
    return inflight_records_;
  }

  /// Diagnostic rendering of in-flight transactions and what they wait on
  /// (lock grants, remote messages, record presence), plus every record
  /// currently believed to be in flight with its source/destination nodes.
  std::string DebugString() const;

 private:
  struct NodeState {
    std::vector<storage::LockRequest> lock_requests;
    std::vector<routing::Access> owned;  ///< accesses with owner == node
    bool is_master = false;
    bool granted = false;
    SimTime acquire_time = 0;
    SimTime grant_time = 0;
  };
  struct MasterState {
    NodeId node;
    int pending_messages = 0;   ///< remote shipments not yet arrived
    int messages_received = 0;  ///< shipments processed (costs CPU)
    bool local_present = false;
    bool started = false;
    bool done = false;
    SimTime ready_time = 0;
    /// Latency contributions accumulated on this master's node lane;
    /// summed across masters by Acknowledge() (exclusive context), so no
    /// two lanes ever write one field.
    SimTime remote_wait_us = 0;
    SimTime exec_us = 0;
  };
  struct Active {
    routing::RoutedTxn plan;
    CommitCallback on_commit;
    SimTime dispatch_time = 0;
    std::vector<std::pair<NodeId, NodeState>> nodes;  // sorted by node id
    std::vector<MasterState> masters;
    std::vector<Key> write_keys;  ///< dedup of plan.txn.write_set
    int masters_done = 0;
    /// Participant send phases not yet completed. The client ack does not
    /// wait for them (an eviction migrates after the transaction returns,
    /// §4.1), but the transaction state must outlive them.
    int participants_pending = 0;
    bool acked = false;
    bool distributed = false;
    /// Set when a dead-node gate suppressed this transaction's progress:
    /// it cannot complete on its own until the node rejoins (the stalled
    /// machine resumes then) or the watchdog UNDO-aborts it first.
    bool frozen = false;
    /// Per-node continuations abandoned at a dead-node gate, re-driven in
    /// sorted txn order when that node rejoins. A node can stall both the
    /// participant and the master machine, hence the vector (insertion
    /// order — the deterministic event order the freezes fired in).
    std::map<NodeId, std::vector<std::function<void()>>> stalled;
  };

  Node& NodeAt(NodeId id) { return *(*nodes_)[id]; }
  NodeState* StateFor(Active& a, NodeId node);
  MasterState* MasterFor(Active& a, NodeId node);
  bool IsMaster(const Active& a, NodeId node) const;

  /// True iff `state`'s node must run a participant send phase.
  bool NodeWillSend(const Active& a, const NodeState& state,
                    NodeId node) const;

  void OnNodeGranted(Active& a, NodeId node);
  void StartParticipant(Active& a, NodeId node);
  void FinishParticipant(Active& a, NodeId node);
  void CheckMasterReady(Active& a, MasterState& m);
  void ExecuteMaster(Active& a, MasterState& m);
  void CommitMaster(Active& a, MasterState& m);
  /// Barrier-side tail of CommitMaster: bumps masters_done and, once every
  /// master committed, acknowledges. Runs in exclusive context (Defer) —
  /// masters commit on their own node lanes, so the shared counter and the
  /// cross-node acknowledgment work may not run lane-side.
  // detlint:requires(exclusive)
  void OnMasterDone(TxnId id);
  /// Client acknowledgment + return shipments, fired once when every
  /// master has committed. Exclusive context only.
  // detlint:requires(exclusive)
  void Acknowledge(Active& a);
  /// Destroys the transaction state once masters and participants are all
  /// done. Touches cross-node per-txn state, so exclusive context only.
  // detlint:requires(exclusive)
  void MaybeComplete(Active& a);

  /// True when degraded mode is active and `node` is currently down.
  bool NodeDead(NodeId node) const {
    return membership_ != nullptr && !membership_->alive(node);
  }
  /// Marks `a` stuck at a dead node and indexes it for the watchdog.
  /// Defers to the epoch barrier when called lane-side (the flag and the
  /// sorted index are shared across nodes).
  void Freeze(Active& a);
  /// Freeze() plus a resume continuation: the gate that fired records
  /// exactly where the per-node machine stalled so ResumeStalled can
  /// re-drive it at rejoin. Defers like Freeze().
  void FreezeStalled(Active& a, NodeId node, std::function<void()> resume);
  /// Re-drives every machine stalled at `node`'s dead gates, in sorted
  /// txn order, and unfreezes transactions with no remaining stalls.
  /// Touches cross-node per-txn state — exclusive context only (runs
  /// inside the rejoin transition, live and replay).
  // detlint:requires(exclusive)
  void ResumeStalled(NodeId node);
  /// Deterministic periodic sweep: aborts every frozen, un-acknowledged
  /// transaction (sorted by id), re-arming while any node is down.
  /// Scheduled on the control lane only, never called lane-side.
  // detlint:runs(exclusive)
  void WatchdogSweep();
  /// Reclaim timer body: returns a suppressed in-flight record to its
  /// source once the destination has been down for reclaim_timeout_us.
  /// Re-arms itself while the SOURCE is also down (overlapping fault
  /// windows — e.g. a partition suspect while a crashed node is out):
  /// reclaiming to a dead node would drop the payload. Scheduled on the
  /// control lane only, never called lane-side.
  // detlint:runs(exclusive)
  void ReclaimSuppressed(Key key, TxnId carrier);
  /// UNDO-aborts one frozen transaction: classifies its unfinished
  /// migrations (reship / strand / displace), releases its locks
  /// everywhere, and hands (request, callback, stranded keys) to the
  /// cluster's abort handler.
  // detlint:requires(exclusive)
  void AbortActive(Active& a);

  /// Ships a read-only copy of `key` to `holder` for a freshly granted
  /// lease: waits for the record at its source (following an in-flight
  /// migration or a displaced record if needed), snapshots it — the
  /// primary is never extracted — and sends it; the holder's lane applies
  /// it through the lease manager. Dispatch-time (exclusive) entry point.
  void StartReplicaInstall(Key key, NodeId source, NodeId holder, TxnId txn);

  /// Registers a record as extracted at `from` and riding a message to
  /// `to` (cleared again by DeliverRecord). The table write lands at the
  /// epoch barrier when called lane-side (same virtual time).
  void TrackInFlight(Key key, NodeId from, NodeId to, TxnId txn,
                     const storage::Record& record);

  /// Runs `ready` once every key in `keys` is physically present in
  /// `node`'s store (immediately if they already are).
  void WaitPresence(NodeId node, std::vector<Key> keys,
                    std::function<void()> ready);
  /// Inserts an arriving record and wakes presence waiters.
  void DeliverRecord(NodeId node, Key key, const storage::Record& record);

  void ProcessGrants(NodeId node, const std::vector<TxnId>& granted);

  sim::Simulator* sim_;
  net::Wire* net_;
  Metrics* metrics_;
  const CostModel* costs_;
  std::vector<std::unique_ptr<Node>>* nodes_;

  /// Transaction table. Structural writes (insert on dispatch, erase on
  /// completion/abort) happen only in exclusive context; node lanes do
  /// read-only find()s, which is safe while the barrier serializes every
  /// mutation.
  HashMap<TxnId, std::unique_ptr<Active>> actives_;

  using PresenceShardMap = HashMap<Key, std::vector<std::function<void()>>>;
  /// Presence waiters, sharded per node: shard `n` is touched only by node
  /// n's lane (or the exclusive slice), so concurrent deliveries on
  /// different lanes never share a map. Grown in exclusive context only.
  std::vector<PresenceShardMap> presence_waiters_;
  PresenceShardMap& PresenceShard(NodeId node);

  /// Written only in exclusive context (extract/delivery bookkeeping rides
  /// the epoch barrier); lanes may read it (trace carrier lookups).
  std::map<Key, InFlightRecord> inflight_records_;

  obs::Counter committed_;
  obs::Counter aborted_;
  obs::Tracer* tracer_ = nullptr;
  /// Replica-lease mechanism (null = disabled; see set_lease_manager).
  replication::LeaseManager* lease_mgr_ = nullptr;

  // --- Degraded-mode state (all null/empty unless EnableDegraded ran). ---
  const MembershipView* membership_ = nullptr;
  const DegradedConfig* degraded_ = nullptr;
  DegradedLedger* ledger_ = nullptr;
  DegradedAbortHandler degraded_abort_;
  /// A single watchdog chain is armed while any node is down (plus one
  /// final sweep after rejoin to clear stragglers frozen just before it).
  bool watchdog_armed_ = false;
  /// Ids of frozen transactions, maintained by Freeze()/erasure. The
  /// watchdog iterates this sorted index instead of the salted actives_
  /// map, so the abort order is total by construction.
  std::set<TxnId> frozen_ids_;
  /// Keys whose physical node diverged from the ownership map during an
  /// outage (reclaimed or stranded records). std::map: the rejoin
  /// reconciliation iterates it in key order.
  std::map<Key, NodeId> displaced_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_EXECUTOR_H_
