#include "partition/partition_map.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace hermes::partition {

RangePartitionMap::RangePartitionMap(uint64_t num_records, int num_partitions)
    : num_records_(num_records), num_partitions_(num_partitions) {
  assert(num_partitions > 0);
  range_size_ = (num_records + num_partitions - 1) / num_partitions;
  if (range_size_ == 0) range_size_ = 1;
}

NodeId RangePartitionMap::Owner(Key key) const {
  NodeId node = static_cast<NodeId>(key / range_size_);
  return std::min<NodeId>(node, num_partitions_ - 1);
}

std::unique_ptr<PartitionMap> RangePartitionMap::Clone() const {
  return std::make_unique<RangePartitionMap>(num_records_, num_partitions_);
}

HashPartitionMap::HashPartitionMap(uint64_t num_records, int num_partitions)
    : num_records_(num_records), num_partitions_(num_partitions) {
  assert(num_partitions > 0);
}

NodeId HashPartitionMap::Owner(Key key) const {
  return static_cast<NodeId>(Mix64(key) % num_partitions_);
}

std::unique_ptr<PartitionMap> HashPartitionMap::Clone() const {
  return std::make_unique<HashPartitionMap>(num_records_, num_partitions_);
}

CustomRangePartitionMap::CustomRangePartitionMap(std::vector<Key> bounds)
    : bounds_(std::move(bounds)) {
  assert(bounds_.size() >= 2);
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

NodeId CustomRangePartitionMap::Owner(Key key) const {
  // First bound strictly greater than key, minus one, clamped to range.
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), key);
  if (it == bounds_.begin()) return 0;
  NodeId node = static_cast<NodeId>(std::distance(bounds_.begin(), it)) - 1;
  return std::min(node, static_cast<NodeId>(bounds_.size()) - 2);
}

std::unique_ptr<PartitionMap> CustomRangePartitionMap::Clone() const {
  return std::make_unique<CustomRangePartitionMap>(bounds_);
}

MappedRangePartitionMap::MappedRangePartitionMap(uint64_t range_size,
                                                 std::vector<NodeId> owners,
                                                 int num_partitions)
    : range_size_(range_size),
      owners_(std::move(owners)),
      num_partitions_(num_partitions) {
  assert(range_size_ > 0);
  assert(!owners_.empty());
}

NodeId MappedRangePartitionMap::Owner(Key key) const {
  const uint64_t range = key / range_size_;
  if (range >= owners_.size()) return owners_.back();
  return owners_[range];
}

std::unique_ptr<PartitionMap> MappedRangePartitionMap::Clone() const {
  return std::make_unique<MappedRangePartitionMap>(range_size_, owners_,
                                                   num_partitions_);
}

OwnershipMap::OwnershipMap(std::unique_ptr<PartitionMap> base)
    : base_(std::move(base)) {}

NodeId OwnershipMap::Owner(Key key) const {
  auto it = key_overlay_.find(key);
  if (it != key_overlay_.end()) return it->second;
  return Home(key);
}

NodeId OwnershipMap::Home(Key key) const {
  if (!intervals_.empty()) {
    auto it = intervals_.upper_bound(key);
    if (it != intervals_.begin()) {
      --it;
      if (key >= it->first && key <= it->second.first) {
        return it->second.second;
      }
    }
  }
  return base_->Owner(key);
}

void OwnershipMap::SetKeyOwner(Key key, NodeId node) {
  key_overlay_[key] = node;
}

void OwnershipMap::ClearKeyOwner(Key key) { key_overlay_.erase(key); }

std::vector<std::tuple<Key, Key, NodeId>> OwnershipMap::ExportIntervals()
    const {
  std::vector<std::tuple<Key, Key, NodeId>> out;
  out.reserve(intervals_.size());
  for (const auto& [lo, rest] : intervals_) {
    out.emplace_back(lo, rest.first, rest.second);
  }
  return out;
}

void OwnershipMap::RestoreIntervals(
    const std::vector<std::tuple<Key, Key, NodeId>>& iv) {
  intervals_.clear();
  for (const auto& [lo, hi, node] : iv) {
    intervals_[lo] = {hi, node};
  }
}

void OwnershipMap::SetRangeOwner(Key lo, Key hi, NodeId node) {
  assert(lo <= hi);
  // Trim or split any interval overlapping [lo, hi].
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) --it;
  while (it != intervals_.end() && it->first <= hi) {
    const Key cur_lo = it->first;
    const Key cur_hi = it->second.first;
    const NodeId cur_owner = it->second.second;
    if (cur_hi < lo) {
      ++it;
      continue;
    }
    it = intervals_.erase(it);
    if (cur_lo < lo) {
      intervals_[cur_lo] = {lo - 1, cur_owner};
    }
    if (cur_hi > hi) {
      it = intervals_.insert({hi + 1, {cur_hi, cur_owner}}).first;
      ++it;
    }
  }
  intervals_[lo] = {hi, node};
}

}  // namespace hermes::partition
