#include "common/status.h"

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key 42");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), Status::Code::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::Aborted("").code(), Status::Code::kAborted);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

}  // namespace
}  // namespace hermes
