// Model-based property test: FusionTable against straightforward
// reference implementations of LRU and FIFO bounded maps, under random
// operation sequences.

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fusion_table.h"

namespace hermes::core {
namespace {

/// Reference bounded map: an explicit list-of-keys implementation kept
/// deliberately naive (O(n) operations) so its correctness is obvious.
class ReferenceTable {
 public:
  ReferenceTable(size_t capacity, EvictionPolicy policy)
      : capacity_(capacity), policy_(policy) {}

  std::optional<NodeId> Lookup(Key key, bool touch) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    if (touch && policy_ == EvictionPolicy::kLru) MoveToBack(key);
    return it->second;
  }

  void Put(Key key, NodeId node, std::vector<Key>* evicted) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second = node;
      if (policy_ == EvictionPolicy::kLru) MoveToBack(key);
    } else {
      order_.push_back(key);
      map_[key] = node;
    }
    if (capacity_ == 0) return;
    while (map_.size() > capacity_) {
      const Key victim = order_.front();
      order_.pop_front();
      map_.erase(victim);
      evicted->push_back(victim);
    }
  }

  void Erase(Key key) {
    if (map_.erase(key) > 0) order_.remove(key);
  }

  size_t size() const { return map_.size(); }

 private:
  void MoveToBack(Key key) {
    order_.remove(key);
    order_.push_back(key);
  }

  size_t capacity_;
  EvictionPolicy policy_;
  std::list<Key> order_;
  std::unordered_map<Key, NodeId> map_;
};

struct Param {
  size_t capacity;
  EvictionPolicy policy;
  uint64_t seed;
};

class FusionTablePropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(FusionTablePropertyTest, MatchesReferenceModel) {
  const auto [capacity, policy, seed] = GetParam();
  FusionTable table(capacity, policy);
  ReferenceTable reference(capacity, policy);
  Rng rng(seed);
  constexpr Key kKeySpace = 64;  // small space: plenty of collisions

  for (int step = 0; step < 4000; ++step) {
    const Key key = rng.NextBounded(kKeySpace);
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 5) {
      const NodeId node = static_cast<NodeId>(rng.NextBounded(8));
      std::vector<Key> ev1, ev2;
      table.Put(key, node, &ev1);
      reference.Put(key, node, &ev2);
      ASSERT_EQ(ev1, ev2) << "step " << step;
    } else if (op < 8) {
      const bool touch = (op == 5);
      ASSERT_EQ(table.Lookup(key, touch), reference.Lookup(key, touch))
          << "step " << step;
    } else {
      table.Erase(key);
      reference.Erase(key);
    }
    ASSERT_EQ(table.size(), reference.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, FusionTablePropertyTest,
    ::testing::Values(Param{8, EvictionPolicy::kLru, 1},
                      Param{8, EvictionPolicy::kFifo, 2},
                      Param{1, EvictionPolicy::kLru, 3},
                      Param{1, EvictionPolicy::kFifo, 4},
                      Param{32, EvictionPolicy::kLru, 5},
                      Param{0, EvictionPolicy::kLru, 6}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::string(p.policy == EvictionPolicy::kLru ? "Lru" : "Fifo") +
             "Cap" + std::to_string(p.capacity) + "Seed" +
             std::to_string(p.seed);
    });

}  // namespace
}  // namespace hermes::core
