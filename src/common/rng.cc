#include "common/rng.h"

#include <cmath>

namespace hermes {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection sampling on the top range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller transform; u1 is kept away from zero to avoid log(0).
  double u1 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace hermes
