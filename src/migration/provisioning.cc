#include "migration/provisioning.h"

#include <cassert>

namespace hermes::migration {

std::vector<RangeMove> PlanScaleOut(Key lo, Key hi, NodeId new_node) {
  return {RangeMove{lo, hi, new_node}};
}

std::vector<RangeMove> PlanDrainNode(const partition::OwnershipMap& ownership,
                                     uint64_t num_records, NodeId leaving,
                                     const std::vector<NodeId>& remaining) {
  assert(!remaining.empty());
  std::vector<RangeMove> plan;
  size_t rr = 0;
  bool in_range = false;
  Key start = 0;
  for (Key k = 0; k < num_records; ++k) {
    const bool owned = ownership.Home(k) == leaving;
    if (owned && !in_range) {
      in_range = true;
      start = k;
    } else if (!owned && in_range) {
      in_range = false;
      plan.push_back(RangeMove{start, k - 1, remaining[rr % remaining.size()]});
      ++rr;
    }
  }
  if (in_range) {
    plan.push_back(
        RangeMove{start, num_records - 1, remaining[rr % remaining.size()]});
  }
  return plan;
}

}  // namespace hermes::migration
