#include "core/fusion_table.h"

#include "common/hash.h"

#include <gtest/gtest.h>

namespace hermes::core {
namespace {

TEST(FusionTableTest, PutAndLookup) {
  FusionTable table(10, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 3, &evicted);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(table.Lookup(1, false), 3);
  EXPECT_EQ(table.Peek(1), 3);
  EXPECT_FALSE(table.Peek(2).has_value());
}

TEST(FusionTableTest, PutUpdatesExisting) {
  FusionTable table(10, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 3, &evicted);
  table.Put(1, 2, &evicted);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Peek(1), 2);
}

TEST(FusionTableTest, FifoEvictsOldestInsertion) {
  FusionTable table(3, EvictionPolicy::kFifo);
  std::vector<Key> evicted;
  for (Key k = 1; k <= 3; ++k) table.Put(k, 0, &evicted);
  // Touch key 1 (FIFO ignores recency).
  table.Lookup(1, true);
  table.Put(1, 1, &evicted);  // update does not refresh FIFO slot
  table.Put(4, 0, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(FusionTableTest, LruEvictsLeastRecentlyUsed) {
  FusionTable table(3, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  for (Key k = 1; k <= 3; ++k) table.Put(k, 0, &evicted);
  table.Lookup(1, true);  // 1 is now most recent; 2 is LRU
  table.Put(4, 0, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
}

TEST(FusionTableTest, UntouchedLookupDoesNotRefreshLru) {
  FusionTable table(2, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 0, &evicted);
  table.Put(2, 0, &evicted);
  table.Lookup(1, /*touch=*/false);
  table.Put(3, 0, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);  // 1 stayed oldest
}

TEST(FusionTableTest, UnboundedNeverEvicts) {
  FusionTable table(0, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  for (Key k = 0; k < 10'000; ++k) table.Put(k, 0, &evicted);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(table.size(), 10'000u);
}

TEST(FusionTableTest, EraseRemovesEntry) {
  FusionTable table(4, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 0, &evicted);
  table.Erase(1);
  EXPECT_FALSE(table.Peek(1).has_value());
  EXPECT_EQ(table.size(), 0u);
  table.Erase(1);  // idempotent
}

TEST(FusionTableTest, PinnedKeysSurviveEviction) {
  FusionTable table(3, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 0, &evicted);
  table.Put(2, 0, &evicted);
  table.Put(3, 0, &evicted);
  HashSet<Key> pinned = {1, 2};
  table.PutPinned(4, 0, pinned, &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 3u);  // oldest non-pinned
  EXPECT_TRUE(table.Peek(1).has_value());
  EXPECT_TRUE(table.Peek(2).has_value());
}

TEST(FusionTableTest, AllPinnedAllowsTemporaryOverflow) {
  FusionTable table(2, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  HashSet<Key> pinned = {1, 2, 3};
  table.PutPinned(1, 0, pinned, &evicted);
  table.PutPinned(2, 0, pinned, &evicted);
  table.PutPinned(3, 0, pinned, &evicted);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(table.size(), 3u);
  // Next unpinned insert sheds the overflow.
  table.PutPinned(4, 0, HashSet<Key>{}, &evicted);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FusionTableTest, ExportRestoreRoundTripsOrder) {
  FusionTable table(3, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  table.Put(1, 5, &evicted);
  table.Put(2, 6, &evicted);
  table.Put(3, 7, &evicted);
  table.Lookup(1, true);

  HashMap<Key, NodeId> entries = {{1, 5}, {2, 6}, {3, 7}};
  FusionTable restored(3, EvictionPolicy::kLru);
  restored.Restore(entries, table.ExportOrder());
  EXPECT_EQ(restored.Checksum(), table.Checksum());

  // Both evict the same victim next.
  std::vector<Key> ev1, ev2;
  table.Put(9, 0, &ev1);
  restored.Put(9, 0, &ev2);
  EXPECT_EQ(ev1, ev2);
}

TEST(FusionTableTest, ChecksumIgnoresOrderButNotContents) {
  FusionTable a(0, EvictionPolicy::kLru), b(0, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  a.Put(1, 2, &evicted);
  a.Put(3, 4, &evicted);
  b.Put(3, 4, &evicted);
  b.Put(1, 2, &evicted);
  EXPECT_EQ(a.Checksum(), b.Checksum());
  b.Put(1, 9, &evicted);
  EXPECT_NE(a.Checksum(), b.Checksum());
}

TEST(FusionTableTest, MultipleEvictionsInOnePut) {
  FusionTable table(5, EvictionPolicy::kFifo);
  std::vector<Key> evicted;
  for (Key k = 0; k < 5; ++k) table.Put(k, 0, &evicted);
  HashSet<Key> pinned;
  // Overflow by restoring a larger state is impossible; emulate via
  // pinned overflow then release.
  table.PutPinned(5, 0, {0, 1, 2, 3, 4, 5}, &evicted);
  EXPECT_TRUE(evicted.empty());
  table.Put(6, 0, &evicted);
  EXPECT_EQ(evicted.size(), 2u);  // sheds down to capacity
}

}  // namespace
}  // namespace hermes::core
