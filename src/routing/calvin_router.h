#ifndef HERMES_ROUTING_CALVIN_ROUTER_H_
#define HERMES_ROUTING_CALVIN_ROUTER_H_

#include <string>

#include "routing/router.h"

namespace hermes::routing {

/// Vanilla Calvin routing (paper §2, §5.2.1): a transaction is routed to
/// every node that owns a record it writes (the multi-master scheme); all
/// participants ship their read records to every master; data never
/// migrates. Batch order is preserved verbatim.
class CalvinRouter : public Router {
 public:
  CalvinRouter(partition::OwnershipMap* ownership, const CostModel* costs,
               int num_nodes);

  RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "calvin"; }

 private:
  RoutedTxn RouteOne(const TxnRequest& txn);
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_CALVIN_ROUTER_H_
