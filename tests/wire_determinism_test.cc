// Digest oracle for the wire substrate (DESIGN.md §5 "Wire substrate"):
// with config.net.enabled the SAME seeded workload — including a mid-run
// AddNode (GrowLinks under the barrier) and a partition cut/heal cycle
// (OnLinkCut queue drain into the holding pens) — must produce
// bit-identical decision/placement/trace digests and wire counters with
// config.sim.threads in {0, 1, 2, 4, 8}, under several hash salts. A
// second, lane-level test pins down envelope CONTENTS: the set and order
// of messages folded into each envelope may not shift with the thread
// count. The NetScriptProfile test prints a parseable NET_PROFILE line
// for scripts/check_determinism.sh to compare across env salts x
// HERMES_SIM_THREADS.
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "engine/cluster.h"
#include "net/wire.h"
#include "partition/partition_map.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/client.h"
#include "workload/scenarios.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

const int kThreadCounts[] = {0, 1, 2, 4, 8};

std::vector<uint64_t> Salts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

struct RunResult {
  uint64_t decision = 0;
  uint64_t placement = 0;
  uint64_t trace = 0;
  uint64_t state_checksum = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t envelopes = 0;
  uint64_t coalesced = 0;
  uint64_t fg_transmits = 0;
  uint64_t bulk_transmits = 0;
  uint64_t credit_stalls = 0;
  SimTime fg_delay_p99 = 0;
  SimTime bulk_delay_p99 = 0;
};

bool operator==(const RunResult& a, const RunResult& b) {
  return a.decision == b.decision && a.placement == b.placement &&
         a.trace == b.trace && a.state_checksum == b.state_checksum &&
         a.commits == b.commits && a.aborts == b.aborts &&
         a.envelopes == b.envelopes && a.coalesced == b.coalesced &&
         a.fg_transmits == b.fg_transmits &&
         a.bulk_transmits == b.bulk_transmits &&
         a.credit_stalls == b.credit_stalls &&
         a.fg_delay_p99 == b.fg_delay_p99 &&
         a.bulk_delay_p99 == b.bulk_delay_p99;
}

ClusterConfig NetConfigFor(int threads) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  config.migration_chunk_records = 250;
  config.obs.trace_enabled = true;
  config.sim.threads = threads;
  config.net.enabled = true;
  // Tight enough that migration envelopes exhaust the window and stall
  // behind their own deliveries — the backpressure path must be exercised,
  // not just configured.
  config.net.link_credit_bytes = 8 * 1024;
  config.net.coalesce_window_us = 50;
  config.net.coalesce_max_bytes = 16 * 1024;
  // Leased-key write fan-out is the steady bulk stream that coalesces:
  // several copies toward the same holder inside one window ride one
  // envelope (chunk migrations are each far above the size cap).
  config.replication.enabled = true;
  config.replication.replicas = 3;
  config.replication.read_hot_threshold = 2;
  config.replication.write_revoke_threshold = 32;
  config.replication.max_leases = 256;
  return config;
}

std::unique_ptr<partition::PartitionMap> MapFor(const ClusterConfig& config) {
  return std::make_unique<partition::RangePartitionMap>(config.num_records,
                                                        config.num_nodes);
}

RunResult Harvest(Cluster& cluster) {
  RunResult r;
  r.decision = cluster.decision_digest().value();
  r.placement = cluster.placement_digest().value();
  r.trace = cluster.trace_digest().value();
  r.state_checksum = cluster.StateChecksum();
  r.commits = cluster.metrics().total_commits();
  r.aborts = cluster.metrics().total_aborts();
  const net::Wire& wire = cluster.wire();
  r.envelopes = wire.envelopes_sent();
  r.coalesced = wire.coalesced_messages();
  r.fg_transmits = wire.transmits(TrafficClass::kForeground);
  r.bulk_transmits = wire.transmits(TrafficClass::kBulk);
  r.credit_stalls = wire.credit_stalls();
  r.fg_delay_p99 = wire.MergedQueueDelay(TrafficClass::kForeground)
                       .Percentile(0.99);
  r.bulk_delay_p99 =
      wire.MergedQueueDelay(TrafficClass::kBulk).Percentile(0.99);
  return r;
}

// One seeded net-enabled lifetime: steady YCSB traffic, a scale-out at
// 150ms (lane + link growth while envelopes are in flight), a two-sided
// cut of node 2 at 220ms (transmit queues drain into the pens) healed at
// 260ms (pens release FIFO, serialization re-measured).
RunResult RunNetWorkload(int threads) {
  ClusterConfig config = NetConfigFor(threads);
  Cluster cluster(config, RouterKind::kHermes, MapFor(config));
  cluster.Load();

  workload::YcsbConfig wl = workload::ReadHeavySkewedYcsb(
      config.num_records, config.num_nodes, /*write_fraction=*/0.05,
      /*seed=*/20'260'808);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 24, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(400));
  driver.Start();

  cluster.RunUntil(MsToSim(150));
  cluster.AddNode({{0, config.num_records / 4 - 1, 4}},
                  /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(220));
  cluster.PartitionCut(2, /*cut_inbound=*/true, /*cut_outbound=*/true);
  cluster.RunUntil(MsToSim(260));
  cluster.PartitionHeal(2);
  cluster.RunUntil(MsToSim(400));
  cluster.Drain();
  return Harvest(cluster);
}

TEST(WireDeterminismTest, NetEnabledDigestOracleAcrossThreadsAndSalts) {
  const uint64_t old_salt = HashSalt();
  for (uint64_t salt : Salts()) {
    SetHashSalt(salt);
    const RunResult oracle = RunNetWorkload(/*threads=*/0);
    ASSERT_GT(oracle.commits, 50u) << "workload too small";
    ASSERT_GT(oracle.envelopes, 0u) << "coalescing never engaged";
    ASSERT_GT(oracle.coalesced, oracle.envelopes)
        << "no envelope carried more than one message";
    ASSERT_GT(oracle.fg_transmits, 0u);
    ASSERT_GT(oracle.credit_stalls, 0u) << "backpressure never engaged";
    for (int threads : kThreadCounts) {
      if (threads == 0) continue;
      const RunResult got = RunNetWorkload(threads);
      EXPECT_TRUE(oracle == got)
          << "diverged at threads=" << threads << " salt=0x" << std::hex
          << salt << ": decision " << got.decision << " vs "
          << oracle.decision << ", placement " << got.placement << " vs "
          << oracle.placement << ", trace " << got.trace << std::dec
          << ", envelopes " << got.envelopes << " vs " << oracle.envelopes
          << ", coalesced " << got.coalesced << " vs " << oracle.coalesced
          << ", stalls " << got.credit_stalls << " vs "
          << oracle.credit_stalls << ", commits " << got.commits << " vs "
          << oracle.commits;
      if (!(oracle == got)) break;  // one divergence is enough signal
    }
  }
  SetHashSalt(old_salt);
}

// Envelope CONTENTS must be thread-count-invariant, not just the digests:
// three source lanes append bulk messages toward node 0 on interleaved
// schedules, and the delivery order of every message id must match the
// sequential oracle exactly (envelopes open in append order; appends fold
// in virtual-time order per link).
struct ContentsResult {
  std::vector<int> order;
  uint64_t envelopes = 0;
  uint64_t coalesced = 0;
};

ContentsResult RunEnvelopeContents(int threads) {
  sim::Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.001;
  costs.message_overhead_bytes = 64;
  sim::Network fabric(&sim, &costs, 4);
  NetConfig net_config;
  net_config.enabled = true;
  net_config.coalesce_window_us = 40;
  net_config.coalesce_max_bytes = 4 * 1024;
  net::Wire wire(&sim, &fabric, &costs, &net_config, 4);
  sim.ConfigureLanes(4, threads);

  ContentsResult result;
  for (int src = 1; src <= 3; ++src) {
    for (int k = 0; k < 8; ++k) {
      const int id = src * 100 + k;
      sim.ScheduleOnLane(src, static_cast<SimTime>(10 * k + src),
                         [&wire, &result, &sim, src, id] {
                           wire.Send(src, 0, 500, TrafficClass::kBulk,
                                     [&result, id] {
                                       // Runs on lane 0 only: appends are
                                       // serialized within each epoch.
                                       result.order.push_back(id);
                                     });
                           (void)sim;
                         });
    }
  }
  sim.RunAll();
  result.envelopes = wire.envelopes_sent();
  result.coalesced = wire.coalesced_messages();
  return result;
}

TEST(WireDeterminismTest, EnvelopeContentsAcrossThreadsAndSalts) {
  const uint64_t old_salt = HashSalt();
  for (uint64_t salt : Salts()) {
    SetHashSalt(salt);
    const ContentsResult oracle = RunEnvelopeContents(/*threads=*/0);
    ASSERT_EQ(oracle.coalesced, 24u);
    ASSERT_GT(oracle.envelopes, 0u);
    ASSERT_LT(oracle.envelopes, oracle.coalesced)
        << "nothing coalesced: every message rode alone";
    const ContentsResult parallel = RunEnvelopeContents(/*threads=*/8);
    EXPECT_EQ(oracle.order, parallel.order)
        << "envelope contents shifted with the thread count at salt=0x"
        << std::hex << salt;
    EXPECT_EQ(oracle.envelopes, parallel.envelopes);
    EXPECT_EQ(oracle.coalesced, parallel.coalesced);
  }
  SetHashSalt(old_salt);
}

// One seeded net-enabled lifetime under the PROCESS salt
// (HERMES_HASH_SALT) and thread count (HERMES_SIM_THREADS), printing a
// parseable outcome line. scripts/check_determinism.sh runs this binary
// under several env salts x thread counts and requires every printed
// NET_PROFILE line to be identical across processes.
TEST(NetScriptProfile, SingleSeededRunPrintsOutcome) {
  const RunResult out = RunNetWorkload(/*threads=*/0);
  ASSERT_GT(out.commits, 50u);
  std::printf("NET_PROFILE digest=%016llx placement=%016llx trace=%016llx "
              "checksum=%016llx commits=%llu envelopes=%llu coalesced=%llu "
              "fg_tx=%llu bulk_tx=%llu stalls=%llu fg_p99=%llu "
              "bulk_p99=%llu\n",
              static_cast<unsigned long long>(out.decision),
              static_cast<unsigned long long>(out.placement),
              static_cast<unsigned long long>(out.trace),
              static_cast<unsigned long long>(out.state_checksum),
              static_cast<unsigned long long>(out.commits),
              static_cast<unsigned long long>(out.envelopes),
              static_cast<unsigned long long>(out.coalesced),
              static_cast<unsigned long long>(out.fg_transmits),
              static_cast<unsigned long long>(out.bulk_transmits),
              static_cast<unsigned long long>(out.credit_stalls),
              static_cast<unsigned long long>(out.fg_delay_p99),
              static_cast<unsigned long long>(out.bulk_delay_p99));
}

}  // namespace
}  // namespace hermes
