#include "routing/leap_router.h"

namespace hermes::routing {

LeapRouter::LeapRouter(partition::OwnershipMap* ownership,
                       const CostModel* costs, int num_nodes)
    : Router(ownership, costs, num_nodes) {}

RoutePlan LeapRouter::RouteBatch(const Batch& batch) {
  RoutePlan plan;
  plan.routing_cost_us = LinearCost(batch.txns.size());
  plan.txns.reserve(batch.txns.size());
  for (const TxnRequest& txn : batch.txns) {
    if (txn.kind == TxnKind::kChunkMigration) {
      plan.txns.push_back(PlanChunkMigrationDefault(txn));
      continue;
    }
    if (txn.kind != TxnKind::kRegular) {
      plan.txns.push_back(PlanProvisioningDefault(txn));
      continue;
    }
    RoutedTxn rt;
    rt.txn = txn;
    const NodeId m = MajorityOwner(txn);
    rt.masters = {m};
    for (const auto& [k, is_write] : MergedAccessSet(txn)) {
      const NodeId cur = OwnerOf(k);
      Access a;
      a.key = k;
      a.owner = cur;
      a.is_write = is_write;
      if (cur != m) {
        // LEAP pulls the record to the master and leaves it there: an
        // exclusive lock moves it, and the ownership overlay records the
        // new placement for all later transactions.
        a.is_write = true;
        a.ship_to_master = true;
        a.new_owner = m;
        ++migrations_;
        if (ownership_->Home(k) == m) {
          ownership_->ClearKeyOwner(k);
        } else {
          ownership_->SetKeyOwner(k, m);
        }
      }
      rt.accesses.push_back(a);
    }
    plan.txns.push_back(std::move(rt));
  }
  return plan;
}

}  // namespace hermes::routing
