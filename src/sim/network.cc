#include "sim/network.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace hermes::sim {

Network::Network(Simulator* sim, const CostModel* costs, int num_nodes)
    : sim_(sim), costs_(costs) {
  // Register every per-node counter row and per-link matrix once;
  // EnsureCapacity grows the registered lists so a counter added here can
  // never be missed by a resize site.
  counter_rows_ = {&bytes_sent_,      &messages_sent_,
                   &messages_dropped_, &messages_duplicated_,
                   &bytes_received_,  &messages_received_,
                   &messages_held_total_, &cut_deliveries_};
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    counter_rows_.push_back(&class_bytes_sent_[c]);
    counter_rows_.push_back(&class_messages_sent_[c]);
    counter_rows_.push_back(&class_bytes_received_[c]);
  }
  counter_matrices_ = {&link_messages_, &send_seq_};
  EnsureCapacity(num_nodes);
}

uint64_t Network::Sum(const std::vector<uint64_t>& row) {
  uint64_t total = 0;
  for (uint64_t v : row) total += v;
  return total;
}

void Network::EnsureCapacity(int num_nodes) {
  assert(!sim_->in_lane_context() &&
         "capacity growth must happen in exclusive context");
  const size_t n = static_cast<size_t>(num_nodes);
  if (bytes_sent_.size() >= n) return;
  for (std::vector<uint64_t>* row : counter_rows_) row->resize(n, 0);
  for (std::vector<std::vector<uint64_t>>* matrix : counter_matrices_) {
    for (auto& row : *matrix) row.resize(n, 0);
    matrix->resize(n, std::vector<uint64_t>(n, 0));
  }
  for (auto& row : cut_) row.resize(n, 0);
  cut_.resize(n, std::vector<uint8_t>(n, 0));
  for (auto& row : held_) row.resize(n);
  held_.resize(n, std::vector<std::deque<HeldMessage>>(n));
}

bool Network::reachable(NodeId src, NodeId dst) const {
  return cut_[src][dst] == 0;
}

void Network::CutLink(NodeId src, NodeId dst) {
  assert(!sim_->in_lane_context() &&
         "cuts are installed in exclusive context only");
  assert(src != dst && "a node always reaches itself");
  if (cut_[src][dst]) return;
  cut_[src][dst] = 1;
  ++cut_links_;
}

void Network::HealLink(NodeId src, NodeId dst) {
  assert(!sim_->in_lane_context() &&
         "heals are applied in exclusive context only");
  if (!cut_[src][dst]) return;
  cut_[src][dst] = 0;
  --cut_links_;
  // Release the pen in FIFO order. Each message keeps its send-time
  // perturbation (draws were keyed by link_seq at Send) and re-measures
  // its wire time from the heal point; per-link arrival order can still
  // interleave by jitter, exactly as live traffic can.
  std::deque<HeldMessage>& pen = held_[src][dst];
  while (!pen.empty()) {
    HeldMessage m = std::move(pen.front());
    pen.pop_front();
    ScheduleDelivery(src, dst, m.bytes, m.delivered, m.wire,
                     /*was_held=*/true, m.cls, std::move(m.cb));
  }
}

uint64_t Network::messages_held() const {
  uint64_t total = 0;
  for (const auto& row : held_) {
    for (const auto& pen : row) total += pen.size();
  }
  return total;
}

void Network::ScheduleDelivery(NodeId src, NodeId dst, uint64_t bytes,
                               uint64_t delivered, SimTime wire, bool was_held,
                               TrafficClass cls, std::function<void()> cb) {
  sim_->ScheduleOnLane(
      static_cast<int>(dst), wire,
      [this, src, dst, bytes, delivered, was_held, cls, cb = std::move(cb)]() {
        // A released message must never land under a still-live cut: the
        // pen only drains on heal, so a nonzero count means a release
        // raced a re-cut (the partition oracle asserts zero).
        if (was_held && cut_[src][dst]) ++cut_deliveries_[dst];
        bytes_received_[dst] += bytes * delivered;
        messages_received_[dst] += delivered;
        class_bytes_received_[static_cast<int>(cls)][dst] += bytes * delivered;
        cb();
      });
}

void Network::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                   std::function<void()> on_delivery, TrafficClass cls) {
  assert(src >= 0 && src < static_cast<NodeId>(bytes_sent_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(bytes_sent_.size()));
  // Send-side counters are row `src`: only that node's lane (or the
  // exclusive slice) may touch them.
  assert((!sim_->in_lane_context() ||
          sim_->current_lane() == static_cast<int>(src)) &&
         "Send must run on the source node's lane or exclusively");
  if (src == dst) {
    // Local hand-off: no wire bytes, no latency, but still asynchronous so
    // that callers never re-enter themselves.
    sim_->ScheduleOnLane(static_cast<int>(dst), 0, std::move(on_delivery));
    return;
  }
  const uint64_t bytes = payload_bytes + costs_->message_overhead_bytes;
  const uint64_t link_seq = send_seq_[src][dst]++;

  Perturbation p;
  if (perturb_) p = perturb_(src, dst, bytes, sim_->Now(), link_seq);
  assert(p.dropped_attempts >= 0 && p.duplicates >= 0);

  // Every wire attempt — dropped, duplicated, or delivered — costs sender
  // bytes and counts on the directed link.
  const uint64_t attempts =
      1 + static_cast<uint64_t>(p.dropped_attempts) +
      static_cast<uint64_t>(p.duplicates);
  bytes_sent_[src] += bytes * attempts;
  messages_sent_[src] += attempts;
  class_bytes_sent_[static_cast<int>(cls)][src] += bytes * attempts;
  class_messages_sent_[static_cast<int>(cls)][src] += attempts;
  link_messages_[src][dst] += attempts;
  messages_dropped_[src] += static_cast<uint64_t>(p.dropped_attempts);
  messages_duplicated_[src] += static_cast<uint64_t>(p.duplicates);

  const SimTime wire =
      costs_->net_latency_us +
      static_cast<SimTime>(std::llround(bytes * costs_->net_us_per_byte)) +
      p.extra_delay_us;
  // Delivered copies (the real one plus dedup-suppressed duplicates) are
  // charged to the receiver by the delivery event itself — it runs on the
  // destination lane, which owns row `dst`.
  const uint64_t delivered = 1 + static_cast<uint64_t>(p.duplicates);
  // A send into a live cut parks in the per-link FIFO pen (row `src`,
  // owned by this lane) with its charges and perturbation already final;
  // HealLink releases it. Sender-side counters above were charged as
  // usual: the bytes left the NIC and died on the cut wire.
  if (cut_[src][dst]) {
    held_[src][dst].push_back(
        HeldMessage{bytes, delivered, wire, cls, std::move(on_delivery)});
    ++messages_held_total_[src];
    return;
  }
  ScheduleDelivery(src, dst, bytes, delivered, wire, /*was_held=*/false, cls,
                   std::move(on_delivery));
}

}  // namespace hermes::sim
