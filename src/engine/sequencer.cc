#include "engine/sequencer.h"

#include <utility>

namespace hermes::engine {

Sequencer::Sequencer(sim::Simulator* sim, const ClusterConfig* config,
                     BatchCallback on_sequenced)
    : sim_(sim), config_(config), on_sequenced_(std::move(on_sequenced)) {}

void Sequencer::Submit(TxnRequest txn) {
  txn.id = next_txn_id_++;
  pending_.push_back(std::move(txn));
  ArmEpochCut();
}

void Sequencer::ArmEpochCut() {
  if (paused_ || cut_armed_ || pending_.empty()) return;
  cut_armed_ = true;
  // Cut at the next epoch boundary (lazy arming keeps an idle cluster's
  // event queue empty so simulations can drain).
  const SimTime epoch = config_->epoch_us;
  const SimTime next_boundary = ((sim_->Now() / epoch) + 1) * epoch;
  sim_->ScheduleAt(next_boundary, [this]() {
    cut_armed_ = false;
    if (paused_) return;  // Resume() re-arms
    CutBatch();
    ArmEpochCut();
  });
}

void Sequencer::CutBatch() {
  if (pending_.empty()) return;
  Batch batch;
  batch.id = next_batch_id_++;
  const size_t limit = config_->max_batch_size == 0
                           ? pending_.size()
                           : std::min(pending_.size(), config_->max_batch_size);
  batch.txns.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    batch.txns.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  // Total ordering: one leader round trip before schedulers see the batch.
  const SimTime deliver_at = sim_->Now() + config_->costs.total_order_us;
  batch.sequenced_at = deliver_at;
  sim_->ScheduleAt(deliver_at, [this, batch = std::move(batch)]() mutable {
    on_sequenced_(std::move(batch));
  });
}

}  // namespace hermes::engine
