// Multi-seed chaos property test: many seeded fault plans (crash/rejoin
// cycles + link chaos) run against seeded workloads; for every plan the
// invariant monitors must hold, the fault-free oracle must agree, and the
// entire outcome — decision digest, placement digest, state checksum,
// commit count, chaos counters, recovery times — must be bit-identical
// under several hash salts. Chaos multiplies the event interleavings the
// engine sees; this test proves none of them leaks nondeterminism.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

constexpr int kNumSeeds = 25;
constexpr uint64_t kSeedBase = 20'260'000;

std::vector<uint64_t> PerturbationSalts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

ClusterConfig ChaosConfig() {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 6'000;
  config.hermes.fusion_table_capacity = 250;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<partition::RangePartitionMap>(records, nodes);
  };
}

FaultPlan MakePlan(const ClusterConfig& config, uint64_t seed,
                   bool no_stall = false) {
  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(120);
  pc.num_nodes = config.num_nodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(10);
  pc.max_outage_us = MsToSim(40);
  pc.no_stall = no_stall;
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  return FaultPlan::Generate(pc, seed);
}

struct ChaosOutcome {
  uint64_t decision_digest = 0;
  uint64_t decision_count = 0;
  uint64_t placement_digest = 0;
  uint64_t state_checksum = 0;
  uint64_t commits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t retry_digest = 0;
  uint64_t retry_transcript_len = 0;
  uint64_t parked_total = 0;
  uint64_t watchdog_aborts = 0;
  std::vector<SimTime> recovery_us;
  bool monitors_ok = true;
  std::string report;
};

bool SameOutcome(const ChaosOutcome& a, const ChaosOutcome& b) {
  return a.decision_digest == b.decision_digest &&
         a.decision_count == b.decision_count &&
         a.placement_digest == b.placement_digest &&
         a.state_checksum == b.state_checksum && a.commits == b.commits &&
         a.dropped == b.dropped && a.duplicated == b.duplicated &&
         a.retry_digest == b.retry_digest &&
         a.retry_transcript_len == b.retry_transcript_len &&
         a.parked_total == b.parked_total &&
         a.watchdog_aborts == b.watchdog_aborts &&
         a.recovery_us == b.recovery_us;
}

/// One chaos lifetime: seeded plan + seeded skewed YCSB on the Hermes
/// router. `deep_checks` additionally replays the command log through a
/// fault-free oracle (run it on one salt per seed; it is pure overhead on
/// the others since the compared digests are already in the outcome).
ChaosOutcome RunChaos(uint64_t plan_seed, bool deep_checks,
                      bool no_stall = false) {
  ClusterConfig config = ChaosConfig();
  // The degraded corpus runs a chunk-migration stream under the outage,
  // so crashes land mid-chunk-migration / mid-consolidation; small
  // chunks stretch the stream across the whole fault window.
  if (no_stall) config.migration_chunk_records = 300;
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  const FaultPlan plan = MakePlan(config, plan_seed, no_stall);
  FaultInjector injector(&cluster, plan, MapFactory(config));
  InvariantMonitor monitor(config.num_records);
  injector.set_monitor(&monitor);

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = Mix64(plan_seed ^ 0x5c5bULL);
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(120));
  driver.Start();

  if (no_stall) {
    // Start a seeded consolidation-style migration wave early so the
    // plan's crash can land while chunks are mid-flight.
    injector.RunUntil(MsToSim(15));
    const Key lo = Mix64(plan_seed ^ 0x6d1eULL) %
                   (config.num_records - 1'500);
    const NodeId target =
        static_cast<NodeId>(Mix64(plan_seed ^ 0x3a7fULL) % config.num_nodes);
    cluster.SubmitMigrationPlan({{lo, lo + 1'199, target}});
  }
  injector.RunUntil(MsToSim(120));
  injector.Drain();

  monitor.CheckRecordSingularity(cluster, "final");
  monitor.CheckNoLostRecords(cluster, "final");
  if (deep_checks) {
    if (no_stall) {
      monitor.CheckDegradedOracle(cluster, RouterKind::kHermes,
                                  MapFactory(config), "degraded oracle");
    } else {
      monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                                 MapFactory(config), "oracle");
    }
  }

  ChaosOutcome out;
  out.decision_digest = cluster.decision_digest().value();
  out.decision_count = cluster.decision_digest().count();
  out.placement_digest = cluster.placement_digest().value();
  out.state_checksum = cluster.StateChecksum();
  out.commits = cluster.metrics().total_commits();
  out.dropped = cluster.network().messages_dropped();
  out.duplicated = cluster.network().messages_duplicated();
  out.retry_digest = cluster.degraded_ledger().RetryDigest();
  out.retry_transcript_len = cluster.degraded_ledger().transcript().size();
  out.parked_total = cluster.degraded_ledger().parked_total();
  out.watchdog_aborts = cluster.degraded_ledger().watchdog_aborts();
  for (const fault::RecoveryStats& r : injector.recoveries()) {
    out.recovery_us.push_back(r.time_to_recover_us());
  }
  out.monitors_ok = monitor.ok();
  out.report = monitor.FailureReport();
  return out;
}

TEST(ChaosPropertyTest, ManySeededPlansHoldInvariantsAndStayDeterministic) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  uint64_t total_chaos = 0;

  for (int s = 0; s < kNumSeeds; ++s) {
    const uint64_t plan_seed = kSeedBase + s;
    std::vector<ChaosOutcome> outcomes;
    for (size_t i = 0; i < salts.size(); ++i) {
      SetHashSalt(salts[i]);
      outcomes.push_back(RunChaos(plan_seed, /*deep_checks=*/i == 0));
    }
    SetHashSalt(old_salt);

    const ChaosOutcome& base = outcomes[0];
    ASSERT_TRUE(base.monitors_ok)
        << "plan seed " << plan_seed << ":\n" << base.report;
    ASSERT_GT(base.commits, 50u) << "plan seed " << plan_seed;
    ASSERT_FALSE(base.recovery_us.empty()) << "plan seed " << plan_seed;
    // A single low-traffic plan can legitimately draw zero drops; require
    // link chaos to fire across the corpus (asserted after the loop).
    total_chaos += base.dropped + base.duplicated;

    for (size_t i = 1; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].monitors_ok)
          << "plan seed " << plan_seed << " salt 0x" << std::hex << salts[i]
          << ":\n" << outcomes[i].report;
      EXPECT_TRUE(SameOutcome(base, outcomes[i]))
          << "plan seed " << plan_seed << " diverged under salt 0x"
          << std::hex << salts[i] << ": digest "
          << outcomes[i].decision_digest << " vs " << base.decision_digest
          << ", placement " << outcomes[i].placement_digest << " vs "
          << base.placement_digest << std::dec << ", commits "
          << outcomes[i].commits << " vs " << base.commits
          << " — a fault-path decision depends on hash iteration order";
    }
  }
  EXPECT_GT(total_chaos, 0u) << "link chaos never fired across any seed";
}

// Degraded-mode corpus: the same 25 seeds with kCrashNoStall plans plus a
// seeded chunk-migration stream, so crashes land mid-chunk-migration and
// mid-consolidation while the cluster keeps sequencing. Adds the retry
// transcript (digest + counters) to the cross-salt equality requirement:
// every block/park/retry/watchdog decision must be a pure function of
// (plan seed, config), and the schedule-fed replay must reproduce the
// run's placements and state.
TEST(ChaosPropertyTest, NoStallPlansStayDeterministicUnderDegradedMode) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  uint64_t total_degraded = 0;

  for (int s = 0; s < kNumSeeds; ++s) {
    const uint64_t plan_seed = kSeedBase + s;
    std::vector<ChaosOutcome> outcomes;
    for (size_t i = 0; i < salts.size(); ++i) {
      SetHashSalt(salts[i]);
      outcomes.push_back(
          RunChaos(plan_seed, /*deep_checks=*/i == 0, /*no_stall=*/true));
    }
    SetHashSalt(old_salt);

    const ChaosOutcome& base = outcomes[0];
    ASSERT_TRUE(base.monitors_ok)
        << "plan seed " << plan_seed << ":\n" << base.report;
    ASSERT_GT(base.commits, 50u) << "plan seed " << plan_seed;
    ASSERT_FALSE(base.recovery_us.empty()) << "plan seed " << plan_seed;
    // Any one plan can draw an outage nothing was routed into; require
    // degraded handling to fire across the corpus (asserted after the
    // loop).
    total_degraded +=
        base.retry_transcript_len + base.parked_total + base.watchdog_aborts;

    for (size_t i = 1; i < outcomes.size(); ++i) {
      ASSERT_TRUE(outcomes[i].monitors_ok)
          << "plan seed " << plan_seed << " salt 0x" << std::hex << salts[i]
          << ":\n" << outcomes[i].report;
      EXPECT_TRUE(SameOutcome(base, outcomes[i]))
          << "plan seed " << plan_seed << " diverged under salt 0x"
          << std::hex << salts[i] << ": retry digest "
          << outcomes[i].retry_digest << " vs " << base.retry_digest
          << ", placement " << outcomes[i].placement_digest << " vs "
          << base.placement_digest << std::dec << ", commits "
          << outcomes[i].commits << " vs " << base.commits
          << " — a degraded-mode decision depends on hash iteration order";
    }
  }
  EXPECT_GT(total_degraded, 0u)
      << "no plan ever blocked, parked or watchdog-aborted anything";
}

// One seeded chaos lifetime under the PROCESS salt (HERMES_HASH_SALT),
// printing a parseable outcome line. scripts/check_determinism.sh --chaos
// runs this binary under several env salts and requires every printed
// CHAOS_PROFILE line to be identical across processes.
TEST(ChaosScriptProfile, SingleSeededPlanPrintsOutcome) {
  const ChaosOutcome out = RunChaos(kSeedBase + 1000, /*deep_checks=*/true);
  ASSERT_TRUE(out.monitors_ok) << out.report;
  ASSERT_FALSE(out.recovery_us.empty());
  std::string recoveries;
  char buf[32];
  for (SimTime t : out.recovery_us) {
    std::snprintf(buf, sizeof(buf), "%s%llu", recoveries.empty() ? "" : ",",
                  static_cast<unsigned long long>(t));
    recoveries += buf;
  }
  std::printf("CHAOS_PROFILE digest=%016llx placement=%016llx "
              "checksum=%016llx commits=%llu dropped=%llu dup=%llu "
              "recovery_us=%s\n",
              static_cast<unsigned long long>(out.decision_digest),
              static_cast<unsigned long long>(out.placement_digest),
              static_cast<unsigned long long>(out.state_checksum),
              static_cast<unsigned long long>(out.commits),
              static_cast<unsigned long long>(out.dropped),
              static_cast<unsigned long long>(out.duplicated),
              recoveries.c_str());
}

// Degraded-mode counterpart: one seeded no-stall lifetime under the
// process salt. scripts/check_determinism.sh --degraded reruns this under
// several env salts and requires identical DEGRADED_PROFILE lines —
// including the retry-transcript digest, i.e. the full block/park/retry
// history, not just the end state.
TEST(ChaosScriptProfile, SingleNoStallPlanPrintsOutcome) {
  const ChaosOutcome out =
      RunChaos(kSeedBase + 2000, /*deep_checks=*/true, /*no_stall=*/true);
  ASSERT_TRUE(out.monitors_ok) << out.report;
  ASSERT_FALSE(out.recovery_us.empty());
  std::printf("DEGRADED_PROFILE digest=%016llx placement=%016llx "
              "checksum=%016llx commits=%llu retry_digest=%016llx "
              "retries=%llu parked=%llu watchdog=%llu recovery_us=%llu\n",
              static_cast<unsigned long long>(out.decision_digest),
              static_cast<unsigned long long>(out.placement_digest),
              static_cast<unsigned long long>(out.state_checksum),
              static_cast<unsigned long long>(out.commits),
              static_cast<unsigned long long>(out.retry_digest),
              static_cast<unsigned long long>(out.retry_transcript_len),
              static_cast<unsigned long long>(out.parked_total),
              static_cast<unsigned long long>(out.watchdog_aborts),
              static_cast<unsigned long long>(out.recovery_us[0]));
}

}  // namespace
}  // namespace hermes
