// Reproduces Fig. 7: the per-transaction average latency breakdown
// (scheduling / waiting for locks / local storage+execution / waiting for
// remote data / other) for every system under the Google workload.
//
// Expected shape (paper): Hermes has the smallest lock and remote waits
// (prescient routing minimizes distributed transactions and balances
// load); Hermes' scheduling slice (~2 ms, ~4% of latency) is larger than
// the baselines' but negligible overall; Calvin has the largest waits.

#include <cstdio>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::RunGoogleWorkload;
using hermes::bench::RunResult;
using hermes::engine::RouterKind;

namespace {

GoogleRunParams ShortRun(bool clay = false) {
  GoogleRunParams params;
  params.windows = 6;
  params.enable_clay = clay;
  return params;
}

void PrintRow(const char* name, const RunResult& r) {
  const auto& l = r.avg_latency;
  std::printf("%-8s,%8.2f,%8.2f,%8.2f,%8.2f,%8.2f,%8.2f,%8.2f,%8.2f\n",
              name, l.scheduling_us / 1e3, l.lock_wait_us / 1e3,
              l.storage_us / 1e3, l.remote_wait_us / 1e3, l.other_us / 1e3,
              l.total_us / 1e3, r.latency_p50_us / 1e3,
              r.latency_p99_us / 1e3);
}

}  // namespace

int main() {
  std::printf("Fig. 7 reproduction: average latency breakdown "
              "(milliseconds)\n\n");
  std::printf("system  ,   sched,   locks, storage,  remote,   other,   "
              "total,     p50,     p99\n");
  PrintRow("calvin", RunGoogleWorkload(RouterKind::kCalvin, ShortRun()));
  PrintRow("clay", RunGoogleWorkload(RouterKind::kCalvin, ShortRun(true)));
  PrintRow("gstore", RunGoogleWorkload(RouterKind::kGStore, ShortRun()));
  PrintRow("tpart", RunGoogleWorkload(RouterKind::kTPart, ShortRun()));
  PrintRow("leap", RunGoogleWorkload(RouterKind::kLeap, ShortRun()));
  PrintRow("hermes", RunGoogleWorkload(RouterKind::kHermes, ShortRun()));
  std::printf("\npaper shape: hermes minimizes lock+remote waits; its "
              "scheduling cost (~2ms) stays a small fraction of total\n");
  return 0;
}
