// FaultPlan generation: seeded, totally ordered, structurally valid
// schedules — the foundation the chaos tests build on.

#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace hermes::fault {
namespace {

FaultPlanConfig BaseConfig() {
  FaultPlanConfig config;
  config.horizon_us = SecToSim(2);
  config.num_nodes = 4;
  config.crash_cycles = 3;
  config.min_outage_us = MsToSim(20);
  config.max_outage_us = MsToSim(200);
  return config;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  const FaultPlanConfig config = BaseConfig();
  const FaultPlan a = FaultPlan::Generate(config, 42);
  const FaultPlan b = FaultPlan::Generate(config, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
}

TEST(FaultPlanTest, DifferentSeedsDiffer) {
  const FaultPlanConfig config = BaseConfig();
  const FaultPlan a = FaultPlan::Generate(config, 1);
  const FaultPlan b = FaultPlan::Generate(config, 2);
  bool differ = a.events.size() != b.events.size();
  for (size_t i = 0; !differ && i < a.events.size(); ++i) {
    differ = a.events[i].at != b.events[i].at ||
             a.events[i].node != b.events[i].node;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlanTest, EventsSortedAndPaired) {
  const FaultPlanConfig config = BaseConfig();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    EXPECT_EQ(plan.events.size(), 2u * config.crash_cycles);
    NodeId down = kInvalidNode;
    SimTime prev = 0;
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, prev) << "events out of order, seed " << seed;
      prev = e.at;
      EXPECT_LT(e.at, config.horizon_us);
      EXPECT_GE(e.node, 0);
      EXPECT_LT(e.node, config.num_nodes);
      if (e.kind == FaultEvent::Kind::kCrash) {
        EXPECT_EQ(down, kInvalidNode) << "overlapping outages, seed " << seed;
        down = e.node;
      } else {
        ASSERT_EQ(e.kind, FaultEvent::Kind::kRejoin);
        EXPECT_EQ(down, e.node) << "rejoin without crash, seed " << seed;
        down = kInvalidNode;
      }
    }
    EXPECT_EQ(down, kInvalidNode) << "crash never rejoined, seed " << seed;
  }
}

TEST(FaultPlanTest, OutageBoundsRespected) {
  const FaultPlanConfig config = BaseConfig();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    for (size_t i = 0; i + 1 < plan.events.size(); i += 2) {
      const SimTime outage = plan.events[i + 1].at - plan.events[i].at;
      EXPECT_GE(outage, config.min_outage_us);
      EXPECT_LE(outage, config.max_outage_us);
    }
  }
}

TEST(FaultPlanTest, NoStallPlansEmitCrashNoStallEvents) {
  FaultPlanConfig config = BaseConfig();
  config.no_stall = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    EXPECT_EQ(plan.events.size(), 2u * config.crash_cycles);
    NodeId down = kInvalidNode;
    for (const FaultEvent& e : plan.events) {
      EXPECT_NE(e.kind, FaultEvent::Kind::kCrash)
          << "a no-stall plan drew a stalling crash, seed " << seed;
      if (e.kind == FaultEvent::Kind::kCrashNoStall) {
        EXPECT_EQ(down, kInvalidNode) << "overlapping outages, seed " << seed;
        down = e.node;
      } else {
        ASSERT_EQ(e.kind, FaultEvent::Kind::kRejoin);
        EXPECT_EQ(down, e.node) << "rejoin without crash, seed " << seed;
        down = kInvalidNode;
      }
    }
    EXPECT_EQ(down, kInvalidNode) << "crash never rejoined, seed " << seed;
  }
}

TEST(FaultPlanTest, NoStallFlagOnlyChangesEventKinds) {
  // Same seed, same draws: the no-stall flag swaps the crash kind but
  // must not perturb the schedule itself.
  FaultPlanConfig stall = BaseConfig();
  FaultPlanConfig no_stall = BaseConfig();
  no_stall.no_stall = true;
  const FaultPlan a = FaultPlan::Generate(stall, 42);
  const FaultPlan b = FaultPlan::Generate(no_stall, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    if (a.events[i].kind == FaultEvent::Kind::kCrash) {
      EXPECT_EQ(b.events[i].kind, FaultEvent::Kind::kCrashNoStall);
    } else {
      EXPECT_EQ(b.events[i].kind, a.events[i].kind);
    }
  }
  EXPECT_NE(b.DebugString().find("crash-nostall"), std::string::npos)
      << b.DebugString();
}

TEST(FaultPlanTest, FailoverLandsMidRun) {
  FaultPlanConfig config = BaseConfig();
  config.crash_cycles = 0;
  config.inject_failover = true;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan = FaultPlan::Generate(config, seed);
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kFailover);
    EXPECT_GE(plan.events[0].at, config.horizon_us / 5);
    EXPECT_LT(plan.events[0].at, 4 * config.horizon_us / 5);
  }
}

TEST(FaultPlanTest, LinkConfigCarriedThrough) {
  FaultPlanConfig config = BaseConfig();
  config.link.drop_prob = 0.05;
  config.link.duplicate_prob = 0.02;
  config.link.max_jitter_us = 123;
  const FaultPlan plan = FaultPlan::Generate(config, 9);
  EXPECT_DOUBLE_EQ(plan.link.drop_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.link.duplicate_prob, 0.02);
  EXPECT_EQ(plan.link.max_jitter_us, 123u);
  EXPECT_FALSE(plan.DebugString().empty());
}

}  // namespace
}  // namespace hermes::fault
