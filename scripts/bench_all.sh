#!/usr/bin/env sh
# Runs the headline benchmarks and emits BENCH_overall.json: the Fig. 6
# overall-throughput summary (parsed from bench_fig06_overall's series
# table) plus the routing microbenchmark numbers (google-benchmark JSON
# from bench_micro_routing), one file for dashboards and regression
# tracking. EXPERIMENTS.md records the paper-vs-measured comparison.
#
# With SIM_TIMING=1 it also times bench_fig06_overall and
# bench_scalability at several simulator thread counts (--threads=N,
# threads=0 being the sequential oracle) and emits BENCH_sim.json with
# wall-clock seconds and speedup-vs-sequential per thread count. The
# digests are thread-count-invariant (ctest -L parallel proves it), so
# this section measures time only.
#
# With NET_BENCH=1 it also runs bench_fig08_resource_usage (which ends
# with the congested-fabric raw-vs-coalesced pair, Fig 8d) and emits
# BENCH_net.json: per-class queueing-delay percentiles, envelope fold
# counters, and the headline latency/throughput for both runs, parsed
# from the bench's "NET <label> k=v..." lines. EXPERIMENTS.md records
# the expected deltas (coalescing cuts fg p99 queueing delay).
#
# Usage: scripts/bench_all.sh
#   BUILD_DIR    cmake build tree containing bench/ (default: build)
#   OUT          output JSON path (default: BENCH_overall.json in repo root)
#   FILTER       bench_micro_routing --benchmark_filter (default: all)
#   SIM_TIMING   1 = also run the sequential-vs-parallel timing section
#   SIM_OUT      its output path (default: BENCH_sim.json in repo root)
#   SIM_THREADS  thread counts to time (default: "0 1 2 4 8")
#   NET_BENCH    1 = also run the wire-substrate section (bench_fig08)
#   NET_OUT      its output path (default: BENCH_net.json in repo root)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_overall.json}"
FILTER="${FILTER:-.}"
FIG06="$BUILD_DIR/bench/bench_fig06_overall"
MICRO="$BUILD_DIR/bench/bench_micro_routing"

for bin in "$FIG06" "$MICRO"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

fig06_txt="$(mktemp)"
micro_json="$(mktemp)"
trap 'rm -f "$fig06_txt" "$micro_json"' EXIT

echo "== $FIG06 =="
"$FIG06" | tee "$fig06_txt"

echo "== $MICRO =="
"$MICRO" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$micro_json" \
  --benchmark_out_format=json

# Merge: the fig06 summary rows ("  <system> <mean> (<delta>% vs calvin)")
# become {"system": ..., "mean_txn_per_window": ..., "vs_calvin_pct": ...}
# and the google-benchmark JSON is embedded whole under "micro_routing".
# host_cpus and hermes_sim_threads are stamped so trajectory tooling can
# discount numbers measured on a starved container (ROADMAP's PR-6 caveat)
# or with the parallel simulator engaged.
python3 - "$fig06_txt" "$micro_json" "$OUT" <<'EOF'
import json
import os
import re
import sys

fig06_path, micro_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

summary = []
in_summary = False
for line in open(fig06_path):
    if line.startswith("summary ("):
        in_summary = True
        continue
    if not in_summary:
        continue
    m = re.match(r"\s+(\S+)\s+(\d+)\s+\(([+-]\d+)% vs calvin\)", line)
    if m:
        summary.append({
            "system": m.group(1),
            "mean_txn_per_window": int(m.group(2)),
            "vs_calvin_pct": int(m.group(3)),
        })

if not summary:
    sys.exit("error: no summary rows parsed from bench_fig06_overall output")

with open(micro_path) as f:
    micro = json.load(f)

with open(out_path, "w") as f:
    json.dump({
        "host_cpus": os.cpu_count(),
        "hermes_sim_threads": int(os.environ.get("HERMES_SIM_THREADS", "0")),
        "fig06_overall": summary,
        "micro_routing": micro,
    }, f, indent=2, sort_keys=True)
    f.write("\n")
EOF

echo "wrote $OUT"

# ---- Sequential vs parallel simulation timing (BENCH_sim.json) ----
if [ "${SIM_TIMING:-0}" = "1" ]; then
  SIM_OUT="${SIM_OUT:-BENCH_sim.json}"
  SIM_THREADS="${SIM_THREADS:-0 1 2 4 8}"
  SCALE="$BUILD_DIR/bench/bench_scalability"
  if [ ! -x "$SCALE" ]; then
    echo "error: $SCALE not built" >&2
    exit 1
  fi
  echo "== sim timing: threads in {$SIM_THREADS} =="
  python3 - "$FIG06" "$SCALE" "$SIM_OUT" $SIM_THREADS <<'EOF'
import json
import os
import subprocess
import sys
import time

fig06, scale, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
thread_counts = [int(t) for t in sys.argv[4:]]

def wall_seconds(binary, threads):
    start = time.monotonic()
    subprocess.run([binary, f"--threads={threads}"], check=True,
                   stdout=subprocess.DEVNULL)
    return round(time.monotonic() - start, 3)

report = {
    "host_cpus": os.cpu_count(),
    "hermes_sim_threads": int(os.environ.get("HERMES_SIM_THREADS", "0")),
    "benches": {},
}
for binary in (fig06, scale):
    name = os.path.basename(binary)
    rows = []
    base = None
    for threads in thread_counts:
        secs = wall_seconds(binary, threads)
        if threads == 0:
            base = secs
        speedup = round(base / secs, 2) if base else None
        rows.append({"threads": threads, "wall_seconds": secs,
                     "speedup_vs_sequential": speedup})
        print(f"  {name} threads={threads}: {secs}s"
              + (f" ({speedup}x vs sequential)" if speedup else ""),
              flush=True)
    report["benches"][name] = rows

with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
fi

# ---- Wire-substrate congestion bench (BENCH_net.json) ----
if [ "${NET_BENCH:-0}" = "1" ]; then
  NET_OUT="${NET_OUT:-BENCH_net.json}"
  FIG08="$BUILD_DIR/bench/bench_fig08_resource_usage"
  if [ ! -x "$FIG08" ]; then
    echo "error: $FIG08 not built" >&2
    exit 1
  fi
  fig08_txt="$(mktemp)"
  trap 'rm -f "$fig06_txt" "$micro_json" "$fig08_txt"' EXIT
  echo "== $FIG08 =="
  "$FIG08" | tee "$fig08_txt"
  # Each "NET <label> k=v ..." line becomes one object keyed by label;
  # numeric values are parsed as numbers so dashboards can diff the raw
  # and coalesced runs directly.
  python3 - "$fig08_txt" "$NET_OUT" <<'EOF'
import json
import os
import sys

fig08_path, out_path = sys.argv[1], sys.argv[2]

runs = {}
for line in open(fig08_path):
    if not line.startswith("NET "):
        continue
    parts = line.split()
    label, fields = parts[1], parts[2:]
    run = {}
    for field in fields:
        key, _, value = field.partition("=")
        run[key] = float(value) if "." in value else int(value)
    runs[label] = run

if "congested_raw" not in runs or "congested_coalesced" not in runs:
    sys.exit("error: NET lines missing from bench_fig08_resource_usage output")

with open(out_path, "w") as f:
    json.dump({
        "host_cpus": os.cpu_count(),
        "hermes_sim_threads": int(os.environ.get("HERMES_SIM_THREADS", "0")),
        "wire_substrate": runs,
    }, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
fi
