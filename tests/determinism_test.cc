// Property tests for the central invariant of a deterministic database
// system: identical totally ordered input produces identical final state —
// including record placement and fusion-table contents — on independently
// constructed replicas, for every router and several configurations.

#include <memory>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/multitenant.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

struct Scenario {
  RouterKind kind;
  size_t fusion_capacity;
  EvictionPolicy policy;
  double alpha;
  const char* name;
};

class DeterminismTest : public ::testing::TestWithParam<Scenario> {};

uint64_t RunYcsbOnce(const Scenario& s, uint64_t* commits) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.hermes.fusion_table_capacity = s.fusion_capacity;
  config.hermes.eviction_policy = s.policy;
  config.hermes.alpha = s.alpha;
  Cluster cluster(config, s.kind,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1234;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 24, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(SecToSim(1));
  driver.Start();
  cluster.RunUntil(SecToSim(1));
  cluster.Drain();
  *commits = cluster.metrics().total_commits();
  uint64_t checksum = cluster.StateChecksum();
  if (const auto* ft = cluster.fusion_table()) {
    checksum ^= ft->Checksum();
  }
  return checksum;
}

TEST_P(DeterminismTest, ReplicasConverge) {
  uint64_t commits1 = 0, commits2 = 0;
  const uint64_t c1 = RunYcsbOnce(GetParam(), &commits1);
  const uint64_t c2 = RunYcsbOnce(GetParam(), &commits2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(commits1, commits2);
  EXPECT_GT(commits1, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, DeterminismTest,
    ::testing::Values(
        Scenario{RouterKind::kCalvin, 0, EvictionPolicy::kLru, 0.0, "calvin"},
        Scenario{RouterKind::kGStore, 0, EvictionPolicy::kLru, 0.0, "gstore"},
        Scenario{RouterKind::kLeap, 0, EvictionPolicy::kLru, 0.0, "leap"},
        Scenario{RouterKind::kTPart, 0, EvictionPolicy::kLru, 0.2, "tpart"},
        Scenario{RouterKind::kHermes, 0, EvictionPolicy::kLru, 0.0,
                 "hermes_unbounded"},
        Scenario{RouterKind::kHermes, 500, EvictionPolicy::kLru, 0.0,
                 "hermes_lru"},
        Scenario{RouterKind::kHermes, 500, EvictionPolicy::kFifo, 0.5,
                 "hermes_fifo_alpha"}),
    [](const auto& info) { return info.param.name; });

TEST(DeterminismTpccTest, TpccReplicasConverge) {
  auto run = [] {
    workload::TpccConfig tc;
    tc.num_warehouses = 4;
    tc.num_nodes = 2;
    tc.hotspot_concentration = 0.5;
    workload::TpccWorkload gen(tc);

    ClusterConfig config;
    config.num_nodes = 2;
    config.num_records = gen.num_records();
    config.hermes.fusion_table_capacity = 2000;
    Cluster cluster(config, RouterKind::kHermes, gen.WarehousePartitioning());
    cluster.Load();
    workload::ClosedLoopDriver driver(
        &cluster, 16, [&gen](int, SimTime now) { return gen.Next(now); });
    driver.set_stop_time(SecToSim(1));
    driver.Start();
    cluster.RunUntil(SecToSim(1));
    cluster.Drain();
    return cluster.StateChecksum() ^ cluster.metrics().total_commits();
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismProvisioningTest, ScaleOutReplicasConverge) {
  auto run = [] {
    workload::MultiTenantConfig mt;
    mt.num_nodes = 3;
    mt.tenants_per_node = 2;
    mt.records_per_tenant = 2000;
    workload::MultiTenantWorkload gen(mt);

    ClusterConfig config;
    config.num_nodes = 3;
    config.num_records = gen.num_records();
    config.hermes.fusion_table_capacity = 500;
    config.migration_chunk_records = 200;
    Cluster cluster(config, RouterKind::kHermes, gen.PerfectPartitioning());
    cluster.Load();
    workload::ClosedLoopDriver driver(
        &cluster, 16, [&gen](int, SimTime now) { return gen.Next(now); });
    driver.set_stop_time(SecToSim(2));
    driver.Start();
    cluster.RunUntil(MsToSim(400));
    // Scale out mid-run: move the first tenant to the new node.
    cluster.AddNode({{0, mt.records_per_tenant - 1, 3}},
                    /*migrate_cold=*/true);
    cluster.RunUntil(SecToSim(2));
    cluster.Drain();
    return cluster.StateChecksum() ^
           (cluster.metrics().total_commits() << 1);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hermes
