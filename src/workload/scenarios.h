#ifndef HERMES_WORKLOAD_SCENARIOS_H_
#define HERMES_WORKLOAD_SCENARIOS_H_

#include <cstdint>

#include "workload/ycsb.h"

namespace hermes::workload {

/// Read-heavy skewed YCSB (DESIGN.md §5 "Replica leases"): most
/// transactions pair a key from their own partition with a record drawn
/// from a highly skewed, effectively stationary global hot set, and only
/// `write_fraction` of them write. The stationary hot set is exactly the
/// case replica leases target — without them every distributed read
/// either ships to the hot record's master or ping-pongs it between
/// owners; with them each partition reads its local copy. Sweeping
/// `write_fraction` exposes the crossover where write fan-out eats the
/// read savings (bench_replication plots it).
YcsbConfig ReadHeavySkewedYcsb(uint64_t num_records, int num_partitions,
                               double write_fraction, uint64_t seed);

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_SCENARIOS_H_
