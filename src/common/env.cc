#include "common/env.h"

#include <cstdlib>

namespace hermes {

const char* EnvRead(const char* name) {
  // The one sanctioned std::getenv call in the tree (detlint:env-read).
  return std::getenv(name);
}

uint64_t EnvReadU64(const char* name, uint64_t def) {
  const char* v = EnvRead(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 0);
}

int EnvReadInt(const char* name, int def) {
  const char* v = EnvRead(name);
  if (v == nullptr || *v == '\0') return def;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

bool EnvReadBool(const char* name) {
  const char* v = EnvRead(name);
  if (v == nullptr || *v == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace hermes
