// Reproduces Fig. 2: the motivating experiment — Calvin under the complex
// Google workload with a naive range partitioning, with Clay's look-back
// re-partitioning, and with LEAP's look-present migration. Expected shape
// (paper): Clay barely beats the naive range partitioning because episodic
// load is unpredictable from the past; LEAP does better via temporal
// locality but remains well below Hermes (see Fig. 6).

#include <cstdio>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::MeanOf;
using hermes::bench::PrintSeriesTable;
using hermes::bench::RunGoogleWorkload;
using hermes::bench::RunResult;
using hermes::engine::RouterKind;

int main() {
  std::printf("Fig. 2 reproduction: Calvin + {range, Clay, LEAP} under the "
              "synthetic Google workload\n");

  GoogleRunParams params;
  const double window_s = params.window_us / 1e6;

  RunResult range = RunGoogleWorkload(RouterKind::kCalvin, GoogleRunParams{});
  GoogleRunParams clay_params;
  clay_params.enable_clay = true;
  RunResult clay = RunGoogleWorkload(RouterKind::kCalvin, std::move(clay_params));
  RunResult leap = RunGoogleWorkload(RouterKind::kLeap, GoogleRunParams{});

  PrintSeriesTable("Fig 2: throughput over time",
                   {"range_partition", "clay", "leap"},
                   {range.throughput, clay.throughput, leap.throughput},
                   window_s, "committed txns per window");

  const size_t n = range.throughput.size();
  std::printf("\nsummary (mean txn/window, windows 2..%zu):\n", n);
  std::printf("  range: %.0f\n  clay:  %.0f\n  leap:  %.0f\n",
              MeanOf(range.throughput, 2, n), MeanOf(clay.throughput, 2, n),
              MeanOf(leap.throughput, 2, n));
  std::printf("paper shape: clay ~ range (look-back fails on episodic "
              "load); leap noticeably above both\n");
  return 0;
}
