#include "storage/lock_manager.h"

#include <cassert>

namespace hermes::storage {

void LockManager::Acquire(TxnId txn, const std::vector<LockRequest>& reqs,
                          std::vector<TxnId>* newly_granted) {
  assert(!txns_.contains(txn) && "Acquire called twice for one txn");
  TxnState& state = txns_[txn];
  state.keys.reserve(reqs.size());
  state.pending = reqs.size();
  if (reqs.empty()) {
    NoteGranted(txn, newly_granted);
    return;
  }
  for (const LockRequest& req : reqs) {
    state.keys.push_back(req.key);
    std::deque<Waiter>& queue = queues_[req.key];
    queue.push_back(Waiter{txn, req.exclusive, /*granted=*/false});
    if (queue.size() == 1) {
      // Only occupant: grant immediately.
      queue.front().granted = true;
      NoteGranted(txn, newly_granted);
    } else if (!req.exclusive) {
      // Shared request joins the granted group iff everything ahead of it
      // is a granted shared lock.
      bool all_shared_granted = true;
      for (size_t i = 0; i + 1 < queue.size(); ++i) {
        if (queue[i].exclusive || !queue[i].granted) {
          all_shared_granted = false;
          break;
        }
      }
      if (all_shared_granted) {
        queue.back().granted = true;
        NoteGranted(txn, newly_granted);
      }
    }
  }
}

void LockManager::Release(TxnId txn, std::vector<TxnId>* newly_granted) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  std::vector<Key> keys = std::move(it->second.keys);
  txns_.erase(it);
  for (Key key : keys) {
    auto qit = queues_.find(key);
    if (qit == queues_.end()) continue;
    std::deque<Waiter>& queue = qit->second;
    for (auto w = queue.begin(); w != queue.end(); ++w) {
      if (w->txn == txn) {
        queue.erase(w);
        break;
      }
    }
    if (queue.empty()) {
      queues_.erase(qit);
    } else {
      GrantFront(key, queue, newly_granted);
    }
  }
}

void LockManager::GrantFront(Key key, std::deque<Waiter>& queue,
                             std::vector<TxnId>* newly_granted) {
  (void)key;
  if (queue.front().exclusive) {
    if (!queue.front().granted) {
      queue.front().granted = true;
      NoteGranted(queue.front().txn, newly_granted);
    }
    return;
  }
  // Grant the all-shared prefix.
  for (Waiter& w : queue) {
    if (w.exclusive) break;
    if (!w.granted) {
      w.granted = true;
      NoteGranted(w.txn, newly_granted);
    }
  }
}

void LockManager::NoteGranted(TxnId txn, std::vector<TxnId>* newly_granted) {
  TxnState& state = txns_.at(txn);
  if (state.pending > 0) --state.pending;
  if (state.pending == 0) newly_granted->push_back(txn);
}

bool LockManager::HoldsAll(TxnId txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.pending == 0;
}

}  // namespace hermes::storage
