// detlint-fixture: path=src/replication/lane_confinement_replication_neg.cc
// detlint:requires(exclusive)
void Revoke(unsigned long key, int holder);

// detlint:requires(exclusive)
void LapseAll();

// detlint:runs(exclusive)
void MembershipTransition() {
  LapseAll();
}

void OnRevokeOp(Simulator& sim, unsigned long key, int holder) {
  sim.Defer([key, holder] { Revoke(key, holder); });
}
