#ifndef HERMES_BENCH_BENCH_COMMON_H_
#define HERMES_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"
#include "workload/google_trace.h"

namespace hermes::bench {

/// Parameters of one emulated run of the paper's "complex Google workload"
/// (§5.2.2), scaled down from the paper's testbed (20 servers, 200M
/// records, 3-day trace) to simulator scale; the scale factors are
/// documented in EXPERIMENTS.md.
struct GoogleRunParams {
  int num_nodes = 10;
  int windows = 12;                   ///< trace windows emulated
  SimTime window_us = SecToSim(4);    ///< emulated length of one window
  int clients = 2500;
  int workers_per_node = 2;
  uint64_t num_records = 100'000;
  double distributed_ratio = 0.5;
  double length_mean = 2.0;
  double length_stddev = 0.0;
  /// Fusion table capacity as a fraction of the database (paper: 2.5%).
  double fusion_capacity_frac = 0.025;
  size_t max_batch = 0;
  /// Sequencer epoch; 0 keeps the ClusterConfig default (10 ms). Longer
  /// epochs form larger batches (the Fig. 10 knob).
  SimTime epoch_us = 0;
  bool enable_clay = false;
  uint64_t seed = 42;
  /// Simulator worker threads (config.sim.threads): 0 = sequential oracle
  /// mode, N > 0 = epoch-parallel lanes. Digest-invariant by design; this
  /// only changes wall-clock time. Benches expose it as --threads=N.
  int sim_threads = 0;
  /// Initial placement; null selects the naive range partitioning.
  std::unique_ptr<partition::PartitionMap> initial;
  /// Last-chance hook to adjust the assembled ClusterConfig (ablation
  /// switches, cost-model overrides).
  std::function<void(ClusterConfig&)> tweak;
};

/// Per-run outputs mirroring what the paper plots.
struct RunResult {
  std::vector<double> throughput;    ///< commits per window
  std::vector<double> cpu;           ///< cluster CPU utilization per window
  std::vector<double> net_per_txn;   ///< wire bytes sent per commit per window
  /// Wire bytes delivered per commit per window; diverges from
  /// `net_per_txn` when messages straddle a window boundary or a chaos
  /// profile drops/duplicates wire attempts.
  std::vector<double> net_recv_per_txn;
  /// Per-class wire bytes sent per commit per window (foreground = txn
  /// execution traffic, bulk = migration/replica shipments). All zero
  /// unless the wire substrate is enabled via the tweak hook
  /// (config.net.enabled; DESIGN.md §5 "Wire substrate").
  std::vector<double> net_fg_per_txn;
  std::vector<double> net_bulk_per_txn;
  /// Wire-substrate queueing delays (enqueue -> serializer accept) and
  /// counters, whole-run; zero when the substrate is disabled.
  SimTime wire_fg_delay_p50_us = 0;
  SimTime wire_fg_delay_p99_us = 0;
  SimTime wire_bulk_delay_p99_us = 0;
  uint64_t wire_envelopes = 0;
  uint64_t wire_coalesced = 0;
  uint64_t wire_credit_stalls = 0;
  LatencyBreakdown avg_latency;
  SimTime latency_p50_us = 0;
  SimTime latency_p99_us = 0;
  double mean_throughput = 0;        ///< txn/s after the first window
};

/// Builds the deterministic synthetic Google trace shared by all runs.
const workload::SyntheticGoogleTrace& SharedTrace(int num_machines,
                                                  SimTime window_us,
                                                  int windows);

/// Runs the Google workload on a fresh cluster with the given router.
RunResult RunGoogleWorkload(engine::RouterKind kind, GoogleRunParams params);

/// Prints a CSV series table: one row per window, one column per system.
void PrintSeriesTable(const std::string& title,
                      const std::vector<std::string>& systems,
                      const std::vector<std::vector<double>>& columns,
                      double window_seconds, const std::string& unit);

double MeanOf(const std::vector<double>& series, size_t from, size_t to);

/// Parses a `--threads=N` argument (simulator worker threads for
/// GoogleRunParams::sim_threads); 0 — the sequential oracle — when absent.
/// scripts/bench_all.sh uses it for the sequential-vs-parallel timing
/// section (BENCH_sim.json).
int ParseThreadsFlag(int argc, char** argv);

std::string KindName(engine::RouterKind kind);

}  // namespace hermes::bench

#endif  // HERMES_BENCH_BENCH_COMMON_H_
