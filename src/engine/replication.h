#ifndef HERMES_ENGINE_REPLICATION_H_
#define HERMES_ENGINE_REPLICATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "engine/cluster.h"
#include "partition/partition_map.h"

namespace hermes::engine {

/// Deterministic replication (§2.1): every data center holds a full
/// replica and receives the same totally ordered input; determinism keeps
/// the replicas consistent without an agreement protocol between them.
///
/// The group runs one primary Cluster (which sequences client requests)
/// and N-1 standby replicas whose schedulers are fed the primary's batch
/// stream verbatim. When the primary "fails", any standby can take over
/// immediately: Failover() promotes it, carrying the sequencer counters
/// forward so the total order continues seamlessly.
class ReplicaGroup {
 public:
  using MapFactory =
      std::function<std::unique_ptr<partition::PartitionMap>()>;

  ReplicaGroup(const ClusterConfig& config, RouterKind kind,
               const MapFactory& map_factory, int num_replicas);

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Populates all replicas.
  void Load();

  /// Submits to the current primary.
  void Submit(TxnRequest txn,
              TxnExecutor::CommitCallback on_commit = nullptr);

  /// Advances all replicas to `deadline` (their simulations run in
  /// lockstep wall-clock-wise; each has its own event timeline).
  void RunUntil(SimTime deadline);

  /// Drains all replicas.
  void Drain();

  /// Simulates the primary's failure: the lowest-indexed surviving
  /// standby is promoted (its sequencer counters continue the stream) and
  /// subsequent Submit() calls go to it. The failed replica stops
  /// receiving batches. Returns the new primary's index.
  int Failover();

  /// Failover WITHOUT draining the dead primary first: the primary dies
  /// mid-flight, its unfinished work is simply lost, and the promoted
  /// standby continues from the batches that were already fanned out (the
  /// deterministic-replication guarantee: every sequenced batch reached
  /// the standbys, so nothing acknowledged is lost — only unsequenced
  /// requests die with the primary, which is also true of a real Calvin
  /// deployment). The fault injector uses this mid-run. Returns the new
  /// primary's index.
  int FailoverNow();

  int primary_index() const { return primary_; }
  bool alive(int i) const { return alive_[i]; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  Cluster& replica(int i) { return *replicas_[i]; }

  /// True when every live replica's store checksum matches (call after
  /// Drain()).
  bool ReplicasConsistent() const;

 private:
  void WireTap(int index);
  int Promote();

  std::vector<std::unique_ptr<Cluster>> replicas_;
  std::vector<bool> alive_;
  int primary_ = 0;
  BatchId last_batch_ = 0;
  TxnId last_txn_ = 0;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_REPLICATION_H_
