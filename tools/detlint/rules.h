#ifndef HERMES_TOOLS_DETLINT_RULES_H_
#define HERMES_TOOLS_DETLINT_RULES_H_

// detlint rule pass: twelve determinism rules over the token streams and
// the project include graph (see rules.cc for the catalog, DESIGN.md §5
// "Determinism toolchain" for the rationale table).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace detlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string excerpt;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return excerpt < o.excerpt;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
};

struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string justification;
  bool used = false;
};

/// A lane-confinement contract annotation parsed from a comment, written
/// as the `detlint:` prefix immediately followed by one of:
///   `requires(exclusive)` — callers must be in exclusive context
///   `runs(exclusive)`     — body is exclusive (scheduled-only entry
///                           point); call sites unchecked
/// The annotation binds to the unqualified name of the next function
/// declared or defined after it.
struct Annotation {
  std::string file;
  int line = 0;
  std::string kind;      // "requires" | "runs"
  std::string mode;      // only "exclusive" is defined
  std::string function;  // bound function name ("" = nothing followed)
};

/// Every rule detlint knows, in report order.
const std::set<std::string>& KnownRules();

/// One-line description per rule (SARIF metadata and docs).
const std::map<std::string, std::string>& RuleDescriptions();

/// Which rules run on a file. Derived per source tree by ProfileFor().
using RuleProfile = std::set<std::string>;

/// Per-tree rule profile for `virtual_path`:
///   src/    all rules
///   tools/  all rules (offline, but held to the same bar)
///   bench/  all but raw-thread (google-benchmark harness + the malloc
///           interposition counters legitimately use atomics)
///   tests/  all but raw-unordered / unordered-iter (tests keep plain
///           std::unordered_* reference models to compare the salted
///           containers against)
RuleProfile ProfileFor(const std::string& virtual_path);

struct AnalysisResult {
  std::vector<Finding> findings;
  /// Suppressions in file-load order (reported in that order).
  std::vector<Suppression> suppressions;
  /// Malformed contract annotations (unknown kind/mode, unbound), as
  /// hard errors.
  std::vector<Finding> annotation_errors;
};

/// Runs every profiled rule over `files`. The include graph and the
/// hash-container name set are global across the batch, so cross-file
/// accessors and transitive includes resolve; pass one batch per scan.
AnalysisResult Analyze(std::vector<LexedFile>& files);

}  // namespace detlint

#endif  // HERMES_TOOLS_DETLINT_RULES_H_
