#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace detlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the identifier ending just before `quote` is a raw-string
/// prefix (R, u8R, LR, uR, UR) rather than an ordinary identifier that
/// happens to touch a quote (macros like FOO"x" do not exist here).
bool IsRawStringPrefix(const std::string& s, size_t ident_begin,
                       size_t quote) {
  const std::string p = s.substr(ident_begin, quote - ident_begin);
  return p == "R" || p == "u8R" || p == "LR" || p == "uR" || p == "UR";
}

/// Two-character punctuation tokens the rules depend on: `::` and `->`
/// so qualified names and member accesses stay single tokens, the
/// comparison/shift group so angle-bracket matching never sees a stray
/// `<` or `>`.
bool IsTwoCharPunct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>') ||
         (a == '<' && b == '<') || (a == '>' && b == '>') ||
         (a == '<' && b == '=') || (a == '>' && b == '=') ||
         (a == '=' && b == '=') || (a == '!' && b == '=') ||
         (a == '&' && b == '&') || (a == '|' && b == '|');
}

}  // namespace

int LineOf(const LexedFile& f, size_t offset) {
  auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(),
                             offset);
  return static_cast<int>(it - f.line_starts.begin());
}

std::string LineText(const LexedFile& f, int line) {
  if (line < 1 || static_cast<size_t>(line) > f.line_starts.size()) return "";
  const size_t begin = f.line_starts[line - 1];
  size_t end = f.raw.find('\n', begin);
  if (end == std::string::npos) end = f.raw.size();
  std::string text = f.raw.substr(begin, end - begin);
  const size_t first = text.find_first_not_of(" \t");
  if (first != std::string::npos) text = text.substr(first);
  if (text.size() > 90) text = text.substr(0, 87) + "...";
  return text;
}

LexedFile Lex(std::string path, std::string virtual_path, std::string raw) {
  LexedFile f;
  f.path = std::move(path);
  f.virtual_path = std::move(virtual_path);
  f.raw = std::move(raw);
  const std::string& s = f.raw;

  f.line_starts.push_back(0);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') f.line_starts.push_back(i + 1);
  }

  size_t i = 0;
  bool at_line_start = true;  // only whitespace seen since the last newline
  while (i < s.size()) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';

    if (c == '\n') {
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && next == '/') {
      size_t end = s.find('\n', i);
      if (end == std::string::npos) end = s.size();
      f.comments.push_back(
          Comment{s.substr(i, end - i), i, end, LineOf(f, i)});
      i = end;
      continue;
    }
    if (c == '/' && next == '*') {
      size_t end = s.find("*/", i + 2);
      end = end == std::string::npos ? s.size() : end + 2;
      f.comments.push_back(
          Comment{s.substr(i, end - i), i, end, LineOf(f, i)});
      i = end;
      at_line_start = false;
      continue;
    }

    // #include directives. Other preprocessor lines are tokenized
    // normally so macro bodies are scanned like any other code (v1
    // behaved the same way on its stripped text).
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
      if (s.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
        if (j < s.size() && (s[j] == '<' || s[j] == '"')) {
          const char close = s[j] == '<' ? '>' : '"';
          const size_t name_begin = j + 1;
          const size_t name_end = s.find(close, name_begin);
          if (name_end != std::string::npos) {
            f.includes.push_back(IncludeDirective{
                s.substr(name_begin, name_end - name_begin), close == '>', i,
                LineOf(f, i)});
            i = name_end + 1;
            at_line_start = false;
            continue;
          }
        }
      }
      // Not an include: fall through and emit '#' as punctuation.
    }

    at_line_start = false;

    // String literals (skipped): raw strings first, then ordinary.
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < s.size() && IsIdentChar(s[end])) ++end;
      if (end < s.size() && s[end] == '"' && IsRawStringPrefix(s, i, end)) {
        // R"delim( ... )delim"
        size_t d = end + 1;
        size_t paren = s.find('(', d);
        if (paren == std::string::npos) {
          i = s.size();
          continue;
        }
        const std::string closer =
            ")" + s.substr(d, paren - d) + "\"";
        size_t close = s.find(closer, paren + 1);
        i = close == std::string::npos ? s.size() : close + closer.size();
        continue;
      }
      f.tokens.push_back(
          Token{TokKind::kIdent, s.substr(i, end - i), i, LineOf(f, i)});
      i = end;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < s.size()) {
        if (s[j] == '\\') {
          j += 2;
          continue;
        }
        if (s[j] == '"') break;
        ++j;
      }
      i = j < s.size() ? j + 1 : s.size();
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < s.size()) {
        if (s[j] == '\\') {
          j += 2;
          continue;
        }
        if (s[j] == '\'') break;
        ++j;
      }
      i = j < s.size() ? j + 1 : s.size();
      continue;
    }

    // Numbers (digit-separators and suffixes folded into one token; a
    // trailing exponent sign is part of the literal).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i + 1;
      while (end < s.size() &&
             (IsIdentChar(s[end]) || s[end] == '.' || s[end] == '\'' ||
              ((s[end] == '+' || s[end] == '-') &&
               (s[end - 1] == 'e' || s[end - 1] == 'E' || s[end - 1] == 'p' ||
                s[end - 1] == 'P')))) {
        ++end;
      }
      f.tokens.push_back(
          Token{TokKind::kNumber, s.substr(i, end - i), i, LineOf(f, i)});
      i = end;
      continue;
    }

    // Punctuation.
    if (IsTwoCharPunct(c, next)) {
      f.tokens.push_back(
          Token{TokKind::kPunct, s.substr(i, 2), i, LineOf(f, i)});
      i += 2;
      continue;
    }
    f.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), i,
                             LineOf(f, i)});
    ++i;
  }
  return f;
}

}  // namespace detlint
