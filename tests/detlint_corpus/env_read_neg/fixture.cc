// detlint-fixture: path=src/common/env.cc
const char* EnvRead(const char* name) { return std::getenv(name); }
