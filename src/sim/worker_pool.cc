#include "sim/worker_pool.h"

#include <algorithm>
#include <utility>

namespace hermes::sim {

WorkerPool::WorkerPool(Simulator* sim, int num_workers, int lane)
    : sim_(sim), lane_(lane), busy_until_(std::max(num_workers, 1), 0) {}

SimTime WorkerPool::Submit(SimTime duration, std::function<void()> done) {
  // Pick the worker that frees up first (lowest index on ties).
  size_t best = 0;
  for (size_t i = 1; i < busy_until_.size(); ++i) {
    if (busy_until_[i] < busy_until_[best]) best = i;
  }
  const SimTime start = std::max(sim_->Now(), busy_until_[best]);
  const SimTime end = start + duration;
  busy_until_[best] = end;
  busy_us_ += duration;
  // Completions land on the owning node's lane no matter which lane (or
  // the control slice) submitted the job.
  sim_->ScheduleOnLaneAt(lane_, end, std::move(done));
  return start;
}

uint64_t WorkerPool::TakeBusyDelta() {
  const uint64_t delta = busy_us_ - last_sampled_busy_;
  last_sampled_busy_ = busy_us_;
  return delta;
}

}  // namespace hermes::sim
