#include "core/fusion_table.h"

#include <algorithm>

#include "common/rng.h"

namespace hermes::core {

FusionTable::FusionTable(size_t capacity, EvictionPolicy policy)
    : capacity_(capacity), policy_(policy) {}

std::optional<NodeId> FusionTable::Lookup(Key key, bool touch) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (touch && policy_ == EvictionPolicy::kLru) {
    TouchEntry(it->second, key);
  }
  return it->second.node;
}

std::optional<NodeId> FusionTable::Peek(Key key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.node;
}

void FusionTable::TouchEntry(Entry& entry, Key key) {
  order_.erase(entry.pos);
  order_.push_back(key);
  entry.pos = std::prev(order_.end());
}

void FusionTable::Put(Key key, NodeId node, std::vector<Key>* evicted) {
  PutPinnedImpl(key, node, [](Key) { return false; }, evicted);
}

void FusionTable::PutPinned(Key key, NodeId node, const HashSet<Key>& pinned,
                            std::vector<Key>* evicted) {
  PutPinnedImpl(
      key, node, [&](Key k) { return pinned.contains(k); }, evicted);
}

void FusionTable::PutPinned(Key key, NodeId node,
                            std::span<const Key> sorted_pinned,
                            std::vector<Key>* evicted) {
  PutPinnedImpl(
      key, node,
      [&](Key k) {
        return std::binary_search(sorted_pinned.begin(), sorted_pinned.end(),
                                  k);
      },
      evicted);
}

template <typename PinnedFn>
void FusionTable::PutPinnedImpl(Key key, NodeId node, PinnedFn&& is_pinned,
                                std::vector<Key>* evicted) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.node = node;
    if (policy_ == EvictionPolicy::kLru) TouchEntry(it->second, key);
  } else {
    order_.push_back(key);
    entries_[key] = Entry{node, std::prev(order_.end())};
  }
  if (capacity_ == 0) return;
  auto victim = order_.begin();
  while (entries_.size() > capacity_ && victim != order_.end()) {
    if (is_pinned(*victim) ||
        (evictable_ != nullptr && !evictable_(*victim))) {
      ++victim;  // pinned / filtered entries keep their slot and recency
      continue;
    }
    const Key evictee = *victim;
    victim = order_.erase(victim);
    auto entry = entries_.find(evictee);
    HERMES_TRACE(tracer_, obs::EventKind::kFusionEvict, entry->second.node,
                 kInvalidTxn, evictee);
    entries_.erase(entry);
    if (digest_ != nullptr) digest_->Mix(evictee);
    evicted->push_back(evictee);
  }
}

void FusionTable::Erase(Key key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  order_.erase(it->second.pos);
  entries_.erase(it);
}

std::vector<Key> FusionTable::ExportOrder() const {
  return {order_.begin(), order_.end()};
}

void FusionTable::Restore(const HashMap<Key, NodeId>& entries,
                          const std::vector<Key>& order) {
  entries_.clear();
  order_.clear();
  for (Key key : order) {
    order_.push_back(key);
    entries_[key] = Entry{entries.at(key), std::prev(order_.end())};
  }
}

uint64_t FusionTable::Checksum() const {
  uint64_t sum = 0;
  // detlint:allow(unordered-iter) order-insensitive XOR fold, not a decision
  for (const auto& [key, entry] : entries_) {
    sum ^= Mix64(Mix64(key) ^ static_cast<uint64_t>(entry.node + 7));
  }
  return sum;
}

}  // namespace hermes::core
