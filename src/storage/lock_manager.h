#ifndef HERMES_STORAGE_LOCK_MANAGER_H_
#define HERMES_STORAGE_LOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace hermes::storage {

/// One lock to take: shared for reads, exclusive for writes/migrations.
struct LockRequest {
  Key key;
  bool exclusive;
};

/// Per-node lock table implementing Calvin's conservative ordered locking:
/// every transaction enqueues all its local lock requests at once, in the
/// global total order, before executing. Grants are strictly FIFO per key
/// (a shared block is granted as the longest all-shared prefix), which
/// rules out both deadlock and non-deterministic aborts — and produces the
/// clogging behaviour the paper describes when a lock holder stalls on the
/// network.
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Enqueues every request of `txn` on this node. Must be called at most
  /// once per transaction per node, in total-order sequence. Transactions
  /// whose final local lock was granted by this call (possibly `txn`
  /// itself, possibly none) are appended to `*newly_granted`.
  ///
  /// Duplicate keys within `reqs` are the caller's bug; the strongest mode
  /// must be pre-merged (a read-modify-write key is one exclusive lock).
  void Acquire(TxnId txn, const std::vector<LockRequest>& reqs,
               std::vector<TxnId>* newly_granted);

  /// Releases every lock `txn` holds or waits for on this node, granting
  /// successors; transactions that became fully granted are appended to
  /// `*newly_granted`.
  void Release(TxnId txn, std::vector<TxnId>* newly_granted);

  /// True once all of `txn`'s local locks are granted (false for unknown
  /// transactions).
  bool HoldsAll(TxnId txn) const;

  /// Number of transactions known to this table (granted or waiting).
  size_t num_txns() const { return txns_.size(); }

  /// Number of keys with at least one queued request (diagnostics).
  size_t num_active_keys() const { return queues_.size(); }

 private:
  struct Waiter {
    TxnId txn;
    bool exclusive;
    bool granted;
  };
  struct TxnState {
    std::vector<Key> keys;
    size_t pending = 0;
  };

  /// Grants the longest grantable prefix of `queue`; appends transactions
  /// that became fully granted to `*newly_granted`.
  void GrantFront(Key key, std::deque<Waiter>& queue,
                  std::vector<TxnId>* newly_granted);

  void NoteGranted(TxnId txn, std::vector<TxnId>* newly_granted);

  HashMap<Key, std::deque<Waiter>> queues_;
  HashMap<TxnId, TxnState> txns_;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_LOCK_MANAGER_H_
