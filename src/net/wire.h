#ifndef HERMES_NET_WIRE_H_
#define HERMES_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "obs/telemetry.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hermes::net {

/// Log-bucketed virtual-time histogram for queueing delays (same bucketing
/// as engine::LatencyHistogram: 4 linear sub-buckets per power of two).
/// Lives here rather than reusing the engine type so src/net/ stays below
/// src/engine/ in the layering.
class DelayHistogram {
 public:
  DelayHistogram();

  void Record(SimTime delay_us);
  /// Adds `other`'s buckets into this histogram (read-side row merge).
  void Merge(const DelayHistogram& other);

  uint64_t count() const { return count_; }
  /// Delay at quantile `q` in [0, 1] (bucket upper bound); 0 when empty.
  SimTime Percentile(double q) const;
  obs::HistogramSnapshot Snapshot() const;

 private:
  static constexpr int kSubBuckets = 4;
  static constexpr int kBuckets = 30 * kSubBuckets;
  static size_t BucketFor(SimTime v);
  static SimTime UpperBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
};

/// Wire substrate between the engine and the sim::Network message fabric
/// (DESIGN.md §5 "Wire substrate"): bounded-bandwidth links, envelope
/// coalescing, and deterministic backpressure.
///
/// Each directed link src -> dst owns a serializer with rate
/// `bytes_per_us` and a FIFO transmit queue. A message waits until the
/// serializer is free (queueing), occupies it for size/rate
/// (serialization), and only then enters the underlying Network — whose
/// per-byte charge *is* the serialization time when the rate is derived
/// from the cost model, so delivery = queueing + serialization +
/// propagation with nothing double-charged. Under contention a fixed
/// two-class weighted round-robin arbitrates foreground vs bulk traffic,
/// and per-link outstanding-bytes credit windows (returned on delivery)
/// provide backpressure. Bulk traffic to one destination coalesces into
/// envelopes: messages appended within a virtual-time window ride one wire
/// message (one framing header) and their delivery callbacks run in append
/// order.
///
/// Determinism: every queueing, scheduling and coalescing decision is a
/// pure function of (config, the totally ordered per-link send sequence,
/// virtual time) — never wall clock, never hash order, never thread count.
/// All per-link state is per-source rows under the lane model: row `src`
/// is touched only by node src's lane or the exclusive slice. Credit
/// returns cross lanes, so they ride Simulator::Defer() to the barrier.
///
/// With `config.net.enabled == false` every Send degenerates to a direct
/// sim::Network::Send and the substrate is digest-invisible.
class Wire {
 public:
  Wire(sim::Simulator* sim, sim::Network* network, const CostModel* costs,
       const NetConfig* config, int num_nodes);

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  /// Sends `payload_bytes` from `src` to `dst`; `on_delivery` runs on node
  /// `dst`'s lane after queueing + serialization + propagation. May be
  /// called from `src`'s lane or from exclusive context. Self-sends and
  /// sends into a cut link bypass the queue (the latter park in the
  /// Network's holding pen; the queue was already flushed into the pen by
  /// OnLinkCut, so per-link FIFO order is preserved end-to-end).
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes, TrafficClass cls,
            std::function<void()> on_delivery);

  /// Flushes the link's open envelope and drains its transmit queue into
  /// the underlying Network in FIFO order. Called right after
  /// Network::CutLink: each drained message parks in the cut link's
  /// holding pen with its perturbation drawn at drain time (send-time
  /// semantics), and HealLink later re-measures serialization from the
  /// heal point. Drained messages never charged credits, so their
  /// deliveries return none. Exclusive context only.
  // detlint:requires(exclusive)
  void OnLinkCut(NodeId src, NodeId dst);

  /// Grows per-link state when nodes are added by dynamic provisioning.
  /// Exclusive context only (asserted), also called at construction.
  void GrowLinks(int num_nodes);

  // --- Read-side telemetry (sum / merge per-source rows). ---

  /// Bulk envelopes sealed onto transmit queues.
  uint64_t envelopes_sent() const { return Sum(envelopes_sent_); }
  /// Bulk messages that rode an envelope (>= envelopes_sent(); the
  /// difference is the number of framing headers coalescing saved).
  uint64_t coalesced_messages() const { return Sum(coalesced_messages_); }
  /// Messages transmitted through the bounded path, per class.
  uint64_t transmits(TrafficClass cls) const {
    return Sum(transmits_[static_cast<int>(cls)]);
  }
  /// Times a transmitter went idle with a non-empty queue because no
  /// queued message fit the link's credit window.
  uint64_t credit_stalls() const { return Sum(credit_stalls_); }
  /// Messages currently sitting in transmit queues (open envelopes count
  /// their appended messages). Exclusive-context read.
  uint64_t queued_now() const;

  /// Merged queueing-delay histogram for `cls` (delay between enqueue and
  /// the serializer accepting the message). Exclusive-context read.
  DelayHistogram MergedQueueDelay(TrafficClass cls) const;

 private:
  /// One queued transmission: a single message, or a sealed envelope
  /// carrying several bulk payloads behind one framing header.
  struct Pending {
    TrafficClass cls = TrafficClass::kForeground;
    uint64_t payload_bytes = 0;
    SimTime enqueued = 0;
    /// Delivery callbacks, run in append order on the destination lane.
    std::vector<std::function<void()>> cbs;
  };

  /// Per-directed-link state. links_[src][dst]: row `src` is owned by
  /// node src's lane (or the exclusive slice).
  struct Link {
    std::deque<Pending> queue;
    /// Virtual time the serializer frees up.
    SimTime busy_until = 0;
    /// Transmitted-but-undelivered wire bytes (credit accounting).
    uint64_t outstanding = 0;
    /// Weighted-round-robin position; advances once per transmission.
    uint64_t wrr_slot = 0;
    /// True while a TransmitNext event is scheduled for this link.
    bool timer_armed = false;
    // Open-envelope state (bulk coalescing).
    bool env_open = false;
    uint64_t env_bytes = 0;
    uint64_t env_msgs = 0;
    /// Generation counter guarding the window-flush timer: flushing or
    /// re-opening bumps it, so a stale timer finds a mismatch and no-ops.
    uint64_t env_gen = 0;
    std::vector<std::function<void()>> env_cbs;
  };

  static uint64_t Sum(const std::vector<uint64_t>& row);

  /// Serializer occupancy of one wire message, in virtual microseconds.
  SimTime SerializationTime(uint64_t wire_bytes) const;
  /// True when the credit window admits `wire_bytes` more outstanding
  /// bytes (a message is always admitted on an idle link).
  bool CanAdmit(const Link& link, uint64_t wire_bytes) const;

  /// Appends one bulk payload to the link's open envelope (opening one and
  /// arming the window-flush timer if needed; sealing early on the size
  /// cap). Runs on src's lane or exclusively.
  void AppendEnvelope(NodeId src, NodeId dst, uint64_t payload_bytes,
                      std::function<void()> on_delivery);
  /// Seals the open envelope (if any) onto the transmit queue.
  void FlushEnvelope(NodeId src, NodeId dst);
  /// Arms the transmit timer if the queue is non-empty and none is armed.
  void Pump(NodeId src, NodeId dst);
  /// Timer body: picks the next admissible message by the two-class
  /// weighted schedule and hands it to the Network. Runs on src's lane.
  void TransmitNext(NodeId src, NodeId dst);
  /// Returns `wire_bytes` of credit after a delivery and re-pumps the
  /// link. Deferred to the barrier by the delivery callback (it fires on
  /// the destination lane; link state is the source's row).
  // detlint:requires(exclusive)
  void ReturnCredit(NodeId src, NodeId dst, uint64_t wire_bytes);

  sim::Simulator* sim_;
  sim::Network* net_;
  const CostModel* costs_;
  const NetConfig* config_;
  std::vector<std::vector<Link>> links_;
  /// Per-source counter rows (row `n` written only by node n's lane or
  /// the exclusive slice; totals summed on read).
  std::vector<uint64_t> envelopes_sent_;
  std::vector<uint64_t> coalesced_messages_;
  std::vector<uint64_t> transmits_[kNumTrafficClasses];
  std::vector<uint64_t> credit_stalls_;
  /// Per-source, per-class queueing-delay histograms, merged on read.
  std::vector<DelayHistogram> queue_delay_[kNumTrafficClasses];
};

}  // namespace hermes::net

#endif  // HERMES_NET_WIRE_H_
