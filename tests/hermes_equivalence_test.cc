// Property test: the optimized prescient routing (key interning, bucketed
// candidate selection, reusable batch scratch) must be *bit-for-bit*
// equivalent to the straightforward reference implementation of Algorithm 1
// (`HermesConfig::use_reference_routing`). Two routers consume identical
// totally ordered input over their own ownership maps; every batch's
// RoutePlan, the cumulative stats, the fusion-table contents, and the
// ownership overlays must match exactly — across random workloads,
// chunk-migration / provisioning barriers, and every ablation switch.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hermes_router.h"
#include "partition/partition_map.h"

namespace hermes::core {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;
using routing::RoutedTxn;
using routing::RoutePlan;

void ExpectPlansEqual(const RoutePlan& ref, const RoutePlan& opt,
                      uint64_t seed, int batch) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " batch=" << batch);
  EXPECT_EQ(ref.routing_cost_us, opt.routing_cost_us);
  ASSERT_EQ(ref.txns.size(), opt.txns.size());
  for (size_t i = 0; i < ref.txns.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "plan position " << i);
    const RoutedTxn& a = ref.txns[i];
    const RoutedTxn& b = opt.txns[i];
    EXPECT_EQ(a.txn.id, b.txn.id);
    EXPECT_EQ(a.txn.kind, b.txn.kind);
    EXPECT_EQ(a.masters, b.masters);
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    for (size_t k = 0; k < a.accesses.size(); ++k) {
      EXPECT_EQ(a.accesses[k].key, b.accesses[k].key);
      EXPECT_EQ(a.accesses[k].owner, b.accesses[k].owner);
      EXPECT_EQ(a.accesses[k].is_write, b.accesses[k].is_write);
      EXPECT_EQ(a.accesses[k].ship_to_master, b.accesses[k].ship_to_master);
      EXPECT_EQ(a.accesses[k].new_owner, b.accesses[k].new_owner);
    }
    ASSERT_EQ(a.on_commit_returns.size(), b.on_commit_returns.size());
    for (size_t k = 0; k < a.on_commit_returns.size(); ++k) {
      EXPECT_EQ(a.on_commit_returns[k].key, b.on_commit_returns[k].key);
      EXPECT_EQ(a.on_commit_returns[k].from, b.on_commit_returns[k].from);
      EXPECT_EQ(a.on_commit_returns[k].to, b.on_commit_returns[k].to);
    }
  }
}

void ExpectStatsEqual(const HermesRouter::Stats& a,
                      const HermesRouter::Stats& b) {
  EXPECT_EQ(a.routed_txns, b.routed_txns);
  EXPECT_EQ(a.remote_reads, b.remote_reads);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.reorders, b.reorders);
}

std::vector<std::pair<Key, NodeId>> SortedOverlay(const OwnershipMap& map) {
  std::vector<std::pair<Key, NodeId>> out(map.key_overlay().begin(),
                                          map.key_overlay().end());
  std::sort(out.begin(), out.end());
  return out;
}

/// One seeded random workload: several batches of skew-heavy regular
/// transactions, optionally interleaved with chunk-migration and
/// add/remove-node barriers (which reset reorder segments and mutate the
/// active node set mid-sequence).
std::vector<Batch> MakeWorkload(uint64_t seed, int num_nodes,
                                uint64_t records, bool with_barriers) {
  Rng rng(seed);
  std::vector<Batch> batches;
  TxnId next_id = 1;
  const uint64_t hot_keys = 4 + rng.NextBounded(12);  // contention knob
  const int num_batches = 5;
  for (int b = 0; b < num_batches; ++b) {
    Batch batch;
    batch.id = static_cast<BatchId>(b);
    const int txn_count = 30 + static_cast<int>(rng.NextBounded(40));
    for (int t = 0; t < txn_count; ++t) {
      TxnRequest txn;
      txn.id = next_id++;
      const int reads = 1 + static_cast<int>(rng.NextBounded(5));
      for (int r = 0; r < reads; ++r) {
        // Half the reads hammer the hot set so data fusion keeps
        // rescoring; duplicates exercise the sort/dedup path.
        const Key k = rng.NextBounded(2) == 0 ? rng.NextBounded(hot_keys)
                                              : rng.NextBounded(records);
        txn.read_set.push_back(k);
      }
      const int writes = static_cast<int>(rng.NextBounded(3));
      for (int w = 0; w < writes; ++w) {
        txn.write_set.push_back(rng.NextBounded(2) == 0
                                    ? txn.read_set[rng.NextBounded(
                                          txn.read_set.size())]
                                    : rng.NextBounded(hot_keys));
      }
      // Some write-only (blind write) transactions.
      if (txn.write_set.empty() && rng.NextBounded(4) == 0) {
        txn.write_set.push_back(rng.NextBounded(records));
      }
      batch.txns.push_back(std::move(txn));
    }
    if (with_barriers) {
      // A chunk migration mid-batch acts as a reorder barrier.
      if (b == 1) {
        TxnRequest chunk;
        chunk.id = next_id++;
        chunk.kind = TxnKind::kChunkMigration;
        chunk.migration_target =
            static_cast<NodeId>(rng.NextBounded(num_nodes));
        const Key lo = rng.NextBounded(records / 2);
        for (Key k = lo; k < lo + 20; ++k) chunk.write_set.push_back(k);
        batch.txns.insert(batch.txns.begin() + batch.txns.size() / 2,
                          std::move(chunk));
      }
      // Scale out, then back in, with the ranges returned to node 0.
      if (b == 2) {
        TxnRequest add;
        add.id = next_id++;
        add.kind = TxnKind::kAddNode;
        add.migration_target = static_cast<NodeId>(num_nodes);
        batch.txns.insert(batch.txns.begin() + 3, std::move(add));
      }
      if (b == 4) {
        TxnRequest rm;
        rm.id = next_id++;
        rm.kind = TxnKind::kRemoveNode;
        rm.migration_target = static_cast<NodeId>(num_nodes);
        rm.range_moves = {{0, records, 0}};
        batch.txns.insert(batch.txns.begin() + batch.txns.size() / 3,
                          std::move(rm));
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Runs the same workload through a reference-routing router and an
/// optimized one and asserts identical observable behaviour after every
/// batch.
void CheckEquivalence(uint64_t seed, const HermesConfig& base_config,
                      bool with_barriers) {
  Rng knobs(Mix64(seed));
  const int num_nodes = 3 + static_cast<int>(knobs.NextBounded(4));
  const uint64_t records = 200 + knobs.NextBounded(800);

  HermesConfig config = base_config;
  CostModel costs;

  OwnershipMap ownership_ref(
      std::make_unique<RangePartitionMap>(records, num_nodes));
  OwnershipMap ownership_opt(
      std::make_unique<RangePartitionMap>(records, num_nodes));

  HermesConfig ref_config = config;
  ref_config.use_reference_routing = true;
  HermesConfig opt_config = config;
  opt_config.use_reference_routing = false;

  HermesRouter ref(&ownership_ref, &costs, num_nodes, ref_config);
  HermesRouter opt(&ownership_opt, &costs, num_nodes, opt_config);

  const std::vector<Batch> workload =
      MakeWorkload(seed, num_nodes, records, with_barriers);
  for (size_t b = 0; b < workload.size(); ++b) {
    const RoutePlan plan_ref = ref.RouteBatch(workload[b]);
    const RoutePlan plan_opt = opt.RouteBatch(workload[b]);
    ExpectPlansEqual(plan_ref, plan_opt, seed, static_cast<int>(b));
    ExpectStatsEqual(ref.stats(), opt.stats());
    EXPECT_EQ(ref.fusion_table().Checksum(), opt.fusion_table().Checksum());
    EXPECT_EQ(ref.fusion_table().ExportOrder(),
              opt.fusion_table().ExportOrder());
    EXPECT_EQ(SortedOverlay(ownership_ref), SortedOverlay(ownership_opt));
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }
}

TEST(HermesEquivalenceTest, RandomWorkloads) {
  HermesConfig config;
  config.fusion_table_capacity = 32;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    CheckEquivalence(seed, config, /*with_barriers=*/false);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, RandomWorkloadsWithBarriers) {
  HermesConfig config;
  config.fusion_table_capacity = 32;
  for (uint64_t seed = 100; seed < 120; ++seed) {
    CheckEquivalence(seed, config, /*with_barriers=*/true);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, ReorderAblated) {
  HermesConfig config;
  config.enable_reorder = false;
  for (uint64_t seed = 200; seed < 220; ++seed) {
    CheckEquivalence(seed, config, seed % 2 == 0);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, RebalanceAblated) {
  HermesConfig config;
  config.enable_rebalance = false;
  for (uint64_t seed = 300; seed < 320; ++seed) {
    CheckEquivalence(seed, config, seed % 2 == 0);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, ForwardPass) {
  HermesConfig config;
  config.backward_pass = false;
  for (uint64_t seed = 400; seed < 420; ++seed) {
    CheckEquivalence(seed, config, seed % 2 == 0);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, TightCapacityFifoEviction) {
  HermesConfig config;
  config.fusion_table_capacity = 4;
  config.eviction_policy = EvictionPolicy::kFifo;
  config.alpha = 0.5;
  for (uint64_t seed = 500; seed < 520; ++seed) {
    CheckEquivalence(seed, config, seed % 2 == 0);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(HermesEquivalenceTest, UnboundedTableLooseAlpha) {
  HermesConfig config;
  config.fusion_table_capacity = 0;
  config.alpha = 8.0;
  for (uint64_t seed = 600; seed < 620; ++seed) {
    CheckEquivalence(seed, config, seed % 2 == 0);
    if (::testing::Test::HasFailure()) break;
  }
}

// The optimized router is a pure function of (config, input): two
// instances fed the same batches stay identical — the property the
// replicated-scheduler design leans on (CLAUDE.md "Determinism").
TEST(HermesEquivalenceTest, OptimizedRouterIsDeterministic) {
  HermesConfig config;
  config.fusion_table_capacity = 16;
  CostModel costs;
  auto run = [&](uint64_t) {
    OwnershipMap ownership(std::make_unique<RangePartitionMap>(500, 4));
    HermesRouter router(&ownership, &costs, 4, config);
    uint64_t digest = 0;
    for (const Batch& batch : MakeWorkload(7, 4, 500, true)) {
      const RoutePlan plan = router.RouteBatch(batch);
      for (const RoutedTxn& rt : plan.txns) {
        digest = Mix64(digest ^ rt.txn.id);
        for (NodeId m : rt.masters) digest = Mix64(digest ^ Mix64(m + 1));
        for (const auto& acc : rt.accesses) {
          digest = Mix64(digest ^ acc.key ^ Mix64(acc.owner + 2) ^
                         Mix64(acc.new_owner + 3) ^
                         (acc.is_write ? 5u : 11u));
        }
      }
    }
    return digest ^ router.fusion_table().Checksum();
  };
  EXPECT_EQ(run(0), run(1));
}

}  // namespace
}  // namespace hermes::core
