// detlint-fixture: path=src/core/random_device_neg.cc
hermes::Rng rng(config_seed);
// std::random_device belongs in comments only
