// detlint-fixture: path=src/net/lane_confinement_net_pos.cc
// detlint:requires(exclusive)
void ReturnCredit(int src, int dst, unsigned long wire_bytes);

// detlint:requires(exclusive)
void OnLinkCut(int src, int dst);

void OnWireDelivery(int src, int dst, unsigned long wire_bytes) {
  // Credit return from a lane-side delivery callback without riding the
  // barrier: touches the source row while its lane may be running.
  ReturnCredit(src, dst, wire_bytes);
}

void CutWithoutExclusive(int src, int dst) {
  OnLinkCut(src, dst);
}
