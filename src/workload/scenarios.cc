#include "workload/scenarios.h"

namespace hermes::workload {

YcsbConfig ReadHeavySkewedYcsb(uint64_t num_records, int num_partitions,
                               double write_fraction, uint64_t seed) {
  YcsbConfig config;
  config.num_records = num_records;
  config.num_partitions = num_partitions;
  // Nearly every transaction reaches into the global hot set from its own
  // partition, so hot-set reads arrive from all over the cluster.
  config.distributed_ratio = 0.9;
  config.rw_ratio = write_fraction;
  // Mild local skew, extreme global skew: a handful of keys absorb most
  // distributed accesses.
  config.zipf_theta = 0.6;
  config.global_zipf_theta = 0.99;
  // Four records per transaction: distributed transactions split 2 local
  // + 2 global, so a read-mostly transaction has two hot-set reads a
  // lease can localize.
  config.length_mean = 4.0;
  // A hotspot cycle far longer than any bench horizon: the hot set stays
  // put, which is when leases pay off (a fast-moving hotspot churns
  // grants instead).
  config.hotspot_cycle_us = 86'400ULL * 1'000'000ULL;
  config.seed = seed;
  return config;
}

}  // namespace hermes::workload
