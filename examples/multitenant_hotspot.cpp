// Example: a multi-tenant SaaS database whose hot tenant changes as users
// around the world wake up (§5.3.2 scenario). Shows how to build a
// cluster, attach a Clay look-back planner to a baseline for comparison,
// and read the per-window metrics as the hot spot rotates.
//
//   ./build/examples/example_multitenant_hotspot

#include <cstdio>
#include <memory>

#include "engine/cluster.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

constexpr SimTime kRotation = SecToSim(10);
constexpr SimTime kHorizon = SecToSim(40);

void Run(RouterKind kind, bool with_clay, const char* label) {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 4;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 25'000;
  mt.rotation_us = kRotation;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = gen.num_records() / 40;
  Cluster cluster(config, kind, gen.PerfectPartitioning());
  cluster.Load();
  if (with_clay) {
    hermes::routing::ClayConfig clay;
    clay.monitor_window_us = SecToSim(3);
    clay.range_size = mt.records_per_tenant / 5;
    cluster.EnableClay(clay);
  }

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 800, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();
  cluster.RunUntil(kHorizon);
  cluster.Drain();

  std::printf("%-12s", label);
  const auto& windows = cluster.metrics().windows();
  for (size_t w = 0; w < kHorizon / SecToSim(1) && w < windows.size();
       w += 5) {
    // Print every 5th one-second window.
    std::printf(" %6llu",
                static_cast<unsigned long long>(windows[w].commits));
  }
  std::printf("   total=%llu\n", static_cast<unsigned long long>(
                                     cluster.metrics().total_commits()));
}

}  // namespace

int main() {
  std::printf("Multi-tenant workload: 16 tenants on 4 nodes, 90%% of load "
              "on one node's tenants, hot node rotates every 10 s\n");
  std::printf("(throughput samples, txn/s at t=0,5,10,...)\n\n");
  Run(RouterKind::kCalvin, false, "calvin");
  Run(RouterKind::kCalvin, true, "clay");
  Run(RouterKind::kLeap, false, "leap");
  Run(RouterKind::kHermes, false, "hermes");
  std::printf("\nHermes re-balances within batches, so its samples stay "
              "high across every rotation.\n");
  return 0;
}
