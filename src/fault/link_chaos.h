#ifndef HERMES_FAULT_LINK_CHAOS_H_
#define HERMES_FAULT_LINK_CHAOS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "sim/network.h"

namespace hermes::fault {

/// Seeded per-message chaos source. Install()ed into a sim::Network, it is
/// consulted once per inter-node Send in deterministic Send order, so the
/// full perturbation history is a pure function of (config, seed) — rerun
/// the same workload with the same plan and every drop, duplicate and
/// jitter draw recurs at the same point in the message stream.
class LinkChaos {
 public:
  LinkChaos(const LinkChaosConfig& config, uint64_t seed);

  /// Draws the perturbation for one message (advances the Rng).
  sim::Perturbation Draw(NodeId src, NodeId dst, uint64_t bytes, SimTime now);

  /// Hooks this chaos source into `net`. The network keeps a copy of the
  /// std::function, but the state lives here — the LinkChaos must outlive
  /// the hook (the FaultInjector owns both).
  void Install(sim::Network* net);

  uint64_t draws() const { return draws_; }

 private:
  LinkChaosConfig config_;
  Rng rng_;
  uint64_t draws_ = 0;
};

}  // namespace hermes::fault

#endif  // HERMES_FAULT_LINK_CHAOS_H_
