#ifndef HERMES_MIGRATION_PROVISIONING_H_
#define HERMES_MIGRATION_PROVISIONING_H_

#include <vector>

#include "common/types.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"

namespace hermes::migration {

/// Cold-migration plan builders for dynamic machine provisioning (§3.3).

/// Scale-out: move the key range [lo, hi] onto `new_node` (e.g. Fig. 14
/// moves the hot tenant's range to the added node).
std::vector<RangeMove> PlanScaleOut(Key lo, Key hi, NodeId new_node);

/// Consolidation: every maximal key range currently homed on `leaving` is
/// reassigned round-robin across `remaining` nodes. Scans the key space
/// through the ownership view's Home() (per-key fusion placements are
/// handled separately by the marker transaction).
std::vector<RangeMove> PlanDrainNode(const partition::OwnershipMap& ownership,
                                     uint64_t num_records, NodeId leaving,
                                     const std::vector<NodeId>& remaining);

}  // namespace hermes::migration

#endif  // HERMES_MIGRATION_PROVISIONING_H_
