#ifndef HERMES_SIM_THREAD_POOL_H_
#define HERMES_SIM_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hermes::sim {

/// A fixed pool of OS worker threads for the simulator's lane slices.
/// RunBatch(count, job) runs job(0..count-1) across the workers and
/// returns once all calls finished; jobs within one batch must touch
/// disjoint state (the simulator guarantees this by lane partitioning).
///
/// This is the only place in the codebase that spawns threads: everything
/// above src/sim/ stays thread-oblivious (enforced by detlint's
/// raw-thread rule), which is what makes the parallel schedule's
/// determinism an invariant rather than an aspiration.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs `job(i)` for every i in [0, count) on the worker threads and
  /// blocks until all complete. Not reentrant.
  void RunBatch(int count, const std::function<void(int)>& job);

 private:
  void WorkerMain();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int count_ = 0;
  int next_ = 0;
  int done_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_THREAD_POOL_H_
