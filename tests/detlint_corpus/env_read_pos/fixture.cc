// detlint-fixture: path=src/engine/env_read_pos.cc
const char* Salt() { return std::getenv("HERMES_HASH_SALT"); }
