#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes::bench {

const workload::SyntheticGoogleTrace& SharedTrace(int num_machines,
                                                  SimTime window_us,
                                                  int windows) {
  struct Key {
    int machines;
    SimTime window;
    int windows;
    bool operator<(const Key& o) const {
      return std::tie(machines, window, windows) <
             std::tie(o.machines, o.window, o.windows);
    }
  };
  static std::map<Key, std::unique_ptr<workload::SyntheticGoogleTrace>>*
      traces = new std::map<Key, std::unique_ptr<workload::SyntheticGoogleTrace>>();
  const Key key{num_machines, window_us, windows};
  auto it = traces->find(key);
  if (it == traces->end()) {
    workload::GoogleTraceConfig config;
    config.num_machines = num_machines;
    config.window_us = window_us;
    config.num_windows = windows;
    it = traces
             ->emplace(key, std::make_unique<workload::SyntheticGoogleTrace>(
                                config))
             .first;
  }
  return *it->second;
}

int ParseThreadsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      return std::max(0, std::atoi(arg.c_str() + prefix.size()));
    }
  }
  return 0;
}

RunResult RunGoogleWorkload(engine::RouterKind kind, GoogleRunParams params) {
  ClusterConfig config;
  config.num_nodes = params.num_nodes;
  config.num_records = params.num_records;
  config.workers_per_node = params.workers_per_node;
  config.max_batch_size = params.max_batch;
  if (params.epoch_us > 0) config.epoch_us = params.epoch_us;
  config.seed = params.seed;
  config.sim.threads = params.sim_threads;
  config.hermes.fusion_table_capacity = static_cast<size_t>(
      params.fusion_capacity_frac * static_cast<double>(params.num_records));

  if (params.tweak) params.tweak(config);
  std::unique_ptr<partition::PartitionMap> initial = std::move(params.initial);
  if (initial == nullptr) {
    initial = std::make_unique<partition::RangePartitionMap>(
        params.num_records, params.num_nodes);
  }
  engine::Cluster cluster(config, kind, std::move(initial));
  cluster.Load();
  if (params.enable_clay) {
    routing::ClayConfig clay;
    clay.monitor_window_us = params.window_us;
    clay.range_size = std::max<uint64_t>(params.num_records / 200, 1);
    cluster.EnableClay(clay);
  }

  const auto& trace =
      SharedTrace(params.num_nodes, params.window_us, params.windows);
  workload::YcsbConfig wl;
  wl.num_records = params.num_records;
  wl.num_partitions = params.num_nodes;
  wl.distributed_ratio = params.distributed_ratio;
  wl.length_mean = params.length_mean;
  wl.length_stddev = params.length_stddev;
  wl.hotspot_cycle_us = params.windows * params.window_us;
  wl.seed = params.seed;
  workload::YcsbWorkload gen(wl, &trace);

  workload::ClosedLoopDriver driver(
      &cluster, params.clients,
      [&gen](int, SimTime now) { return gen.Next(now); });
  const SimTime horizon = params.windows * params.window_us;
  driver.set_stop_time(horizon);
  driver.Start();
  cluster.RunUntil(horizon);
  cluster.Drain();

  RunResult result;
  const auto& m = cluster.metrics();
  const size_t metric_windows_per_trace_window =
      std::max<size_t>(params.window_us / m.window_us(), 1);
  result.throughput.assign(params.windows, 0.0);
  result.cpu.assign(params.windows, 0.0);
  result.net_per_txn.assign(params.windows, 0.0);
  result.net_recv_per_txn.assign(params.windows, 0.0);
  result.net_fg_per_txn.assign(params.windows, 0.0);
  result.net_bulk_per_txn.assign(params.windows, 0.0);
  const int total_workers = params.num_nodes * params.workers_per_node;
  for (int w = 0; w < params.windows; ++w) {
    double commits = 0, busy = 0, bytes = 0, recv = 0, fg = 0, bulk = 0;
    for (size_t i = 0; i < metric_windows_per_trace_window; ++i) {
      const size_t mw = w * metric_windows_per_trace_window + i;
      if (mw >= m.windows().size()) break;
      commits += static_cast<double>(m.windows()[mw].commits);
      busy += static_cast<double>(m.windows()[mw].busy_us);
      bytes += static_cast<double>(m.windows()[mw].net_bytes);
      recv += static_cast<double>(m.windows()[mw].net_bytes_received);
      fg += static_cast<double>(m.windows()[mw].net_fg_bytes);
      bulk += static_cast<double>(m.windows()[mw].net_bulk_bytes);
    }
    result.throughput[w] = commits;
    result.cpu[w] =
        busy / (static_cast<double>(params.window_us) * total_workers);
    result.net_per_txn[w] = commits > 0 ? bytes / commits : 0.0;
    result.net_recv_per_txn[w] = commits > 0 ? recv / commits : 0.0;
    result.net_fg_per_txn[w] = commits > 0 ? fg / commits : 0.0;
    result.net_bulk_per_txn[w] = commits > 0 ? bulk / commits : 0.0;
  }
  const net::Wire& wire = cluster.wire();
  result.wire_fg_delay_p50_us =
      wire.MergedQueueDelay(TrafficClass::kForeground).Percentile(0.50);
  result.wire_fg_delay_p99_us =
      wire.MergedQueueDelay(TrafficClass::kForeground).Percentile(0.99);
  result.wire_bulk_delay_p99_us =
      wire.MergedQueueDelay(TrafficClass::kBulk).Percentile(0.99);
  result.wire_envelopes = wire.envelopes_sent();
  result.wire_coalesced = wire.coalesced_messages();
  result.wire_credit_stalls = wire.credit_stalls();
  result.avg_latency = m.AverageLatency();
  result.latency_p50_us = m.latency_histogram().Percentile(0.50);
  result.latency_p99_us = m.latency_histogram().Percentile(0.99);
  result.mean_throughput =
      m.Throughput(params.window_us, horizon);
  return result;
}

void PrintSeriesTable(const std::string& title,
                      const std::vector<std::string>& systems,
                      const std::vector<std::vector<double>>& columns,
                      double window_seconds, const std::string& unit) {
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("window_end_s");
  for (const auto& s : systems) std::printf(",%s", s.c_str());
  std::printf("\n");
  size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (size_t r = 0; r < rows; ++r) {
    std::printf("%.0f", (r + 1) * window_seconds);
    for (const auto& c : columns) {
      std::printf(",%.2f", r < c.size() ? c[r] : 0.0);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

double MeanOf(const std::vector<double>& series, size_t from, size_t to) {
  if (to > series.size()) to = series.size();
  if (from >= to) return 0.0;
  double sum = 0;
  for (size_t i = from; i < to; ++i) sum += series[i];
  return sum / static_cast<double>(to - from);
}

std::string KindName(engine::RouterKind kind) {
  switch (kind) {
    case engine::RouterKind::kCalvin:
      return "calvin";
    case engine::RouterKind::kGStore:
      return "gstore";
    case engine::RouterKind::kLeap:
      return "leap";
    case engine::RouterKind::kTPart:
      return "tpart";
    case engine::RouterKind::kHermes:
      return "hermes";
  }
  return "unknown";
}

}  // namespace hermes::bench
