// detlint-fixture: path=src/core/suppression_unused.cc
// detlint:allow(std-rand) generator call was removed long ago
int Roll() { return 4; }
