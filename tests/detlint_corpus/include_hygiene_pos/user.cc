// detlint-fixture: path=src/engine/ih_user.cc
#include <ctime>
#include "sim/lane_guts.h"
