#ifndef HERMES_WORKLOAD_TPCC_H_
#define HERMES_WORKLOAD_TPCC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "partition/partition_map.h"
#include "txn/transaction.h"

namespace hermes::workload {

/// TPC-C-derived workload (§5.3.1): New-Order and Payment only (they form
/// 88% of the standard mix and its main characteristics). The relational
/// schema is flattened into the key space warehouse-block by warehouse-
/// block; the read-only ITEM table is treated as replicated on every node
/// (standard practice for partitioned TPC-C) and therefore never appears
/// in read-sets.
///
/// Key layout inside warehouse w's block (block size = BlockSize()):
///   +0                          warehouse row
///   +1 .. +10                   district rows
///   +11 .. +11+10*C-1           customer rows (C per district)
///   +.. stock                   stock rows (one per item)
///   +.. order slots             pre-allocated order/order-line slots,
///                               written blindly by New-Order round-robin
struct TpccConfig {
  int num_warehouses = 40;
  int num_nodes = 20;
  int items = 1000;                ///< stock rows per warehouse
  int customers_per_district = 300;
  int order_slots_per_warehouse = 12'000;
  /// Fraction of New-Order lines supplied by a remote warehouse (TPC-C
  /// spec: 1%) and of Payment customers living at a remote warehouse
  /// (spec: 15%).
  double remote_stock_ratio = 0.01;
  double remote_customer_ratio = 0.15;
  /// Fraction of requests aimed at the warehouses of node 0 (the paper's
  /// hot-spot concentration: 0 = Normal, then 50% / 80% / 90%).
  double hotspot_concentration = 0.0;
  /// New-Order share of the mix (the rest are Payments). The standard
  /// 10:10 card deck is ~52% New-Order among the two.
  double new_order_ratio = 0.52;
  uint64_t seed = 3;
};

class TpccWorkload {
 public:
  explicit TpccWorkload(const TpccConfig& config);

  TpccWorkload(const TpccWorkload&) = delete;
  TpccWorkload& operator=(const TpccWorkload&) = delete;

  TxnRequest Next(SimTime now);

  uint64_t num_records() const { return num_records_; }
  uint64_t BlockSize() const { return block_size_; }

  /// Warehouse-aligned range partitioning (the paper's "already well
  /// partitioned" baseline placement).
  std::unique_ptr<partition::PartitionMap> WarehousePartitioning() const;

  // Key helpers (exposed for tests).
  Key WarehouseKey(int w) const;
  Key DistrictKey(int w, int d) const;
  Key CustomerKey(int w, int d, int c) const;
  Key StockKey(int w, int item) const;
  Key OrderSlotKey(int w, uint64_t slot) const;

 private:
  int PickHomeWarehouse();
  TxnRequest NewOrder(int w);
  TxnRequest Payment(int w);

  TpccConfig config_;
  Rng rng_;
  uint64_t block_size_;
  uint64_t num_records_;
  /// Next order slot per warehouse (wraps; slots are pre-allocated).
  std::vector<uint64_t> next_slot_;
};

/// Tag values stored in TxnRequest::tag.
inline constexpr int32_t kTpccNewOrderTag = 1;
inline constexpr int32_t kTpccPaymentTag = 2;

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_TPCC_H_
