#ifndef HERMES_MIGRATION_SQUALL_H_
#define HERMES_MIGRATION_SQUALL_H_

#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "routing/clay_planner.h"
#include "txn/transaction.h"

namespace hermes::migration {

/// Squall-style migration execution (Elmore et al., SIGMOD'15; paper
/// §3.3, §5.4): a coarse migration plan is broken into fixed-size chunks,
/// each moved by a dedicated chunk-migration transaction that is totally
/// ordered with normal traffic. The chunk transaction exclusive-locks the
/// chunk at its source, which is precisely the interference with normal
/// transactions the paper measures in Fig. 14; under Hermes the router
/// skips fusion-table (hot) keys, so chunks only ever carry cold records.
///
/// Splits `moves` into chunk transactions of at most `chunk_records` keys.
/// With a tracer, emits one kChunkMigration event per chunk built (node =
/// destination, key = chunk's low key, arg = chunk size) — observation
/// only, the chunking is identical with or without it.
std::vector<TxnRequest> BuildChunkTransactions(
    const std::vector<routing::ClumpMove>& moves, uint64_t chunk_records,
    obs::Tracer* tracer = nullptr);

}  // namespace hermes::migration

#endif  // HERMES_MIGRATION_SQUALL_H_
