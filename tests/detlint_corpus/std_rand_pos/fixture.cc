// detlint-fixture: path=src/core/std_rand_pos.cc
int Roll() { return std::rand() % 6; }
void Seed() { srand(42); }
