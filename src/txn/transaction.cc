#include "txn/transaction.h"

namespace hermes {

LatencyBreakdown& LatencyBreakdown::operator+=(const LatencyBreakdown& o) {
  scheduling_us += o.scheduling_us;
  lock_wait_us += o.lock_wait_us;
  remote_wait_us += o.remote_wait_us;
  storage_us += o.storage_us;
  other_us += o.other_us;
  total_us += o.total_us;
  return *this;
}

}  // namespace hermes
