#include "sim/worker_pool.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(WorkerPoolTest, ParallelismUpToWorkerCount) {
  Simulator sim;
  WorkerPool pool(&sim, 2);
  std::vector<SimTime> ends;
  for (int i = 0; i < 2; ++i) {
    pool.Submit(100, [&] { ends.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 100u);
  EXPECT_EQ(ends[1], 100u);  // both ran in parallel
}

TEST(WorkerPoolTest, ExcessJobsQueueBehindEarliestFinisher) {
  Simulator sim;
  WorkerPool pool(&sim, 2);
  std::vector<SimTime> ends;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(100, [&] { ends.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(ends.size(), 4u);
  EXPECT_EQ(ends[2], 200u);
  EXPECT_EQ(ends[3], 200u);
}

TEST(WorkerPoolTest, SubmitReturnsStartTime) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  EXPECT_EQ(pool.Submit(50, [] {}), 0u);
  EXPECT_EQ(pool.Submit(50, [] {}), 50u);  // queued behind the first
}

TEST(WorkerPoolTest, TracksBusyTime) {
  Simulator sim;
  WorkerPool pool(&sim, 4);
  pool.Submit(100, [] {});
  pool.Submit(250, [] {});
  sim.RunAll();
  EXPECT_EQ(pool.busy_us(), 350u);
  EXPECT_EQ(pool.TakeBusyDelta(), 350u);
  EXPECT_EQ(pool.TakeBusyDelta(), 0u);
  pool.Submit(10, [] {});
  sim.RunAll();
  EXPECT_EQ(pool.TakeBusyDelta(), 10u);
}

TEST(WorkerPoolTest, ZeroDurationJobRunsAtNow) {
  Simulator sim;
  WorkerPool pool(&sim, 1);
  bool ran = false;
  pool.Submit(0, [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 0u);
}

}  // namespace
}  // namespace hermes::sim
