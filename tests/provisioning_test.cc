#include "migration/provisioning.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::migration {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TEST(ProvisioningTest, ScaleOutPlanIsSingleMove) {
  const auto plan = PlanScaleOut(100, 199, 4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].lo, 100u);
  EXPECT_EQ(plan[0].hi, 199u);
  EXPECT_EQ(plan[0].target, 4);
}

TEST(ProvisioningTest, DrainNodeCoversItsRange) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  const auto plan = PlanDrainNode(map, 100, /*leaving=*/1, {0, 2, 3});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].lo, 25u);
  EXPECT_EQ(plan[0].hi, 49u);
  EXPECT_EQ(plan[0].target, 0);
}

TEST(ProvisioningTest, DrainHandlesFragmentedOwnership) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  // Node 1 additionally owns [70,79] via a previous cold migration.
  map.SetRangeOwner(70, 79, 1);
  const auto plan = PlanDrainNode(map, 100, 1, {0, 2});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].lo, 25u);
  EXPECT_EQ(plan[0].hi, 49u);
  EXPECT_EQ(plan[0].target, 0);
  EXPECT_EQ(plan[1].lo, 70u);
  EXPECT_EQ(plan[1].hi, 79u);
  EXPECT_EQ(plan[1].target, 2);  // round-robin over remaining
}

TEST(ProvisioningTest, DrainLastRangeReachesEnd) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  const auto plan = PlanDrainNode(map, 100, 3, {0});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].hi, 99u);
}

TEST(ProvisioningTest, DrainNodeWithNothingReturnsEmpty) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  const auto plan = PlanDrainNode(map, 100, /*leaving=*/7, {0, 1});
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace hermes::migration
