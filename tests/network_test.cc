#include "sim/network.h"

#include <gtest/gtest.h>

#include "common/config.h"
#include "sim/simulator.h"

namespace hermes::sim {
namespace {

TEST(NetworkTest, DeliversAfterLatencyPlusWireTime) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.001;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);

  SimTime delivered = 0;
  net.Send(0, 1, 10'000, [&] { delivered = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(delivered, 100u + 10u);  // 10k bytes * 1ns
}

TEST(NetworkTest, SelfSendIsFreeButAsynchronous) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  bool delivered = false;
  net.Send(1, 1, 5'000, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // must not run synchronously
  sim.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_EQ(sim.Now(), 0u);
}

TEST(NetworkTest, CountsBytesWithOverheadPerSender) {
  Simulator sim;
  CostModel costs;
  costs.message_overhead_bytes = 64;
  Network net(&sim, &costs, 3);
  net.Send(0, 1, 1000, [] {});
  net.Send(0, 2, 1000, [] {});
  net.Send(2, 1, 500, [] {});
  sim.RunAll();
  EXPECT_EQ(net.bytes_sent(0), 2 * 1064u);
  EXPECT_EQ(net.bytes_sent(2), 564u);
  EXPECT_EQ(net.total_bytes(), 2 * 1064u + 564u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(NetworkTest, EnsureCapacityGrowsCounters) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.EnsureCapacity(5);
  net.Send(4, 0, 100, [] {});
  sim.RunAll();
  EXPECT_GT(net.bytes_sent(4), 0u);
}

}  // namespace
}  // namespace hermes::sim
