#ifndef HERMES_ENGINE_NODE_H_
#define HERMES_ENGINE_NODE_H_

#include <memory>

#include "common/types.h"
#include "sim/simulator.h"
#include "sim/worker_pool.h"
#include "storage/lock_manager.h"
#include "storage/record_store.h"
#include "storage/undo_log.h"

namespace hermes::engine {

/// One simulated server node: its data partition, lock table, undo log,
/// and executor workers. All engine data structures are real; only time
/// (worker occupancy, wire delays) is simulated.
class Node {
 public:
  Node(NodeId id, sim::Simulator* sim, int num_workers);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  storage::RecordStore& store() { return store_; }
  const storage::RecordStore& store() const { return store_; }
  storage::LockManager& locks() { return locks_; }
  storage::UndoLog& undo() { return undo_; }
  sim::WorkerPool& workers() { return workers_; }

 private:
  NodeId id_;
  storage::RecordStore store_;
  storage::LockManager locks_;
  storage::UndoLog undo_;
  sim::WorkerPool workers_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_NODE_H_
