#include "storage/undo_log.h"

namespace hermes::storage {

void UndoLog::RecordPreImage(TxnId txn, Key key, const Record& pre_image) {
  entries_[txn].push_back(Entry{key, pre_image});
}

void UndoLog::Abort(TxnId txn, RecordStore* store) {
  auto it = entries_.find(txn);
  if (it == entries_.end()) return;
  auto& list = it->second;
  for (auto e = list.rbegin(); e != list.rend(); ++e) {
    store->Restore(e->key, e->pre_image);
  }
  entries_.erase(it);
}

void UndoLog::Commit(TxnId txn) { entries_.erase(txn); }

}  // namespace hermes::storage
