// Replica-lease tests (DESIGN.md §5 "Replica leases"): the lease table
// grants deterministic read leases to remote-read-hot keys, the lease
// manager's copies stay coherent with their primaries, a crashed holder
// deterministically lapses every lease, and — the tentpole oracle — all
// three digests plus the replica checksum are bit-identical across hash
// salts and simulator thread counts. Also hosts the Drain() footgun
// regression: draining with a node still down never terminates (the
// watchdog keeps rescheduling), so rejoin first; the stuck state is
// visible in DegradedDebugString().

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/hermes_router.h"
#include "engine/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/scenarios.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultPlanConfig;
using fault::InvariantMonitor;

constexpr uint64_t kRecords = 4'000;
constexpr int kNodes = 4;

ClusterConfig ReplicationConfigFor(int threads) {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.num_records = kRecords;
  config.hermes.fusion_table_capacity = 200;
  config.sim.threads = threads;
  config.replication.enabled = true;
  config.replication.replicas = 3;
  config.replication.read_hot_threshold = 2;
  config.replication.write_revoke_threshold = 32;
  config.replication.max_leases = 256;
  return config;
}

std::unique_ptr<partition::PartitionMap> Map() {
  return std::make_unique<partition::RangePartitionMap>(kRecords, kNodes);
}

InvariantMonitor::MapFactory MapFactory() {
  return [] { return Map(); };
}

const core::HermesRouter& Router(Cluster& cluster) {
  return *static_cast<const core::HermesRouter*>(&cluster.router());
}

void DriveReadHeavy(Cluster& cluster, double write_fraction, SimTime horizon,
                    int clients = 24, uint64_t seed = 11) {
  workload::YcsbConfig wl =
      workload::ReadHeavySkewedYcsb(kRecords, kNodes, write_fraction, seed);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, clients, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(horizon);
  driver.Start();
  cluster.RunUntil(horizon);
  cluster.Drain();
}

// A read-mostly skewed workload earns leases, absorbs remote reads into
// local copies, and quiesces with every copy bit-identical to its primary.
TEST(ReplicaLeaseTest, LeasesGrantAndAbsorbReads) {
  ClusterConfig config = ReplicationConfigFor(/*threads=*/0);
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();
  DriveReadHeavy(cluster, /*write_fraction=*/0.05, MsToSim(600));

  const auto& stats = Router(cluster).stats();
  const auto& lease_stats = Router(cluster).lease_table().stats();
  EXPECT_GT(cluster.metrics().total_commits(), 500u);
  EXPECT_GT(lease_stats.grants, 10u);
  EXPECT_GT(stats.replica_reads, 100u);
  EXPECT_GT(cluster.lease_manager().installs(), 0u);
  EXPECT_GT(cluster.lease_manager().num_copies(), 0u);

  InvariantMonitor monitor(kRecords);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "read-heavy"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "read-heavy"));
  EXPECT_TRUE(monitor.CheckReplicaCoherence(cluster, "read-heavy"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

// The global read-mostly gate: a write-heavy workload grants nothing, so
// the replication-enabled run routes exactly like the disabled one.
TEST(ReplicaLeaseTest, WriteHeavyWorkloadGrantsNothing) {
  ClusterConfig on_config = ReplicationConfigFor(/*threads=*/0);
  Cluster on(on_config, RouterKind::kHermes, Map());
  on.Load();
  DriveReadHeavy(on, /*write_fraction=*/0.6, MsToSim(400));

  EXPECT_EQ(Router(on).lease_table().stats().grants, 0u);
  EXPECT_EQ(Router(on).stats().replica_reads, 0u);
  EXPECT_EQ(on.lease_manager().num_copies(), 0u);

  ClusterConfig off_config = on_config;
  off_config.replication.enabled = false;
  Cluster off(off_config, RouterKind::kHermes, Map());
  off.Load();
  DriveReadHeavy(off, /*write_fraction=*/0.6, MsToSim(400));

  EXPECT_EQ(on.decision_digest().value(), off.decision_digest().value());
  EXPECT_EQ(on.placement_digest().value(), off.placement_digest().value());
  EXPECT_EQ(on.StateChecksum(), off.StateChecksum());
}

// Satellite: the replica-coherence monitor. A clean quiesced run reports
// nothing; a deliberately corrupted copy is caught and named.
TEST(ReplicaLeaseTest, CoherenceMonitorCatchesCorruptedCopy) {
  ClusterConfig config = ReplicationConfigFor(/*threads=*/0);
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();
  DriveReadHeavy(cluster, /*write_fraction=*/0.05, MsToSim(400));

  const auto copies = cluster.lease_manager().SnapshotCopies();
  ASSERT_FALSE(copies.empty());

  InvariantMonitor clean(kRecords);
  EXPECT_TRUE(clean.CheckReplicaCoherence(cluster, "pre-corruption"));
  EXPECT_TRUE(clean.ok()) << clean.FailureReport();

  const auto& [node, key, record] = copies.front();
  (void)record;
  cluster.lease_manager().CorruptCopyForTest(node, key);

  InvariantMonitor corrupted(kRecords);
  EXPECT_FALSE(corrupted.CheckReplicaCoherence(cluster, "post-corruption"));
  ASSERT_FALSE(corrupted.failures().empty());
  EXPECT_NE(corrupted.failures().front().find("replica coherence"),
            std::string::npos)
      << corrupted.FailureReport();
}

// A crashed holder deterministically lapses every lease: engine copies
// clear at the crash itself, the router's table lapses at the next batch
// boundary (membership epoch moved), and no new lease starts while the
// node is down. After rejoin the table re-grants and the run quiesces
// coherent.
TEST(ReplicaLeaseTest, CrashedHolderLapsesLeases) {
  ClusterConfig config = ReplicationConfigFor(/*threads=*/0);
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();

  workload::YcsbConfig wl =
      workload::ReadHeavySkewedYcsb(kRecords, kNodes, 0.05, /*seed=*/13);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 24, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(500));
  driver.Start();

  cluster.RunUntil(MsToSim(200));
  ASSERT_GT(Router(cluster).lease_table().num_leases(), 0u);
  ASSERT_GT(cluster.lease_manager().num_copies(), 0u);

  cluster.CrashNoStall(2);
  EXPECT_EQ(cluster.lease_manager().num_copies(), 0u);
  EXPECT_GT(cluster.lease_manager().lapses(), 0u);

  cluster.RunUntil(MsToSim(260));
  // The epoch moved: the router lapsed its whole table and grants stay
  // suppressed while a node is down.
  EXPECT_GT(Router(cluster).lease_table().stats().lapses, 0u);
  EXPECT_EQ(Router(cluster).lease_table().num_leases(), 0u);

  cluster.RejoinNoStall(2);
  cluster.RunUntil(MsToSim(500));
  cluster.Drain();

  InvariantMonitor monitor(kRecords);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "post-rejoin"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "post-rejoin"));
  EXPECT_TRUE(monitor.CheckReplicaCoherence(cluster, "post-rejoin"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

// Chaos with replication enabled: link chaos plus a stalling crash/rejoin
// cycle must leave routing (and thus leasing) chaos-invariant — the
// placement digest equals a fault-free command-log replay, and the
// quiesced copies match their primaries.
TEST(ReplicaLeaseTest, ChaosPlanStaysCoherentAndReplayable) {
  ClusterConfig config = ReplicationConfigFor(/*threads=*/0);
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();

  FaultPlanConfig pc;
  pc.horizon_us = MsToSim(400);
  pc.num_nodes = kNodes;
  pc.crash_cycles = 1;
  pc.min_outage_us = MsToSim(20);
  pc.max_outage_us = MsToSim(60);
  pc.link.drop_prob = 0.05;
  pc.link.duplicate_prob = 0.03;
  pc.link.max_jitter_us = 300;
  const FaultPlan plan = FaultPlan::Generate(pc, 29);
  FaultInjector injector(&cluster, plan, MapFactory());

  workload::YcsbConfig wl =
      workload::ReadHeavySkewedYcsb(kRecords, kNodes, 0.05, /*seed=*/17);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 16, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(pc.horizon_us);
  driver.Start();

  injector.RunUntil(pc.horizon_us);
  injector.Drain();

  EXPECT_GT(Router(cluster).lease_table().stats().grants, 0u);

  InvariantMonitor monitor(kRecords);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "chaos"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "chaos"));
  EXPECT_TRUE(monitor.CheckReplicaCoherence(cluster, "chaos"));
  EXPECT_TRUE(monitor.CheckAgainstOracle(cluster, RouterKind::kHermes,
                                         MapFactory(), "chaos"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

// Satellite: the Drain() footgun. Work aimed at a node that is down
// under kCrashNoStall parks until the rejoin epoch, so calling Drain()
// with the node still down never finishes that work — the invariant is
// "rejoin first, then drain". The bounded proxy: run far past every
// retry slot with intake stopped and assert the parked set is still
// non-empty (the state Drain() would spin on forever) and readable in
// DegradedDebugString(); after the rejoin the same Drain() completes,
// the parked set empties, and every migrated record lands.
TEST(DrainFootgunTest, DrainRequiresRejoinFirst) {
  ClusterConfig config = ReplicationConfigFor(/*threads=*/0);
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();

  workload::YcsbConfig wl =
      workload::ReadHeavySkewedYcsb(kRecords, kNodes, 0.3, /*seed=*/19);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 24, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(60));
  driver.Start();

  cluster.RunUntil(MsToSim(20));
  cluster.CrashNoStall(1);
  // A consolidation whose target is the dead node: classified blocked
  // pre-routing and parked until the rejoin epoch.
  cluster.SubmitMigrationPlan({{100, 400, 1}});

  // Intake stops at 60ms; run far past every retry slot. The parked
  // chunk never becomes runnable, so a Drain() here would never see the
  // quiesced state it waits for.
  cluster.RunUntil(MsToSim(400));
  EXPECT_GT(cluster.parked_count(), 0u) << cluster.DegradedDebugString();
  const std::string stuck = cluster.DegradedDebugString();
  EXPECT_NE(stuck.find("parked txn="), std::string::npos) << stuck;
  EXPECT_NE(stuck.find("down=[1]"), std::string::npos) << stuck;

  cluster.RejoinNoStall(1);
  const SimTime drained_at = cluster.Drain();
  EXPECT_GE(drained_at, MsToSim(400));
  EXPECT_EQ(cluster.parked_count(), 0u) << cluster.DegradedDebugString();
  // The live workload keeps migrating keys after the consolidation lands,
  // so no fixed final home is asserted — record singularity below checks
  // every record sits exactly where ownership says.

  InvariantMonitor monitor(kRecords);
  EXPECT_TRUE(monitor.CheckRecordSingularity(cluster, "post-drain"));
  EXPECT_TRUE(monitor.CheckNoLostRecords(cluster, "post-drain"));
  EXPECT_TRUE(monitor.ok()) << monitor.FailureReport();
}

// Tentpole oracle: with replication enabled, decision, placement and
// trace digests — plus the replica checksum and commit counts — are
// bit-identical across hash salts and sim.threads in {0, 1, 2, 4, 8}.
// The REPLICATION_PROFILE line is consumed by check_determinism.sh, which
// reruns this binary under distinct HERMES_HASH_SALT /
// HERMES_SIM_THREADS environments and requires one unique line.
struct ProfileResult {
  uint64_t decision = 0;
  uint64_t placement = 0;
  uint64_t trace = 0;
  uint64_t replica_checksum = 0;
  uint64_t state_checksum = 0;
  uint64_t commits = 0;
  uint64_t grants = 0;
  uint64_t replica_reads = 0;

  bool operator==(const ProfileResult& o) const {
    return decision == o.decision && placement == o.placement &&
           trace == o.trace && replica_checksum == o.replica_checksum &&
           state_checksum == o.state_checksum && commits == o.commits &&
           grants == o.grants && replica_reads == o.replica_reads;
  }
};

ProfileResult RunProfile(int threads) {
  ClusterConfig config = ReplicationConfigFor(threads);
  config.obs.trace_enabled = true;
  Cluster cluster(config, RouterKind::kHermes, Map());
  cluster.Load();

  workload::YcsbConfig wl =
      workload::ReadHeavySkewedYcsb(kRecords, kNodes, 0.05, /*seed=*/23);
  workload::YcsbWorkload gen(wl, /*trace=*/nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 16, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(300));
  driver.Start();

  cluster.RunUntil(MsToSim(150));
  cluster.CrashNoStall(3);  // lapse all leases mid-run...
  cluster.RunUntil(MsToSim(180));
  cluster.RejoinNoStall(3);  // ...and re-grant after the rejoin epoch
  cluster.RunUntil(MsToSim(300));
  cluster.Drain();

  ProfileResult r;
  r.decision = cluster.decision_digest().value();
  r.placement = cluster.placement_digest().value();
  r.trace = cluster.trace_digest().value();
  r.replica_checksum = cluster.ReplicaChecksum();
  r.state_checksum = cluster.StateChecksum();
  r.commits = cluster.metrics().total_commits();
  r.grants = Router(cluster).lease_table().stats().grants;
  r.replica_reads = Router(cluster).stats().replica_reads;
  return r;
}

TEST(ReplicaLeaseTest, DigestsInvariantAcrossThreadsAndSalts) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = {HashSalt(), 0x9e3779b97f4a7c15ULL,
                                       0xdeadbeefcafef00dULL};
  const int thread_counts[] = {0, 1, 2, 4, 8};
  for (uint64_t salt : salts) {
    SetHashSalt(salt);
    const ProfileResult oracle = RunProfile(/*threads=*/0);
    ASSERT_GT(oracle.commits, 200u);
    ASSERT_GT(oracle.grants, 0u);
    ASSERT_GT(oracle.replica_reads, 0u);
    std::printf(
        "REPLICATION_PROFILE decision=%016llx placement=%016llx "
        "trace=%016llx replicas=%016llx state=%016llx commits=%llu "
        "grants=%llu replica_reads=%llu\n",
        static_cast<unsigned long long>(oracle.decision),
        static_cast<unsigned long long>(oracle.placement),
        static_cast<unsigned long long>(oracle.trace),
        static_cast<unsigned long long>(oracle.replica_checksum),
        static_cast<unsigned long long>(oracle.state_checksum),
        static_cast<unsigned long long>(oracle.commits),
        static_cast<unsigned long long>(oracle.grants),
        static_cast<unsigned long long>(oracle.replica_reads));
    for (int threads : thread_counts) {
      if (threads == 0) continue;
      const ProfileResult got = RunProfile(threads);
      EXPECT_TRUE(oracle == got)
          << "diverged at threads=" << threads << " salt=0x" << std::hex
          << salt << ": decision " << got.decision << " vs "
          << oracle.decision << ", placement " << got.placement << " vs "
          << oracle.placement << ", trace " << got.trace << " vs "
          << oracle.trace << ", replicas " << got.replica_checksum << " vs "
          << oracle.replica_checksum << std::dec << ", commits "
          << got.commits << " vs " << oracle.commits;
      if (!(oracle == got)) break;
    }
  }
  SetHashSalt(old_salt);
}

}  // namespace
}  // namespace hermes
