#include "engine/metrics.h"

#include <algorithm>
#include <cassert>

namespace hermes::engine {

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

size_t LatencyHistogram::BucketFor(SimTime v) {
  if (v < 1) v = 1;
  // Highest set bit selects the power-of-two band; the next two bits the
  // linear sub-bucket within it.
  int band = 63 - __builtin_clzll(v);
  if (band >= 30) band = 29;
  const uint64_t base = 1ULL << band;
  const size_t sub = band == 0 ? 0 : ((v - base) * kSubBuckets) / base;
  return static_cast<size_t>(band) * kSubBuckets +
         std::min<size_t>(sub, kSubBuckets - 1);
}

SimTime LatencyHistogram::UpperBound(size_t bucket) {
  const size_t band = bucket / kSubBuckets;
  const size_t sub = bucket % kSubBuckets;
  const uint64_t base = 1ULL << band;
  return base + (base * (sub + 1)) / kSubBuckets;
}

void LatencyHistogram::Record(SimTime latency_us) {
  ++buckets_[BucketFor(latency_us)];
  ++count_;
}

SimTime LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return UpperBound(b);
  }
  return UpperBound(buckets_.size() - 1);
}

obs::HistogramSnapshot LatencyHistogram::Snapshot() const {
  obs::HistogramSnapshot snap;
  snap.count = count_;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    snap.buckets.emplace_back(UpperBound(b), buckets_[b]);
    snap.sum += UpperBound(b) * buckets_[b];
  }
  return snap;
}

Metrics::Metrics(SimTime window_us) : window_us_(window_us) {
  assert(window_us_ > 0);
}

WindowStats& Metrics::WindowAt(SimTime when) {
  const size_t idx = when / window_us_;
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  return windows_[idx];
}

void Metrics::RecordCommit(SimTime when, const LatencyBreakdown& latency,
                           bool distributed, bool aborted) {
  WindowStats& w = WindowAt(when);
  if (aborted) {
    ++w.aborts;
    ++total_aborts_;
    return;
  }
  ++w.commits;
  ++total_commits_;
  if (distributed) {
    ++w.distributed_commits;
    ++total_distributed_;
  }
  latency_sum_ += latency;
  histogram_.Record(latency.total_us);
}

void Metrics::RecordMigrations(SimTime when, uint64_t count) {
  WindowAt(when).migrations += count;
}

void Metrics::RecordBusy(SimTime when, uint64_t busy_us) {
  WindowAt(when).busy_us += busy_us;
}

void Metrics::RecordNetBytes(SimTime when, uint64_t bytes) {
  WindowAt(when).net_bytes += bytes;
}

void Metrics::RecordNetBytesReceived(SimTime when, uint64_t bytes) {
  WindowAt(when).net_bytes_received += bytes;
}

void Metrics::RecordNetClassBytes(SimTime when, TrafficClass cls,
                                  uint64_t bytes) {
  WindowStats& w = WindowAt(when);
  if (cls == TrafficClass::kForeground) {
    w.net_fg_bytes += bytes;
  } else {
    w.net_bulk_bytes += bytes;
  }
}

void Metrics::RecordDecisionDigest(SimTime when, uint64_t digest) {
  WindowAt(when).decision_digest = digest;
}

LatencyBreakdown Metrics::AverageLatency() const {
  LatencyBreakdown avg;
  if (total_commits_ == 0) return avg;
  avg.scheduling_us = latency_sum_.scheduling_us / total_commits_;
  avg.lock_wait_us = latency_sum_.lock_wait_us / total_commits_;
  avg.remote_wait_us = latency_sum_.remote_wait_us / total_commits_;
  avg.storage_us = latency_sum_.storage_us / total_commits_;
  avg.other_us = latency_sum_.other_us / total_commits_;
  avg.total_us = latency_sum_.total_us / total_commits_;
  return avg;
}

double Metrics::Throughput(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  uint64_t commits = 0;
  const size_t first = from / window_us_;
  const size_t last = to / window_us_;
  for (size_t w = first; w < last && w < windows_.size(); ++w) {
    commits += windows_[w].commits;
  }
  return static_cast<double>(commits) /
         (static_cast<double>(to - from) / 1e6);
}

double Metrics::CpuUtilization(size_t w, int total_workers) const {
  if (w >= windows_.size() || total_workers <= 0) return 0.0;
  return static_cast<double>(windows_[w].busy_us) /
         (static_cast<double>(window_us_) * total_workers);
}

double Metrics::NetBytesPerTxn(size_t w) const {
  if (w >= windows_.size() || windows_[w].commits == 0) return 0.0;
  return static_cast<double>(windows_[w].net_bytes) / windows_[w].commits;
}

}  // namespace hermes::engine
