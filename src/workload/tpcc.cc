#include "workload/tpcc.h"

#include <algorithm>
#include <cassert>

namespace hermes::workload {

TpccWorkload::TpccWorkload(const TpccConfig& config)
    : config_(config), rng_(config.seed) {
  assert(config_.num_warehouses > 0 && config_.num_nodes > 0);
  block_size_ = 1 + 10 +
                static_cast<uint64_t>(10) * config_.customers_per_district +
                config_.items + config_.order_slots_per_warehouse;
  num_records_ = block_size_ * config_.num_warehouses;
  next_slot_.assign(config_.num_warehouses, 0);
}

Key TpccWorkload::WarehouseKey(int w) const { return w * block_size_; }

Key TpccWorkload::DistrictKey(int w, int d) const {
  assert(d >= 0 && d < 10);
  return w * block_size_ + 1 + d;
}

Key TpccWorkload::CustomerKey(int w, int d, int c) const {
  assert(c >= 0 && c < config_.customers_per_district);
  return w * block_size_ + 11 +
         static_cast<uint64_t>(d) * config_.customers_per_district + c;
}

Key TpccWorkload::StockKey(int w, int item) const {
  assert(item >= 0 && item < config_.items);
  return w * block_size_ + 11 +
         static_cast<uint64_t>(10) * config_.customers_per_district + item;
}

Key TpccWorkload::OrderSlotKey(int w, uint64_t slot) const {
  return w * block_size_ + 11 +
         static_cast<uint64_t>(10) * config_.customers_per_district +
         config_.items + (slot % config_.order_slots_per_warehouse);
}

std::unique_ptr<partition::PartitionMap>
TpccWorkload::WarehousePartitioning() const {
  // Node i owns warehouses [i*wpn, (i+1)*wpn).
  const int wpn =
      (config_.num_warehouses + config_.num_nodes - 1) / config_.num_nodes;
  std::vector<Key> bounds;
  bounds.push_back(0);
  for (int n = 1; n < config_.num_nodes; ++n) {
    const int w = std::min(n * wpn, config_.num_warehouses);
    bounds.push_back(static_cast<Key>(w) * block_size_);
  }
  bounds.push_back(num_records_);
  return std::make_unique<partition::CustomRangePartitionMap>(
      std::move(bounds));
}

int TpccWorkload::PickHomeWarehouse() {
  const int wpn =
      (config_.num_warehouses + config_.num_nodes - 1) / config_.num_nodes;
  if (config_.hotspot_concentration > 0 &&
      rng_.NextDouble() < config_.hotspot_concentration) {
    // Concentrate on node 0's warehouses.
    return static_cast<int>(
        rng_.NextBounded(std::min(wpn, config_.num_warehouses)));
  }
  return static_cast<int>(rng_.NextBounded(config_.num_warehouses));
}

TxnRequest TpccWorkload::Next(SimTime) {
  const int w = PickHomeWarehouse();
  if (rng_.NextDouble() < config_.new_order_ratio) return NewOrder(w);
  return Payment(w);
}

TxnRequest TpccWorkload::NewOrder(int w) {
  TxnRequest txn;
  txn.tag = kTpccNewOrderTag;
  const int d = static_cast<int>(rng_.NextBounded(10));

  txn.read_set.push_back(WarehouseKey(w));
  txn.read_set.push_back(DistrictKey(w, d));  // D_NEXT_O_ID: read + write
  txn.write_set.push_back(DistrictKey(w, d));
  txn.read_set.push_back(CustomerKey(
      w, d, static_cast<int>(rng_.NextBounded(config_.customers_per_district))));

  // 5-15 order lines; each reads+writes one stock row, 1% remote.
  const int lines = 5 + static_cast<int>(rng_.NextBounded(11));
  for (int l = 0; l < lines; ++l) {
    int supply_w = w;
    if (config_.num_warehouses > 1 &&
        rng_.NextDouble() < config_.remote_stock_ratio) {
      supply_w = static_cast<int>(rng_.NextBounded(config_.num_warehouses - 1));
      if (supply_w >= w) ++supply_w;
    }
    const int item = static_cast<int>(rng_.NextBounded(config_.items));
    const Key stock = StockKey(supply_w, item);
    txn.read_set.push_back(stock);
    txn.write_set.push_back(stock);
  }

  // Order + order-line inserts: blind writes into pre-allocated slots.
  const uint64_t base_slot = next_slot_[w];
  next_slot_[w] += 1 + lines;
  for (int i = 0; i <= lines; ++i) {
    txn.write_set.push_back(OrderSlotKey(w, base_slot + i));
  }

  // ~1% of New-Orders abort on an unused item number (TPC-C spec 2.4.1.4).
  txn.user_abort = rng_.NextDouble() < 0.01;

  std::sort(txn.read_set.begin(), txn.read_set.end());
  txn.read_set.erase(std::unique(txn.read_set.begin(), txn.read_set.end()),
                     txn.read_set.end());
  std::sort(txn.write_set.begin(), txn.write_set.end());
  txn.write_set.erase(std::unique(txn.write_set.begin(), txn.write_set.end()),
                      txn.write_set.end());
  return txn;
}

TxnRequest TpccWorkload::Payment(int w) {
  TxnRequest txn;
  txn.tag = kTpccPaymentTag;
  const int d = static_cast<int>(rng_.NextBounded(10));

  int cust_w = w;
  if (config_.num_warehouses > 1 &&
      rng_.NextDouble() < config_.remote_customer_ratio) {
    cust_w = static_cast<int>(rng_.NextBounded(config_.num_warehouses - 1));
    if (cust_w >= w) ++cust_w;
  }
  const int c =
      static_cast<int>(rng_.NextBounded(config_.customers_per_district));

  // W_YTD, D_YTD, C_BALANCE are all read-modify-write.
  for (Key k : {WarehouseKey(w), DistrictKey(w, d), CustomerKey(cust_w, d, c)}) {
    txn.read_set.push_back(k);
    txn.write_set.push_back(k);
  }
  std::sort(txn.read_set.begin(), txn.read_set.end());
  std::sort(txn.write_set.begin(), txn.write_set.end());
  return txn;
}

}  // namespace hermes::workload
