#include "storage/checkpoint.h"

#include "common/rng.h"

namespace hermes::storage {

uint64_t Checkpoint::Checksum() const {
  uint64_t sum = 0;
  for (size_t node = 0; node < stores.size(); ++node) {
    for (const auto& [key, r] : stores[node]) {
      sum ^= Mix64(Mix64(key) ^ r.value ^
                   (static_cast<uint64_t>(r.version) << 32) ^
                   Mix64(node + 1));
    }
  }
  return sum;
}

}  // namespace hermes::storage
