#include "storage/record_store.h"

#include <gtest/gtest.h>

namespace hermes::storage {
namespace {

TEST(RecordStoreTest, InsertGetExtract) {
  RecordStore store;
  store.Insert(5, Record{.value = 42});
  ASSERT_TRUE(store.Contains(5));
  EXPECT_EQ(store.Get(5)->value, 42u);

  auto extracted = store.Extract(5);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->value, 42u);
  EXPECT_FALSE(store.Contains(5));
  EXPECT_EQ(store.Get(5), nullptr);
}

TEST(RecordStoreTest, ExtractMissingReturnsNullopt) {
  RecordStore store;
  EXPECT_FALSE(store.Extract(99).has_value());
}

TEST(RecordStoreTest, ApplyWriteChangesValueAndVersion) {
  RecordStore store;
  store.Insert(1, Record{.value = 7});
  const uint64_t before = store.Get(1)->value;
  ASSERT_TRUE(store.ApplyWrite(1, /*writer=*/100));
  EXPECT_NE(store.Get(1)->value, before);
  EXPECT_EQ(store.Get(1)->version, 1u);
  EXPECT_EQ(store.Get(1)->last_writer, 100u);
}

TEST(RecordStoreTest, ApplyWriteMissingKeyFails) {
  RecordStore store;
  EXPECT_FALSE(store.ApplyWrite(3, 1));
}

TEST(RecordStoreTest, ApplyWriteIsDeterministic) {
  RecordStore a, b;
  a.Insert(1, Record{.value = 7});
  b.Insert(1, Record{.value = 7});
  a.ApplyWrite(1, 55);
  b.ApplyWrite(1, 55);
  EXPECT_EQ(a.Get(1)->value, b.Get(1)->value);
}

TEST(RecordStoreTest, WriteOrderMatters) {
  // Different writer sequences must yield different fingerprints: the
  // determinism checks rely on state capturing history.
  RecordStore a, b;
  a.Insert(1, Record{.value = 7});
  b.Insert(1, Record{.value = 7});
  a.ApplyWrite(1, 10);
  a.ApplyWrite(1, 20);
  b.ApplyWrite(1, 20);
  b.ApplyWrite(1, 10);
  EXPECT_NE(a.Get(1)->value, b.Get(1)->value);
}

TEST(RecordStoreTest, RestoreRevertsWrite) {
  RecordStore store;
  store.Insert(1, Record{.value = 7});
  const Record pre = *store.Get(1);
  store.ApplyWrite(1, 9);
  store.Restore(1, pre);
  EXPECT_EQ(store.Get(1)->value, 7u);
  EXPECT_EQ(store.Get(1)->version, 0u);
}

TEST(RecordStoreTest, ChecksumIsOrderInsensitive) {
  RecordStore a, b;
  for (Key k = 0; k < 100; ++k) a.Insert(k, Record{.value = k * 3});
  for (Key k = 100; k-- > 0;) b.Insert(k, Record{.value = k * 3});
  EXPECT_EQ(a.Checksum(), b.Checksum());
}

TEST(RecordStoreTest, ChecksumDetectsDifferences) {
  RecordStore a, b;
  a.Insert(1, Record{.value = 1});
  b.Insert(1, Record{.value = 2});
  EXPECT_NE(a.Checksum(), b.Checksum());
}

TEST(RecordStoreTest, EmptyChecksumIsZero) {
  RecordStore store;
  EXPECT_EQ(store.Checksum(), 0u);
}

}  // namespace
}  // namespace hermes::storage
