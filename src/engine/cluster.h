#ifndef HERMES_ENGINE_CLUSTER_H_
#define HERMES_ENGINE_CLUSTER_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/digest.h"
#include "common/hash.h"
#include "common/membership.h"
#include "common/rng.h"
#include "common/types.h"
#include "engine/degraded.h"
#include "engine/failure_detector.h"
#include "core/fusion_table.h"
#include "core/hermes_router.h"
#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/node.h"
#include "engine/scheduler.h"
#include "engine/sequencer.h"
#include "net/wire.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "partition/partition_map.h"
#include "replication/lease_manager.h"
#include "routing/clay_planner.h"
#include "routing/router.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/checkpoint.h"
#include "storage/command_log.h"

namespace hermes::engine {

/// Which transaction-routing algorithm the cluster runs.
enum class RouterKind {
  kCalvin,  ///< multi-master, static partitions (baseline system)
  kGStore,  ///< look-present grouping with write-back on commit
  kLeap,    ///< look-present migrate-to-master, no balancing
  kTPart,   ///< routing-only with forward pushing and write-back
  kHermes,  ///< prescient routing + fusion table (this paper)
};

/// The public facade of the library: a full deterministic database
/// cluster — sequencer, scheduler replicas running a routing algorithm,
/// per-node storage/lock/executor stacks — driven by a discrete-event
/// simulation. Typical use:
///
///   ClusterConfig config;
///   config.num_nodes = 4;
///   Cluster cluster(config, RouterKind::kHermes,
///                   std::make_unique<partition::RangePartitionMap>(
///                       config.num_records, config.num_nodes));
///   cluster.Load();
///   cluster.Submit(txn, [](const TxnResult& r) { ... });
///   cluster.RunUntil(SecToSim(60));
class Cluster {
 public:
  Cluster(const ClusterConfig& config, RouterKind kind,
          std::unique_ptr<partition::PartitionMap> initial_partitioning);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Populates every record at its home partition. Call once before
  /// submitting transactions (skip when restoring from a checkpoint).
  void Load();

  /// Submits a client request: it reaches its sequencer one network hop
  /// from now; `on_commit` fires when the client receives the result.
  ///
  /// Requests with `requires_reconnaissance` first run an OLLP
  /// reconnaissance read against the owners of their read-set (charged as
  /// real work on those nodes) before being sequenced; a stale prediction
  /// (probability config.ollp_stale_prob) deterministically aborts the
  /// first attempt and retries once, as in Calvin.
  void Submit(TxnRequest txn,
              TxnExecutor::CommitCallback on_commit = nullptr);

  uint64_t ollp_reconnaissance_count() const { return ollp_recons_; }
  uint64_t ollp_retry_count() const { return ollp_retries_; }

  // --- Replication hooks (used by engine::ReplicaGroup). ---

  /// Called with every batch the moment it is totally ordered; a replica
  /// group taps this to fan batches out to standby replicas.
  void set_batch_tap(std::function<void(const Batch&)> tap) {
    batch_tap_ = std::move(tap);
  }

  /// Feeds an externally sequenced batch directly to this cluster's
  /// scheduler (standby replicas replay the primary's input stream).
  void InjectBatch(const Batch& batch);

  /// Continues the total order from external counters (a promoted standby
  /// picks up where the failed primary stopped).
  void RestoreSequencerCounters(BatchId next_batch, TxnId next_txn) {
    sequencer_.RestoreCounters(next_batch, next_txn);
  }

  // --- Fault-injection hooks (used by fault::FaultInjector). ---

  /// Stops the sequencer from cutting batches: submissions accumulate but
  /// nothing new enters the total order until ResumeIntake(). The fault
  /// injector stalls intake while a crashed node's store is rebuilt, so
  /// the total order never references a store that does not exist.
  void PauseIntake() { sequencer_.Pause(); }
  void ResumeIntake() { sequencer_.Resume(); }
  bool intake_paused() const { return sequencer_.paused(); }

  // --- Degraded mode: non-stalling crash handling (DESIGN.md §5). ---
  //
  // Under kCrashNoStall the cluster keeps sequencing while a node is
  // down: new batches route around it (membership-filtered candidate
  // sets), already-ordered transactions touching it are deterministically
  // parked (chunk migrations, provisioning markers) or retried with a
  // deterministic virtual-time backoff (regular transactions, bounded by
  // DegradedConfig::max_retries, then an UNAVAILABLE abort to the
  // client), and the executor watchdog UNDO-aborts transactions frozen
  // mid-flight at the dead node. Every decision is a pure function of
  // (fault plan, config, total order): the recorded DegradedSchedule
  // replays the run bit-identically.

  /// Marks `node` dead without pausing intake. The victim's store is
  /// detached in place: the model says it is lost and later rebuilt
  /// bit-identically from checkpoint + log (the injector charges that
  /// virtual time); the simulation reuses the image. Every replica lease
  /// lapses (the holder set can no longer be maintained consistently).
  /// Called between events by the fault injector, never lane-side.
  // detlint:runs(exclusive)
  void CrashNoStall(NodeId node);

  /// Brings `node` back: flushes suppressed in-flight shipments, reships
  /// every record whose physical location diverged from the ownership map
  /// during the outage, clears stranded-key blocks, and re-routes parked
  /// transactions (in FIFO = total order). Replica leases lapse again —
  /// the router re-grants from fresh counters at the next batch boundary.
  // detlint:runs(exclusive)
  void RejoinNoStall(NodeId node);

  // --- Partitions & failure detection (DESIGN.md §5). ---
  //
  // A partition cuts links in the network's reachability matrix; payloads
  // sent into the cut park in per-link FIFO holding pens (message
  // existence preserved — see sim::Network). The heartbeat failure
  // detector converts sustained unreachability into the SAME
  // membership-epoch transitions kCrashNoStall uses, so the majority side
  // degrades exactly as it would for a crash, and the heal reconciles
  // through the standard rejoin path. Cuts, heals and detector ticks all
  // run in exclusive context; every transition is a pure function of
  // (fault plan, config, virtual time).

  /// Cuts the links around `node`: inbound severs peer->node, outbound
  /// severs node->peer (both true = two-sided cut). Idempotent per
  /// direction. Arms the failure detector when one is configured. Called
  /// between events by the fault injector, never lane-side.
  // detlint:runs(exclusive)
  void PartitionCut(NodeId node, bool cut_inbound, bool cut_outbound);

  /// Heals every cut link touching `node` and releases the affected
  /// holding pens in FIFO order. The failure detector (if armed) restores
  /// the node's membership after its confirmation hysteresis.
  // detlint:runs(exclusive)
  void PartitionHeal(NodeId node);

  /// Arms the failure detector (no-op without config.detector.enabled):
  /// the heartbeat chain runs at least until `active_until`, and past it
  /// while cuts, suspicions or misses persist. The fault injector arms
  /// gray windows this way, since gray links cut nothing.
  // detlint:runs(exclusive)
  void ArmDetector(SimTime active_until);

  /// The heartbeat failure detector, or nullptr unless
  /// config.detector.enabled.
  FailureDetector* failure_detector() { return detector_.get(); }
  const FailureDetector* failure_detector() const { return detector_.get(); }

  uint64_t partitions_cut() const { return partitions_cut_; }
  uint64_t partitions_healed() const { return partitions_healed_; }

  /// Installs a recorded degraded schedule before ReplayBatches: the
  /// replay applies the same membership transitions at the same batch
  /// boundaries and flips recorded watchdog aborts into §4.2 user aborts,
  /// reproducing the live run's placements and committed effects.
  void SetReplayMembershipSchedule(const DegradedSchedule& schedule);

  const MembershipView& membership() const { return membership_; }
  const DegradedSchedule& degraded_schedule() const {
    return degraded_schedule_;
  }
  const DegradedLedger& degraded_ledger() const { return degraded_ledger_; }
  size_t parked_count() const { return parked_.size(); }

  /// Diagnostic rendering of the degraded-mode state: membership view,
  /// retry transcript, parked transactions (FIFO order, with attempt
  /// counts and parking epoch) and stranded keys — all totally ordered,
  /// so the output is identical across hash salts.
  std::string DegradedDebugString() const;

  /// Advances simulated time to `deadline`, sampling resource metrics
  /// every metrics window.
  void RunUntil(SimTime deadline);

  /// Runs until no simulated work remains (requires clients to stop
  /// submitting). Returns the drain completion time.
  SimTime Drain();

  SimTime Now() const { return sim_.Now(); }

  // --- Dynamic machine provisioning (§3.3). ---

  /// Adds a node. `cold_plan` re-homes ranges onto the new node; when
  /// `migrate_cold` is true the ranges move via chunk-migration
  /// transactions (Squall-style), otherwise only hot data moves via the
  /// fusion table. Called between events (control lane), never lane-side.
  // detlint:runs(exclusive)
  NodeId AddNode(const std::vector<RangeMove>& cold_plan, bool migrate_cold);

  /// Removes a node, re-homing its ranges per `cold_plan`.
  void RemoveNode(NodeId node, const std::vector<RangeMove>& cold_plan,
                  bool migrate_cold);

  /// Enqueues chunk-migration transactions for `moves`, submitted one
  /// after another (each chunk waits for the previous chunk's commit).
  /// When `replace_pending` is set, not-yet-submitted chunks from earlier
  /// plans are dropped first (a fresh Clay plan supersedes stale ones).
  void SubmitMigrationPlan(const std::vector<routing::ClumpMove>& moves,
                           bool replace_pending = false);

  /// Attaches a Clay look-back planner: it observes dispatched
  /// transactions and periodically emits migration plans which the
  /// cluster executes via chunk transactions.
  void EnableClay(const routing::ClayConfig& clay_config);

  // --- Recovery (§4.3). ---

  /// Captures a consistent checkpoint. Requires quiescence (no in-flight
  /// transactions, empty sequencer).
  storage::Checkpoint TakeCheckpoint() const;

  /// Restores cluster state from a checkpoint (call instead of Load()).
  // detlint:runs(exclusive)
  void RestoreFromCheckpoint(const storage::Checkpoint& checkpoint);

  /// Replays command-log batches (e.g. after RestoreFromCheckpoint) and
  /// drains. The deterministic routing and execution reproduce the exact
  /// pre-crash state.
  // detlint:runs(exclusive)
  void ReplayBatches(const std::vector<Batch>& batches);

  /// Placement-sensitive checksum over all stores (replica equality).
  uint64_t StateChecksum() const;

  /// Placement-INsensitive checksum over record contents only. Two
  /// executions that wrote the same values to the same keys match here
  /// even if records ended up on different nodes — the serializability
  /// tests compare this against a single-store reference execution.
  uint64_t ContentChecksum() const;

  // --- Introspection. ---
  sim::Simulator& simulator() { return sim_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  sim::Network& network() { return net_; }
  /// Wire substrate above the fabric (DESIGN.md §5 "Wire substrate").
  /// Inert passthrough unless config.net.enabled.
  net::Wire& wire() { return wire_; }
  const net::Wire& wire() const { return wire_; }
  routing::Router& router() { return *router_; }
  partition::OwnershipMap& ownership() { return ownership_; }
  TxnExecutor& executor() { return executor_; }
  /// Replica-lease engine state (copies, waiters, counters). Inert unless
  /// config.replication.enabled with the Hermes router.
  replication::LeaseManager& lease_manager() { return lease_mgr_; }
  const replication::LeaseManager& lease_manager() const { return lease_mgr_; }
  bool replication_enabled() const {
    return config_.replication.enabled && kind_ == RouterKind::kHermes;
  }
  /// Order-insensitive checksum over every replica copy; the replica
  /// analogue of StateChecksum (coherence monitoring, determinism tests).
  uint64_t ReplicaChecksum() const { return lease_mgr_.Checksum(); }
  const storage::CommandLog& command_log() const { return command_log_; }
  const ClusterConfig& config() const { return config_; }
  RouterKind kind() const { return kind_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_[id]; }
  /// Total executor workers across all nodes (for CPU utilization).
  int total_workers() const;
  /// Fusion table, or nullptr unless running the Hermes router.
  const core::FusionTable* fusion_table() const;

  /// Running digest over the cluster's decision stream: router placements,
  /// fusion-table evictions, and every event-queue pop. Identical seeded
  /// runs must produce identical digests under every HERMES_HASH_SALT —
  /// determinism_perturbation_test and scripts/check_determinism.sh assert
  /// this, catching hash-iteration-order leaks at runtime.
  const DecisionDigest& decision_digest() const { return digest_; }

  /// Digest over routing decisions ONLY (no event-queue pops, no fusion
  /// evictions): what the scheduler decided for the sequenced batch
  /// stream. Chaos legitimately perturbs event timing, so decision_digest
  /// diverges under faults — but the batch stream survives in the command
  /// log, and replaying it fault-free must reproduce this digest exactly.
  /// fault::InvariantMonitor compares the two.
  const DecisionDigest& placement_digest() const { return placement_digest_; }

  // --- Observability (src/obs/, DESIGN.md "Observability"). ---

  /// The cluster's structured tracer. Enabled via ObsConfig::trace_enabled
  /// or the HERMES_TRACE env var; HERMES_TRACE_KEY mirrors one key's
  /// events to stderr through the same stream. Strictly passive: nothing
  /// in the cluster reads it back into a decision.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Named counters/gauges/histograms over the live engine state, with
  /// deterministic sorted export (TelemetryText()).
  obs::Registry& telemetry() { return telemetry_; }
  const obs::Registry& telemetry() const { return telemetry_; }

  /// FNV-1a digest over the trace-event stream: each per-node ring keeps
  /// an order-sensitive digest, folded here in node order (same pattern as
  /// decision_digest). Two traced runs match iff they recorded identical
  /// per-node event histories — across hash salts AND thread counts
  /// (trace_determinism_test, sequential_vs_parallel_digest_test).
  DecisionDigest trace_digest() const { return tracer_.digest(); }

  /// Renders the trace as Chrome trace_event JSON (Perfetto-loadable).
  std::string TraceJson() const;
  /// Writes TraceJson() to `path`; false on I/O error.
  bool DumpTrace(const std::string& path) const;
  /// Prometheus text exposition of the telemetry registry.
  std::string TelemetryText() const { return telemetry_.PrometheusText(); }

 private:
  /// One transaction waiting out an outage in the parking queue.
  struct ParkedTxn {
    TxnRequest txn;
    uint32_t epoch = 0;  ///< membership epoch when parked
  };

  void SubmitWithReconnaissance(TxnRequest txn,
                                TxnExecutor::CommitCallback on_commit);
  void SubmitSequenced(TxnRequest txn,
                       TxnExecutor::CommitCallback on_commit);
  void OnBatchSequenced(Batch&& batch);
  TxnExecutor::CommitCallback ResolveCallback(const TxnRequest& txn);
  void SampleWindow();
  void SubmitNextChunk();
  void ArmClayTick();
  TxnRequest MakeChunkTxn(Key lo, Key hi, NodeId target) const;

  // --- Degraded mode internals. ---
  /// Scheduler batch filter: drops/parks/retries transactions that cannot
  /// run under the current membership. Runs after the command log keeps
  /// the original batch, so a replay fed the schedule refilters
  /// identically.
  void ClassifyBatch(BatchId id, std::vector<TxnRequest>* txns);
  bool KeyBlocked(Key key) const;
  bool TxnBlocked(const TxnRequest& txn) const;
  Key BlockingKey(const TxnRequest& txn) const;
  /// Deterministic retry slot: min(base << attempt, cap) plus a jitter
  /// drawn as Mix64(retry_of, attempt) — a pure function of (txn id,
  /// attempt, config), never wall clock or hash order.
  SimTime RetryDelay(TxnId retry_of, uint32_t attempt) const;
  /// Re-enqueues a blocked regular transaction after RetryDelay, or fires
  /// a deterministic UNAVAILABLE abort once attempts are exhausted.
  void ScheduleRetryOrFail(TxnRequest txn, TxnExecutor::CommitCallback cb,
                           uint32_t epoch);
  /// Executor watchdog handler: records the abort for replay, blocks
  /// stranded keys, and reclassifies the transaction (retry or chunk
  /// chain continuation).
  void OnWatchdogAbort(TxnRequest txn, TxnExecutor::CommitCallback cb,
                       std::vector<Key> stranded);
  /// Reships every record whose physical node diverged from the
  /// ownership map during the outage (rejoin reconciliation).
  void ReconcileDisplaced();
  /// Routes the parking queue (FIFO); entries re-park if still blocked.
  void ReleaseParked();
  /// Replay cursor: applies scheduled membership events and recorded
  /// stranded sets whose from_batch <= `id`, in recorded order. Runs from
  /// the scheduler's batch filter, which executes between events.
  // detlint:runs(exclusive)
  void ApplyScheduledEventsBefore(BatchId id);

  /// Registers every telemetry metric (closures over live fields); runs
  /// once at the end of construction.
  void RegisterTelemetry();

  ClusterConfig config_;
  RouterKind kind_;
  /// Declared before sim_/scheduler_ so the components it is wired into
  /// outlive none of their digest writes.
  DecisionDigest digest_;
  DecisionDigest placement_digest_;
  /// Declared with the digests, before every component that holds a
  /// pointer into it, for the same lifetime reason.
  obs::Tracer tracer_;
  obs::Registry telemetry_;
  sim::Simulator sim_;
  Metrics metrics_;
  sim::Network net_;
  /// Declared after net_ (it sends into it) and before executor_ (which
  /// sends through it).
  net::Wire wire_;
  std::vector<std::unique_ptr<Node>> nodes_;
  partition::OwnershipMap ownership_;
  std::unique_ptr<routing::Router> router_;
  storage::CommandLog command_log_;
  /// Declared before executor_ (which holds a pointer into it when
  /// replication is enabled) so copies outlive executor teardown.
  replication::LeaseManager lease_mgr_;
  TxnExecutor executor_;
  Sequencer sequencer_;
  Scheduler scheduler_;

  HashMap<TxnId, TxnExecutor::CommitCallback> pending_callbacks_;

  std::deque<TxnRequest> chunk_queue_;
  bool chunk_in_flight_ = false;

  std::unique_ptr<routing::ClayPlanner> clay_;
  routing::ClayConfig clay_config_;

  uint64_t sampled_net_bytes_ = 0;
  uint64_t sampled_net_recv_bytes_ = 0;
  uint64_t sampled_net_class_bytes_[kNumTrafficClasses] = {0, 0};
  bool replaying_ = false;

  /// Seeded source for OLLP staleness draws (deterministic per cluster).
  std::unique_ptr<Rng> ollp_rng_;
  uint64_t ollp_recons_ = 0;
  uint64_t ollp_retries_ = 0;

  std::function<void(const Batch&)> batch_tap_;

  // --- Partition & detector state. ---
  /// Null unless config.detector.enabled. Declared after sim_/net_ (it
  /// schedules ticks and reads the reachability matrix).
  std::unique_ptr<FailureDetector> detector_;
  uint64_t partitions_cut_ = 0;
  uint64_t partitions_healed_ = 0;

  // --- Degraded-mode state. All quiescent while every node is alive. ---
  MembershipView membership_;
  DegradedLedger degraded_ledger_;
  /// Live: transitions/aborts recorded as they happen. Replay: the
  /// installed schedule, applied by cursor at batch boundaries.
  DegradedSchedule degraded_schedule_;
  std::vector<ParkedTxn> parked_;  ///< FIFO parking queue
  /// Keys physically left at a dead node while ownership points at a live
  /// one; touchers are blocked until rejoin reconciliation. Ordered set:
  /// diagnostics iterate it.
  std::set<Key> stranded_;
  /// Next batch id the scheduler will route; membership transitions and
  /// abort records anchor to it so the replay cursor applies them at the
  /// same point in the total order.
  BatchId next_expected_batch_ = 0;
  /// Stamps MembershipEvent/AbortRecord seq fields: the merged recording
  /// order of the two schedule streams, so replay can interleave events
  /// and aborts sharing one from_batch exactly as they happened live.
  uint64_t degraded_seq_ = 0;
  size_t replay_event_cursor_ = 0;
  size_t replay_abort_cursor_ = 0;
  /// Transactions the replay must flip to §4.2 user aborts (contains-only
  /// lookups; never iterated).
  HashSet<TxnId> replay_abort_ids_;
};

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_CLUSTER_H_
