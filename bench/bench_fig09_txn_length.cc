// Reproduces Fig. 9: throughput improvement over Calvin as the number of
// records per transaction varies — (mean, std) of a clamped normal in
// {(5,5), (10,5), (10,10), (20,5), (20,10), (20,20)}.
//
// Expected shape (paper): Hermes improves consistently and the gain grows
// with the mean (longer transactions block conflicting transactions for
// longer, enlarging the contention footprint that the prescient routing
// shrinks).

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::RunGoogleWorkload;
using hermes::engine::RouterKind;

int main() {
  std::printf("Fig. 9 reproduction: impact of transaction length "
              "(improvement in throughput over Calvin, %%)\n\n");
  const std::vector<std::pair<double, double>> settings = {
      {5, 5}, {10, 5}, {10, 10}, {20, 5}, {20, 10}, {20, 20}};

  std::printf("mean_std");
  const std::vector<std::pair<const char*, RouterKind>> systems = {
      {"clay", RouterKind::kCalvin},  // + planner
      {"gstore", RouterKind::kGStore},
      {"leap", RouterKind::kLeap},
      {"tpart", RouterKind::kTPart},
      {"hermes", RouterKind::kHermes}};
  for (const auto& [name, kind] : systems) std::printf(",%s", name);
  std::printf("\n");

  for (const auto& [mean, stddev] : settings) {
    auto make = [&](bool clay) {
      GoogleRunParams params;
      params.windows = 5;
      params.clients = 1200;  // longer txns: keep the closed loop sane
      params.length_mean = mean;
      params.length_stddev = stddev;
      params.enable_clay = clay;
      return params;
    };
    const double calvin =
        RunGoogleWorkload(RouterKind::kCalvin, make(false)).mean_throughput;
    std::printf("(%2.0f,%2.0f)", mean, stddev);
    for (const auto& [name, kind] : systems) {
      const bool clay = std::string(name) == "clay";
      const double tput = RunGoogleWorkload(kind, make(clay)).mean_throughput;
      std::printf(",%+.0f%%", 100.0 * (tput / calvin - 1.0));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: hermes improves at every setting, more at "
              "higher means\n");
  return 0;
}
