// detlint-fixture: path=src/core/suppression_unknown_rule.cc
// detlint:allow(hash-order) legacy rule name that no longer exists
int x = 0;
