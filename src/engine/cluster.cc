#include "engine/cluster.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/rng.h"
#include "routing/calvin_router.h"
#include "routing/gstore_router.h"
#include "routing/leap_router.h"
#include "routing/tpart_router.h"

namespace hermes::engine {
namespace {

std::unique_ptr<routing::Router> MakeRouter(
    RouterKind kind, partition::OwnershipMap* ownership,
    const ClusterConfig& config) {
  switch (kind) {
    case RouterKind::kCalvin:
      return std::make_unique<routing::CalvinRouter>(ownership, &config.costs,
                                                     config.num_nodes);
    case RouterKind::kGStore:
      return std::make_unique<routing::GStoreRouter>(ownership, &config.costs,
                                                     config.num_nodes);
    case RouterKind::kLeap:
      return std::make_unique<routing::LeapRouter>(ownership, &config.costs,
                                                   config.num_nodes);
    case RouterKind::kTPart:
      return std::make_unique<routing::TPartRouter>(
          ownership, &config.costs, config.num_nodes, config.hermes.alpha);
    case RouterKind::kHermes:
      return std::make_unique<core::HermesRouter>(ownership, &config.costs,
                                                  config.num_nodes,
                                                  config.hermes);
  }
  return nullptr;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config, RouterKind kind,
                 std::unique_ptr<partition::PartitionMap> initial_partitioning)
    : config_(config),
      kind_(kind),
      metrics_(SecToSim(1)),
      net_(&sim_, &config_.costs, config.num_nodes),
      ownership_(std::move(initial_partitioning)),
      router_(MakeRouter(kind, &ownership_, config_)),
      executor_(&sim_, &net_, &metrics_, &config_.costs, &nodes_),
      sequencer_(&sim_, &config_,
                 [this](Batch&& batch) { OnBatchSequenced(std::move(batch)); }),
      scheduler_(&sim_, router_.get(), &executor_, &command_log_, &config_,
                 [this](const TxnRequest& txn) { return ResolveCallback(txn); },
                 &digest_, &placement_digest_) {
  nodes_.reserve(config_.num_nodes);
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(i, &sim_, config_.workers_per_node));
  }
  sim_.set_decision_digest(&digest_);
  if (kind_ == RouterKind::kHermes) {
    static_cast<core::HermesRouter*>(router_.get())
        ->mutable_fusion_table()
        .set_digest(&digest_);
  }
}

void Cluster::Load() {
  for (Key k = 0; k < config_.num_records; ++k) {
    const NodeId owner = ownership_.Owner(k);
    assert(owner >= 0 && owner < num_nodes());
    storage::Record record;
    record.value = Mix64(k);
    nodes_[owner]->store().Insert(k, record);
  }
}

void Cluster::Submit(TxnRequest txn, TxnExecutor::CommitCallback on_commit) {
  txn.submit_time = sim_.Now();
  if (txn.requires_reconnaissance && txn.kind == TxnKind::kRegular) {
    SubmitWithReconnaissance(std::move(txn), std::move(on_commit));
    return;
  }
  SubmitSequenced(std::move(txn), std::move(on_commit));
}

void Cluster::SubmitSequenced(TxnRequest txn,
                              TxnExecutor::CommitCallback on_commit) {
  // One network hop from the client to its sequencer.
  sim_.Schedule(config_.costs.net_latency_us,
                [this, txn = std::move(txn),
                 cb = std::move(on_commit)]() mutable {
                  const TxnId id = sequencer_.next_txn_id();
                  sequencer_.Submit(std::move(txn));
                  if (cb) pending_callbacks_[id] = std::move(cb);
                });
}

void Cluster::SubmitWithReconnaissance(
    TxnRequest txn, TxnExecutor::CommitCallback on_commit) {
  // OLLP (§2.1): a low-isolation reconnaissance read against the current
  // owners of the read-set discovers the lock locations before the
  // transaction enters the total order. The probe costs one network round
  // trip plus real storage work on every probed node.
  ++ollp_recons_;
  if (ollp_rng_ == nullptr) {
    ollp_rng_ = std::make_unique<Rng>(Mix64(config_.seed ^ 0x011f0llu));
  }
  std::map<NodeId, size_t> probed;
  for (Key k : txn.read_set) ++probed[ownership_.Owner(k)];
  SimTime max_probe = 0;
  for (const auto& [node, keys] : probed) {
    const SimTime start = nodes_[node]->workers().Submit(
        config_.costs.storage_op_us * keys, [] {});
    max_probe = std::max(max_probe,
                         start + config_.costs.storage_op_us * keys -
                             sim_.Now());
  }
  const bool stale = ollp_rng_->NextDouble() < config_.ollp_stale_prob;
  const SimTime probe_done = 2 * config_.costs.net_latency_us + max_probe;
  sim_.Schedule(probe_done, [this, txn = std::move(txn),
                             cb = std::move(on_commit), stale]() mutable {
    txn.requires_reconnaissance = false;
    if (!stale) {
      SubmitSequenced(std::move(txn), std::move(cb));
      return;
    }
    // Stale prediction: the first attempt deterministically aborts (it
    // still executes and migrates per plan), then the corrected request
    // is resubmitted and its commit completes the client's call.
    ++ollp_retries_;
    TxnRequest first = txn;
    first.user_abort = true;
    SubmitSequenced(std::move(first),
                    [this, txn = std::move(txn),
                     cb = std::move(cb)](const TxnResult&) mutable {
                      SubmitSequenced(std::move(txn), std::move(cb));
                    });
  });
}

void Cluster::OnBatchSequenced(Batch&& batch) {
  if (batch_tap_) batch_tap_(batch);
  if (clay_) {
    for (const TxnRequest& txn : batch.txns) {
      if (txn.kind == TxnKind::kRegular) clay_->Observe(txn);
    }
  }
  scheduler_.OnBatch(std::move(batch));
}

void Cluster::InjectBatch(const Batch& batch) {
  Batch copy = batch;
  scheduler_.OnBatch(std::move(copy));
}

TxnExecutor::CommitCallback Cluster::ResolveCallback(const TxnRequest& txn) {
  auto it = pending_callbacks_.find(txn.id);
  if (it == pending_callbacks_.end()) return nullptr;
  TxnExecutor::CommitCallback cb = std::move(it->second);
  pending_callbacks_.erase(it);
  return cb;
}

void Cluster::SampleWindow() {
  const SimTime stamp = sim_.Now() == 0 ? 0 : sim_.Now() - 1;
  uint64_t busy = 0;
  for (auto& node : nodes_) busy += node->workers().TakeBusyDelta();
  metrics_.RecordBusy(stamp, busy);
  static_assert(sizeof(uint64_t) == 8);
  const uint64_t total = net_.total_bytes();
  metrics_.RecordNetBytes(stamp, total - sampled_net_bytes_);
  sampled_net_bytes_ = total;
  const uint64_t received = net_.total_bytes_received();
  metrics_.RecordNetBytesReceived(stamp, received - sampled_net_recv_bytes_);
  sampled_net_recv_bytes_ = received;
  metrics_.RecordDecisionDigest(stamp, digest_.value());
}

void Cluster::RunUntil(SimTime deadline) {
  const SimTime window = metrics_.window_us();
  while (sim_.Now() < deadline) {
    const SimTime next = std::min(deadline, ((sim_.Now() / window) + 1) * window);
    sim_.RunUntil(next);
    if (clay_) {
      const auto plan =
          clay_->MaybePlan(sim_.Now(), router_->num_active_nodes());
      if (!plan.empty()) SubmitMigrationPlan(plan, /*replace_pending=*/true);
    }
    SampleWindow();
  }
}

SimTime Cluster::Drain() {
  sim_.RunAll();
  SampleWindow();
  return sim_.Now();
}

TxnRequest Cluster::MakeChunkTxn(Key lo, Key hi, NodeId target) const {
  TxnRequest txn;
  txn.kind = TxnKind::kChunkMigration;
  txn.migration_target = target;
  txn.write_set.reserve(hi - lo + 1);
  for (Key k = lo; k <= hi; ++k) txn.write_set.push_back(k);
  return txn;
}

void Cluster::SubmitMigrationPlan(
    const std::vector<routing::ClumpMove>& moves, bool replace_pending) {
  if (replace_pending) chunk_queue_.clear();
  const uint64_t chunk = std::max<uint64_t>(config_.migration_chunk_records, 1);
  for (const routing::ClumpMove& mv : moves) {
    for (Key lo = mv.lo; lo <= mv.hi;) {
      const Key hi = std::min(mv.hi, lo + chunk - 1);
      chunk_queue_.push_back(MakeChunkTxn(lo, hi, mv.target));
      if (hi == mv.hi) break;
      lo = hi + 1;
    }
  }
  SubmitNextChunk();
}

void Cluster::SubmitNextChunk() {
  if (chunk_in_flight_ || chunk_queue_.empty()) return;
  chunk_in_flight_ = true;
  TxnRequest txn = std::move(chunk_queue_.front());
  chunk_queue_.pop_front();
  Submit(std::move(txn), [this](const TxnResult&) {
    chunk_in_flight_ = false;
    SubmitNextChunk();
  });
}

void Cluster::EnableClay(const routing::ClayConfig& clay_config) {
  clay_config_ = clay_config;
  clay_ = std::make_unique<routing::ClayPlanner>(
      &ownership_, config_.num_records, clay_config);
}

NodeId Cluster::AddNode(const std::vector<RangeMove>& cold_plan,
                        bool migrate_cold) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, &sim_, config_.workers_per_node));
  net_.EnsureCapacity(id + 1);

  TxnRequest marker;
  marker.kind = TxnKind::kAddNode;
  marker.migration_target = id;
  marker.range_moves = cold_plan;
  Submit(std::move(marker));

  if (migrate_cold) {
    std::vector<routing::ClumpMove> moves;
    moves.reserve(cold_plan.size());
    for (const RangeMove& mv : cold_plan) {
      moves.push_back(routing::ClumpMove{mv.lo, mv.hi, mv.target});
    }
    SubmitMigrationPlan(moves);
  }
  return id;
}

void Cluster::RemoveNode(NodeId node, const std::vector<RangeMove>& cold_plan,
                         bool migrate_cold) {
  TxnRequest marker;
  marker.kind = TxnKind::kRemoveNode;
  marker.migration_target = node;
  marker.range_moves = cold_plan;
  Submit(std::move(marker));

  if (migrate_cold) {
    std::vector<routing::ClumpMove> moves;
    moves.reserve(cold_plan.size());
    for (const RangeMove& mv : cold_plan) {
      moves.push_back(routing::ClumpMove{mv.lo, mv.hi, mv.target});
    }
    SubmitMigrationPlan(moves);
  }
}

storage::Checkpoint Cluster::TakeCheckpoint() const {
  // Quiescence: nothing executing and no event in flight. Requests pending
  // at a paused sequencer are legitimately excluded — they have not entered
  // the total order yet, so batches sequenced after this checkpoint cover
  // them (the fault injector checkpoints mid-run with intake paused).
  assert(executor_.inflight() == 0 &&
         (sequencer_.pending() == 0 || sequencer_.paused()) && sim_.idle() &&
         "checkpoints must be taken at quiescence");
  storage::Checkpoint cp;
  cp.next_batch = sequencer_.next_batch_id();
  cp.next_txn_id = sequencer_.next_txn_id();
  cp.stores.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    cp.stores.push_back(node->store().records());
  }
  cp.ownership_overlay = ownership_.key_overlay();
  cp.intervals = ownership_.ExportIntervals();
  cp.active_nodes = router_->active_nodes();
  if (kind_ == RouterKind::kHermes) {
    cp.fusion_order =
        static_cast<const core::HermesRouter*>(router_.get())
            ->fusion_table()
            .ExportOrder();
  }
  return cp;
}

void Cluster::RestoreFromCheckpoint(const storage::Checkpoint& checkpoint) {
  while (nodes_.size() < checkpoint.stores.size()) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(id, &sim_, config_.workers_per_node));
  }
  net_.EnsureCapacity(static_cast<int>(nodes_.size()));
  for (size_t i = 0; i < checkpoint.stores.size(); ++i) {
    for (const auto& [key, record] : checkpoint.stores[i]) {
      nodes_[i]->store().Insert(key, record);
    }
  }
  ownership_.RestoreKeyOverlay(checkpoint.ownership_overlay);
  ownership_.RestoreIntervals(checkpoint.intervals);
  router_->RestoreActiveNodes(checkpoint.active_nodes);
  if (kind_ == RouterKind::kHermes) {
    static_cast<core::HermesRouter*>(router_.get())
        ->mutable_fusion_table()
        .Restore(checkpoint.ownership_overlay, checkpoint.fusion_order);
  }
  sequencer_.RestoreCounters(checkpoint.next_batch, checkpoint.next_txn_id);
}

void Cluster::ReplayBatches(const std::vector<Batch>& batches) {
  replaying_ = true;
  for (const Batch& batch : batches) {
    // Physical nodes referenced by provisioning markers must exist before
    // the marker is routed.
    for (const TxnRequest& txn : batch.txns) {
      if (txn.kind == TxnKind::kAddNode &&
          txn.migration_target >= num_nodes()) {
        while (num_nodes() <= txn.migration_target) {
          const NodeId id = static_cast<NodeId>(nodes_.size());
          nodes_.push_back(
              std::make_unique<Node>(id, &sim_, config_.workers_per_node));
        }
        net_.EnsureCapacity(num_nodes());
      }
    }
    Batch copy = batch;
    scheduler_.OnBatch(std::move(copy));
    sim_.RunAll();
  }
  replaying_ = false;
}

uint64_t Cluster::StateChecksum() const {
  uint64_t sum = 0;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    // detlint:allow(unordered-iter) order-insensitive XOR fold, not a decision
    for (const auto& [key, r] : nodes_[node]->store().records()) {
      sum ^= Mix64(Mix64(key) ^ r.value ^
                   (static_cast<uint64_t>(r.version) << 32) ^
                   Mix64(node + 1));
    }
  }
  return sum;
}

uint64_t Cluster::ContentChecksum() const {
  uint64_t sum = 0;
  for (const auto& node : nodes_) sum ^= node->store().Checksum();
  return sum;
}

int Cluster::total_workers() const {
  int total = 0;
  for (const auto& node : nodes_) total += node->workers().num_workers();
  return total;
}

const core::FusionTable* Cluster::fusion_table() const {
  if (kind_ != RouterKind::kHermes) return nullptr;
  return &static_cast<const core::HermesRouter*>(router_.get())
              ->fusion_table();
}

}  // namespace hermes::engine
