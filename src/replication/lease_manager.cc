#include "replication/lease_manager.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/rng.h"

namespace hermes::replication {

void LeaseManager::BeginInstall(Key key, NodeId holder, NodeId source) {
  std::vector<NodeId>& set = holders_[key];
  const auto it = std::lower_bound(set.begin(), set.end(), holder);
  if (it == set.end() || *it != holder) {
    set.insert(it, holder);
    HERMES_TRACE(tracer_, obs::EventKind::kLeaseGrant, holder, kInvalidTxn,
                 key, /*arg=*/static_cast<uint64_t>(source));
  }
}

void LeaseManager::Revoke(Key key, NodeId holder) {
  const auto hit = holders_.find(key);
  if (hit != holders_.end()) {
    std::vector<NodeId>& set = hit->second;
    const auto it = std::lower_bound(set.begin(), set.end(), holder);
    if (it != set.end() && *it == holder) {
      set.erase(it);
      ++revokes_;
      HERMES_TRACE(tracer_, obs::EventKind::kLeaseRevoke, holder, kInvalidTxn,
                   key, /*arg=*/0);
    }
    if (set.empty()) holders_.erase(hit);
  }
  DropCopy(holder, key);
}

void LeaseManager::LapseNode(NodeId node) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    std::vector<NodeId>& set = it->second;
    const auto sit = std::lower_bound(set.begin(), set.end(), node);
    if (sit != set.end() && *sit == node) {
      set.erase(sit);
      ++lapses_;
      HERMES_TRACE(tracer_, obs::EventKind::kLeaseRevoke, node, kInvalidTxn,
                   it->first, /*arg=*/1);
    }
    it = set.empty() ? holders_.erase(it) : std::next(it);
  }
  if (static_cast<size_t>(node) >= shards_.size()) return;
  NodeShard& shard = Shard(node);
  shard.copies.clear();
  // Wake everything parked at this node: the reads degrade to plain local
  // reads (the read path never consumes the copy's bytes, only its
  // modeled latency), so waking on lapse cannot change any value.
  std::map<Key, std::vector<std::function<void()>>> waiters;
  waiters.swap(shard.waiters);
  for (auto& [key, list] : waiters) {
    (void)key;
    for (auto& w : list) w();
  }
}

void LeaseManager::LapseAll() {
  for (const auto& [key, set] : holders_) {
    for (NodeId holder : set) {
      ++lapses_;
      HERMES_TRACE(tracer_, obs::EventKind::kLeaseRevoke, holder, kInvalidTxn,
                   key, /*arg=*/1);
    }
  }
  holders_.clear();
  for (NodeShard& shard : shards_) {
    shard.copies.clear();
    std::map<Key, std::vector<std::function<void()>>> waiters;
    waiters.swap(shard.waiters);
    for (auto& [key, list] : waiters) {
      (void)key;
      for (auto& w : list) w();
    }
  }
}

void LeaseManager::DropCopy(NodeId node, Key key) {
  if (static_cast<size_t>(node) >= shards_.size()) return;
  NodeShard& shard = Shard(node);
  shard.copies.erase(key);
  const auto wit = shard.waiters.find(key);
  if (wit == shard.waiters.end()) return;
  std::vector<std::function<void()>> list = std::move(wit->second);
  shard.waiters.erase(wit);
  for (auto& w : list) w();
}

void LeaseManager::ApplyCopy(NodeId node, Key key,
                             const storage::Record& record, bool install,
                             TxnId txn) {
  NodeShard& shard = Shard(node);
  const auto hit = holders_.find(key);
  const bool active =
      hit != holders_.end() &&
      std::binary_search(hit->second.begin(), hit->second.end(), node);
  if (!active) {
    // Revoked or lapsed while the snapshot was on the wire.
    ++shard.stale_drops;
    return;
  }
  auto it = shard.copies.find(key);
  if (it == shard.copies.end()) {
    shard.copies.emplace(key, record);
  } else if (record.version >= it->second.version) {
    it->second = record;
  }
  if (install) {
    ++shard.installs;
  } else {
    ++shard.updates;
  }
  HERMES_TRACE(tracer_,
               install ? obs::EventKind::kReplicaInstall
                       : obs::EventKind::kReplicaUpdate,
               node, txn, key, /*arg=*/record.version);
  const auto wit = shard.waiters.find(key);
  if (wit == shard.waiters.end()) return;
  std::vector<std::function<void()>> list = std::move(wit->second);
  shard.waiters.erase(wit);
  for (auto& w : list) w();
}

bool LeaseManager::CopyPresent(NodeId node, Key key) const {
  if (static_cast<size_t>(node) >= shards_.size()) return false;
  return Shard(node).copies.count(key) > 0;
}

const std::vector<NodeId>* LeaseManager::HoldersOf(Key key) const {
  const auto it = holders_.find(key);
  return it == holders_.end() ? nullptr : &it->second;
}

void LeaseManager::WaitCopies(NodeId node, const std::vector<Key>& keys,
                              std::function<void()> ready) {
  NodeShard& shard = Shard(node);
  std::vector<Key> missing;
  for (Key k : keys) {
    if (shard.copies.count(k) > 0) continue;
    const auto hit = holders_.find(k);
    const bool active =
        hit != holders_.end() &&
        std::binary_search(hit->second.begin(), hit->second.end(), node);
    // An unleased key never blocks: the lease was revoked after routing,
    // and the read proceeds as a plain local read.
    if (active) missing.push_back(k);
  }
  if (missing.empty()) {
    ready();
    return;
  }
  auto remaining = std::make_shared<size_t>(missing.size());
  auto shared_ready =
      std::make_shared<std::function<void()>>(std::move(ready));
  for (Key k : missing) {
    shard.waiters[k].push_back([remaining, shared_ready]() {
      if (--*remaining == 0) (*shared_ready)();
    });
  }
}

uint64_t LeaseManager::Checksum() const {
  uint64_t sum = 0;
  for (size_t node = 0; node < shards_.size(); ++node) {
    for (const auto& [key, r] : shards_[node].copies) {
      sum ^= Mix64(Mix64(key ^ (static_cast<uint64_t>(node) << 48)) ^
                   r.value ^ (static_cast<uint64_t>(r.version) << 32));
    }
  }
  return sum;
}

std::vector<std::tuple<NodeId, Key, storage::Record>>
LeaseManager::SnapshotCopies() const {
  std::vector<std::tuple<NodeId, Key, storage::Record>> out;
  for (size_t node = 0; node < shards_.size(); ++node) {
    for (const auto& [key, r] : shards_[node].copies) {
      out.emplace_back(static_cast<NodeId>(node), key, r);
    }
  }
  return out;
}

void LeaseManager::CorruptCopyForTest(NodeId node, Key key) {
  NodeShard& shard = Shard(node);
  const auto it = shard.copies.find(key);
  if (it != shard.copies.end()) it->second.value ^= 0xDEADBEEF;
}

uint64_t LeaseManager::installs() const {
  uint64_t n = 0;
  for (const NodeShard& s : shards_) n += s.installs;
  return n;
}

uint64_t LeaseManager::updates() const {
  uint64_t n = 0;
  for (const NodeShard& s : shards_) n += s.updates;
  return n;
}

uint64_t LeaseManager::stale_drops() const {
  uint64_t n = 0;
  for (const NodeShard& s : shards_) n += s.stale_drops;
  return n;
}

size_t LeaseManager::num_copies() const {
  size_t n = 0;
  for (const NodeShard& s : shards_) n += s.copies.size();
  return n;
}

std::string LeaseManager::DebugString() const {
  std::string out;
  char buf[160];
  for (const auto& [key, set] : holders_) {
    std::snprintf(buf, sizeof(buf), "lease: key=%llu holders=[",
                  static_cast<unsigned long long>(key));
    out += buf;
    for (size_t i = 0; i < set.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%d", i == 0 ? "" : " ",
                    static_cast<int>(set[i]));
      out += buf;
    }
    out += "]\n";
  }
  for (size_t node = 0; node < shards_.size(); ++node) {
    for (const auto& [key, r] : shards_[node].copies) {
      std::snprintf(buf, sizeof(buf),
                    "copy: node=%zu key=%llu version=%u\n", node,
                    static_cast<unsigned long long>(key), r.version);
      out += buf;
    }
    for (const auto& [key, list] : shards_[node].waiters) {
      std::snprintf(buf, sizeof(buf),
                    "copy wait: node=%zu key=%llu (%zu)\n", node,
                    static_cast<unsigned long long>(key), list.size());
      out += buf;
    }
  }
  return out;
}

}  // namespace hermes::replication
