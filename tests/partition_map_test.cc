#include "partition/partition_map.h"

#include <memory>

#include <gtest/gtest.h>

namespace hermes::partition {
namespace {

TEST(RangePartitionMapTest, EqualRanges) {
  RangePartitionMap map(100, 4);
  EXPECT_EQ(map.Owner(0), 0);
  EXPECT_EQ(map.Owner(24), 0);
  EXPECT_EQ(map.Owner(25), 1);
  EXPECT_EQ(map.Owner(99), 3);
  EXPECT_EQ(map.num_partitions(), 4);
}

TEST(RangePartitionMapTest, RoundsUpUnevenRanges) {
  RangePartitionMap map(10, 3);  // ranges of 4
  EXPECT_EQ(map.Owner(0), 0);
  EXPECT_EQ(map.Owner(4), 1);
  EXPECT_EQ(map.Owner(8), 2);
  EXPECT_EQ(map.Owner(9), 2);
}

TEST(RangePartitionMapTest, OutOfRangeKeysClampToLastPartition) {
  RangePartitionMap map(100, 4);
  EXPECT_EQ(map.Owner(1'000'000), 3);
}

TEST(HashPartitionMapTest, CoversAllPartitionsAndIsStable) {
  HashPartitionMap map(1000, 5);
  std::vector<int> counts(5, 0);
  for (Key k = 0; k < 1000; ++k) {
    const NodeId owner = map.Owner(k);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 5);
    ++counts[owner];
    EXPECT_EQ(map.Owner(k), owner);  // stable
  }
  for (int c : counts) EXPECT_GT(c, 100);  // roughly balanced
}

TEST(CustomRangePartitionMapTest, RespectsBounds) {
  CustomRangePartitionMap map({0, 10, 50, 100});
  EXPECT_EQ(map.num_partitions(), 3);
  EXPECT_EQ(map.Owner(0), 0);
  EXPECT_EQ(map.Owner(9), 0);
  EXPECT_EQ(map.Owner(10), 1);
  EXPECT_EQ(map.Owner(49), 1);
  EXPECT_EQ(map.Owner(50), 2);
  EXPECT_EQ(map.Owner(99), 2);
  EXPECT_EQ(map.Owner(200), 2);  // clamped
}

TEST(MappedRangePartitionMapTest, MapsRangesArbitrarily) {
  MappedRangePartitionMap map(10, {2, 0, 1, 2}, 3);
  EXPECT_EQ(map.Owner(5), 2);
  EXPECT_EQ(map.Owner(15), 0);
  EXPECT_EQ(map.Owner(25), 1);
  EXPECT_EQ(map.Owner(39), 2);
  EXPECT_EQ(map.Owner(1000), 2);  // past the table: last entry
}

TEST(PartitionMapTest, CloneBehavesIdentically) {
  CustomRangePartitionMap map({0, 10, 50, 100});
  auto clone = map.Clone();
  for (Key k = 0; k < 120; ++k) EXPECT_EQ(map.Owner(k), clone->Owner(k));
}

TEST(OwnershipMapTest, KeyOverlayWinsOverBase) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  EXPECT_EQ(map.Owner(5), 0);
  map.SetKeyOwner(5, 3);
  EXPECT_EQ(map.Owner(5), 3);
  EXPECT_EQ(map.Home(5), 0);  // home ignores the per-key overlay
  map.ClearKeyOwner(5);
  EXPECT_EQ(map.Owner(5), 0);
}

TEST(OwnershipMapTest, IntervalOverlayRehomes) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(10, 19, 2);
  EXPECT_EQ(map.Owner(9), 0);
  EXPECT_EQ(map.Owner(10), 2);
  EXPECT_EQ(map.Owner(19), 2);
  EXPECT_EQ(map.Owner(20), 0);
  EXPECT_EQ(map.Home(15), 2);  // intervals change the home
}

TEST(OwnershipMapTest, KeyOverlayWinsOverInterval) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(10, 19, 2);
  map.SetKeyOwner(15, 1);
  EXPECT_EQ(map.Owner(15), 1);
  EXPECT_EQ(map.Home(15), 2);
}

TEST(OwnershipMapTest, OverlappingIntervalsSplit) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(10, 39, 1);
  map.SetRangeOwner(20, 29, 2);
  EXPECT_EQ(map.Owner(10), 1);
  EXPECT_EQ(map.Owner(19), 1);
  EXPECT_EQ(map.Owner(20), 2);
  EXPECT_EQ(map.Owner(29), 2);
  EXPECT_EQ(map.Owner(30), 1);
  EXPECT_EQ(map.Owner(39), 1);
  EXPECT_EQ(map.num_interval_entries(), 3u);
}

TEST(OwnershipMapTest, EnclosingIntervalReplacesContained) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(20, 29, 2);
  map.SetRangeOwner(10, 39, 1);
  for (Key k = 10; k <= 39; ++k) EXPECT_EQ(map.Owner(k), 1);
}

TEST(OwnershipMapTest, ExportRestoreIntervalsRoundTrips) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(10, 19, 2);
  map.SetRangeOwner(50, 59, 3);
  const auto exported = map.ExportIntervals();

  OwnershipMap other(std::make_unique<RangePartitionMap>(100, 4));
  other.RestoreIntervals(exported);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(map.Owner(k), other.Owner(k));
}

TEST(OwnershipMapTest, AdjacentIntervalBoundaries) {
  OwnershipMap map(std::make_unique<RangePartitionMap>(100, 4));
  map.SetRangeOwner(10, 19, 1);
  map.SetRangeOwner(20, 29, 2);
  EXPECT_EQ(map.Owner(19), 1);
  EXPECT_EQ(map.Owner(20), 2);
}

}  // namespace
}  // namespace hermes::partition
