#ifndef HERMES_WORKLOAD_DISTRIBUTIONS_H_
#define HERMES_WORKLOAD_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace hermes::workload {

/// YCSB-style Zipfian generator over [0, n) with skew parameter `theta`
/// (Gray et al.'s rejection-free method with precomputed zeta). theta in
/// (0, 1); 0.99 is the classic YCSB default, the paper's multi-tenant
/// workload uses 0.9.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Zipfian over [0, n) with the hot end scrambled across the key space
/// (multiplicative hashing), for workloads whose hot keys must not be
/// contiguous.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

 private:
  ZipfianGenerator zipf_;
  uint64_t n_;
};

/// The paper's "global, two-sided Zipfian distribution defined on all keys"
/// whose peak moves over time (§5.2.2): a Zipfian-distributed distance is
/// added to or subtracted from a caller-supplied peak position, wrapping
/// around the key space.
class TwoSidedZipfian {
 public:
  TwoSidedZipfian(uint64_t n, double theta);

  /// Samples a key near `peak` (both sides, Zipf-decaying distance).
  uint64_t Next(Rng& rng, uint64_t peak) const;

  uint64_t n() const { return n_; }

 private:
  ZipfianGenerator distance_;
  uint64_t n_;
};

/// Samples from a normal distribution, clamped to [min, max] and rounded
/// to an integer (the Fig. 9 transaction-length sweep).
uint64_t SampleClampedNormal(Rng& rng, double mean, double stddev,
                             uint64_t min, uint64_t max);

/// Picks an index in [0, weights.size()) proportionally to weights.
/// Weights must be non-negative with a positive sum.
size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_DISTRIBUTIONS_H_
