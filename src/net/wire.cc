#include "net/wire.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace hermes::net {

// ---------------------------------------------------------------------------
// DelayHistogram

DelayHistogram::DelayHistogram() : buckets_(kBuckets, 0) {}

size_t DelayHistogram::BucketFor(SimTime v) {
  if (v < 1) v = 1;
  int band = 63 - __builtin_clzll(v);
  if (band >= 30) band = 29;
  const uint64_t base = 1ULL << band;
  const size_t sub = band == 0 ? 0 : ((v - base) * kSubBuckets) / base;
  return static_cast<size_t>(band) * kSubBuckets +
         std::min<size_t>(sub, kSubBuckets - 1);
}

SimTime DelayHistogram::UpperBound(size_t bucket) {
  const size_t band = bucket / kSubBuckets;
  const size_t sub = bucket % kSubBuckets;
  const uint64_t base = 1ULL << band;
  return base + (base * (sub + 1)) / kSubBuckets;
}

void DelayHistogram::Record(SimTime delay_us) {
  ++buckets_[BucketFor(delay_us)];
  ++count_;
}

void DelayHistogram::Merge(const DelayHistogram& other) {
  for (size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
}

SimTime DelayHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  const auto target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return UpperBound(b);
  }
  return UpperBound(buckets_.size() - 1);
}

obs::HistogramSnapshot DelayHistogram::Snapshot() const {
  obs::HistogramSnapshot snap;
  snap.count = count_;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    snap.buckets.emplace_back(UpperBound(b), buckets_[b]);
    snap.sum += UpperBound(b) * buckets_[b];
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Wire

Wire::Wire(sim::Simulator* sim, sim::Network* network, const CostModel* costs,
           const NetConfig* config, int num_nodes)
    : sim_(sim), net_(network), costs_(costs), config_(config) {
  GrowLinks(num_nodes);
}

uint64_t Wire::Sum(const std::vector<uint64_t>& row) {
  uint64_t total = 0;
  for (uint64_t v : row) total += v;
  return total;
}

void Wire::GrowLinks(int num_nodes) {
  assert(!sim_->in_lane_context() &&
         "link growth must happen in exclusive context");
  const size_t n = static_cast<size_t>(num_nodes);
  if (links_.size() >= n) return;
  for (auto& row : links_) row.resize(n);
  links_.resize(n, std::vector<Link>(n));
  envelopes_sent_.resize(n, 0);
  coalesced_messages_.resize(n, 0);
  credit_stalls_.resize(n, 0);
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    transmits_[c].resize(n, 0);
    queue_delay_[c].resize(n);
  }
}

SimTime Wire::SerializationTime(uint64_t wire_bytes) const {
  // A zero rate derives the serializer from the cost model's per-byte wire
  // time, which is exactly what the Network charges per delivery — so the
  // serializer's occupancy and the message's wire time agree and nothing
  // is double-charged (the Send below is simply delayed until the
  // serializer frees up).
  const double us_per_byte = config_->bytes_per_us > 0
                                 ? 1.0 / config_->bytes_per_us
                                 : costs_->net_us_per_byte;
  return static_cast<SimTime>(std::llround(wire_bytes * us_per_byte));
}

bool Wire::CanAdmit(const Link& link, uint64_t wire_bytes) const {
  if (config_->link_credit_bytes == 0) return true;
  // An idle link always admits, so one oversized message can never wedge.
  if (link.outstanding == 0) return true;
  return link.outstanding + wire_bytes <= config_->link_credit_bytes;
}

void Wire::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                TrafficClass cls, std::function<void()> on_delivery) {
  assert(src >= 0 && src < static_cast<NodeId>(links_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(links_.size()));
  // Link state is row `src`: only that node's lane (or the exclusive
  // slice) may touch it — the same ownership rule as Network::Send.
  assert((!sim_->in_lane_context() ||
          sim_->current_lane() == static_cast<int>(src)) &&
         "Wire::Send must run on the source node's lane or exclusively");
  if (!config_->enabled || src == dst) {
    net_->Send(src, dst, payload_bytes, std::move(on_delivery), cls);
    return;
  }
  // A send into a live cut bypasses the queue and parks in the Network's
  // holding pen: OnLinkCut already drained this link's queue into the pen,
  // so going straight there keeps per-link FIFO order intact.
  if (!net_->reachable(src, dst)) {
    net_->Send(src, dst, payload_bytes, std::move(on_delivery), cls);
    return;
  }
  if (cls == TrafficClass::kBulk && config_->coalesce_window_us > 0) {
    AppendEnvelope(src, dst, payload_bytes, std::move(on_delivery));
    return;
  }
  Link& link = links_[src][dst];
  Pending p;
  p.cls = cls;
  p.payload_bytes = payload_bytes;
  p.enqueued = sim_->Now();
  p.cbs.push_back(std::move(on_delivery));
  link.queue.push_back(std::move(p));
  Pump(src, dst);
}

void Wire::AppendEnvelope(NodeId src, NodeId dst, uint64_t payload_bytes,
                          std::function<void()> on_delivery) {
  Link& link = links_[src][dst];
  if (!link.env_open) {
    link.env_open = true;
    link.env_bytes = 0;
    link.env_msgs = 0;
    ++link.env_gen;
    // Window timer: seal the envelope after the coalescing window unless
    // something else (size cap, link cut) sealed it first — the
    // generation check makes a stale timer a no-op.
    const uint64_t gen = link.env_gen;
    sim_->ScheduleOnLane(static_cast<int>(src), config_->coalesce_window_us,
                         [this, src, dst, gen]() {
                           Link& l = links_[src][dst];
                           if (!l.env_open || l.env_gen != gen) return;
                           FlushEnvelope(src, dst);
                           Pump(src, dst);
                         });
  }
  link.env_bytes += payload_bytes;
  ++link.env_msgs;
  link.env_cbs.push_back(std::move(on_delivery));
  if (config_->coalesce_max_bytes > 0 &&
      link.env_bytes >= config_->coalesce_max_bytes) {
    FlushEnvelope(src, dst);
    Pump(src, dst);
  }
}

void Wire::FlushEnvelope(NodeId src, NodeId dst) {
  Link& link = links_[src][dst];
  if (!link.env_open) return;
  link.env_open = false;
  ++link.env_gen;  // invalidate the pending window timer
  envelopes_sent_[src] += 1;
  coalesced_messages_[src] += link.env_msgs;
  Pending p;
  p.cls = TrafficClass::kBulk;
  p.payload_bytes = link.env_bytes;
  p.enqueued = sim_->Now();
  p.cbs = std::move(link.env_cbs);
  link.env_cbs.clear();
  link.env_bytes = 0;
  link.env_msgs = 0;
  link.queue.push_back(std::move(p));
}

void Wire::Pump(NodeId src, NodeId dst) {
  Link& link = links_[src][dst];
  if (link.timer_armed || link.queue.empty()) return;
  const SimTime now = sim_->Now();
  const SimTime start = std::max(now, link.busy_until);
  link.timer_armed = true;
  sim_->ScheduleOnLane(static_cast<int>(src), start - now,
                       [this, src, dst]() { TransmitNext(src, dst); });
}

void Wire::TransmitNext(NodeId src, NodeId dst) {
  Link& link = links_[src][dst];
  link.timer_armed = false;
  if (link.queue.empty()) return;
  const SimTime now = sim_->Now();
  if (now < link.busy_until) {
    // The serializer advanced past this timer (an earlier transmission was
    // scheduled after it was armed); try again when it frees up.
    link.timer_armed = true;
    sim_->ScheduleOnLane(static_cast<int>(src), link.busy_until - now,
                         [this, src, dst]() { TransmitNext(src, dst); });
    return;
  }

  // Fixed two-class weighted round-robin: the slot index alone decides the
  // preferred class; if that class has nothing admissible the other gets
  // the slot, so the link stays work-conserving.
  const int fg_w = std::max(config_->fg_weight, 0);
  const int bulk_w = std::max(config_->bulk_weight, 0);
  const uint64_t cycle = static_cast<uint64_t>(fg_w + bulk_w);
  const TrafficClass want =
      (cycle == 0 || link.wrr_slot % cycle < static_cast<uint64_t>(fg_w))
          ? TrafficClass::kForeground
          : TrafficClass::kBulk;
  const TrafficClass other = want == TrafficClass::kForeground
                                 ? TrafficClass::kBulk
                                 : TrafficClass::kForeground;

  size_t chosen = link.queue.size();
  for (TrafficClass cls : {want, other}) {
    for (size_t i = 0; i < link.queue.size(); ++i) {
      if (link.queue[i].cls != cls) continue;
      const uint64_t wire_bytes =
          link.queue[i].payload_bytes + costs_->message_overhead_bytes;
      if (CanAdmit(link, wire_bytes)) chosen = i;
      break;  // only the FIFO-first message of each class is eligible
    }
    if (chosen < link.queue.size()) break;
  }
  if (chosen >= link.queue.size()) {
    // Queue non-empty but nothing fits the credit window: outstanding is
    // necessarily non-zero, so a delivery (and its deferred credit
    // return) is in flight and will re-pump this link.
    ++credit_stalls_[src];
    return;
  }

  Pending p = std::move(link.queue[chosen]);
  link.queue.erase(link.queue.begin() + static_cast<long>(chosen));
  const uint64_t wire_bytes = p.payload_bytes + costs_->message_overhead_bytes;
  queue_delay_[static_cast<int>(p.cls)][src].Record(now - p.enqueued);
  ++transmits_[static_cast<int>(p.cls)][src];
  link.outstanding += wire_bytes;
  ++link.wrr_slot;
  const SimTime ser = SerializationTime(wire_bytes);
  link.busy_until = now + ser;

  // Envelope callbacks run in append order on the destination lane; the
  // credit return touches this (source) row, so it rides the barrier.
  net_->Send(src, dst, p.payload_bytes,
             [this, src, dst, wire_bytes, cbs = std::move(p.cbs)]() mutable {
               for (auto& cb : cbs) cb();
               sim_->Defer([this, src, dst, wire_bytes]() {
                 ReturnCredit(src, dst, wire_bytes);
               });
             },
             p.cls);

  if (!link.queue.empty()) {
    link.timer_armed = true;
    sim_->ScheduleOnLane(static_cast<int>(src), ser,
                         [this, src, dst]() { TransmitNext(src, dst); });
  }
}

void Wire::ReturnCredit(NodeId src, NodeId dst, uint64_t wire_bytes) {
  Link& link = links_[src][dst];
  assert(link.outstanding >= wire_bytes);
  link.outstanding -= wire_bytes;
  Pump(src, dst);
}

void Wire::OnLinkCut(NodeId src, NodeId dst) {
  assert(!sim_->in_lane_context() &&
         "queue drain into the pen must happen in exclusive context");
  Link& link = links_[src][dst];
  FlushEnvelope(src, dst);
  // Drain the transmit queue FIFO into the Network: each Send parks in the
  // cut link's holding pen with its perturbation drawn now, in queue
  // order — exactly the order it would have hit the wire. These messages
  // never charged credits (they were not yet transmitted), so their
  // delivery callbacks return none.
  while (!link.queue.empty()) {
    Pending p = std::move(link.queue.front());
    link.queue.pop_front();
    net_->Send(src, dst, p.payload_bytes,
               [cbs = std::move(p.cbs)]() mutable {
                 for (auto& cb : cbs) cb();
               },
               p.cls);
  }
}

uint64_t Wire::queued_now() const {
  uint64_t total = 0;
  for (const auto& row : links_) {
    for (const Link& link : row) {
      for (const Pending& p : link.queue) total += p.cbs.size();
      total += link.env_msgs;
    }
  }
  return total;
}

DelayHistogram Wire::MergedQueueDelay(TrafficClass cls) const {
  DelayHistogram merged;
  for (const DelayHistogram& h : queue_delay_[static_cast<int>(cls)]) {
    merged.Merge(h);
  }
  return merged;
}

}  // namespace hermes::net
