#include "engine/node.h"

namespace hermes::engine {

Node::Node(NodeId id, sim::Simulator* sim, int num_workers)
    : id_(id), workers_(sim, num_workers, /*lane=*/static_cast<int>(id)) {}

}  // namespace hermes::engine
