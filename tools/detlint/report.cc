#include "report.h"

#include <string>
#include <vector>

namespace detlint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendResult(std::string* out, bool* first, const std::string& rule_id,
                  const std::string& level, const std::string& message,
                  const std::string& file, int line) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "        {\n";
  *out += "          \"ruleId\": \"" + JsonEscape(rule_id) + "\",\n";
  *out += "          \"level\": \"" + level + "\",\n";
  *out += "          \"message\": { \"text\": \"" + JsonEscape(message) +
          "\" },\n";
  *out += "          \"locations\": [ { \"physicalLocation\": { ";
  *out += "\"artifactLocation\": { \"uri\": \"" + JsonEscape(file) +
          "\" }, ";
  *out += "\"region\": { \"startLine\": " + std::to_string(line < 1 ? 1 : line) +
          " } } } ]\n";
  *out += "        }";
}

}  // namespace

int PrintTextReport(const AnalysisResult& result, size_t file_count,
                    std::FILE* out) {
  int errors = 0;
  for (const Finding& f : result.findings) {
    std::fprintf(out, "%s:%d: error: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.excerpt.c_str());
    ++errors;
  }
  for (const Finding& a : result.annotation_errors) {
    std::fprintf(out, "%s:%d: error: %s\n", a.file.c_str(), a.line,
                 a.excerpt.c_str());
    ++errors;
  }

  int suppression_count = 0;
  for (const Suppression& s : result.suppressions) {
    ++suppression_count;
    if (KnownRules().count(s.rule) == 0) {
      std::fprintf(out, "%s:%d: error: suppression names unknown rule '%s'\n",
                   s.file.c_str(), s.line, s.rule.c_str());
      ++errors;
      continue;
    }
    if (s.justification.empty()) {
      std::fprintf(out,
                   "%s:%d: error: suppression of [%s] without a "
                   "justification\n",
                   s.file.c_str(), s.line, s.rule.c_str());
      ++errors;
      continue;
    }
    if (!s.used) {
      std::fprintf(out, "%s:%d: error: unused suppression of [%s] (stale?)\n",
                   s.file.c_str(), s.line, s.rule.c_str());
      ++errors;
      continue;
    }
    std::fprintf(out, "%s:%d: allowed [%s]: %s\n", s.file.c_str(), s.line,
                 s.rule.c_str(), s.justification.c_str());
  }

  std::fprintf(out,
               "detlint: %zu files, %d finding(s), %d suppression(s) listed "
               "above\n",
               file_count, errors, suppression_count);
  return errors;
}

std::string SarifReport(const AnalysisResult& result) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"detlint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/hermes/tools/detlint\",\n"
      "          \"rules\": [\n";
  bool first = true;
  std::vector<std::pair<std::string, std::string>> metas(
      RuleDescriptions().begin(), RuleDescriptions().end());
  metas.emplace_back("annotation",
                     "malformed detlint contract annotation "
                     "(detlint:requires/runs)");
  metas.emplace_back("suppression",
                     "detlint:allow suppression bookkeeping "
                     "(unknown rule, missing justification, stale)");
  for (const auto& [name, desc] : metas) {
    if (!first) out += ",\n";
    first = false;
    out += "            { \"id\": \"" + JsonEscape(name) +
           "\", \"shortDescription\": { \"text\": \"" + JsonEscape(desc) +
           "\" } }";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";

  first = true;
  for (const Finding& f : result.findings) {
    AppendResult(&out, &first, f.rule, "error", "[" + f.rule + "] " + f.excerpt,
                 f.file, f.line);
  }
  for (const Finding& a : result.annotation_errors) {
    AppendResult(&out, &first, "annotation", "error", a.excerpt, a.file,
                 a.line);
  }
  for (const Suppression& s : result.suppressions) {
    if (KnownRules().count(s.rule) == 0) {
      AppendResult(&out, &first, "suppression", "error",
                   "suppression names unknown rule '" + s.rule + "'", s.file,
                   s.line);
    } else if (s.justification.empty()) {
      AppendResult(&out, &first, "suppression", "error",
                   "suppression of [" + s.rule + "] without a justification",
                   s.file, s.line);
    } else if (!s.used) {
      AppendResult(&out, &first, "suppression", "error",
                   "unused suppression of [" + s.rule + "] (stale?)", s.file,
                   s.line);
    } else {
      AppendResult(&out, &first, "suppression", "note",
                   "allowed [" + s.rule + "]: " + s.justification, s.file,
                   s.line);
    }
  }

  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace detlint
