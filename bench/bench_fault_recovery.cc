// Fault-injection recovery bench: throughput dip and virtual
// time-to-recover under a seeded chaos schedule (two crash/rejoin cycles
// plus link drop/duplicate/jitter) versus the same workload fault-free.
//
// Expected shape: commits collapse in the windows containing an outage
// (the stall-and-rebuild model pauses intake for drain + outage + replay)
// and return to the fault-free level immediately after the rejoin; the
// chaos run's sent bytes exceed its received bytes by the dropped wire
// attempts, while duplicates inflate both ends.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/invariant_monitor.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace {

using hermes::ClusterConfig;
using hermes::MsToSim;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;
using hermes::fault::FaultInjector;
using hermes::fault::FaultPlan;
using hermes::fault::FaultPlanConfig;
using hermes::fault::InvariantMonitor;
using hermes::fault::RecoveryStats;

constexpr SimTime kHorizon = SecToSim(12);
constexpr int kClients = 64;
constexpr uint64_t kPlanSeed = 2026;

ClusterConfig BenchConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.num_records = 20'000;
  config.hermes.fusion_table_capacity = 500;
  return config;
}

FaultInjector::MapFactory MapFactory(const ClusterConfig& config) {
  const uint64_t records = config.num_records;
  const int nodes = config.num_nodes;
  return [records, nodes] {
    return std::make_unique<hermes::partition::RangePartitionMap>(records,
                                                                  nodes);
  };
}

struct BenchOutcome {
  std::vector<double> commits;     // per metrics window
  std::vector<double> sent;        // bytes sent per window
  std::vector<double> received;    // bytes received per window
  uint64_t total_commits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  std::vector<RecoveryStats> recoveries;
  bool monitors_ok = true;
};

BenchOutcome Run(bool inject_faults) {
  const ClusterConfig config = BenchConfig();
  Cluster cluster(config, RouterKind::kHermes, MapFactory(config)());
  cluster.Load();

  std::unique_ptr<FaultInjector> injector;
  InvariantMonitor monitor(config.num_records);
  if (inject_faults) {
    FaultPlanConfig pc;
    pc.horizon_us = kHorizon;
    pc.num_nodes = config.num_nodes;
    pc.crash_cycles = 2;
    pc.min_outage_us = MsToSim(200);
    pc.max_outage_us = MsToSim(800);
    pc.link.drop_prob = 0.02;
    pc.link.duplicate_prob = 0.01;
    pc.link.max_jitter_us = 300;
    const FaultPlan plan = FaultPlan::Generate(pc, kPlanSeed);
    std::printf("%s", plan.DebugString().c_str());
    injector = std::make_unique<FaultInjector>(&cluster, plan,
                                               MapFactory(config));
    injector->set_monitor(&monitor);
  }

  hermes::workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 1337;
  hermes::workload::YcsbWorkload gen(wl, nullptr);
  hermes::workload::ClosedLoopDriver driver(
      &cluster, kClients,
      [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();

  if (injector) {
    injector->RunUntil(kHorizon);
    injector->Drain();
  } else {
    cluster.RunUntil(kHorizon);
    cluster.Drain();
  }

  BenchOutcome out;
  const auto& m = cluster.metrics();
  const size_t windows = kHorizon / m.window_us();
  for (size_t w = 0; w < windows; ++w) {
    const bool have = w < m.windows().size();
    out.commits.push_back(have ? m.windows()[w].commits : 0.0);
    out.sent.push_back(have ? m.windows()[w].net_bytes : 0.0);
    out.received.push_back(have ? m.windows()[w].net_bytes_received : 0.0);
  }
  out.total_commits = cluster.metrics().total_commits();
  out.dropped = cluster.network().messages_dropped();
  out.duplicated = cluster.network().messages_duplicated();
  if (injector) {
    out.recoveries = injector->recoveries();
    out.monitors_ok = monitor.ok();
    if (!monitor.ok()) std::printf("%s", monitor.FailureReport().c_str());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Fault recovery bench: seeded chaos vs fault-free baseline\n");
  BenchOutcome baseline = Run(/*inject_faults=*/false);
  BenchOutcome chaos = Run(/*inject_faults=*/true);

  PrintSeriesTable("throughput under chaos", {"fault_free", "chaos"},
                   {baseline.commits, chaos.commits}, 1.0,
                   "commits per window");
  PrintSeriesTable("chaos run wire traffic", {"sent", "received"},
                   {chaos.sent, chaos.received}, 1.0, "bytes per window");

  std::printf("\nrecoveries (virtual time):\n");
  for (const RecoveryStats& r : chaos.recoveries) {
    std::printf(
        "  node %d: crash at %.3fs, drained +%.1fms, outage to %.3fs, "
        "replay %.1fms (%llu batches), recovered in %.1fms\n",
        r.node, r.crash_at / 1e6,
        (r.drained_at - r.crash_at) / 1e3, r.rejoin_at / 1e6,
        r.replay_us / 1e3,
        static_cast<unsigned long long>(r.replayed_batches),
        r.time_to_recover_us() / 1e3);
  }

  std::printf("\ntotals: fault-free commits=%llu chaos commits=%llu "
              "dropped=%llu duplicated=%llu monitors=%s\n",
              static_cast<unsigned long long>(baseline.total_commits),
              static_cast<unsigned long long>(chaos.total_commits),
              static_cast<unsigned long long>(chaos.dropped),
              static_cast<unsigned long long>(chaos.duplicated),
              chaos.monitors_ok ? "ok" : "FAILED");
  std::printf("paper shape: throughput dips only in outage windows and "
              "recovers immediately after rejoin\n");
  return chaos.monitors_ok ? 0 : 1;
}
