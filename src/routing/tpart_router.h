#ifndef HERMES_ROUTING_TPART_ROUTER_H_
#define HERMES_ROUTING_TPART_ROUTER_H_

#include <string>

#include "routing/router.h"

namespace hermes::routing {

/// T-Part baseline (Wu et al., SIGMOD'16; paper §5.2.1): transaction
/// routing only. Each transaction gets a single master chosen to minimize
/// remote accesses subject to a per-node load cap; within a batch, written
/// records are *forward-pushed* — a later transaction reads them from the
/// previous writer's node instead of from storage. Because the static
/// partitions never change, every borrowed record is shipped back to its
/// home partition once the last in-batch user commits.
class TPartRouter : public Router {
 public:
  TPartRouter(partition::OwnershipMap* ownership, const CostModel* costs,
              int num_nodes, double alpha = 0.0);

  RoutePlan RouteBatch(const Batch& batch) override;
  std::string name() const override { return "tpart"; }

  uint64_t forward_pushes() const { return forward_pushes_; }
  uint64_t writebacks() const { return writebacks_; }

 private:
  double alpha_;
  uint64_t forward_pushes_ = 0;
  uint64_t writebacks_ = 0;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_TPART_ROUTER_H_
