// Ablation study of the prescient routing's design choices (DESIGN.md §5;
// the paper's supplementary materials discuss several of these):
//
//   reorder      step-1 batch reordering on/off (Fig. 3 ping-pong
//                avoidance comes from reordering)
//   rebalance    step-3 load balancing on/off (off degenerates toward
//                LEAP-like pile-up under skew)
//   pass dir     backward (paper) vs forward step-3 walk
//   alpha        load-imbalance tolerance sweep
//   fusion cap   fusion-table capacity sweep (the §4.1 trade-off)
//   policy       LRU vs FIFO eviction

#include <cstdio>

#include "bench_common.h"

using hermes::ClusterConfig;
using hermes::EvictionPolicy;
using hermes::bench::GoogleRunParams;
using hermes::bench::RunGoogleWorkload;
using hermes::engine::RouterKind;

namespace {

double Run(std::function<void(ClusterConfig&)> tweak,
           double fusion_frac = 0.025) {
  GoogleRunParams params;
  params.windows = 5;
  params.fusion_capacity_frac = fusion_frac;
  params.tweak = std::move(tweak);
  return RunGoogleWorkload(RouterKind::kHermes, std::move(params))
      .mean_throughput;
}

}  // namespace

int main() {
  std::printf("Hermes ablations under the Google workload (txn/s)\n\n");

  const double full = Run(nullptr);
  std::printf("full algorithm                 %8.0f\n", full);

  std::printf("no step-1 reordering           %8.0f\n",
              Run([](ClusterConfig& c) { c.hermes.enable_reorder = false; }));
  std::printf("no step-3 load balancing       %8.0f\n",
              Run([](ClusterConfig& c) { c.hermes.enable_rebalance = false; }));
  std::printf("forward step-3 pass            %8.0f\n",
              Run([](ClusterConfig& c) { c.hermes.backward_pass = false; }));

  std::printf("\nalpha sweep (load tolerance):\n");
  for (double alpha : {0.0, 0.25, 1.0, 4.0}) {
    std::printf("  alpha=%.2f                   %8.0f\n", alpha,
                Run([alpha](ClusterConfig& c) { c.hermes.alpha = alpha; }));
  }

  std::printf("\nfusion table capacity sweep (fraction of database):\n");
  for (double frac : {0.005, 0.025, 0.10}) {
    std::printf("  capacity=%.1f%%                %8.0f\n", frac * 100,
                Run(nullptr, frac));
  }
  std::printf("  unbounded                    %8.0f\n",
              Run([](ClusterConfig& c) {
                c.hermes.fusion_table_capacity = 0;
              }));

  std::printf("\neviction policy:\n");
  std::printf("  LRU                          %8.0f\n", Run(nullptr));
  std::printf("  FIFO                         %8.0f\n",
              Run([](ClusterConfig& c) {
                c.hermes.eviction_policy = EvictionPolicy::kFifo;
              }));

  std::printf("\nexpected shape: the full algorithm dominates; dropping "
              "rebalancing hurts most under the skewed trace; tiny fusion "
              "tables cost eviction churn; very large alpha trades balance "
              "for locality\n");
  return 0;
}
