// detlint-fixture: path=src/replication/lane_confinement_replication_pos.cc
// detlint:requires(exclusive)
void LapseNode(int node);

void OnLaneDelivery(int node) {
  LapseNode(node);
}
