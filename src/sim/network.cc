#include "sim/network.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace hermes::sim {

Network::Network(Simulator* sim, const CostModel* costs, int num_nodes)
    : sim_(sim), costs_(costs) {
  EnsureCapacity(num_nodes);
}

void Network::EnsureCapacity(int num_nodes) {
  const size_t n = static_cast<size_t>(num_nodes);
  if (bytes_sent_.size() >= n) return;
  bytes_sent_.resize(n, 0);
  bytes_received_.resize(n, 0);
  messages_received_.resize(n, 0);
  for (auto& row : link_messages_) row.resize(n, 0);
  link_messages_.resize(n, std::vector<uint64_t>(n, 0));
}

void Network::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                   std::function<void()> on_delivery) {
  assert(src >= 0 && src < static_cast<NodeId>(bytes_sent_.size()));
  assert(dst >= 0 && dst < static_cast<NodeId>(bytes_sent_.size()));
  if (src == dst) {
    // Local hand-off: no wire bytes, no latency, but still asynchronous so
    // that callers never re-enter themselves.
    sim_->Schedule(0, std::move(on_delivery));
    return;
  }
  const uint64_t bytes = payload_bytes + costs_->message_overhead_bytes;

  Perturbation p;
  if (perturb_) p = perturb_(src, dst, bytes, sim_->Now());
  assert(p.dropped_attempts >= 0 && p.duplicates >= 0);

  // Every wire attempt — dropped, duplicated, or delivered — costs sender
  // bytes and counts on the directed link.
  const uint64_t attempts =
      1 + static_cast<uint64_t>(p.dropped_attempts) +
      static_cast<uint64_t>(p.duplicates);
  bytes_sent_[src] += bytes * attempts;
  total_bytes_ += bytes * attempts;
  total_messages_ += attempts;
  link_messages_[src][dst] += attempts;
  messages_dropped_ += p.dropped_attempts;
  messages_duplicated_ += p.duplicates;

  // Delivered copies (the real one plus dedup-suppressed duplicates) count
  // at the receiver; the callback fires exactly once.
  const uint64_t delivered = 1 + static_cast<uint64_t>(p.duplicates);
  bytes_received_[dst] += bytes * delivered;
  total_bytes_received_ += bytes * delivered;
  messages_received_[dst] += delivered;

  const SimTime wire =
      costs_->net_latency_us +
      static_cast<SimTime>(std::llround(bytes * costs_->net_us_per_byte)) +
      p.extra_delay_us;
  sim_->Schedule(wire, std::move(on_delivery));
}

}  // namespace hermes::sim
