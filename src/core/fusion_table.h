#ifndef HERMES_CORE_FUSION_TABLE_H_
#define HERMES_CORE_FUSION_TABLE_H_

#include <functional>
#include <list>
#include <optional>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/digest.h"
#include "common/hash.h"
#include "common/types.h"
#include "obs/trace.h"

namespace hermes::core {

/// The fusion table (§3.1, §4.1): a bounded lookup table of
/// (hot record key -> partition) pairs, logically replicated on every
/// scheduler. Replicas are never synchronized over the network — each
/// scheduler derives identical contents by running the deterministic
/// prescient routing over the same totally ordered input, so this class
/// must be strictly deterministic: eviction order is FIFO or LRU over an
/// explicit recency list, never hash-map iteration order.
///
/// When an insertion pushes the table past capacity, the eviction victims
/// are returned to the caller; the router appends them to the current
/// transaction's write-set so their records migrate back to their home
/// partitions (§4.1).
class FusionTable {
 public:
  /// `capacity` == 0 means unbounded (used by the LEAP baseline, which
  /// fuses without ever evicting).
  FusionTable(size_t capacity, EvictionPolicy policy);

  FusionTable(const FusionTable&) = delete;
  FusionTable& operator=(const FusionTable&) = delete;

  /// Current placement of `key`, if tracked. Under LRU, a hit refreshes
  /// the key's recency when `touch` is true (routing lookups touch;
  /// diagnostic reads must not).
  std::optional<NodeId> Lookup(Key key, bool touch);

  /// Read-only lookup (never perturbs recency).
  std::optional<NodeId> Peek(Key key) const;

  /// Inserts or updates `key -> node` and refreshes recency. Entries
  /// evicted to respect capacity are appended to `*evicted` (the freshly
  /// touched key is never its own victim).
  void Put(Key key, NodeId node, std::vector<Key>* evicted);

  /// Like Put, but keys in `pinned` are skipped as eviction victims (the
  /// router pins the current transaction's write-set: those records are
  /// mid-migration to the master and must not simultaneously be shipped
  /// home). If every entry is pinned the table temporarily overflows.
  void PutPinned(Key key, NodeId node, const HashSet<Key>& pinned,
                 std::vector<Key>* evicted);

  /// PutPinned over a sorted pinned-key span (binary-searched), so callers
  /// routing in a hot loop need not build a hash set per transaction.
  void PutPinned(Key key, NodeId node, std::span<const Key> sorted_pinned,
                 std::vector<Key>* evicted);

  /// Drops `key` (its record migrated back home or left with its node).
  void Erase(Key key);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Keys in eviction order (front = next victim), for checkpointing.
  std::vector<Key> ExportOrder() const;

  /// Rebuilds contents and order from a checkpoint.
  void Restore(const HashMap<Key, NodeId>& entries,
               const std::vector<Key>& order);

  /// Order-insensitive digest of the table contents; used by determinism
  /// tests to compare scheduler replicas.
  uint64_t Checksum() const;

  /// Attaches a decision digest: every eviction victim is mixed in, in
  /// eviction order (evictions are routing decisions — they append
  /// migration accesses to the current transaction's plan).
  void set_digest(DecisionDigest* digest) { digest_ = digest; }

  /// Attaches the passive tracer: evictions emit kFusionEvict events
  /// (write-only; no table or eviction decision reads tracer state).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Eviction eligibility filter (nullptr = everything evictable). Used
  /// by degraded mode: a key whose homeward migration would ship toward a
  /// dead node keeps its slot until that node rejoins. The filter must be
  /// a pure function of deterministic state (membership epoch + static
  /// homes), never of hash order or wall clock.
  void set_eviction_filter(std::function<bool(Key)> evictable) {
    evictable_ = std::move(evictable);
  }

 private:
  struct Entry {
    NodeId node;
    std::list<Key>::iterator pos;
  };

  void TouchEntry(Entry& entry, Key key);

  template <typename PinnedFn>
  void PutPinnedImpl(Key key, NodeId node, PinnedFn&& is_pinned,
                     std::vector<Key>* evicted);

  size_t capacity_;
  EvictionPolicy policy_;
  std::list<Key> order_;  // front = oldest / next eviction victim
  HashMap<Key, Entry> entries_;
  DecisionDigest* digest_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::function<bool(Key)> evictable_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_FUSION_TABLE_H_
