#ifndef HERMES_TOOLS_DETLINT_REPORT_H_
#define HERMES_TOOLS_DETLINT_REPORT_H_

// detlint reporting: the human-readable text report (stdout, the format
// CI logs and developers read) and a SARIF 2.1.0 document so CI can
// surface findings as code annotations and archive them as artifacts.

#include <cstdio>
#include <string>

#include "rules.h"

namespace detlint {

/// Prints the classic text report to `out` and returns the error count:
/// unsuppressed findings + malformed annotations + suppression problems
/// (unknown rule, missing justification, unused). `file_count` feeds the
/// summary line.
int PrintTextReport(const AnalysisResult& result, size_t file_count,
                    std::FILE* out);

/// Renders the same diagnostics as a SARIF 2.1.0 run: findings and
/// suppression/annotation problems as "error" results, honored
/// suppressions as "note" results, with the full rule catalog as tool
/// metadata.
std::string SarifReport(const AnalysisResult& result);

}  // namespace detlint

#endif  // HERMES_TOOLS_DETLINT_REPORT_H_
