#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hermes {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Split();
  // The child must not replay the parent's stream.
  Rng a2(21);
  (void)a2.Next();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() == a2.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Mix64IsStable) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(RngTest, SplitMix64AdvancesState) {
  uint64_t s = 5;
  const uint64_t v1 = SplitMix64(s);
  const uint64_t v2 = SplitMix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 5u);
}

}  // namespace
}  // namespace hermes
