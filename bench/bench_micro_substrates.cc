// Microbenchmarks for the substrate data structures (google-benchmark):
// conservative ordered lock manager, fusion table, Zipfian generators,
// event queue, and record store.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/fusion_table.h"
#include "sim/event_queue.h"
#include "storage/lock_manager.h"
#include "storage/record_store.h"
#include "workload/distributions.h"

namespace {

using hermes::EvictionPolicy;
using hermes::Key;
using hermes::Rng;
using hermes::TxnId;

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  const int keys_per_txn = static_cast<int>(state.range(0));
  hermes::storage::LockManager lm;
  Rng rng(1);
  std::vector<TxnId> granted;
  TxnId next = 0;
  for (auto _ : state) {
    const TxnId txn = next++;
    std::vector<hermes::storage::LockRequest> reqs;
    reqs.reserve(keys_per_txn);
    for (int i = 0; i < keys_per_txn; ++i) {
      reqs.push_back({rng.NextBounded(100'000) * keys_per_txn +
                          static_cast<Key>(i),
                      (i & 1) != 0});
    }
    granted.clear();
    lm.Acquire(txn, reqs, &granted);
    granted.clear();
    lm.Release(txn, &granted);
  }
  state.SetItemsProcessed(state.iterations() * keys_per_txn);
}
BENCHMARK(BM_LockManagerAcquireRelease)->Arg(2)->Arg(10)->Arg(50);

void BM_LockManagerContendedQueue(benchmark::State& state) {
  // All transactions on one key: measures queue churn.
  hermes::storage::LockManager lm;
  std::vector<TxnId> granted;
  TxnId next = 0;
  constexpr int kDepth = 64;
  for (TxnId t = 0; t < kDepth; ++t) {
    granted.clear();
    lm.Acquire(next++, {{1, true}}, &granted);
  }
  TxnId oldest = 0;
  for (auto _ : state) {
    granted.clear();
    lm.Release(oldest++, &granted);
    granted.clear();
    lm.Acquire(next++, {{1, true}}, &granted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockManagerContendedQueue);

void BM_FusionTablePut(benchmark::State& state) {
  const size_t capacity = static_cast<size_t>(state.range(0));
  hermes::core::FusionTable table(capacity, EvictionPolicy::kLru);
  Rng rng(2);
  std::vector<Key> evicted;
  for (auto _ : state) {
    evicted.clear();
    table.Put(rng.NextBounded(capacity * 4), 1, &evicted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusionTablePut)->Arg(1'000)->Arg(100'000);

void BM_FusionTableLookupHit(benchmark::State& state) {
  hermes::core::FusionTable table(100'000, EvictionPolicy::kLru);
  std::vector<Key> evicted;
  for (Key k = 0; k < 100'000; ++k) table.Put(k, 1, &evicted);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(rng.NextBounded(100'000), /*touch=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusionTableLookupHit);

void BM_ZipfianNext(benchmark::State& state) {
  hermes::workload::ZipfianGenerator zipf(
      static_cast<uint64_t>(state.range(0)), 0.9);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext)->Arg(1'000'000)->Arg(200'000'000);

void BM_EventQueuePushPop(benchmark::State& state) {
  hermes::sim::EventQueue q;
  Rng rng(5);
  // Steady-state queue of 10k pending events.
  for (int i = 0; i < 10'000; ++i) q.Push(rng.NextBounded(1'000'000), [] {});
  uint64_t t = 1'000'000;
  for (auto _ : state) {
    q.Push(t + rng.NextBounded(1000), [] {});
    q.Pop()();
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop);

void BM_RecordStoreApplyWrite(benchmark::State& state) {
  hermes::storage::RecordStore store;
  for (Key k = 0; k < 1'000'000; ++k) {
    store.Insert(k, hermes::storage::Record{.value = k});
  }
  Rng rng(6);
  TxnId txn = 0;
  for (auto _ : state) {
    store.ApplyWrite(rng.NextBounded(1'000'000), txn++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordStoreApplyWrite);

void BM_RecordStoreMigrate(benchmark::State& state) {
  // Extract from one store, insert into another (the data-fusion path).
  hermes::storage::RecordStore a, b;
  for (Key k = 0; k < 100'000; ++k) {
    a.Insert(k, hermes::storage::Record{.value = k});
  }
  Key k = 0;
  for (auto _ : state) {
    const Key key = k % 100'000;
    if (auto rec = a.Extract(key)) {
      b.Insert(key, *rec);
    } else {
      auto rec2 = b.Extract(key);
      a.Insert(key, *rec2);
    }
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordStoreMigrate);

}  // namespace

BENCHMARK_MAIN();
