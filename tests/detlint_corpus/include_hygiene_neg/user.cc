// detlint-fixture: path=src/engine/ihn_user.cc
#include "common/span.h"
