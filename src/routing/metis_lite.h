#ifndef HERMES_ROUTING_METIS_LITE_H_
#define HERMES_ROUTING_METIS_LITE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hermes::routing {

/// An undirected weighted graph in adjacency-list form. Parallel edges may
/// be pre-merged by the builder; both directions must be present.
struct Graph {
  std::vector<uint64_t> vertex_weight;
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> adj;

  size_t num_vertices() const { return vertex_weight.size(); }

  /// Sum of weights of edges crossing partitions under `assignment`
  /// (each undirected edge counted once).
  uint64_t CutWeight(const std::vector<int>& assignment) const;
};

/// Balanced min-edge-cut graph partitioning in the spirit of METIS
/// (Karypis & Kumar): greedy affinity-based seeding over vertices in
/// descending weight order, followed by Kernighan–Lin-style single-vertex
/// refinement passes that move boundary vertices to their best-gain
/// partition subject to the balance cap.
///
/// Schism models records (here: key ranges) as vertices and co-access
/// frequencies as edges; this partitioner plays the role METIS plays in
/// the Schism paper. Deterministic by construction (stable orders, no RNG).
///
/// `imbalance` caps every partition's vertex-weight at
/// (1 + imbalance) * total / k. Returns a partition id in [0, k) per
/// vertex.
std::vector<int> PartitionGraph(const Graph& graph, int k, double imbalance,
                                int refinement_passes = 8);

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_METIS_LITE_H_
