// Reproduces Fig. 14: dynamic machine provisioning. A 3-node cluster
// running the multi-tenant workload with a single hot tenant on node 0
// receives a 4th node; the hot tenant's range is migrated to it.
//
// Systems:
//   squall          Calvin + chunk migrations starting immediately
//   clay_squall     Calvin + chunk migrations after Clay's monitoring lag
//   hermes_no_cold_5   Hermes, fusion table 5% of DB, no cold migration
//   hermes_no_cold_10  Hermes, fusion table 10% of DB, no cold migration
//   hermes_cold_5      Hermes, fusion table 5%, plus cold chunk migration
//
// Expected shape (paper): Squall/Clay+Squall dip hard during migration
// (chunks block hot records) and only recover afterwards; Hermes improves
// immediately after the marker (prescient routing shifts hot records via
// data fusion, skipping them in chunks); a larger fusion table helps more;
// cold migration still pays off later without hurting the early phase.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "workload/client.h"
#include "workload/multitenant.h"

namespace {

using hermes::ClusterConfig;
using hermes::RangeMove;
using hermes::SecToSim;
using hermes::SimTime;
using hermes::bench::PrintSeriesTable;
using hermes::engine::Cluster;
using hermes::engine::RouterKind;

constexpr SimTime kAddAt = SecToSim(15);
constexpr SimTime kHorizon = SecToSim(60);
constexpr SimTime kClayLag = SecToSim(5);  // Clay monitors before planning

std::vector<double> RunScaleOut(RouterKind kind, double fusion_frac,
                                bool migrate_cold, SimTime add_delay) {
  hermes::workload::MultiTenantConfig mt;
  mt.num_nodes = 3;
  mt.tenants_per_node = 4;
  mt.records_per_tenant = 25'000;
  mt.rotation_us = SecToSim(100'000);  // hot tenant stays on node 0
  mt.hot_fraction = 0.5;
  hermes::workload::MultiTenantWorkload gen(mt);

  ClusterConfig config;
  config.num_nodes = mt.num_nodes;
  config.num_records = gen.num_records();
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity =
      static_cast<size_t>(fusion_frac * gen.num_records());
  config.migration_chunk_records = 500;
  Cluster cluster(config, kind, gen.PerfectPartitioning());
  cluster.Load();

  hermes::workload::ClosedLoopDriver driver(
      &cluster, 700, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(kHorizon);
  driver.Start();

  cluster.RunUntil(kAddAt + add_delay);
  // The cold plan moves the hot tenant (first quarter of node 0's keys).
  const std::vector<RangeMove> cold_plan = {
      {0, mt.records_per_tenant - 1, 3}};
  cluster.AddNode(cold_plan, migrate_cold);
  cluster.RunUntil(kHorizon);
  cluster.Drain();

  std::vector<double> series;
  const auto& windows = cluster.metrics().windows();
  for (size_t w = 0; w + 1 < kHorizon / SecToSim(1); w += 2) {
    double commits = 0;
    for (size_t i = w; i < w + 2 && i < windows.size(); ++i) {
      commits += static_cast<double>(windows[i].commits);
    }
    series.push_back(commits);
  }
  return series;
}

}  // namespace

int main() {
  std::printf("Fig. 14 reproduction: scale-out 3 -> 4 nodes at t=%llus "
              "(hot tenant on node 0, 25%% of load)\n",
              static_cast<unsigned long long>(kAddAt / 1'000'000));

  const auto squall =
      RunScaleOut(RouterKind::kCalvin, 0.0, /*cold=*/true, 0);
  const auto clay_squall =
      RunScaleOut(RouterKind::kCalvin, 0.0, /*cold=*/true, kClayLag);
  const auto hermes_no5 =
      RunScaleOut(RouterKind::kHermes, 0.05, /*cold=*/false, 0);
  const auto hermes_no10 =
      RunScaleOut(RouterKind::kHermes, 0.10, /*cold=*/false, 0);
  const auto hermes_cold5 =
      RunScaleOut(RouterKind::kHermes, 0.05, /*cold=*/true, 0);

  PrintSeriesTable("Fig 14: throughput during scale-out",
                   {"squall", "clay_squall", "hermes_no_cold_5",
                    "hermes_no_cold_10", "hermes_cold_5"},
                   {squall, clay_squall, hermes_no5, hermes_no10,
                    hermes_cold5},
                   2.0, "committed txns per 2s window");
  std::printf("\npaper shape: squall variants dip during migration; hermes "
              "rises right after the node joins; bigger fusion table rises "
              "higher; cold migration wins in the late phase\n");
  return 0;
}
