#include "migration/squall.h"

#include <algorithm>

namespace hermes::migration {

std::vector<TxnRequest> BuildChunkTransactions(
    const std::vector<routing::ClumpMove>& moves, uint64_t chunk_records,
    obs::Tracer* tracer) {
  const uint64_t chunk = std::max<uint64_t>(chunk_records, 1);
  std::vector<TxnRequest> txns;
  for (const routing::ClumpMove& mv : moves) {
    for (Key lo = mv.lo; lo <= mv.hi;) {
      const Key hi = std::min(mv.hi, lo + chunk - 1);
      TxnRequest txn;
      txn.kind = TxnKind::kChunkMigration;
      txn.migration_target = mv.target;
      txn.write_set.reserve(hi - lo + 1);
      for (Key k = lo; k <= hi; ++k) txn.write_set.push_back(k);
      HERMES_TRACE(tracer, obs::EventKind::kChunkMigration, mv.target,
                   kInvalidTxn, lo, hi - lo + 1);
      txns.push_back(std::move(txn));
      if (hi == mv.hi) break;
      lo = hi + 1;
    }
  }
  return txns;
}

}  // namespace hermes::migration
