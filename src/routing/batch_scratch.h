#ifndef HERMES_ROUTING_BATCH_SCRATCH_H_
#define HERMES_ROUTING_BATCH_SCRATCH_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "common/types.h"

namespace hermes::routing {

/// Half-open range into a flat per-batch arena (see KeyInterner / Csr).
struct Span {
  int32_t begin = 0;
  int32_t end = 0;
  int32_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Per-batch key interner: maps the keys a batch touches to dense ids
/// `[0, num_keys)` so routers can replace `unordered_map<Key, ...>` state
/// with flat vector indexing. Ids are assigned in ascending key order,
/// which is a pure function of the batch contents (deterministic across
/// scheduler replicas).
///
/// All storage is reused across batches — `BeginBatch` clears sizes but
/// keeps capacity, so steady-state interning performs no heap allocation.
///
/// Usage: BeginBatch(); AddSet(...) per key set (sorts and dedups each set
/// in place in the arena — no per-set vector copies); Seal(); then
/// IdsOf(span) yields the dense ids of a set, sorted ascending.
class KeyInterner {
 public:
  void BeginBatch() {
    arena_.clear();
    ids_.clear();
    uniq_.clear();
  }

  /// Copies `keys` into the arena, sorts and dedups in place, and returns
  /// the arena span of the deduplicated set.
  Span AddSet(const std::vector<Key>& keys) {
    const auto begin = static_cast<int32_t>(arena_.size());
    arena_.insert(arena_.end(), keys.begin(), keys.end());
    auto first = arena_.begin() + begin;
    std::sort(first, arena_.end());
    arena_.erase(std::unique(first, arena_.end()), arena_.end());
    return Span{begin, static_cast<int32_t>(arena_.size())};
  }

  /// Builds the dense id space from every set added since BeginBatch and
  /// translates the arena to ids. Call once, after the last AddSet.
  void Seal();

  int32_t num_keys() const { return static_cast<int32_t>(uniq_.size()); }

  /// The key behind a dense id (ids ascend with keys).
  Key KeyOf(int32_t id) const { return uniq_[id]; }

  /// Dense ids of a set previously returned by AddSet, sorted ascending.
  std::span<const int32_t> IdsOf(Span s) const {
    return {ids_.data() + s.begin, static_cast<size_t>(s.size())};
  }

  /// Keys of a set previously returned by AddSet, sorted ascending.
  std::span<const Key> KeysOf(Span s) const {
    return {arena_.data() + s.begin, static_cast<size_t>(s.size())};
  }

 private:
  std::vector<Key> arena_;    // concatenated sorted-unique key sets
  std::vector<int32_t> ids_;  // arena_ translated to dense ids (after Seal)
  std::vector<Key> uniq_;     // id -> key, sorted ascending
};

/// Reusable compressed-sparse-row adjacency: `num_lists` lists of int32
/// items built in two passes (count, then fill). Replaces per-batch
/// `unordered_map<Key, vector<int>>` churn with three flat vectors whose
/// capacity persists across batches.
class Csr {
 public:
  void Reset(int32_t num_lists) {
    off_.assign(static_cast<size_t>(num_lists) + 1, 0);
    items_.clear();
  }
  void CountItem(int32_t list) { ++off_[list + 1]; }
  void CommitCounts() {
    std::partial_sum(off_.begin(), off_.end(), off_.begin());
    items_.resize(off_.back());
    cursor_.assign(off_.begin(), off_.end() - 1);
  }
  void Fill(int32_t list, int32_t item) { items_[cursor_[list]++] = item; }

  std::span<const int32_t> Items(int32_t list) const {
    return {items_.data() + off_[list],
            static_cast<size_t>(off_[list + 1] - off_[list])};
  }

 private:
  std::vector<int32_t> off_;     // num_lists + 1 offsets
  std::vector<int32_t> cursor_;  // fill positions during pass 2
  std::vector<int32_t> items_;
};

/// Monotone bucket priority queue with lazy revalidation, used by the
/// prescient routing's Step 1: candidates are bucketed by their current
/// remote-read count and re-pushed (not removed) when a data-fusion
/// rescore changes it; stale entries are discarded at pop time by the
/// caller-supplied validity predicate. Each bucket is a binary min-heap
/// on candidate index, so Pop returns the *earliest-submitted* candidate
/// among those with the minimal remote-read count — exactly the reference
/// algorithm's full-rescan tiebreak, at amortized O(log b) per operation.
///
/// Bucket storage (outer and inner vectors) is reused across batches.
class BucketQueue {
 public:
  void Reset(int32_t num_buckets) {
    if (static_cast<int32_t>(buckets_.size()) < num_buckets) {
      buckets_.resize(num_buckets);
    }
    for (int32_t v = 0; v < num_buckets; ++v) buckets_[v].clear();
    num_buckets_ = num_buckets;
    min_bucket_ = 0;
  }

  void Push(int32_t bucket, int32_t idx) {
    assert(bucket >= 0 && bucket < num_buckets_);
    auto& heap = buckets_[bucket];
    heap.push_back(idx);
    std::push_heap(heap.begin(), heap.end(), std::greater<int32_t>());
    min_bucket_ = std::min(min_bucket_, bucket);
  }

  /// Pops the smallest valid index from the lowest bucket holding one.
  /// `valid(idx, bucket)` must return whether the entry is current (the
  /// candidate is unplaced and its score still equals `bucket`). The
  /// caller guarantees at least one valid entry exists.
  template <typename ValidFn>
  int32_t Pop(ValidFn&& valid) {
    for (int32_t v = min_bucket_; v < num_buckets_; ++v) {
      auto& heap = buckets_[v];
      while (!heap.empty()) {
        const int32_t idx = heap.front();
        std::pop_heap(heap.begin(), heap.end(), std::greater<int32_t>());
        heap.pop_back();
        if (valid(idx, v)) {
          min_bucket_ = v;
          return idx;
        }
      }
      // Bucket drained; the minimum can only be above it until a Push
      // lowers it again.
      min_bucket_ = v + 1;
    }
    assert(false && "BucketQueue::Pop on an empty queue");
    return -1;
  }

 private:
  std::vector<std::vector<int32_t>> buckets_;
  int32_t num_buckets_ = 0;
  int32_t min_bucket_ = 0;
};

}  // namespace hermes::routing

#endif  // HERMES_ROUTING_BATCH_SCRATCH_H_
