#include "sim/event_queue.h"

#include <utility>

namespace hermes::sim {

void EventQueue::Push(SimTime when, std::function<void()> fn) {
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

std::function<void()> EventQueue::Pop() {
  std::function<void()> fn = std::move(heap_.top().fn);
  heap_.pop();
  return fn;
}

}  // namespace hermes::sim
