// detlint-fixture: path=src/sim/lane_confinement_partition_pos.cc
// detlint:requires(exclusive)
void CutLink(int src, int dst);

// detlint:requires(exclusive)
void HealLink(int src, int dst);

void OnLaneSendFailure(int src, int dst) {
  CutLink(src, dst);
}

void OnLaneRecovery(int src, int dst) {
  HealLink(src, dst);
}
