#include "storage/undo_log.h"

#include <gtest/gtest.h>

namespace hermes::storage {
namespace {

TEST(UndoLogTest, AbortRestoresPreImages) {
  RecordStore store;
  store.Insert(1, Record{.value = 10});
  store.Insert(2, Record{.value = 20});
  UndoLog undo;

  undo.RecordPreImage(7, 1, *store.Get(1));
  store.ApplyWrite(1, 7);
  undo.RecordPreImage(7, 2, *store.Get(2));
  store.ApplyWrite(2, 7);

  undo.Abort(7, &store);
  EXPECT_EQ(store.Get(1)->value, 10u);
  EXPECT_EQ(store.Get(2)->value, 20u);
  EXPECT_EQ(undo.active_txns(), 0u);
}

TEST(UndoLogTest, AbortRestoresNewestFirst) {
  // Two writes to the same key: the FIRST pre-image must win.
  RecordStore store;
  store.Insert(1, Record{.value = 10});
  UndoLog undo;
  undo.RecordPreImage(7, 1, *store.Get(1));
  store.ApplyWrite(1, 7);
  undo.RecordPreImage(7, 1, *store.Get(1));
  store.ApplyWrite(1, 7);
  undo.Abort(7, &store);
  EXPECT_EQ(store.Get(1)->value, 10u);
}

TEST(UndoLogTest, CommitDropsEntries) {
  RecordStore store;
  store.Insert(1, Record{.value = 10});
  UndoLog undo;
  undo.RecordPreImage(7, 1, *store.Get(1));
  store.ApplyWrite(1, 7);
  undo.Commit(7);
  EXPECT_EQ(undo.active_txns(), 0u);
  undo.Abort(7, &store);  // no-op: already committed
  EXPECT_EQ(store.Get(1)->version, 1u);
}

TEST(UndoLogTest, IndependentTransactions) {
  RecordStore store;
  store.Insert(1, Record{.value = 10});
  store.Insert(2, Record{.value = 20});
  UndoLog undo;
  undo.RecordPreImage(7, 1, *store.Get(1));
  store.ApplyWrite(1, 7);
  undo.RecordPreImage(8, 2, *store.Get(2));
  store.ApplyWrite(2, 8);

  undo.Abort(7, &store);
  EXPECT_EQ(store.Get(1)->value, 10u);
  EXPECT_NE(store.Get(2)->value, 20u);  // txn 8 untouched
  undo.Commit(8);
}

TEST(UndoLogTest, AbortUnknownTxnIsNoOp) {
  RecordStore store;
  UndoLog undo;
  undo.Abort(42, &store);
  EXPECT_EQ(undo.active_txns(), 0u);
}

}  // namespace
}  // namespace hermes::storage
