// Scalability with cluster size (the §1 claim behind deterministic
// databases: without 2PC, throughput scales with nodes *if* data
// placement keeps distributed-transaction costs down). Runs the Google
// workload at several cluster sizes with clients and database scaled
// proportionally, for Calvin and Hermes.
//
// Expected shape: both scale with node count; Hermes scales steeper
// because prescient routing keeps the added nodes busy even though the
// per-node load distribution is skewed and drifting.

#include <cstdio>

#include "bench_common.h"

using hermes::bench::GoogleRunParams;
using hermes::bench::RunGoogleWorkload;
using hermes::engine::RouterKind;

int main(int argc, char** argv) {
  const int threads = hermes::bench::ParseThreadsFlag(argc, argv);
  std::printf("Scalability: throughput vs cluster size under the Google "
              "workload (txn/s, sim threads: %d)\n\n", threads);
  std::printf("nodes,calvin,hermes,speedup\n");
  for (int nodes : {2, 5, 10, 20}) {
    auto make = [nodes, threads] {
      GoogleRunParams params;
      params.sim_threads = threads;
      params.windows = 4;
      params.num_nodes = nodes;
      params.clients = 250 * nodes;
      params.num_records = 10'000u * nodes;
      return params;
    };
    const double calvin =
        RunGoogleWorkload(RouterKind::kCalvin, make()).mean_throughput;
    const double hermes =
        RunGoogleWorkload(RouterKind::kHermes, make()).mean_throughput;
    std::printf("%d,%.0f,%.0f,%.2fx\n", nodes, calvin, hermes,
                hermes / calvin);
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: both rise with nodes; hermes holds a "
              "consistent multiple by keeping load balanced\n");
  return 0;
}
