// detlint-fixture: path=src/core/unordered_iter_pos.cc
hermes::HashMap<uint64_t, int> load_;
int Total() {
  int sum = 0;
  for (const auto& [k, v] : load_) sum += v;
  return sum;
}
auto First() { return load_.begin(); }
