// detlint-fixture: path=src/common/hash.h
#include <unordered_map>

template <class K, class V>
using Base = std::unordered_map<K, V, SaltedHash<K>>;
