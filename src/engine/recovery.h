#ifndef HERMES_ENGINE_RECOVERY_H_
#define HERMES_ENGINE_RECOVERY_H_

#include <memory>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "storage/checkpoint.h"
#include "storage/command_log.h"

namespace hermes::engine {

/// Recovery (§4.3): builds a replacement cluster from the latest
/// consistent checkpoint and replays the command-log suffix through the
/// deterministic routing/execution pipeline. Because every decision is a
/// pure function of the totally ordered input, the recovered cluster ends
/// in the exact pre-crash state — storage contents, record placement and
/// fusion-table contents included (the recovery integration tests assert
/// checksum equality).
///
/// `initial_partitioning` must match the failed cluster's configuration.
std::unique_ptr<Cluster> RecoverCluster(
    const ClusterConfig& config, RouterKind kind,
    std::unique_ptr<partition::PartitionMap> initial_partitioning,
    const storage::Checkpoint& checkpoint,
    const storage::CommandLog& command_log);

}  // namespace hermes::engine

#endif  // HERMES_ENGINE_RECOVERY_H_
