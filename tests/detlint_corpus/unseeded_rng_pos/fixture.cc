// detlint-fixture: path=src/core/unseeded_rng_pos.cc
std::mt19937 gen;
std::default_random_engine eng;
