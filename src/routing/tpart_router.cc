#include "routing/tpart_router.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <vector>

#include "common/hash.h"

namespace hermes::routing {

TPartRouter::TPartRouter(partition::OwnershipMap* ownership,
                         const CostModel* costs, int num_nodes, double alpha)
    : Router(ownership, costs, num_nodes), alpha_(alpha) {}

RoutePlan TPartRouter::RouteBatch(const Batch& batch) {
  RoutePlan plan;
  plan.routing_cost_us = AnalysisCost(batch.txns.size());
  plan.txns.reserve(batch.txns.size());

  const int n = num_active_nodes();
  const auto theta = static_cast<int64_t>(std::ceil(
      static_cast<double>(batch.txns.size()) / (n == 0 ? 1 : n) *
      (1.0 + alpha_)));
  HashMap<NodeId, int64_t> load;
  for (NodeId node : active_nodes_) load[node] = 0;

  /// Where each key is currently readable within this batch: a written key
  /// moves to its writer's master (forward pushing); untouched keys sit at
  /// their static home.
  HashMap<Key, NodeId> holder;
  /// Home partition of each borrowed key, the plan index of its last
  /// in-batch accessor (which performs the write-back), and whether that
  /// accessor writes the key.
  struct Borrow {
    NodeId home;
    size_t last_user;
    bool last_writes = false;
  };
  HashMap<Key, Borrow> borrowed;

  auto source_of = [&](Key k) -> NodeId {
    auto it = holder.find(k);
    return it != holder.end() ? it->second : ownership_->Owner(k);
  };

  for (const TxnRequest& txn : batch.txns) {
    if (txn.kind == TxnKind::kChunkMigration) {
      plan.txns.push_back(PlanChunkMigrationDefault(txn));
      continue;
    }
    if (txn.kind != TxnKind::kRegular) {
      plan.txns.push_back(PlanProvisioningDefault(txn));
      continue;
    }

    const auto merged = MergedAccessSet(txn);

    // Master selection: T-Part trades the cost of remote accesses against
    // load balance. Routing to a node over the cap "costs" a couple of
    // remote accesses, so small transactions spread while a transaction
    // whose records all sit on one (even busy) node stays there — pushing
    // a wholly-local 25-key TPC-C transaction off its warehouse node
    // would be strictly worse. In-batch conflicts steer naturally:
    // borrowed keys count as local at their current holder (the t-graph
    // clog-avoidance effect of forward pushing).
    constexpr int kCapPenalty = 2;
    NodeId best = active_nodes_.front();
    int best_score = INT_MAX;
    bool best_capped = true;
    for (NodeId cand : active_nodes_) {
      int remote = 0;
      for (const auto& [k, is_write] : merged) {
        (void)is_write;
        if (source_of(k) != cand) ++remote;
      }
      const bool capped = load[cand] >= theta;
      const int score = remote + (capped ? kCapPenalty : 0);
      if (score < best_score ||
          (score == best_score && best_capped && !capped)) {
        best = cand;
        best_score = score;
        best_capped = capped;
      }
    }
    ++load[best];

    RoutedTxn rt;
    rt.txn = txn;
    rt.masters = {best};
    const size_t plan_index = plan.txns.size();
    for (const auto& [k, is_write] : merged) {
      const NodeId src = source_of(k);
      Access a;
      a.key = k;
      a.owner = src;
      a.is_write = is_write;
      a.ship_to_master = (src != best);
      if (is_write) {
        if (src != best) {
          // Checkout / forward push: the record physically moves to this
          // master; later in-batch readers fetch it from here.
          a.new_owner = best;
          if (holder.contains(k)) ++forward_pushes_;
          if (!borrowed.contains(k)) {
            borrowed[k] = Borrow{ownership_->Owner(k), plan_index};
          }
          holder[k] = best;
        }
      }
      if (auto it = borrowed.find(k); it != borrowed.end()) {
        it->second.last_user = plan_index;
        it->second.last_writes = is_write;
      }
      rt.accesses.push_back(a);
    }
    plan.txns.push_back(std::move(rt));
  }

  // Write-backs: each borrowed record ships from its final holder to its
  // home once the last transaction that used it commits. Iterate in key
  // order so replicas emit identical plans (hash-map order is not
  // deterministic across processes).
  std::vector<Key> borrowed_keys;
  borrowed_keys.reserve(borrowed.size());
  // detlint:allow(unordered-iter) key collection, sorted before use
  for (const auto& [k, info] : borrowed) {
    (void)info;
    borrowed_keys.push_back(k);
  }
  std::sort(borrowed_keys.begin(), borrowed_keys.end());
  for (Key k : borrowed_keys) {
    const Borrow& info = borrowed.at(k);
    const NodeId final_holder = holder.at(k);
    if (final_holder == info.home) continue;
    RoutedTxn& last = plan.txns[info.last_user];
    ++writebacks_;
    if (info.last_writes) {
      // The last user wrote k, so the record sits at its own master; ship
      // it home once that commit lands (nobody later reads it there).
      last.on_commit_returns.push_back(
          ReturnShipment{k, final_holder, info.home});
      continue;
    }
    // The last user only reads k. A lock-free return could race with
    // other shared readers that are still consuming the record at the
    // holder, so the write-back becomes an exclusive return-migration in
    // the last user's own plan: the lock manager's FIFO guarantees every
    // earlier shared reader finished before the record leaves.
    for (routing::Access& acc : last.accesses) {
      if (acc.key != k) continue;
      acc.is_write = true;
      acc.new_owner = info.home;
      break;
    }
  }
  return plan;
}

}  // namespace hermes::routing
