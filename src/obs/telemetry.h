#ifndef HERMES_OBS_TELEMETRY_H_
#define HERMES_OBS_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hermes::obs {

/// Monotonic event counter. A cheap value type components embed directly
/// (replacing the ad-hoc `uint64_t committed_ = 0;` fields); the registry
/// reads it through a closure at snapshot time, so owners keep full
/// control of lifetime and the counter itself stays a plain increment.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time histogram contents for export: (upper_bound_us, count)
/// per non-empty bucket, ascending by bound.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  ///< approximate sum (bucket upper bounds × counts)
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// Named metric registry with deterministic, sorted export.
///
/// Everything is callback-based: a component registers a name plus a
/// closure that reads its live value. Registration order is irrelevant —
/// snapshots iterate the std::map name order — and the registry never
/// owns or mutates component state (passivity, same contract as the
/// tracer). Names follow Prometheus conventions
/// (`hermes_txn_committed_total`).
class Registry {
 public:
  void RegisterCounter(std::string name, std::function<uint64_t()> read);
  void RegisterGauge(std::string name, std::function<int64_t()> read);
  void RegisterHistogram(std::string name,
                         std::function<HistogramSnapshot()> read);

  /// All scalar metrics (counters then gauges per name order) as sorted
  /// (name, value) pairs. Histograms are export-only (PrometheusText).
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Prometheus text exposition: `# TYPE` headers, counters/gauges as
  /// plain samples, histograms as cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count`. Byte-identical across reruns and hash salts
  /// as long as the underlying values are.
  std::string PrometheusText() const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: deterministic name-sorted iteration for Snapshot/export.
  std::map<std::string, std::function<uint64_t()>> counters_;
  std::map<std::string, std::function<int64_t()>> gauges_;
  std::map<std::string, std::function<HistogramSnapshot()>> histograms_;
};

}  // namespace hermes::obs

#endif  // HERMES_OBS_TELEMETRY_H_
