// detlint-fixture: path=src/engine/raw_thread_pos.cc
#include <mutex>

std::mutex mu_;
