#ifndef HERMES_WORKLOAD_GOOGLE_TRACE_H_
#define HERMES_WORKLOAD_GOOGLE_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace hermes::workload {

struct GoogleTraceConfig {
  int num_machines = 20;
  /// Number of trace windows (one load sample per machine per window).
  int num_windows = 72;
  /// Simulated duration of one window.
  SimTime window_us = 30'000'000;
  uint64_t seed = 7;

  // --- Shape parameters (statistically matched to the paper's Fig. 1:
  // fluctuating baselines, unpredictable episodic spikes/shifts, machines
  // appearing/disappearing through provisioning changes). ---
  /// Probability per window that a machine's baseline jumps to a new
  /// regime (episodic shift).
  double regime_switch_prob = 0.08;
  /// Probability per window of a short load spike.
  double spike_prob = 0.10;
  /// Multiplier applied during a spike.
  double spike_magnitude = 3.0;
  /// Fraction of windows a machine may be deprovisioned (near-zero load).
  double off_prob = 0.02;
  /// Window-to-window noise (lognormal sigma).
  double noise_sigma = 0.25;
};

/// Synthetic stand-in for the Google cluster-usage traces (Reiss et al.
/// 2011) used in §5.2.2. The real traces are not redistributable with this
/// repository; what the paper *uses* from them is a per-machine,
/// time-varying load signal that is episodic and not predictable from its
/// own past — which a regime-switching process with random spikes and
/// provisioning gaps reproduces. DESIGN.md documents the substitution.
class SyntheticGoogleTrace {
 public:
  explicit SyntheticGoogleTrace(const GoogleTraceConfig& config);

  /// Load of `machine` at simulated time `t` (arbitrary positive units;
  /// callers normalize). Times past the last window wrap around.
  double Load(int machine, SimTime t) const;

  /// Normalized per-machine load weights at time `t` (sums to 1).
  std::vector<double> Weights(SimTime t) const;

  const GoogleTraceConfig& config() const { return config_; }

  /// Raw series of one machine (for tests and trace dumps).
  const std::vector<double>& Series(int machine) const {
    return loads_[machine];
  }

 private:
  GoogleTraceConfig config_;
  /// loads_[machine][window]
  std::vector<std::vector<double>> loads_;
};

}  // namespace hermes::workload

#endif  // HERMES_WORKLOAD_GOOGLE_TRACE_H_
