// Reproduces Fig. 6(a)(b): overall throughput of Hermes and the baselines
// under the complex Google workload.
//
//  (a) vs look-back approaches: Calvin (range), Clay, Schism 1/2 (offline
//      "optimal" plans trained on two distinct trace windows).
//  (b) vs on-line approaches: Calvin, G-Store, T-Part, LEAP.
//
// Expected shape (paper): Clay ~ Calvin; each Schism plan helps only near
// its training window; G-Store ~ Calvin (+2%), LEAP above them, T-Part
// higher still, Hermes best overall (29%-137% over the baselines).

#include <cstdio>

#include "bench_common.h"
#include "routing/schism_partitioner.h"
#include "workload/ycsb.h"

namespace {

using hermes::SimTime;
using hermes::bench::GoogleRunParams;
using hermes::bench::MeanOf;
using hermes::bench::PrintSeriesTable;
using hermes::bench::RunGoogleWorkload;
using hermes::bench::RunResult;
using hermes::bench::SharedTrace;
using hermes::engine::RouterKind;

/// Trains Schism offline on the trace slice [from_window, to_window).
std::unique_ptr<hermes::partition::PartitionMap> TrainSchism(
    const GoogleRunParams& params, int from_window, int to_window) {
  const auto& trace =
      SharedTrace(params.num_nodes, params.window_us, params.windows);
  hermes::workload::YcsbConfig wl;
  wl.num_records = params.num_records;
  wl.num_partitions = params.num_nodes;
  wl.hotspot_cycle_us = params.windows * params.window_us;
  wl.seed = 999;  // offline trace, distinct from the live run
  hermes::workload::YcsbWorkload gen(wl, &trace);

  hermes::routing::SchismPartitioner schism(
      params.num_records, std::max<uint64_t>(params.num_records / 500, 1));
  const SimTime lo = from_window * params.window_us;
  const SimTime hi = to_window * params.window_us;
  const SimTime step = (hi - lo) / 20'000;
  for (SimTime t = lo; t < hi; t += step) {
    schism.Observe(gen.Next(t));
  }
  return schism.Partition(params.num_nodes);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = hermes::bench::ParseThreadsFlag(argc, argv);
  auto base = [threads] {
    GoogleRunParams params;
    params.sim_threads = threads;
    return params;
  };
  std::printf("Fig. 6 reproduction: overall throughput under the synthetic "
              "Google workload (sim threads: %d)\n", threads);
  const GoogleRunParams defaults;
  const double window_s = defaults.window_us / 1e6;
  const size_t n = defaults.windows;

  // ---- (a) look-back approaches ----
  RunResult calvin = RunGoogleWorkload(RouterKind::kCalvin, base());
  GoogleRunParams clay_params = base();
  clay_params.enable_clay = true;
  RunResult clay = RunGoogleWorkload(RouterKind::kCalvin, std::move(clay_params));
  GoogleRunParams schism1_params = base();
  schism1_params.initial = TrainSchism(defaults, 1, 4);
  RunResult schism1 =
      RunGoogleWorkload(RouterKind::kCalvin, std::move(schism1_params));
  GoogleRunParams schism2_params = base();
  schism2_params.initial = TrainSchism(defaults, 7, 10);
  RunResult schism2 =
      RunGoogleWorkload(RouterKind::kCalvin, std::move(schism2_params));
  RunResult hermes = RunGoogleWorkload(RouterKind::kHermes, base());

  PrintSeriesTable(
      "Fig 6a: Hermes vs look-back approaches",
      {"calvin", "clay", "schism1", "schism2", "hermes"},
      {calvin.throughput, clay.throughput, schism1.throughput,
       schism2.throughput, hermes.throughput},
      window_s, "committed txns per window");

  // ---- (b) on-line approaches ----
  RunResult gstore = RunGoogleWorkload(RouterKind::kGStore, base());
  RunResult tpart = RunGoogleWorkload(RouterKind::kTPart, base());
  RunResult leap = RunGoogleWorkload(RouterKind::kLeap, base());

  PrintSeriesTable(
      "Fig 6b: Hermes vs on-line approaches",
      {"calvin", "gstore", "tpart", "leap", "hermes"},
      {calvin.throughput, gstore.throughput, tpart.throughput,
       leap.throughput, hermes.throughput},
      window_s, "committed txns per window");

  std::printf("\nsummary (mean txn/window, windows 2..%zu):\n", n);
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("  %-8s %8.0f  (%+.0f%% vs calvin)\n", name,
                MeanOf(r.throughput, 2, n),
                100.0 * (MeanOf(r.throughput, 2, n) /
                             MeanOf(calvin.throughput, 2, n) -
                         1.0));
  };
  row("calvin", calvin);
  row("clay", clay);
  row("schism1", schism1);
  row("schism2", schism2);
  row("gstore", gstore);
  row("tpart", tpart);
  row("leap", leap);
  row("hermes", hermes);
  return 0;
}
