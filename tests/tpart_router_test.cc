#include "routing/tpart_router.h"

#include <memory>

#include <gtest/gtest.h>

#include "partition/partition_map.h"

namespace hermes::routing {
namespace {

using partition::OwnershipMap;
using partition::RangePartitionMap;

TxnRequest MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  TxnRequest txn;
  txn.id = id;
  txn.read_set = std::move(reads);
  txn.write_set = std::move(writes);
  return txn;
}

Batch MakeBatch(std::vector<TxnRequest> txns) {
  Batch batch;
  batch.txns = std::move(txns);
  return batch;
}

class TPartRouterTest : public ::testing::Test {
 protected:
  TPartRouterTest()
      : ownership_(std::make_unique<RangePartitionMap>(100, 4)),
        router_(&ownership_, &costs_, 4) {}

  OwnershipMap ownership_;
  CostModel costs_;
  TPartRouter router_;
};

TEST_F(TPartRouterTest, ForwardPushesWithinBatch) {
  // High alpha so the load cap does not override locality in a 2-txn batch.
  TPartRouter router(&ownership_, &costs_, 4, /*alpha=*/8.0);
  RoutePlan plan = router.RouteBatch(MakeBatch({
      MakeTxn(1, {10, 11, 90}, {90}),  // borrows 90 to node 0
      MakeTxn(2, {10, 90}, {90}),      // reads 90 from node 0, not node 3
  }));
  ASSERT_EQ(plan.txns.size(), 2u);
  const RoutedTxn& t2 = plan.txns[1];
  EXPECT_EQ(t2.masters[0], 0);
  for (const auto& acc : t2.accesses) {
    if (acc.key == 90) {
      EXPECT_EQ(acc.owner, 0);  // forwarded source, not home
      EXPECT_FALSE(acc.ship_to_master);
    }
  }
  EXPECT_EQ(router.forward_pushes(), 0u);  // same node: no push needed

  // The borrowed record ships home after the LAST user (t2) commits.
  EXPECT_TRUE(plan.txns[0].on_commit_returns.empty());
  ASSERT_EQ(t2.on_commit_returns.size(), 1u);
  EXPECT_EQ(t2.on_commit_returns[0].key, 90u);
  EXPECT_EQ(t2.on_commit_returns[0].from, 0);
  EXPECT_EQ(t2.on_commit_returns[0].to, 3);
}

TEST_F(TPartRouterTest, WritebackResetsAcrossBatches) {
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 11, 90}, {90})}));
  // New batch: 90 is home again (the previous batch returned it).
  RoutePlan plan = router_.RouteBatch(MakeBatch({MakeTxn(2, {90}, {})}));
  EXPECT_EQ(plan.txns[0].accesses[0].owner, 3);
  EXPECT_EQ(router_.writebacks(), 1u);
}

TEST_F(TPartRouterTest, OwnershipMapUntouched) {
  (void)router_.RouteBatch(MakeBatch({MakeTxn(1, {10, 90}, {10, 90})}));
  EXPECT_TRUE(ownership_.key_overlay().empty());
}

TEST_F(TPartRouterTest, BalancesLoadUnderCap) {
  // 40 identical single-key transactions on node 0's data; theta = 10, so
  // the excess spreads across other nodes.
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 40; ++i) txns.push_back(MakeTxn(i, {1}, {}));
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  std::vector<int> load(4, 0);
  for (const auto& rt : plan.txns) ++load[rt.masters[0]];
  for (int l : load) EXPECT_LE(l, 10);
}

TEST_F(TPartRouterTest, ChainedWritersPushForward) {
  // The second writer of key 90 sits closer to its own reads (node 3);
  // the borrowed record is pushed onward from the first writer's node.
  RoutePlan plan = router_.RouteBatch(MakeBatch({
      MakeTxn(1, {10, 11, 90}, {90}),  // 90 borrowed to node 0
      MakeTxn(2, {80, 81, 90}, {90}),  // 90 pushed onward to node 3
  }));
  const RoutedTxn& t2 = plan.txns[1];
  EXPECT_EQ(t2.masters[0], 3);
  for (const auto& acc : t2.accesses) {
    if (acc.key == 90) {
      EXPECT_EQ(acc.owner, 0);  // comes from the previous writer
      EXPECT_EQ(acc.new_owner, 3);
    }
  }
  EXPECT_EQ(router_.forward_pushes(), 1u);
  // Final holder is node 3 == home: no writeback needed.
  EXPECT_TRUE(t2.on_commit_returns.empty());
}

TEST_F(TPartRouterTest, WhollyLocalTxnStaysHomeDespiteCap) {
  // A transaction whose 6 keys all live on node 0 stays there even when
  // node 0 is over the cap — offloading it would cost 6 remote accesses.
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 4; ++i) {
    txns.push_back(MakeTxn(i, {1, 2, 3, 4, 5, 6}, {1}));
  }
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  for (const auto& rt : plan.txns) EXPECT_EQ(rt.masters[0], 0);
}

TEST_F(TPartRouterTest, NonConflictingTxnsStillBalance) {
  // Distinct keys, all on node 0: no conflicts, so the cap spreads them.
  std::vector<TxnRequest> txns;
  for (TxnId i = 1; i <= 16; ++i) txns.push_back(MakeTxn(i, {i}, {i}));
  RoutePlan plan = router_.RouteBatch(MakeBatch(std::move(txns)));
  std::vector<int> load(4, 0);
  for (const auto& rt : plan.txns) ++load[rt.masters[0]];
  for (int l : load) EXPECT_LE(l, 4);
}

}  // namespace
}  // namespace hermes::routing
