#include "common/hash.h"

#include "common/env.h"

namespace hermes {
namespace detail {

uint64_t g_hash_salt = EnvReadU64("HERMES_HASH_SALT", 0);

}  // namespace detail

uint64_t HashSalt() { return detail::g_hash_salt; }

void SetHashSalt(uint64_t salt) { detail::g_hash_salt = salt; }

}  // namespace hermes
