#include "workload/multitenant.h"

#include <algorithm>
#include <cassert>

namespace hermes::workload {

MultiTenantWorkload::MultiTenantWorkload(const MultiTenantConfig& config)
    : config_(config),
      rng_(config.seed),
      tenant_zipf_(config.records_per_tenant, config.zipf_theta),
      num_tenants_(config.num_nodes * config.tenants_per_node),
      num_records_(static_cast<uint64_t>(num_tenants_) *
                   config.records_per_tenant) {
  assert(num_tenants_ > 0);
}

NodeId MultiTenantWorkload::HotNode(SimTime now) const {
  return static_cast<NodeId>((now / config_.rotation_us) % config_.num_nodes);
}

TxnRequest MultiTenantWorkload::Next(SimTime now) {
  const NodeId hot = HotNode(now);
  int tenant;
  if (rng_.NextDouble() < config_.hot_fraction) {
    tenant = hot * config_.tenants_per_node +
             static_cast<int>(rng_.NextBounded(config_.tenants_per_node));
  } else {
    // Uniform over the tenants of the other nodes.
    const int others = num_tenants_ - config_.tenants_per_node;
    int pick = static_cast<int>(rng_.NextBounded(others));
    const int hot_first = hot * config_.tenants_per_node;
    if (pick >= hot_first) pick += config_.tenants_per_node;
    tenant = pick;
  }

  std::vector<Key> keys;
  keys.reserve(config_.records_per_txn);
  const Key base = static_cast<Key>(tenant) * config_.records_per_tenant;
  for (int i = 0; i < config_.records_per_txn; ++i) {
    keys.push_back(base + tenant_zipf_.Next(rng_));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  TxnRequest txn;
  txn.read_set = keys;
  txn.write_set = keys;  // read, modify, write
  txn.tag = tenant;
  txn.home_sequencer = static_cast<NodeId>(tenant / config_.tenants_per_node);
  return txn;
}

std::unique_ptr<partition::PartitionMap>
MultiTenantWorkload::PerfectPartitioning() const {
  return std::make_unique<partition::RangePartitionMap>(num_records_,
                                                        config_.num_nodes);
}

std::unique_ptr<partition::PartitionMap>
MultiTenantWorkload::HashPartitioning() const {
  return std::make_unique<partition::HashPartitionMap>(num_records_,
                                                       config_.num_nodes);
}

std::unique_ptr<partition::PartitionMap>
MultiTenantWorkload::SkewedPartitioning(int skewed_tenants) const {
  // Node 0 takes the first `skewed_tenants` tenants; the remaining tenants
  // are split evenly across the other nodes.
  std::vector<Key> bounds;
  bounds.push_back(0);
  const Key skew_end =
      static_cast<Key>(skewed_tenants) * config_.records_per_tenant;
  bounds.push_back(skew_end);
  const int rest_nodes = config_.num_nodes - 1;
  assert(rest_nodes > 0);
  const uint64_t rest = num_records_ - skew_end;
  for (int i = 1; i < rest_nodes; ++i) {
    bounds.push_back(skew_end + rest * i / rest_nodes);
  }
  bounds.push_back(num_records_);
  return std::make_unique<partition::CustomRangePartitionMap>(
      std::move(bounds));
}

}  // namespace hermes::workload
