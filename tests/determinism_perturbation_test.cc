// Perturbed-hash race detector: runs the identical seeded workload under
// several hash salts (HERMES_HASH_SALT / SetHashSalt) and asserts the
// decision stream is bit-identical. The salt permutes the bucket — and
// therefore iteration — order of every hermes::HashMap/HashSet in the
// stack without changing container contents, so any place where
// unordered-container iteration order leaks into a routing, eviction,
// migration, or scheduling decision shows up as a digest mismatch here.
// This is the runtime complement to the tools/detlint static pass: detlint
// flags the pattern, this test proves the property.

#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/digest.h"
#include "common/hash.h"
#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

// Salts to perturb with: the process's startup salt (HERMES_HASH_SALT,
// default 0) plus two arbitrary odd constants that scramble every bucket
// index. Putting the env salt first lets scripts/check_determinism.sh run
// this binary under several env salts and require every printed digest —
// across processes as well as within one — to be identical.
std::vector<uint64_t> PerturbationSalts() {
  return {HashSalt(), 0x9e3779b97f4a7c15ULL, 0xdeadbeefcafef00dULL};
}

struct RunResult {
  uint64_t digest = 0;
  uint64_t digest_count = 0;
  uint64_t state_checksum = 0;
  uint64_t content_checksum = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t migrations = 0;
};

bool operator==(const RunResult& a, const RunResult& b) {
  return a.digest == b.digest && a.digest_count == b.digest_count &&
         a.state_checksum == b.state_checksum &&
         a.content_checksum == b.content_checksum && a.commits == b.commits &&
         a.aborts == b.aborts && a.migrations == b.migrations;
}

// One full cluster lifetime: skewed YCSB on the Hermes router with a small
// fusion table (forces evictions), a mid-run scale-out with cold chunk
// migration, and a scale-in consolidation — so the digest covers routing
// placements, fusion-table evictions, migration scheduling, and every
// event-queue pop across all of those phases.
RunResult RunWorkload() {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_records = 12'000;
  config.hermes.fusion_table_capacity = 300;
  config.migration_chunk_records = 250;
  Cluster cluster(config, RouterKind::kHermes,
                  std::make_unique<partition::RangePartitionMap>(
                      config.num_records, config.num_nodes));
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = config.num_nodes;
  wl.seed = 20'260'805;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 16, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(1'500));
  driver.Start();

  cluster.RunUntil(MsToSim(400));
  // Scale out: re-home the first quarter of the keyspace onto the new
  // node via chunk-migration transactions.
  const NodeId added = cluster.AddNode(
      {{0, config.num_records / 4 - 1, 3}}, /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(900));
  // Consolidate back: remove the node and return its ranges.
  cluster.RemoveNode(added, {{0, config.num_records / 4 - 1, 0}},
                     /*migrate_cold=*/true);
  cluster.RunUntil(MsToSim(1'500));
  cluster.Drain();

  RunResult r;
  r.digest = cluster.decision_digest().value();
  r.digest_count = cluster.decision_digest().count();
  r.state_checksum = cluster.StateChecksum();
  r.content_checksum = cluster.ContentChecksum();
  r.commits = cluster.metrics().total_commits();
  r.aborts = cluster.metrics().total_aborts();
  for (const auto& w : cluster.metrics().windows()) r.migrations += w.migrations;
  return r;
}

// Sanity: the salt really perturbs hashing — otherwise the whole test
// proves nothing.
TEST(HashSaltTest, SaltChangesHashValues) {
  const uint64_t old_salt = HashSalt();
  Salted<std::hash<uint64_t>> hasher;
  SetHashSalt(1);
  const size_t h1 = hasher(uint64_t{42});
  SetHashSalt(2);
  const size_t h2 = hasher(uint64_t{42});
  SetHashSalt(old_salt);
  EXPECT_NE(h1, h2);
}

TEST(HashSaltTest, SaltPermutesIterationOrder) {
  // With enough elements, at least one pair of salts must disagree on
  // iteration order; if all three agreed the perturbation would be
  // toothless. (Contents are identical regardless.)
  const uint64_t old_salt = HashSalt();
  std::vector<std::vector<uint64_t>> orders;
  for (uint64_t salt : PerturbationSalts()) {
    SetHashSalt(salt);
    HashSet<uint64_t> s;
    for (uint64_t i = 0; i < 256; ++i) s.insert(i);
    std::vector<uint64_t> order(s.begin(), s.end());
    orders.push_back(std::move(order));
  }
  SetHashSalt(old_salt);
  EXPECT_TRUE(orders[0] != orders[1] || orders[1] != orders[2]);
}

TEST(DeterminismPerturbationTest, DigestIdenticalAcrossSalts) {
  const uint64_t old_salt = HashSalt();
  const std::vector<uint64_t> salts = PerturbationSalts();
  std::vector<RunResult> results;
  for (uint64_t salt : salts) {
    // Safe: no salted container holds elements between cluster lifetimes.
    SetHashSalt(salt);
    results.push_back(RunWorkload());
    std::printf("SALT 0x%016llx DECISION_DIGEST %016llx count=%llu "
                "commits=%llu migrations=%llu\n",
                static_cast<unsigned long long>(salt),
                static_cast<unsigned long long>(results.back().digest),
                static_cast<unsigned long long>(results.back().digest_count),
                static_cast<unsigned long long>(results.back().commits),
                static_cast<unsigned long long>(results.back().migrations));
  }
  SetHashSalt(old_salt);

  // The workload must actually have exercised the interesting paths.
  ASSERT_GT(results[0].commits, 100u);
  ASSERT_GT(results[0].migrations, 0u) << "no migration phase — the test "
                                          "would not cover consolidation";
  ASSERT_GT(results[0].digest_count, 1000u);

  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[0] == results[i])
        << "salt 0x" << std::hex << salts[i]
        << " diverged: digest " << results[i].digest << " vs "
        << results[0].digest << std::dec << " (count "
        << results[i].digest_count << " vs " << results[0].digest_count
        << "), commits " << results[i].commits << " vs "
        << results[0].commits
        << " — some decision depends on hash iteration order";
  }
}

}  // namespace
}  // namespace hermes
