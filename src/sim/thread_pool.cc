#include "sim/thread_pool.h"

#include <algorithm>

namespace hermes::sim {

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(static_cast<size_t>(std::max(num_threads, 1)));
  for (int i = 0; i < std::max(num_threads, 1); ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunBatch(int count, const std::function<void(int)>& job) {
  if (count <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  count_ = count;
  next_ = 0;
  done_ = 0;
  ++generation_;
  const uint64_t gen = generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this, gen] {
    return generation_ == gen && done_ == count_;
  });
  job_ = nullptr;
}

void ThreadPool::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [this, seen_generation] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation &&
                       next_ < count_);
    });
    if (stop_) return;
    seen_generation = generation_;
    while (job_ != nullptr && next_ < count_) {
      const int i = next_++;
      const std::function<void(int)>* job = job_;
      lock.unlock();
      (*job)(i);
      lock.lock();
      ++done_;
      if (done_ == count_) done_cv_.notify_all();
    }
  }
}

}  // namespace hermes::sim
