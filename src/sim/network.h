#ifndef HERMES_SIM_NETWORK_H_
#define HERMES_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace hermes::sim {

/// How the fault layer perturbs one message (see src/fault/link_chaos.h).
/// The engine above the network assumes a *reliable, exactly-once*
/// transport, so chaos is modeled underneath that contract: a dropped wire
/// attempt is retransmitted (costing extra bytes and delay), a duplicated
/// attempt is suppressed by receiver-side dedup (costing bytes in both
/// directions but delivering the callback exactly once), and jitter delays
/// delivery. Delivery is therefore delayed and more expensive, never lost —
/// which keeps record singularity and lock-ordering invariants intact.
struct Perturbation {
  /// Wire attempts lost before the one that lands (each costs sender bytes
  /// and contributes `extra_delay_us` backoff chosen by the fault layer).
  int dropped_attempts = 0;
  /// Redundant delivered copies deduplicated by the transport (each costs
  /// bytes at both ends; the delivery callback still fires once).
  int duplicates = 0;
  /// Extra delivery delay: jitter plus retransmission backoff.
  SimTime extra_delay_us = 0;
};

/// Point-to-point message fabric between simulated nodes. Delivery time is
/// latency + bytes * us_per_byte; per-node byte counters feed the Fig. 8
/// network-usage series. Messages between a node and itself are delivered
/// after zero wire time (still asynchronously, preserving event ordering).
///
/// Under partitioned execution the fabric is the epoch-crossing edge: a
/// Send may run on the source node's lane, and the delivery callback is
/// scheduled onto the *destination* node's lane. Send-side counters are
/// per-source rows (each touched only by its own lane or the exclusive
/// slice); receive-side counters are charged by the delivery event on the
/// destination lane; totals are summed on read.
class Network {
 public:
  /// Decides the perturbation for one inter-node message. Must be a pure
  /// function of (seed, src, dst, bytes, link_seq) — never of wall clock
  /// or shared mutable state — so chaos draws are deterministic even when
  /// source lanes send concurrently. `link_seq` is the 0-based sequence
  /// number of this message on the directed link src -> dst.
  using PerturbationFn =
      std::function<Perturbation(NodeId src, NodeId dst, uint64_t bytes,
                                 SimTime now, uint64_t link_seq)>;

  Network(Simulator* sim, const CostModel* costs, int num_nodes);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `payload_bytes` of application payload from `src` to `dst` and
  /// runs `on_delivery` when the message lands (on node `dst`'s lane).
  /// Framing overhead is added to the byte count automatically. May be
  /// called from `src`'s lane or from exclusive context. `cls` only tags
  /// the per-class byte/message counters (Fig. 8's foreground-vs-migration
  /// split): it never changes timing or ordering at this layer — the wire
  /// substrate (src/net/) schedules classes above this fabric.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes,
            std::function<void()> on_delivery,
            TrafficClass cls = TrafficClass::kForeground);

  /// Grows counters when nodes are added by dynamic provisioning.
  /// Exclusive context only.
  void EnsureCapacity(int num_nodes);

  // --- Partitions (DESIGN.md §5 "Partitions & failure detection"). ---
  //
  // The reachability matrix cuts *directed* links. Cut semantics are
  // send-time: a message already on the wire when the cut lands still
  // delivers (the receiver's transport buffer outlives the cut, matching
  // the crash model), but a Send into a live cut is parked — payload,
  // perturbation draw and byte charges intact — in a per-link FIFO
  // holding pen and released only by HealLink. Message existence is
  // preserved end-to-end, so record singularity and lock order survive a
  // partition the same way they survive chaos. Cuts are installed and
  // healed only in exclusive context (the fault layer drives them between
  // epochs); lanes read the matrix, which is stable within an epoch.

  /// Cuts the directed link src -> dst. Exclusive context only.
  // detlint:requires(exclusive)
  void CutLink(NodeId src, NodeId dst);

  /// Heals the directed link src -> dst and releases its holding pen in
  /// FIFO order: each parked message is re-scheduled onto the destination
  /// lane with its original wire time measured from now. Exclusive
  /// context only.
  // detlint:requires(exclusive)
  void HealLink(NodeId src, NodeId dst);

  /// False while the directed link src -> dst is cut.
  bool reachable(NodeId src, NodeId dst) const;
  /// True while any directed link is cut.
  bool any_cut() const { return cut_links_ > 0; }
  /// Messages currently parked in holding pens.
  uint64_t messages_held() const;
  /// Cumulative messages ever parked (pen throughput).
  uint64_t total_held() const { return Sum(messages_held_total_); }
  /// Payloads that landed while their send-time cut was STILL up. The
  /// partition oracle requires this to stay zero: a held message may only
  /// deliver after its heal.
  uint64_t cut_deliveries() const { return Sum(cut_deliveries_); }

  /// Installs (or clears, with nullptr) the fault-injection hook consulted
  /// for every inter-node message.
  void set_perturbation(PerturbationFn fn) { perturb_ = std::move(fn); }

  uint64_t total_bytes() const { return Sum(bytes_sent_); }
  uint64_t total_messages() const { return Sum(messages_sent_); }
  uint64_t bytes_sent(NodeId node) const { return bytes_sent_[node]; }

  /// Wire bytes sent (all attempts) carrying messages of `cls`.
  uint64_t class_bytes_sent(TrafficClass cls) const {
    return Sum(class_bytes_sent_[static_cast<int>(cls)]);
  }
  /// Wire messages sent (all attempts) carrying messages of `cls`.
  uint64_t class_messages_sent(TrafficClass cls) const {
    return Sum(class_messages_sent_[static_cast<int>(cls)]);
  }
  /// Wire bytes delivered carrying messages of `cls`.
  uint64_t class_bytes_received(TrafficClass cls) const {
    return Sum(class_bytes_received_[static_cast<int>(cls)]);
  }

  /// Bytes successfully delivered to `node` (equals the send-side count
  /// minus in-flight and dropped wire attempts, plus duplicated copies).
  uint64_t bytes_received(NodeId node) const { return bytes_received_[node]; }
  uint64_t total_bytes_received() const { return Sum(bytes_received_); }
  uint64_t messages_received(NodeId node) const {
    return messages_received_[node];
  }

  /// Wire attempts (including drops and duplicates) on the directed link
  /// src -> dst.
  uint64_t link_messages(NodeId src, NodeId dst) const {
    return link_messages_[src][dst];
  }

  /// Wire attempts lost to fault injection (each was retransmitted).
  uint64_t messages_dropped() const { return Sum(messages_dropped_); }
  /// Redundant duplicate deliveries suppressed by transport dedup.
  uint64_t messages_duplicated() const { return Sum(messages_duplicated_); }

 private:
  /// One parked message: everything the delivery closure needs, with the
  /// perturbation already drawn (the draw is keyed by the send-time
  /// link_seq, so parking does not shift any other message's draw).
  struct HeldMessage {
    uint64_t bytes = 0;
    uint64_t delivered = 0;  ///< copies to charge the receiver
    SimTime wire = 0;        ///< wire time, re-measured from the heal point
    TrafficClass cls = TrafficClass::kForeground;
    std::function<void()> cb;
  };

  static uint64_t Sum(const std::vector<uint64_t>& row);
  void ScheduleDelivery(NodeId src, NodeId dst, uint64_t bytes,
                        uint64_t delivered, SimTime wire, bool was_held,
                        TrafficClass cls, std::function<void()> cb);

  /// Every per-node counter row and per-link matrix, grown in one place so
  /// a new counter cannot be forgotten by one of the resize sites (they
  /// used to be five hand-copied resize stanzas). Rows are registered once
  /// in the constructor; EnsureCapacity walks the lists.
  std::vector<std::vector<uint64_t>*> counter_rows_;
  std::vector<std::vector<std::vector<uint64_t>>*> counter_matrices_;

  Simulator* sim_;
  const CostModel* costs_;
  /// All send-side state is per-source rows: row `n` is written only by
  /// node n's lane (or the exclusive slice), so concurrent sends from
  /// different lanes never share a counter.
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> messages_sent_;
  std::vector<uint64_t> messages_dropped_;
  std::vector<uint64_t> messages_duplicated_;
  /// link_messages_[src][dst]: wire attempts on the directed link.
  std::vector<std::vector<uint64_t>> link_messages_;
  /// send_seq_[src][dst]: messages initiated on the directed link; feeds
  /// the perturbation hook its per-link sequence number.
  std::vector<std::vector<uint64_t>> send_seq_;
  /// Per-class send-side rows (row = source node, same ownership rule as
  /// bytes_sent_), indexed by TrafficClass.
  std::vector<uint64_t> class_bytes_sent_[kNumTrafficClasses];
  std::vector<uint64_t> class_messages_sent_[kNumTrafficClasses];
  /// Receive-side rows, charged by the delivery event on the destination
  /// lane (row `n` written only by node n's lane or the exclusive slice).
  std::vector<uint64_t> bytes_received_;
  std::vector<uint64_t> messages_received_;
  /// Per-class receive-side rows (row = destination node).
  std::vector<uint64_t> class_bytes_received_[kNumTrafficClasses];
  /// cut_[src][dst] != 0 while the directed link is cut. Mutated only in
  /// exclusive context; lanes read it (stable within an epoch).
  std::vector<std::vector<uint8_t>> cut_;
  int cut_links_ = 0;
  /// held_[src][dst]: FIFO holding pen. Row `src` is pushed by src's lane
  /// on Send and flushed by HealLink in exclusive context.
  std::vector<std::vector<std::deque<HeldMessage>>> held_;
  std::vector<uint64_t> messages_held_total_;  ///< per-source row
  /// Charged by the delivery event (destination lane) when a held message
  /// lands under a still-live cut — must stay zero.
  std::vector<uint64_t> cut_deliveries_;
  PerturbationFn perturb_;
};

}  // namespace hermes::sim

#endif  // HERMES_SIM_NETWORK_H_
