#include "routing/router.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace hermes::routing {

Router::Router(partition::OwnershipMap* ownership, const CostModel* costs,
               int num_nodes)
    : ownership_(ownership), costs_(costs) {
  active_nodes_.reserve(num_nodes);
  for (NodeId i = 0; i < num_nodes; ++i) active_nodes_.push_back(i);
}

void Router::OnAddNode(NodeId node) {
  if (std::find(active_nodes_.begin(), active_nodes_.end(), node) ==
      active_nodes_.end()) {
    active_nodes_.push_back(node);
    std::sort(active_nodes_.begin(), active_nodes_.end());
    candidate_epoch_valid_ = false;
  }
}

void Router::OnRemoveNode(NodeId node) {
  active_nodes_.erase(
      std::remove(active_nodes_.begin(), active_nodes_.end(), node),
      active_nodes_.end());
  candidate_epoch_valid_ = false;
}

const std::vector<NodeId>& Router::candidate_nodes() const {
  if (membership_ == nullptr || !membership_->any_down()) {
    return active_nodes_;
  }
  if (!candidate_epoch_valid_ || candidate_epoch_ != membership_->epoch()) {
    candidate_cache_.clear();
    for (NodeId n : active_nodes_) {
      if (membership_->alive(n)) candidate_cache_.push_back(n);
    }
    candidate_epoch_ = membership_->epoch();
    candidate_epoch_valid_ = true;
  }
  return candidate_cache_;
}

std::vector<std::pair<Key, bool>> Router::MergedAccessSet(
    const TxnRequest& txn) {
  std::vector<std::pair<Key, bool>> merged;
  MergedAccessSetInto(txn, &merged);
  return merged;
}

void Router::MergedAccessSetInto(const TxnRequest& txn,
                                 std::vector<std::pair<Key, bool>>* out) {
  out->clear();
  out->reserve(txn.read_set.size() + txn.write_set.size());
  for (Key k : txn.read_set) out->emplace_back(k, false);
  for (Key k : txn.write_set) out->emplace_back(k, true);
  // Sort by (key, mode): within a key run the write entry sorts last, so
  // keeping each run's final element implements "write wins" — the same
  // result the old std::map construction produced, without node churn.
  std::sort(out->begin(), out->end());
  auto keep = out->begin();
  for (auto it = out->begin(); it != out->end();) {
    auto next = it + 1;
    while (next != out->end() && next->first == it->first) ++next;
    *keep++ = *(next - 1);
    it = next;
  }
  out->erase(keep, out->end());
}

NodeId Router::OwnerOf(Key key) const { return ownership_->Owner(key); }

NodeId Router::MajorityOwner(const TxnRequest& txn) const {
  std::map<NodeId, int> counts;
  for (const auto& [key, is_write] : MergedAccessSet(txn)) {
    (void)is_write;
    ++counts[OwnerOf(key)];
  }
  NodeId best = active_nodes_.empty() ? 0 : active_nodes_.front();
  int best_count = -1;
  for (const auto& [node, count] : counts) {
    if (count > best_count) {
      best = node;
      best_count = count;
    }
  }
  // Tie-break on the *home* of the transaction's first read key (its
  // "anchor"). Breaking ties by node id would deterministically funnel
  // every tied transaction's records toward low-numbered nodes; anchoring
  // on the drifting current owner creates a positive-feedback collapse
  // onto whichever node got ahead. The static home is neutral.
  const NodeId anchor =
      ownership_->Home(txn.read_set.empty()
                           ? (txn.write_set.empty() ? 0 : txn.write_set.front())
                           : txn.read_set.front());
  if (counts.contains(anchor) && counts.at(anchor) == best_count) {
    return anchor;
  }
  return best;
}

SimTime Router::LinearCost(size_t batch_size) const {
  return costs_->route_linear_us * batch_size;
}

SimTime Router::AnalysisCost(size_t batch_size) const {
  const double quad = costs_->route_quadratic_us *
                      static_cast<double>(batch_size) *
                      static_cast<double>(batch_size);
  return LinearCost(batch_size) + static_cast<SimTime>(std::llround(quad));
}

RoutedTxn Router::PlanChunkMigrationDefault(const TxnRequest& txn) {
  RoutedTxn rt;
  rt.txn = txn;
  const NodeId dst = txn.migration_target;
  rt.masters = {dst};
  bool first = true;
  Key lo = 0, hi = 0;
  for (Key k : txn.write_set) {
    if (first) {
      lo = hi = k;
      first = false;
    } else {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
    const NodeId cur = ownership_->Owner(k);
    if (cur == dst) continue;
    rt.accesses.push_back(Access{k, cur, /*is_write=*/true,
                                 /*ship_to_master=*/true,
                                 /*new_owner=*/dst});
  }
  if (!first) ownership_->SetRangeOwner(lo, hi, dst);
  return rt;
}

RoutedTxn Router::PlanProvisioningDefault(const TxnRequest& txn) {
  RoutedTxn rt;
  rt.txn = txn;
  if (txn.kind == TxnKind::kAddNode) {
    OnAddNode(txn.migration_target);
  } else {
    OnRemoveNode(txn.migration_target);
  }
  // Master the marker on the first *live* active node so a marker routed
  // during a degraded window never lands on a crashed node (identical to
  // active_nodes_.front() whenever every node is alive).
  const std::vector<NodeId>& live = candidate_nodes();
  rt.masters = {live.empty() ? (active_nodes_.empty() ? 0 : active_nodes_.front())
                             : live.front()};
  return rt;
}

}  // namespace hermes::routing
