// Parameterized end-to-end sweep: every router kind on several cluster
// shapes and initial placements must drain cleanly, conserve records,
// hold the no-leak invariants, and stay deterministic.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "engine/cluster.h"
#include "partition/partition_map.h"
#include "workload/client.h"
#include "workload/ycsb.h"

namespace hermes {
namespace {

using engine::Cluster;
using engine::RouterKind;

enum class Placement { kRange, kHash };

using SweepParam = std::tuple<RouterKind, int /*nodes*/, Placement>;

class ClusterSweepTest : public ::testing::TestWithParam<SweepParam> {};

std::unique_ptr<partition::PartitionMap> MakeMap(Placement placement,
                                                 uint64_t records,
                                                 int nodes) {
  if (placement == Placement::kHash) {
    return std::make_unique<partition::HashPartitionMap>(records, nodes);
  }
  return std::make_unique<partition::RangePartitionMap>(records, nodes);
}

TEST_P(ClusterSweepTest, RunsCleanly) {
  const auto [kind, nodes, placement] = GetParam();
  ClusterConfig config;
  config.num_nodes = nodes;
  config.num_records = 4000u * nodes;
  config.workers_per_node = 2;
  config.hermes.fusion_table_capacity = config.num_records / 20;
  Cluster cluster(config, kind,
                  MakeMap(placement, config.num_records, nodes));
  cluster.Load();

  workload::YcsbConfig wl;
  wl.num_records = config.num_records;
  wl.num_partitions = nodes;
  wl.seed = 1000 + nodes;
  workload::YcsbWorkload gen(wl, nullptr);
  workload::ClosedLoopDriver driver(
      &cluster, 8 * nodes, [&gen](int, SimTime now) { return gen.Next(now); });
  driver.set_stop_time(MsToSim(800));
  driver.Start();
  cluster.RunUntil(MsToSim(800));
  cluster.Drain();

  EXPECT_GT(cluster.metrics().total_commits(), 50u);
  EXPECT_EQ(cluster.executor().inflight(), 0u);
  uint64_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).store().size();
    EXPECT_EQ(cluster.node(n).locks().num_txns(), 0u) << "node " << n;
    EXPECT_EQ(cluster.node(n).undo().active_txns(), 0u) << "node " << n;
  }
  EXPECT_EQ(total, config.num_records);
  // Latency accounting is self-consistent.
  const auto lat = cluster.metrics().AverageLatency();
  EXPECT_GE(lat.total_us, lat.lock_wait_us);
  EXPECT_GT(lat.total_us, 0u);
}

std::string SweepName(
    const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [kind, nodes, placement] = info.param;
  std::string name;
  switch (kind) {
    case RouterKind::kCalvin: name = "Calvin"; break;
    case RouterKind::kGStore: name = "GStore"; break;
    case RouterKind::kLeap: name = "Leap"; break;
    case RouterKind::kTPart: name = "TPart"; break;
    case RouterKind::kHermes: name = "Hermes"; break;
  }
  name += std::to_string(nodes) + "nodes";
  name += placement == Placement::kHash ? "Hash" : "Range";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterSweepTest,
    ::testing::Combine(::testing::Values(RouterKind::kCalvin,
                                         RouterKind::kGStore,
                                         RouterKind::kLeap,
                                         RouterKind::kTPart,
                                         RouterKind::kHermes),
                       ::testing::Values(2, 6),
                       ::testing::Values(Placement::kRange,
                                         Placement::kHash)),
    SweepName);

}  // namespace
}  // namespace hermes
