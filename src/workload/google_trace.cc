#include "workload/google_trace.h"

#include <cassert>
#include <cmath>

namespace hermes::workload {

SyntheticGoogleTrace::SyntheticGoogleTrace(const GoogleTraceConfig& config)
    : config_(config) {
  assert(config_.num_machines > 0 && config_.num_windows > 0);
  loads_.resize(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) {
    Rng rng(Mix64(config_.seed ^ (0x9e37u + m)));
    auto& series = loads_[m];
    series.reserve(config_.num_windows);
    // Baseline regime: uniform in [0.2, 1.0]; shifts are episodic.
    double regime = 0.2 + 0.8 * rng.NextDouble();
    for (int w = 0; w < config_.num_windows; ++w) {
      if (rng.NextDouble() < config_.regime_switch_prob) {
        regime = 0.2 + 0.8 * rng.NextDouble();
      }
      double load = regime;
      // Lognormal window noise.
      load *= std::exp(config_.noise_sigma * rng.NextGaussian());
      if (rng.NextDouble() < config_.spike_prob) {
        load *= config_.spike_magnitude;
      }
      if (rng.NextDouble() < config_.off_prob) {
        load = 0.01;  // deprovisioned: almost no load enters this machine
      }
      series.push_back(load);
    }
  }
}

double SyntheticGoogleTrace::Load(int machine, SimTime t) const {
  assert(machine >= 0 && machine < config_.num_machines);
  const size_t window =
      (t / config_.window_us) % static_cast<size_t>(config_.num_windows);
  return loads_[machine][window];
}

std::vector<double> SyntheticGoogleTrace::Weights(SimTime t) const {
  std::vector<double> weights(config_.num_machines);
  double total = 0;
  for (int m = 0; m < config_.num_machines; ++m) {
    weights[m] = Load(m, t);
    total += weights[m];
  }
  if (total <= 0) total = 1;
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace hermes::workload
