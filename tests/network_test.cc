#include "sim/network.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/config.h"
#include "net/wire.h"
#include "sim/simulator.h"

namespace hermes::sim {
namespace {

TEST(NetworkTest, DeliversAfterLatencyPlusWireTime) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.001;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);

  SimTime delivered = 0;
  net.Send(0, 1, 10'000, [&] { delivered = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(delivered, 100u + 10u);  // 10k bytes * 1ns
}

TEST(NetworkTest, SelfSendIsFreeButAsynchronous) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  bool delivered = false;
  net.Send(1, 1, 5'000, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // must not run synchronously
  sim.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_EQ(sim.Now(), 0u);
}

TEST(NetworkTest, CountsBytesWithOverheadPerSender) {
  Simulator sim;
  CostModel costs;
  costs.message_overhead_bytes = 64;
  Network net(&sim, &costs, 3);
  net.Send(0, 1, 1000, [] {});
  net.Send(0, 2, 1000, [] {});
  net.Send(2, 1, 500, [] {});
  sim.RunAll();
  EXPECT_EQ(net.bytes_sent(0), 2 * 1064u);
  EXPECT_EQ(net.bytes_sent(2), 564u);
  EXPECT_EQ(net.total_bytes(), 2 * 1064u + 564u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(NetworkTest, EnsureCapacityGrowsCounters) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.EnsureCapacity(5);
  net.Send(4, 0, 100, [] {});
  sim.RunAll();
  EXPECT_GT(net.bytes_sent(4), 0u);
  EXPECT_GT(net.bytes_received(0), 0u);
  EXPECT_EQ(net.link_messages(4, 0), 1u);
}

TEST(NetworkTest, ReceiverAndLinkCountersMatchSends) {
  Simulator sim;
  CostModel costs;
  costs.message_overhead_bytes = 64;
  Network net(&sim, &costs, 3);
  net.Send(0, 1, 1000, [] {});
  net.Send(0, 2, 1000, [] {});
  net.Send(2, 1, 500, [] {});
  sim.RunAll();
  EXPECT_EQ(net.bytes_received(1), 1064u + 564u);
  EXPECT_EQ(net.bytes_received(2), 1064u);
  EXPECT_EQ(net.bytes_received(0), 0u);
  EXPECT_EQ(net.total_bytes_received(), net.total_bytes());
  EXPECT_EQ(net.messages_received(1), 2u);
  EXPECT_EQ(net.link_messages(0, 1), 1u);
  EXPECT_EQ(net.link_messages(0, 2), 1u);
  EXPECT_EQ(net.link_messages(2, 1), 1u);
  EXPECT_EQ(net.link_messages(1, 0), 0u);
}

TEST(NetworkTest, SelfSendCountsNothing) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.Send(1, 1, 5'000, [] {});
  sim.RunAll();
  EXPECT_EQ(net.total_bytes_received(), 0u);
  EXPECT_EQ(net.messages_received(1), 0u);
  EXPECT_EQ(net.link_messages(1, 1), 0u);
}

TEST(NetworkTest, EnsureCapacityGrowsLinkMatrixBothDimensions) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.Send(0, 1, 100, [] {});
  net.EnsureCapacity(4);
  net.Send(3, 0, 100, [] {});
  net.Send(1, 3, 100, [] {});
  sim.RunAll();
  EXPECT_EQ(net.link_messages(0, 1), 1u);  // preserved across the grow
  EXPECT_EQ(net.link_messages(3, 0), 1u);
  EXPECT_EQ(net.link_messages(1, 3), 1u);
}

TEST(NetworkTest, DroppedAttemptsCostSenderNotReceiver) {
  // A drop is a retransmitted wire attempt: the sender pays the bytes
  // again and delivery slips, but the payload lands exactly once.
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.0;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);
  net.set_perturbation([](NodeId, NodeId, uint64_t, SimTime, uint64_t) {
    Perturbation p;
    p.dropped_attempts = 2;
    p.extra_delay_us = 400;  // 2 retransmit timeouts
    return p;
  });
  int deliveries = 0;
  SimTime delivered_at = 0;
  net.Send(0, 1, 1000, [&] {
    ++deliveries;
    delivered_at = sim.Now();
  });
  sim.RunAll();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(delivered_at, 100u + 400u);
  EXPECT_EQ(net.bytes_sent(0), 3000u);      // 3 wire attempts
  EXPECT_EQ(net.bytes_received(1), 1000u);  // one landed
  EXPECT_EQ(net.link_messages(0, 1), 3u);
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(net.messages_duplicated(), 0u);
}

TEST(NetworkTest, DuplicatesCostBothEndsButDeliverOnce) {
  // A duplicate is an extra wire copy absorbed by receiver-side dedup:
  // bytes count at both ends, the callback still fires exactly once.
  Simulator sim;
  CostModel costs;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);
  net.set_perturbation([](NodeId, NodeId, uint64_t, SimTime, uint64_t) {
    Perturbation p;
    p.duplicates = 1;
    return p;
  });
  int deliveries = 0;
  net.Send(0, 1, 1000, [&] { ++deliveries; });
  sim.RunAll();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(net.bytes_sent(0), 2000u);
  EXPECT_EQ(net.bytes_received(1), 2000u);
  EXPECT_EQ(net.messages_received(1), 2u);
  EXPECT_EQ(net.messages_duplicated(), 1u);
}

// --- Partitions: reachability matrix + per-link FIFO holding pens. ---

TEST(NetworkTest, CutParksSendsAndHealReleasesFifo) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.0;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);

  net.CutLink(0, 1);
  EXPECT_FALSE(net.reachable(0, 1));
  EXPECT_TRUE(net.reachable(1, 0));
  EXPECT_TRUE(net.any_cut());

  std::vector<int> order;
  net.Send(0, 1, 100, [&] { order.push_back(1); });
  net.Send(0, 1, 100, [&] { order.push_back(2); });
  net.Send(0, 1, 100, [&] { order.push_back(3); });
  sim.RunAll();
  EXPECT_TRUE(order.empty()) << "a parked message delivered under the cut";
  EXPECT_EQ(net.messages_held(), 3u);
  EXPECT_EQ(net.total_held(), 3u);
  // The bytes left the sender's NIC and died on the cut wire.
  EXPECT_EQ(net.bytes_sent(0), 300u);
  EXPECT_EQ(net.bytes_received(1), 0u);

  net.HealLink(0, 1);
  EXPECT_FALSE(net.any_cut());
  EXPECT_EQ(net.messages_held(), 0u);
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}))
      << "pen must release in FIFO order";
  EXPECT_EQ(net.bytes_received(1), 300u);
  EXPECT_EQ(net.cut_deliveries(), 0u);
}

TEST(NetworkTest, OneWayCutOnlyBlocksThatDirection) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.CutLink(0, 1);
  bool forward = false, backward = false;
  net.Send(0, 1, 100, [&] { forward = true; });
  net.Send(1, 0, 100, [&] { backward = true; });
  sim.RunAll();
  EXPECT_FALSE(forward);
  EXPECT_TRUE(backward) << "the reverse direction must stay live";
  net.HealLink(0, 1);
  sim.RunAll();
  EXPECT_TRUE(forward);
}

TEST(NetworkTest, HealRemeasuresWireTimeFromHealPoint) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.0;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);
  net.CutLink(0, 1);

  SimTime delivered_at = 0;
  net.Send(0, 1, 100, [&] { delivered_at = sim.Now(); });
  sim.Schedule(500, [&] { net.HealLink(0, 1); });
  sim.RunAll();
  // Parked at t=0, healed at t=500, wire re-measured from the heal.
  EXPECT_EQ(delivered_at, 500u + 100u);
}

TEST(NetworkTest, MessageInFlightWhenCutLandsStillDelivers) {
  // Send-time cut semantics: the receiver's transport buffer outlives the
  // cut (matching the crash model), so a message already on the wire
  // lands even though its link is cut before the delivery time.
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  Network net(&sim, &costs, 2);
  bool delivered = false;
  net.Send(0, 1, 100, [&] { delivered = true; });
  sim.Schedule(10, [&] { net.CutLink(0, 1); });
  sim.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_held(), 0u);
  EXPECT_EQ(net.cut_deliveries(), 0u);
}

TEST(NetworkTest, CutAndHealAreIdempotent) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  net.CutLink(0, 1);
  net.CutLink(0, 1);
  EXPECT_TRUE(net.any_cut());
  net.HealLink(0, 1);
  EXPECT_FALSE(net.any_cut());
  net.HealLink(0, 1);
  EXPECT_FALSE(net.any_cut());
}

TEST(NetworkTest, ParkedMessageKeepsItsSendTimePerturbation) {
  // Draws are keyed by the send-time link_seq, so parking and releasing a
  // message must not shift any draw: the held message carries its
  // already-drawn duplicate count through the pen.
  Simulator sim;
  CostModel costs;
  costs.message_overhead_bytes = 0;
  Network net(&sim, &costs, 2);
  net.set_perturbation([](NodeId, NodeId, uint64_t, SimTime, uint64_t seq) {
    Perturbation p;
    p.duplicates = seq == 0 ? 1 : 0;
    return p;
  });
  net.CutLink(0, 1);
  int deliveries = 0;
  net.Send(0, 1, 1000, [&] { ++deliveries; });  // seq 0: duplicated
  net.Send(0, 1, 1000, [&] { ++deliveries; });  // seq 1: clean
  net.HealLink(0, 1);
  sim.RunAll();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(net.bytes_sent(0), 3000u);      // dup costs the sender at send
  EXPECT_EQ(net.bytes_received(1), 3000u);  // and the receiver at release
  EXPECT_EQ(net.messages_received(1), 3u);
  EXPECT_EQ(net.messages_duplicated(), 1u);
}

// --- Wire substrate over the pens: cuts landing on a busy serializer. ---

TEST(NetworkTest, CutWhileTransmitQueueNonEmptyParksQueuedMessagesFifo) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.001;
  costs.message_overhead_bytes = 0;
  Network fabric(&sim, &costs, 2);
  NetConfig net_config;
  net_config.enabled = true;
  net_config.coalesce_window_us = 0;
  net::Wire wire(&sim, &fabric, &costs, &net_config, 2);

  std::vector<int> order;
  std::vector<SimTime> at;
  auto record = [&](int id) {
    return [&, id] {
      order.push_back(id);
      at.push_back(sim.Now());
    };
  };
  // m1 transmits immediately (serialization 10us) and is on the wire when
  // the cut lands; m2/m3 are still sitting in the transmit queue.
  wire.Send(0, 1, 10'000, TrafficClass::kForeground, record(1));
  wire.Send(0, 1, 10'000, TrafficClass::kForeground, record(2));
  wire.Send(0, 1, 10'000, TrafficClass::kForeground, record(3));
  sim.Schedule(5, [&] {
    fabric.CutLink(0, 1);
    wire.OnLinkCut(0, 1);
  });
  // A send issued under the cut goes straight to the pen behind them.
  sim.Schedule(20, [&] { wire.Send(0, 1, 10'000, TrafficClass::kForeground,
                                   record(4)); });
  sim.Schedule(600, [&] { fabric.HealLink(0, 1); });
  sim.RunAll();

  // In-flight m1 still lands (send-time cut semantics); the queued pair
  // parked FIFO and re-measure their wire time from the heal point.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  ASSERT_EQ(at.size(), 4u);
  EXPECT_EQ(at[0], 110u);
  EXPECT_EQ(at[1], 600u + 110u);
  EXPECT_EQ(at[2], 600u + 110u);
  EXPECT_EQ(at[3], 600u + 110u);
  EXPECT_EQ(fabric.cut_deliveries(), 0u);
  EXPECT_EQ(fabric.messages_held(), 0u);
  EXPECT_EQ(wire.queued_now(), 0u) << "the drain must empty the queue";
}

TEST(NetworkTest, CutFlushesOpenEnvelopeIntoThePen) {
  Simulator sim;
  CostModel costs;
  costs.net_latency_us = 100;
  costs.net_us_per_byte = 0.001;
  costs.message_overhead_bytes = 0;
  Network fabric(&sim, &costs, 2);
  NetConfig net_config;
  net_config.enabled = true;
  net_config.coalesce_window_us = 1000;  // window still open at the cut
  net_config.coalesce_max_bytes = 0;
  net::Wire wire(&sim, &fabric, &costs, &net_config, 2);

  std::vector<int> order;
  std::vector<SimTime> at;
  wire.Send(0, 1, 100, TrafficClass::kBulk, [&] {
    order.push_back(1);
    at.push_back(sim.Now());
  });
  wire.Send(0, 1, 100, TrafficClass::kBulk, [&] {
    order.push_back(2);
    at.push_back(sim.Now());
  });
  sim.Schedule(5, [&] {
    fabric.CutLink(0, 1);
    wire.OnLinkCut(0, 1);
    // The open envelope sealed and parked as ONE wire message.
    EXPECT_EQ(fabric.messages_held(), 1u);
  });
  sim.Schedule(600, [&] { fabric.HealLink(0, 1); });
  sim.RunAll();

  EXPECT_EQ(order, (std::vector<int>{1, 2}))
      << "envelope must open in append order at delivery";
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 600u + 100u);  // 200 bytes round to zero wire time
  EXPECT_EQ(at[1], 600u + 100u);
  EXPECT_EQ(wire.envelopes_sent(), 1u);
  EXPECT_EQ(wire.coalesced_messages(), 2u);
  EXPECT_EQ(fabric.cut_deliveries(), 0u);
}

TEST(NetworkTest, PerturbationIgnoresSelfSends) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, &costs, 2);
  int consulted = 0;
  net.set_perturbation([&](NodeId, NodeId, uint64_t, SimTime, uint64_t) {
    ++consulted;
    return Perturbation{};
  });
  net.Send(1, 1, 100, [] {});
  net.Send(0, 1, 100, [] {});
  sim.RunAll();
  EXPECT_EQ(consulted, 1);
}

}  // namespace
}  // namespace hermes::sim
