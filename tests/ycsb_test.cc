#include "workload/ycsb.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hermes::workload {
namespace {

YcsbConfig SmallYcsb() {
  YcsbConfig config;
  config.num_records = 100'000;
  config.num_partitions = 4;
  config.seed = 3;
  return config;
}

TEST(YcsbTest, KeysInRangeAndDeduped) {
  YcsbWorkload gen(SmallYcsb(), nullptr);
  for (int i = 0; i < 5000; ++i) {
    const TxnRequest txn = gen.Next(0);
    EXPECT_FALSE(txn.read_set.empty());
    EXPECT_TRUE(std::is_sorted(txn.read_set.begin(), txn.read_set.end()));
    EXPECT_TRUE(std::adjacent_find(txn.read_set.begin(), txn.read_set.end()) ==
                txn.read_set.end());
    for (Key k : txn.read_set) EXPECT_LT(k, 100'000u);
  }
}

TEST(YcsbTest, ReadWriteMixMatchesConfig) {
  YcsbConfig config = SmallYcsb();
  config.rw_ratio = 0.3;
  YcsbWorkload gen(config, nullptr);
  int rw = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) {
    if (!gen.Next(0).write_set.empty()) ++rw;
  }
  EXPECT_NEAR(static_cast<double>(rw) / kSamples, 0.3, 0.02);
}

TEST(YcsbTest, WriteSetsEqualReadSetsForRmw) {
  YcsbConfig config = SmallYcsb();
  config.rw_ratio = 1.0;
  YcsbWorkload gen(config, nullptr);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest txn = gen.Next(0);
    EXPECT_EQ(txn.read_set, txn.write_set);
  }
}

TEST(YcsbTest, DistributedRatioControlsSpread) {
  YcsbConfig local_only = SmallYcsb();
  local_only.distributed_ratio = 0.0;
  YcsbWorkload gen(local_only, nullptr);
  const uint64_t psize = gen.partition_size();
  for (int i = 0; i < 2000; ++i) {
    const TxnRequest txn = gen.Next(0);
    // All keys within one partition range.
    const uint64_t p = txn.read_set.front() / psize;
    for (Key k : txn.read_set) EXPECT_EQ(k / psize, p);
  }
}

TEST(YcsbTest, GlobalPeakSweepsOverTime) {
  YcsbConfig config = SmallYcsb();
  config.hotspot_cycle_us = 1'000'000;
  YcsbWorkload gen(config, nullptr);
  const uint64_t p0 = gen.GlobalPeak(0);
  const uint64_t p1 = gen.GlobalPeak(250'000);
  const uint64_t p2 = gen.GlobalPeak(750'000);
  EXPECT_EQ(p0, 0u);
  EXPECT_NEAR(static_cast<double>(p1), 25'000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(p2), 75'000.0, 100.0);
  // Wraps at the cycle boundary.
  EXPECT_EQ(gen.GlobalPeak(1'000'000), 0u);
}

TEST(YcsbTest, TraceWeightsSteerLocalPartition) {
  GoogleTraceConfig trace_config;
  trace_config.num_machines = 4;
  trace_config.num_windows = 1;
  trace_config.off_prob = 0;
  trace_config.spike_prob = 0;
  SyntheticGoogleTrace trace(trace_config);

  YcsbConfig config = SmallYcsb();
  config.distributed_ratio = 0.0;
  YcsbWorkload gen(config, &trace);

  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20'000; ++i) {
    ++counts[gen.Next(0).read_set.front() / gen.partition_size()];
  }
  const auto weights = trace.Weights(0);
  for (int p = 0; p < 4; ++p) {
    EXPECT_NEAR(counts[p] / 20'000.0, weights[p], 0.02);
  }
}

TEST(YcsbTest, TransactionLengthFollowsNormal) {
  YcsbConfig config = SmallYcsb();
  config.length_mean = 10;
  config.length_stddev = 5;
  config.distributed_ratio = 0;
  YcsbWorkload gen(config, nullptr);
  double sum = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(gen.Next(0).read_set.size());
  }
  // Zipf duplicates shrink the set slightly below the sampled length.
  EXPECT_NEAR(sum / kSamples, 10.0, 2.0);
  EXPECT_GT(sum / kSamples, 5.0);
}

TEST(YcsbTest, DeterministicForSeed) {
  YcsbWorkload a(SmallYcsb(), nullptr), b(SmallYcsb(), nullptr);
  for (int i = 0; i < 200; ++i) {
    const TxnRequest ta = a.Next(1000 * i);
    const TxnRequest tb = b.Next(1000 * i);
    EXPECT_EQ(ta.read_set, tb.read_set);
    EXPECT_EQ(ta.write_set, tb.write_set);
  }
}

}  // namespace
}  // namespace hermes::workload
