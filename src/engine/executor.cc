#include "engine/executor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <tuple>

namespace hermes::engine {
namespace {

using routing::Access;
using routing::RoutedTxn;

std::vector<Key> SortedUnique(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Packs one planned access into a TraceEvent arg: new-owner node in the
/// high bits, write/ship flags in the low two.
uint64_t PackAccessArg(const routing::Access& acc) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(acc.new_owner)) << 2) |
         (acc.is_write ? 2u : 0u) | (acc.ship_to_master ? 1u : 0u);
}

constexpr Key kNoKey = static_cast<Key>(-1);

}  // namespace

TxnExecutor::TxnExecutor(sim::Simulator* sim, net::Wire* wire,
                         Metrics* metrics, const CostModel* costs,
                         std::vector<std::unique_ptr<Node>>* nodes)
    : sim_(sim), net_(wire), metrics_(metrics), costs_(costs), nodes_(nodes) {}

TxnExecutor::NodeState* TxnExecutor::StateFor(Active& a, NodeId node) {
  for (auto& [id, state] : a.nodes) {
    if (id == node) return &state;
  }
  return nullptr;
}

TxnExecutor::MasterState* TxnExecutor::MasterFor(Active& a, NodeId node) {
  for (auto& m : a.masters) {
    if (m.node == node) return &m;
  }
  return nullptr;
}

bool TxnExecutor::IsMaster(const Active& a, NodeId node) const {
  for (const auto& m : a.masters) {
    if (m.node == node) return true;
  }
  return false;
}

void TxnExecutor::Dispatch(const RoutedTxn& plan, CommitCallback on_commit) {
  const TxnId id = plan.txn.id;
  assert(!plan.masters.empty());
  if (HERMES_TRACE_ACTIVE(tracer_)) {
    tracer_->Record(obs::EventKind::kTxnDispatch, plan.masters[0], id, kNoKey,
                    plan.accesses.size());
    for (const auto& acc : plan.accesses) {
      tracer_->Record(obs::EventKind::kAccess, acc.owner, id, acc.key,
                      PackAccessArg(acc));
    }
  }
  // Replica-lease maintenance rides the plan in dispatch (= total) order:
  // holder-set changes first, then the install shipments, so a read
  // routed later in this batch already sees the holder registered.
  if (lease_mgr_ != nullptr) {
    for (const routing::ReplicaOp& op : plan.replica_ops) {
      if (op.kind == routing::ReplicaOpKind::kInstall) {
        lease_mgr_->BeginInstall(op.key, op.node, op.source);
        StartReplicaInstall(op.key, op.source, op.node, id);
      } else {
        lease_mgr_->Revoke(op.key, op.node);
      }
    }
  }

  auto owned_active = std::make_unique<Active>();
  Active& a = *owned_active;
  a.plan = plan;
  a.on_commit = std::move(on_commit);
  a.dispatch_time = sim_->Now();
  a.write_keys = SortedUnique(plan.txn.write_set);
  for (NodeId m : plan.masters) a.masters.push_back(MasterState{m});

  // Group lock requests and owned accesses per involved node. std::map
  // keeps node order deterministic.
  std::map<NodeId, NodeState> states;
  const bool regular = plan.txn.kind == TxnKind::kRegular;
  for (const Access& acc : plan.accesses) {
    NodeState& owner_state = states[acc.owner];
    owner_state.owned.push_back(acc);
    owner_state.lock_requests.push_back(
        storage::LockRequest{acc.key, acc.is_write});
    // Migration fence: a record moving to a master that will write it is
    // exclusively locked at the destination until commit, so transactions
    // routed there later in the total order cannot read it early.
    if (regular && acc.new_owner != kInvalidNode &&
        acc.new_owner != acc.owner && IsMaster(a, acc.new_owner)) {
      states[acc.new_owner].lock_requests.push_back(
          storage::LockRequest{acc.key, true});
    }
  }
  for (const auto& m : a.masters) states[m.node].is_master = true;

  // Count expected shipments per master: one message per (source node,
  // master) pair with at least one shipped access.
  for (auto& [node, state] : states) {
    std::vector<NodeId> targets;
    for (const Access& acc : state.owned) {
      if (!acc.ship_to_master) continue;
      if (acc.new_owner != kInvalidNode && acc.new_owner != node &&
          IsMaster(a, acc.new_owner)) {
        // The migration message itself carries the value to the master.
        targets.push_back(acc.new_owner);
        continue;
      }
      // Read copy (including reads whose record migrates to a non-master,
      // e.g. a return-migration home): one message per remote master.
      for (const auto& m : a.masters) {
        if (m.node != node) targets.push_back(m.node);
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (NodeId t : targets) {
      MasterState* m = MasterFor(a, t);
      if (m != nullptr) ++m->pending_messages;
    }
  }

  a.nodes.assign(states.begin(), states.end());
  a.distributed = a.nodes.size() > 1;

  // Deduplicate lock requests per node (a key can appear as both a normal
  // access and a fence/eviction access): exclusive wins.
  for (auto& [node, state] : a.nodes) {
    (void)node;
    auto& reqs = state.lock_requests;
    std::sort(reqs.begin(), reqs.end(),
              [](const storage::LockRequest& x, const storage::LockRequest& y) {
                if (x.key != y.key) return x.key < y.key;
                return x.exclusive > y.exclusive;
              });
    reqs.erase(std::unique(reqs.begin(), reqs.end(),
                           [](const storage::LockRequest& x,
                              const storage::LockRequest& y) {
                             return x.key == y.key;
                           }),
               reqs.end());
  }

  for (const auto& [node, state] : a.nodes) {
    if (NodeWillSend(a, state, node)) ++a.participants_pending;
  }

  actives_[id] = std::move(owned_active);

  // Enqueue all lock requests in total order (ascending node id within the
  // transaction; Dispatch itself is called in total order).
  for (auto& [node, state] : a.nodes) {
    state.acquire_time = sim_->Now();
    std::vector<TxnId> granted;
    NodeAt(node).locks().Acquire(id, state.lock_requests, &granted);
    ProcessGrants(node, granted);
  }
}

void TxnExecutor::ProcessGrants(NodeId node,
                                const std::vector<TxnId>& granted) {
  for (TxnId t : granted) {
    auto it = actives_.find(t);
    if (it == actives_.end()) continue;
    OnNodeGranted(*it->second, node);
  }
}

bool TxnExecutor::NodeWillSend(const Active& a, const NodeState& state,
                               NodeId node) const {
  for (const Access& acc : state.owned) {
    const bool migrates =
        acc.new_owner != kInvalidNode && acc.new_owner != node;
    const bool ships = acc.ship_to_master &&
                       (a.masters.size() > 1 || a.masters[0].node != node);
    if (migrates || ships) return true;
  }
  return false;
}

void TxnExecutor::OnNodeGranted(Active& a, NodeId node) {
  NodeState* state = StateFor(a, node);
  assert(state != nullptr && !state->granted);
  if (NodeDead(node)) {
    // Grant reached a dead node (its previous lock holder committed or
    // was aborted): the transaction cannot make progress here. Leave it
    // ungranted and stalled; rejoin re-drives the grant from the top, or
    // the watchdog reclassifies it first.
    const TxnId id = a.plan.txn.id;
    FreezeStalled(a, node, [this, id, node]() {
      auto it = actives_.find(id);
      if (it == actives_.end()) return;
      OnNodeGranted(*it->second, node);
    });
    return;
  }
  state->granted = true;
  state->grant_time = sim_->Now();

  // Participant side: ship records once they are physically present.
  std::vector<Key> needed;
  for (const Access& acc : state->owned) {
    const bool migrates =
        acc.new_owner != kInvalidNode && acc.new_owner != node;
    const bool ships = acc.ship_to_master &&
                       (a.masters.size() > 1 || a.masters[0].node != node);
    if (migrates || ships) needed.push_back(acc.key);
  }
  const TxnId id = a.plan.txn.id;
  if (NodeWillSend(a, *state, node)) {
    WaitPresence(node, SortedUnique(std::move(needed)),
                 [this, id, node]() {
                   auto it = actives_.find(id);
                   if (it == actives_.end()) return;
                   StartParticipant(*it->second, node);
                 });
  }

  // Master side: check local presence, then readiness. Replica reads wait
  // on the lease copy instead of the primary store (the primary lives
  // elsewhere); both waits share one countdown so local_present flips
  // exactly once.
  MasterState* m = MasterFor(a, node);
  if (m != nullptr) {
    std::vector<Key> local;
    std::vector<Key> replica;
    for (const Access& acc : state->owned) {
      if (acc.replica_read && lease_mgr_ != nullptr) {
        replica.push_back(acc.key);
      } else {
        local.push_back(acc.key);
      }
    }
    auto remaining = std::make_shared<int>(replica.empty() ? 1 : 2);
    auto present = [this, id, node, remaining]() {
      if (--*remaining > 0) return;
      auto it = actives_.find(id);
      if (it == actives_.end()) return;
      Active& act = *it->second;
      MasterState* ms = MasterFor(act, node);
      ms->local_present = true;
      CheckMasterReady(act, *ms);
    };
    if (!replica.empty()) {
      lease_mgr_->WaitCopies(node, SortedUnique(std::move(replica)), present);
    }
    WaitPresence(node, SortedUnique(std::move(local)), present);
  }
}

void TxnExecutor::StartParticipant(Active& a, NodeId node) {
  if (NodeDead(node)) {  // died between grant and record presence
    const TxnId stall_id = a.plan.txn.id;
    FreezeStalled(a, node, [this, stall_id, node]() {
      auto it = actives_.find(stall_id);
      if (it == actives_.end()) return;
      StartParticipant(*it->second, node);
    });
    return;
  }
  // Local storage reads for everything this node ships, on a worker.
  NodeState* state = StateFor(a, node);
  size_t ops = 0;
  for (const Access& acc : state->owned) {
    const bool involved =
        (acc.new_owner != kInvalidNode && acc.new_owner != node) ||
        (acc.ship_to_master &&
         (a.masters.size() > 1 || a.masters[0].node != node));
    if (involved) ++ops;
  }
  const TxnId id = a.plan.txn.id;
  NodeAt(node).workers().Submit(
      costs_->storage_op_us * ops, [this, id, node]() {
        auto it = actives_.find(id);
        if (it == actives_.end()) return;
        FinishParticipant(*it->second, node);
      });
}

void TxnExecutor::FinishParticipant(Active& a, NodeId node) {
  if (NodeDead(node)) {  // died while the send phase ran on a worker
    // Nothing shipped yet (extraction happens below, all at once), so the
    // resumed machine re-runs the whole send phase safely.
    const TxnId stall_id = a.plan.txn.id;
    FreezeStalled(a, node, [this, stall_id, node]() {
      auto it = actives_.find(stall_id);
      if (it == actives_.end()) return;
      FinishParticipant(*it->second, node);
    });
    return;
  }
  NodeState* state = StateFor(a, node);
  Node& src = NodeAt(node);

  // Build one message per destination: read copies to masters, record
  // moves to their new owners. Copies are snapshotted before any move
  // extracts the record.
  struct Shipment {
    std::vector<std::pair<Key, storage::Record>> moves;
    uint64_t bytes = 0;
    bool to_master = false;
  };
  std::map<NodeId, Shipment> shipments;

  for (const Access& acc : state->owned) {
    const bool migrates =
        acc.new_owner != kInvalidNode && acc.new_owner != node;
    const bool migrates_to_master =
        migrates && IsMaster(a, acc.new_owner);
    if (!acc.ship_to_master || migrates_to_master) continue;
    // Read copy to every remote master (for records migrating to a
    // non-master destination, the copy and the move are separate
    // messages).
    for (const auto& m : a.masters) {
      if (m.node == node) continue;
      Shipment& s = shipments[m.node];
      s.bytes += costs_->record_bytes;
      s.to_master = true;
    }
  }
  for (const Access& acc : state->owned) {
    const bool migrates =
        acc.new_owner != kInvalidNode && acc.new_owner != node;
    if (!migrates) continue;
    auto rec = src.store().Extract(acc.key);
    assert(rec.has_value() && "migrating a record that is not present");
    HERMES_TRACE(tracer_, obs::EventKind::kRecordExtract, node, a.plan.txn.id,
                 acc.key, static_cast<uint32_t>(acc.new_owner));
    Shipment& s = shipments[acc.new_owner];
    s.moves.emplace_back(acc.key, *rec);
    s.bytes += costs_->record_bytes;
    TrackInFlight(acc.key, node, acc.new_owner, a.plan.txn.id, *rec);
    if (acc.ship_to_master && IsMaster(a, acc.new_owner)) s.to_master = true;
  }

  const TxnId id = a.plan.txn.id;
  // Regular transactions block on these shipments (foreground); chunk
  // migrations and provisioning markers move data in the background (bulk,
  // eligible for envelope coalescing on the wire substrate).
  const TrafficClass ship_cls = a.plan.txn.kind == TxnKind::kRegular
                                    ? TrafficClass::kForeground
                                    : TrafficClass::kBulk;
  uint64_t migrated = 0;
  for (auto& [dest, shipment] : shipments) {
    migrated += shipment.moves.size();
    net_->Send(node, dest, shipment.bytes, ship_cls,
               [this, id, dest, moves = std::move(shipment.moves),
                notify_master = shipment.to_master]() {
                 for (const auto& [key, rec] : moves) {
                   DeliverRecord(dest, key, rec);
                 }
                 auto it = actives_.find(id);
                 if (it == actives_.end()) return;
                 if (notify_master) {
                   MasterState* m = MasterFor(*it->second, dest);
                   if (m != nullptr) {
                     assert(m->pending_messages > 0);
                     --m->pending_messages;
                     ++m->messages_received;
                     CheckMasterReady(*it->second, *m);
                   }
                 }
               });
  }
  // Early release: participants that are not masters give their locks up
  // right after shipping (their part of the transaction is over). Lock
  // state is node-local, so the release and its grant chain stay on this
  // lane; the shared bookkeeping (metrics, participant counter, possible
  // completion) rides the epoch barrier at the same virtual time.
  std::vector<TxnId> granted;
  if (!state->is_master) {
    src.locks().Release(id, &granted);
  }
  sim_->Defer([this, id, migrated]() {
    if (migrated > 0) metrics_->RecordMigrations(sim_->Now(), migrated);
    auto it = actives_.find(id);
    if (it == actives_.end()) return;
    Active& act = *it->second;
    --act.participants_pending;
    MaybeComplete(act);  // may destroy `act`
  });
  ProcessGrants(node, granted);
}

void TxnExecutor::CheckMasterReady(Active& a, MasterState& m) {
  if (NodeDead(m.node)) {
    // The master died before starting. (A master that already started
    // races the crash: its worker completion still commits — the rebuilt
    // store replays that commit, so the detached-in-place image matches.)
    // Re-checking readiness at rejoin is idempotent: started/granted/
    // presence/pending are all re-tested.
    const TxnId id = a.plan.txn.id;
    const NodeId node = m.node;
    FreezeStalled(a, node, [this, id, node]() {
      auto it = actives_.find(id);
      if (it == actives_.end()) return;
      MasterState* ms = MasterFor(*it->second, node);
      if (ms != nullptr) CheckMasterReady(*it->second, *ms);
    });
    return;
  }
  NodeState* state = StateFor(a, m.node);
  if (m.started || !state->granted || !m.local_present ||
      m.pending_messages > 0) {
    return;
  }
  m.started = true;
  m.ready_time = sim_->Now();
  if (m.ready_time > state->grant_time) {
    m.remote_wait_us += m.ready_time - state->grant_time;
  }
  ExecuteMaster(a, m);
}

void TxnExecutor::ExecuteMaster(Active& a, MasterState& m) {
  // Execution cost: fixed logic + per-record logic + local storage ops.
  const bool single_master = a.masters.size() == 1;
  const NodeState* state = StateFor(a, m.node);
  size_t local_ops = state->owned.size();
  for (Key k : a.write_keys) {
    (void)k;
    if (single_master) ++local_ops;  // every write applies here
  }
  if (!single_master) {
    for (const Access& acc : state->owned) {
      if (acc.is_write) ++local_ops;
    }
  }
  const SimTime cost = costs_->txn_logic_us +
                       costs_->txn_logic_per_record_us * a.plan.txn.NumOps() +
                       costs_->storage_op_us * local_ops +
                       costs_->msg_processing_us * m.messages_received;
  m.exec_us += cost;
  const TxnId id = a.plan.txn.id;
  const NodeId node = m.node;
  NodeAt(node).workers().Submit(cost, [this, id, node]() {
    auto it = actives_.find(id);
    if (it == actives_.end()) return;
    Active& act = *it->second;
    MasterState* ms = MasterFor(act, node);
    CommitMaster(act, *ms);
  });
}

void TxnExecutor::CommitMaster(Active& a, MasterState& m) {
  Node& node = NodeAt(m.node);
  const TxnId id = a.plan.txn.id;
  const bool single_master = a.masters.size() == 1;

  if (a.plan.txn.kind == TxnKind::kRegular) {
    // Apply writes with UNDO pre-images; a user abort rolls them back but
    // the migration plan already executed (§4.2).
    for (Key k : a.write_keys) {
      bool applies_here = single_master;
      if (!single_master) {
        const NodeState* state = StateFor(a, m.node);
        applies_here = false;
        for (const Access& acc : state->owned) {
          if (acc.key == k && acc.is_write) {
            applies_here = true;
            break;
          }
        }
      }
      if (!applies_here) continue;
      const storage::Record* pre = node.store().Get(k);
      assert(pre != nullptr && "write target not present at master");
      node.undo().RecordPreImage(id, k, *pre);
      node.store().ApplyWrite(k, id);
    }
    if (a.plan.txn.user_abort) {
      node.undo().Abort(id, &node.store());
    } else {
      node.undo().Commit(id);
    }
  }

  // Replica-lease write fan-out: every committed write of a leased key
  // sends the full post-commit record snapshot to the sorted holder set
  // (batch-ordered: the commit itself is ordered by this master's lock).
  // Holders apply version-max, so late or duplicated updates converge.
  // Each key fans out from the master that applied it (the same
  // applies-here test as the write loop above), so multi-master plans
  // refresh copies exactly once per key. The holder set is
  // exclusive-written, lane-read — safe here.
  if (lease_mgr_ != nullptr && a.plan.txn.kind == TxnKind::kRegular &&
      !a.plan.txn.user_abort) {
    uint64_t fanout_work = 0;
    for (Key k : a.write_keys) {
      bool applies_here = single_master;
      if (!single_master) {
        const NodeState* state = StateFor(a, m.node);
        applies_here = false;
        for (const Access& acc : state->owned) {
          if (acc.key == k && acc.is_write) {
            applies_here = true;
            break;
          }
        }
      }
      if (!applies_here) continue;
      const std::vector<NodeId>* holders = lease_mgr_->HoldersOf(k);
      if (holders == nullptr) continue;
      const storage::Record* rec = node.store().Get(k);
      if (rec == nullptr) continue;
      const storage::Record snapshot = *rec;
      for (NodeId h : *holders) {
        if (h == m.node) {
          // The primary migrated onto a holder: refresh its copy in place
          // (own lane, own shard), no network hop.
          lease_mgr_->ApplyCopy(h, k, snapshot, /*install=*/false, id);
          continue;
        }
        fanout_work += costs_->storage_op_us;
        // Batch-ordered apply: the holder is already consuming this
        // epoch's sequenced batch stream, so the refresh costs it one
        // storage op, not a point-to-point RPC deserialization (only the
        // initial install pays msg_processing for its fetch).
        net_->Send(m.node, h, costs_->record_bytes, TrafficClass::kBulk,
                   [this, k, h, id, snapshot]() {
                     if (NodeDead(h)) return;
                     NodeAt(h).workers().Submit(costs_->storage_op_us, [] {});
                     lease_mgr_->ApplyCopy(h, k, snapshot,
                                           /*install=*/false, id);
                   });
      }
    }
    if (fanout_work > 0) node.workers().Submit(fanout_work, [] {});
  }

  std::vector<TxnId> granted;
  node.locks().Release(id, &granted);
  m.done = true;
  const NodeId master_node = m.node;
  // The done-counter is shared across masters (different node lanes) and
  // the acknowledgment does cross-node work (return-shipment extracts),
  // so both run at the epoch barrier, at this same virtual time. The
  // grant chain is node-local and stays on this lane.
  sim_->Defer([this, id]() { OnMasterDone(id); });
  ProcessGrants(master_node, granted);
}

void TxnExecutor::OnMasterDone(TxnId id) {
  auto it = actives_.find(id);
  if (it == actives_.end()) return;
  Active& a = *it->second;
  ++a.masters_done;
  if (a.masters_done == static_cast<int>(a.masters.size())) {
    Acknowledge(a);
    MaybeComplete(a);  // may destroy `a`
  }
}

void TxnExecutor::MaybeComplete(Active& a) {
  if (a.acked && a.participants_pending == 0) {
    frozen_ids_.erase(a.plan.txn.id);
    actives_.erase(a.plan.txn.id);  // destroys `a`
  }
}

void TxnExecutor::Acknowledge(Active& a) {
  assert(!sim_->in_lane_context() &&
         "acknowledgment does cross-node work; exclusive context only");
  // Return shipments: checked-out records go home after commit. The
  // write-back is real work: the sender reads and serializes each record,
  // the receiver deserializes and re-inserts it — this is the overhead
  // data fusion avoids (§6.3).
  uint64_t returns = 0;
  std::map<NodeId, uint64_t> send_work;
  for (const routing::ReturnShipment& r : a.plan.on_commit_returns) {
    auto rec = NodeAt(r.from).store().Extract(r.key);
    assert(rec.has_value() && "returning a record that is not present");
    HERMES_TRACE(tracer_, obs::EventKind::kRecordExtract, r.from,
                 a.plan.txn.id, r.key, static_cast<uint32_t>(r.to));
    TrackInFlight(r.key, r.from, r.to, a.plan.txn.id, *rec);
    ++returns;
    send_work[r.from] += costs_->storage_op_us;
    net_->Send(r.from, r.to, costs_->record_bytes, TrafficClass::kBulk,
               [this, r, record = *rec]() {
                 if (!NodeDead(r.to)) {
                   NodeAt(r.to).workers().Submit(
                       costs_->storage_op_us + costs_->msg_processing_us,
                       [] {});
                 }
                 DeliverRecord(r.to, r.key, record);
               });
  }
  for (const auto& [node, work] : send_work) {
    NodeAt(node).workers().Submit(work, [] {});
  }
  if (returns > 0) metrics_->RecordMigrations(sim_->Now(), returns);

  TxnResult result;
  result.id = a.plan.txn.id;
  result.aborted = a.plan.txn.user_abort;
  result.distributed = a.distributed;
  result.latency.scheduling_us =
      a.dispatch_time > a.plan.txn.submit_time
          ? a.dispatch_time - a.plan.txn.submit_time
          : 0;
  // Lock wait: time from dispatch until the (last) master held its locks.
  SimTime lock_wait = 0;
  for (const auto& m : a.masters) {
    const NodeState* state = nullptr;
    for (const auto& [id, st] : a.nodes) {
      if (id == m.node) state = &st;
    }
    if (state != nullptr && state->grant_time > a.dispatch_time) {
      lock_wait = std::max(lock_wait, state->grant_time - a.dispatch_time);
    }
  }
  result.latency.lock_wait_us = lock_wait;
  // Per-master contributions were accumulated on each master's own lane;
  // summing here (exclusive context) reproduces the sequential totals.
  SimTime remote_wait_us = 0;
  SimTime exec_us = 0;
  for (const auto& m : a.masters) {
    remote_wait_us += m.remote_wait_us;
    exec_us += m.exec_us;
  }
  result.latency.remote_wait_us = remote_wait_us;
  result.latency.storage_us = exec_us;

  // Phase spans: the lifecycle timeline of §2.1, laid end to end from
  // submit time. Purely derived from the latency breakdown computed above.
  const NodeId master = a.plan.masters[0];
  if (HERMES_TRACE_ACTIVE(tracer_)) {
    const TxnId tid = a.plan.txn.id;
    SimTime at = a.plan.txn.submit_time;
    tracer_->RecordSpan(obs::EventKind::kPhaseSequence, master, tid, kNoKey,
                        at, result.latency.scheduling_us);
    at += result.latency.scheduling_us;
    tracer_->RecordSpan(obs::EventKind::kPhaseLockWait, master, tid, kNoKey,
                        at, result.latency.lock_wait_us);
    at += result.latency.lock_wait_us;
    tracer_->RecordSpan(obs::EventKind::kPhaseRemoteWait, master, tid, kNoKey,
                        at, result.latency.remote_wait_us);
    at += result.latency.remote_wait_us;
    tracer_->RecordSpan(obs::EventKind::kPhaseExecute, master, tid, kNoKey,
                        at, result.latency.storage_us);
  }

  const bool regular = a.plan.txn.kind == TxnKind::kRegular;
  CommitCallback cb = std::move(a.on_commit);
  const SimTime submit = a.plan.txn.submit_time;
  if (result.aborted) {
    aborted_.Add();
  } else {
    committed_.Add();
  }
  a.acked = true;

  // Client acknowledgment is one network hop away.
  const SimTime ack_delay = costs_->net_latency_us;
  sim_->Schedule(ack_delay, [this, result, cb = std::move(cb), submit,
                             regular, master]() mutable {
    result.latency.total_us = sim_->Now() > submit ? sim_->Now() - submit : 0;
    const SimTime accounted =
        result.latency.scheduling_us + result.latency.lock_wait_us +
        result.latency.remote_wait_us + result.latency.storage_us;
    result.latency.other_us =
        result.latency.total_us > accounted
            ? result.latency.total_us - accounted
            : 0;
    if (regular) {
      metrics_->RecordCommit(sim_->Now(), result.latency, result.distributed,
                             result.aborted);
    }
    HERMES_TRACE(tracer_,
                 result.aborted ? obs::EventKind::kTxnAbort
                                : obs::EventKind::kTxnCommit,
                 master, result.id, kNoKey, result.latency.total_us);
    if (cb) cb(result);
  });
}

std::string TxnExecutor::DebugString() const {
  std::string out;
  char buf[256];
  std::vector<TxnId> ids;
  ids.reserve(actives_.size());
  // detlint:allow(unordered-iter) id collection, sorted just below
  for (const auto& [id, a] : actives_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (TxnId id : ids) {
    const auto& a = actives_.at(id);
    std::snprintf(buf, sizeof(buf),
                  "txn %llu kind=%d attempt=%u%s%s:\n",
                  static_cast<unsigned long long>(id),
                  static_cast<int>(a->plan.txn.kind), a->plan.txn.attempt,
                  a->plan.txn.retry_of != kInvalidTxn ? " retry" : "",
                  a->frozen ? " FROZEN" : "");
    out += buf;
    for (const auto& [node, st] : a->nodes) {
      std::snprintf(buf, sizeof(buf),
                    "  node %d granted=%d master=%d locks=%zu owned=%zu\n",
                    node, st.granted, st.is_master, st.lock_requests.size(),
                    st.owned.size());
      out += buf;
      for (const auto& acc : st.owned) {
        if ((*nodes_)[node]->store().Contains(acc.key)) continue;
        NodeId actually = kInvalidNode;
        for (const auto& n : *nodes_) {
          if (n->store().Contains(acc.key)) actually = n->id();
        }
        std::snprintf(buf, sizeof(buf),
                      "    MISSING key=%llu (w=%d ship=%d new=%d) actually at "
                      "node %d\n",
                      static_cast<unsigned long long>(acc.key), acc.is_write,
                      acc.ship_to_master, acc.new_owner, actually);
        out += buf;
      }
    }
    for (const auto& m : a->masters) {
      std::snprintf(buf, sizeof(buf),
                    "  master %d pending=%d local=%d started=%d done=%d\n",
                    m.node, m.pending_messages, m.local_present, m.started,
                    m.done);
      out += buf;
    }
  }
  // Sorted so the diagnostic is stable across runs and hash salts.
  std::vector<std::tuple<NodeId, Key, size_t>> waits;
  for (size_t node = 0; node < presence_waiters_.size(); ++node) {
    for (const auto& [key, waiters] : presence_waiters_[node]) {
      waits.emplace_back(static_cast<NodeId>(node), key, waiters.size());
    }
  }
  std::sort(waits.begin(), waits.end());
  for (const auto& [node, key, count] : waits) {
    std::snprintf(buf, sizeof(buf), "presence wait: node=%d key=%llu (%zu)\n",
                  node, static_cast<unsigned long long>(key), count);
    out += buf;
  }
  for (const auto& [key, r] : inflight_records_) {
    std::snprintf(buf, sizeof(buf),
                  "in flight: key=%llu node %d -> node %d (txn %llu)%s\n",
                  static_cast<unsigned long long>(key), r.from, r.to,
                  static_cast<unsigned long long>(r.txn),
                  r.suppressed ? " SUPPRESSED" : "");
    out += buf;
  }
  for (const auto& [key, node] : displaced_) {
    std::snprintf(buf, sizeof(buf),
                  "displaced: key=%llu physically at node %d\n",
                  static_cast<unsigned long long>(key), node);
    out += buf;
  }
  return out;
}

TxnExecutor::PresenceShardMap& TxnExecutor::PresenceShard(NodeId node) {
  const size_t idx = static_cast<size_t>(node);
  if (idx >= presence_waiters_.size()) {
    // Shard growth reallocates the vector, which would race lanes reading
    // their own shards — it may only happen in exclusive context (nodes
    // are provisioned there, before their lane runs any event).
    assert(!sim_->in_lane_context() &&
           "presence shards may only grow in exclusive context");
    presence_waiters_.resize(nodes_->size() > idx + 1 ? nodes_->size()
                                                      : idx + 1);
  }
  return presence_waiters_[idx];
}

void TxnExecutor::WaitPresence(NodeId node, std::vector<Key> keys,
                               std::function<void()> ready) {
  std::vector<Key> missing;
  for (Key k : keys) {
    if (!NodeAt(node).store().Contains(k)) missing.push_back(k);
  }
  if (missing.empty()) {
    ready();
    return;
  }
  auto remaining = std::make_shared<size_t>(missing.size());
  auto shared_ready = std::make_shared<std::function<void()>>(std::move(ready));
  PresenceShardMap& shard = PresenceShard(node);
  for (Key k : missing) {
    shard[k].push_back([remaining, shared_ready]() {
      if (--*remaining == 0) (*shared_ready)();
    });
  }
}

void TxnExecutor::Freeze(Active& a) {
  // The frozen flag and the sorted watchdog index are shared across
  // nodes; lane-side freezes (dead-node gates firing on the dead node's
  // lane) land at the epoch barrier, same virtual time. Captured by id:
  // the transaction may complete at the same barrier.
  const TxnId id = a.plan.txn.id;
  sim_->Defer([this, id]() {
    auto it = actives_.find(id);
    if (it == actives_.end()) return;
    it->second->frozen = true;
    frozen_ids_.insert(id);
  });
}

void TxnExecutor::FreezeStalled(Active& a, NodeId node,
                                std::function<void()> resume) {
  // Same barrier discipline as Freeze(); additionally parks the abandoned
  // continuation under the dead node so ResumeStalled can re-drive it.
  const TxnId id = a.plan.txn.id;
  sim_->Defer([this, id, node, resume = std::move(resume)]() mutable {
    auto it = actives_.find(id);
    if (it == actives_.end()) return;
    it->second->frozen = true;
    frozen_ids_.insert(id);
    it->second->stalled[node].push_back(std::move(resume));
  });
}

void TxnExecutor::ResumeStalled(NodeId node) {
  // Sorted snapshot: resume order is total regardless of hash salt, and
  // a thunk may complete its transaction (erasing it from the live index)
  // while later ids still wait their turn.
  const std::vector<TxnId> frozen(frozen_ids_.begin(), frozen_ids_.end());
  for (TxnId id : frozen) {
    auto it = actives_.find(id);
    if (it == actives_.end()) {
      frozen_ids_.erase(id);
      continue;
    }
    Active& a = *it->second;
    // Only acknowledged transactions resume. Their writes are already
    // committed in serial order — what stalled is pure record shipment,
    // which lands correctly at any later time (destinations presence-wait
    // on the record itself). An un-acked frozen transaction must NOT be
    // resurrected: while it was frozen, later transactions may have
    // overtaken its serial position through the re-routed ownership map,
    // so replaying its writes now would fold them in the wrong order.
    // The watchdog UNDO-aborts those (recorded, so replay flips them to
    // §4.2 user-aborts at the right log position).
    if (!a.acked) continue;
    auto sit = a.stalled.find(node);
    if (sit == a.stalled.end()) continue;
    std::vector<std::function<void()>> thunks = std::move(sit->second);
    a.stalled.erase(sit);
    if (a.stalled.empty()) {
      // No other dead gate holds this transaction; it either completes
      // now or freezes again if a machine hits another down node.
      a.frozen = false;
      frozen_ids_.erase(id);
    }
    HERMES_TRACE(tracer_, obs::EventKind::kTxnResume, node, id, kNoKey,
                 thunks.size());
    for (auto& t : thunks) t();  // may destroy the Active
  }
}

void TxnExecutor::StartReplicaInstall(Key key, NodeId source, NodeId holder,
                                      TxnId txn) {
  // Locate the primary: at the routed source, else follow an in-flight
  // migration to its destination, else (displaced during an outage) scan
  // the stores in node order. The copy is a snapshot — the primary is
  // never extracted, so record singularity is untouched. If the record
  // never materializes at `src` (crash mid-flight), the waiter idles
  // harmlessly: the membership epoch change lapses the lease and wakes
  // every read blocked on the copy.
  NodeId from = source;
  if (from == kInvalidNode || !NodeAt(from).store().Contains(key)) {
    const auto it = inflight_records_.find(key);
    if (it != inflight_records_.end()) {
      from = it->second.to;
    } else {
      for (const auto& n : *nodes_) {
        if (n->store().Contains(key)) {
          from = n->id();
          break;
        }
      }
    }
  }
  if (from == kInvalidNode) return;
  const NodeId src = from;
  WaitPresence(src, {key}, [this, key, src, holder, txn]() {
    const storage::Record* rec = NodeAt(src).store().Get(key);
    if (rec == nullptr) {
      // An earlier waiter in the same wake list (a migration's presence
      // wait) re-extracted the record before this one ran. Dropping the
      // install would wedge every read waiting on the copy, so re-resolve
      // from exclusive context — the barrier runs after TrackInFlight's
      // deferred bookkeeping, so the retry sees the new destination.
      sim_->Defer([this, key, holder, txn]() {
        const std::vector<NodeId>* holders = lease_mgr_->HoldersOf(key);
        if (holders == nullptr ||
            !std::binary_search(holders->begin(), holders->end(), holder)) {
          return;  // revoked/lapsed meanwhile: waiters were already woken
        }
        if (lease_mgr_->CopyPresent(holder, key)) return;
        StartReplicaInstall(key, kInvalidNode, holder, txn);
      });
      return;
    }
    const storage::Record snapshot = *rec;
    NodeAt(src).workers().Submit(costs_->storage_op_us, [] {});
    if (src == holder) {
      // The primary is itself a holder (a lease covers every candidate so
      // the key stays locally readable wherever the primary later
      // migrates): its copy snapshots the local record, no network hop.
      lease_mgr_->ApplyCopy(holder, key, snapshot, /*install=*/true, txn);
      return;
    }
    net_->Send(src, holder, costs_->record_bytes, TrafficClass::kBulk,
               [this, key, holder, txn, snapshot]() {
                 if (NodeDead(holder)) return;
                 NodeAt(holder).workers().Submit(costs_->msg_processing_us,
                                                 [] {});
                 lease_mgr_->ApplyCopy(holder, key, snapshot,
                                       /*install=*/true, txn);
               });
  });
}

void TxnExecutor::TrackInFlight(Key key, NodeId from, NodeId to, TxnId txn,
                                const storage::Record& record) {
  // The in-flight table is written only in exclusive context; extraction
  // on a node lane defers the bookkeeping to the barrier (same virtual
  // time — the record was already physically Extract()ed by the caller).
  sim_->Defer([this, key, from, to, txn, record]() {
    assert(!inflight_records_.contains(key) &&
           "record extracted twice without an intervening delivery");
    inflight_records_[key] = InFlightRecord{from, to, txn, record};
  });
}

void TxnExecutor::DeliverRecord(NodeId node, Key key,
                                const storage::Record& record) {
  if (NodeDead(node)) {
    // The destination died while the record was on the wire. Suppress the
    // delivery (the record stays in inflight_records_, so singularity
    // holds) and arm a deterministic reclaim: after reclaim_timeout_us
    // the sender re-inserts the record and notes the divergence from the
    // ownership map; if the node rejoins first, OnNodeUp flushes it.
    // Suppression mutates shared state (the in-flight table, the frozen
    // index), so it rides the barrier when the delivery ran lane-side.
    sim_->Defer([this, node, key]() {
      auto it = inflight_records_.find(key);
      if (it == inflight_records_.end()) return;
      InFlightRecord& entry = it->second;
      if (entry.suppressed) return;
      entry.suppressed = true;
      HERMES_TRACE(tracer_, obs::EventKind::kRecordSuppress, node, entry.txn,
                   key);
      // Freeze the carrying transaction: its shipment will never complete.
      const TxnId carrier = entry.txn;
      auto at = actives_.find(carrier);
      if (at != actives_.end()) Freeze(*at->second);
      const SimTime timeout =
          degraded_ != nullptr ? degraded_->reclaim_timeout_us : 2000;
      sim_->Schedule(timeout,
                     [this, key, carrier]() { ReclaimSuppressed(key, carrier); });
    });
    return;
  }
  if (HERMES_TRACE_ACTIVE(tracer_)) {
    // Read-only lookup: lanes may read the in-flight table (all writes are
    // barrier-serialized), and this delivery's entry was inserted at an
    // earlier barrier — the wire time is positive.
    auto carrier = inflight_records_.find(key);
    tracer_->Record(obs::EventKind::kRecordDeliver, node,
                    carrier != inflight_records_.end() ? carrier->second.txn
                                                       : kInvalidTxn,
                    key);
  }
  sim_->Defer([this, key]() { inflight_records_.erase(key); });
  NodeAt(node).store().Insert(key, record);
  PresenceShardMap& shard = PresenceShard(node);
  auto it = shard.find(key);
  if (it == shard.end()) return;
  std::vector<std::function<void()>> waiters = std::move(it->second);
  shard.erase(it);
  for (auto& w : waiters) w();
}

void TxnExecutor::ReclaimSuppressed(Key key, TxnId carrier) {
  auto rit = inflight_records_.find(key);
  if (rit == inflight_records_.end()) return;  // flushed at rejoin
  const InFlightRecord e = rit->second;
  if (!e.suppressed || e.txn != carrier) return;  // re-extracted since
  if (!NodeDead(e.to)) return;  // rejoined; OnNodeUp owns the flush
  if (NodeDead(e.from)) {
    // Overlapping fault windows: the source is down too (a detector
    // suspect while the destination's crash outage is still open).
    // Handing the payload to DeliverRecord now would hit its suppress
    // branch with no in-flight entry left to park it in and the record
    // would vanish. Keep the entry suppressed and retry one timeout
    // later; whichever side comes back first resolves it (OnNodeUp
    // flushes on the destination's rejoin).
    const SimTime timeout =
        degraded_ != nullptr ? degraded_->reclaim_timeout_us : 2000;
    sim_->Schedule(timeout,
                   [this, key, carrier]() { ReclaimSuppressed(key, carrier); });
    return;
  }
  inflight_records_.erase(rit);
  displaced_[key] = e.from;
  if (ledger_ != nullptr) ledger_->RecordReclaim();
  HERMES_TRACE(tracer_, obs::EventKind::kRecordReclaim, e.from, carrier, key);
  DeliverRecord(e.from, key, e.record);
}

void TxnExecutor::EnableDegraded(const MembershipView* membership,
                                 const DegradedConfig* config,
                                 DegradedLedger* ledger,
                                 DegradedAbortHandler on_abort) {
  membership_ = membership;
  degraded_ = config;
  ledger_ = ledger;
  degraded_abort_ = std::move(on_abort);
}

void TxnExecutor::OnNodeDown(NodeId node) {
  assert(membership_ != nullptr && !membership_->alive(node) &&
         "cluster must MarkDown before notifying the executor");
  (void)node;
  // Transactions freeze lazily as their events hit the dead node; the
  // sweep below reclassifies them. One chain per outage window.
  if (watchdog_armed_) return;
  watchdog_armed_ = true;
  const SimTime deadline =
      degraded_ != nullptr ? degraded_->watchdog_deadline_us : 5000;
  sim_->Schedule(deadline, [this]() { WatchdogSweep(); });
}

void TxnExecutor::OnNodeUp(NodeId node) {
  // Flush records that were suppressed mid-flight toward the node: the
  // rebuilt (detached-in-place) store plus these deliveries equals the
  // state a fault-free replay produces. Reclaim timers still pending
  // find their entry gone and no-op. std::map keeps the order total.
  std::vector<Key> flush;
  for (const auto& [key, e] : inflight_records_) {
    if (e.suppressed && e.to == node) flush.push_back(key);
  }
  for (Key k : flush) {
    auto it = inflight_records_.find(k);
    assert(it != inflight_records_.end());
    const InFlightRecord e = it->second;
    inflight_records_.erase(it);
    DeliverRecord(e.to, k, e.record);
  }
  // Then re-drive the machines the node's dead gates stalled. A stalled
  // participant may carry a planned migration whose ownership change is
  // already visible to routing — until the resumed send phase ships the
  // record, every toucher routed to the new owner presence-waits on it.
  // The watchdog cannot clean these up: the master may have committed
  // and acknowledged without waiting on a pure-migration participant,
  // and acknowledged transactions are never UNDO-aborted.
  ResumeStalled(node);
}

void TxnExecutor::WatchdogSweep() {
  // frozen_ids_ is a sorted index maintained by Freeze(): iterating it
  // instead of the salted actives_ map keeps the abort order total.
  const std::vector<TxnId> doomed(frozen_ids_.begin(), frozen_ids_.end());
  for (TxnId id : doomed) {
    auto it = actives_.find(id);
    if (it == actives_.end()) continue;
    if (it->second->acked) continue;
    AbortActive(*it->second);
  }
  if (membership_ != nullptr && membership_->any_down()) {
    const SimTime period =
        degraded_ != nullptr ? degraded_->watchdog_period_us : 5000;
    sim_->Schedule(period, [this]() { WatchdogSweep(); });
  } else {
    // One final sweep always runs after rejoin (this one), catching
    // transactions frozen between the last in-outage sweep and MarkUp.
    watchdog_armed_ = false;
  }
}

void TxnExecutor::AbortActive(Active& a) {
  const TxnId id = a.plan.txn.id;
  assert(!a.acked && "watchdog must not abort an acknowledged transaction");
  // No-stall degraded mode is scoped to single-master plans without
  // return shipments (the Hermes router); multi-master baselines use the
  // stalling crash model instead.
  assert(a.plan.on_commit_returns.empty() &&
         "watchdog abort with return shipments is out of scope");
  HERMES_TRACE(tracer_, obs::EventKind::kWatchdogAbort, a.plan.masters[0], id,
               a.plan.accesses.empty() ? kNoKey : a.plan.accesses[0].key,
               a.plan.accesses.size());
  // Classify every planned migration that did not complete. The router
  // updated the ownership map at routing time, so a record that never
  // moved now sits where ownership no longer points.
  std::vector<Key> stranded;
  for (const Access& acc : a.plan.accesses) {
    if (acc.new_owner == kInvalidNode || acc.new_owner == acc.owner) continue;
    const Key k = acc.key;
    if (inflight_records_.contains(k)) continue;  // delivery/reclaim owns it
    if (NodeAt(acc.new_owner).store().Contains(k)) continue;  // landed
    if (!NodeAt(acc.owner).store().Contains(k)) continue;     // moved since
    const bool src_alive = !NodeDead(acc.owner);
    const bool dst_alive = !NodeDead(acc.new_owner);
    if (src_alive && dst_alive) {
      // Both ends alive (the transaction froze elsewhere): the move MUST
      // happen now — later transactions are already routed to new_owner.
      ReshipRecord(k, acc.owner, acc.new_owner);
    } else if (!src_alive) {
      // Record locked inside the dead store: stranded. Touchers are
      // blocked by the cluster until rejoin reconciliation reships it.
      stranded.push_back(k);
      displaced_[k] = acc.owner;
    } else {
      // Destination dead, source alive: ownership points at the dead
      // node, so touchers are blocked anyway; note the divergence for
      // rejoin reconciliation.
      displaced_[k] = acc.owner;
    }
  }
  stranded = SortedUnique(std::move(stranded));
  // A stranded key breaks the record's custody chain: the rejoin reship
  // jumps the record to its final ownership position, so every already-
  // dispatched transaction expecting it at an intermediate live waypoint
  // would wait forever — and, worse, could commit out of serial order if
  // a later migration happens to revisit its node. Freeze those touchers
  // (in id order) so the sweep UNDO-aborts and records them; replay flips
  // them to §4.2 user-aborts at the same log position, where their writes
  // fold and roll back in serial order. Touchers at dead waypoints are
  // already frozen by the dead-node gates; acknowledged touchers already
  // committed before the strand (the record cannot be both stranded and
  // present at their master).
  if (!stranded.empty()) {
    std::vector<TxnId> dependents;
    // detlint:allow(unordered-iter) id collection, sorted below
    for (const auto& [oid, other] : actives_) {
      if (oid == id || other->acked || other->frozen) continue;
      for (const Access& oacc : other->plan.accesses) {
        if (std::binary_search(stranded.begin(), stranded.end(), oacc.key)) {
          dependents.push_back(oid);
          break;
        }
      }
    }
    std::sort(dependents.begin(), dependents.end());
    for (TxnId d : dependents) Freeze(*actives_.at(d));
  }
  // Release locks (granted or queued) at every involved node; grants are
  // processed only after the transaction is gone.
  std::vector<std::pair<NodeId, std::vector<TxnId>>> grants;
  for (auto& [node, state] : a.nodes) {
    (void)state;
    std::vector<TxnId> g;
    NodeAt(node).locks().Release(id, &g);
    if (!g.empty()) grants.emplace_back(node, std::move(g));
  }
  aborted_.Add();
  if (ledger_ != nullptr) ledger_->RecordWatchdogAbort();
  TxnRequest txn = a.plan.txn;
  CommitCallback cb = std::move(a.on_commit);
  frozen_ids_.erase(id);
  actives_.erase(id);  // destroys `a`
  for (auto& [node, g] : grants) ProcessGrants(node, g);
  if (degraded_abort_) {
    degraded_abort_(std::move(txn), std::move(cb), std::move(stranded));
  }
}

void TxnExecutor::ReshipRecord(Key key, NodeId from, NodeId to) {
  auto rec = NodeAt(from).store().Extract(key);
  assert(rec.has_value() && "reshipping a record that is not present");
  HERMES_TRACE(tracer_, obs::EventKind::kRecordReship, from, kInvalidTxn, key,
               static_cast<uint32_t>(to));
  TrackInFlight(key, from, to, kInvalidTxn, *rec);
  if (ledger_ != nullptr) ledger_->RecordReship();
  NodeAt(from).workers().Submit(costs_->storage_op_us, [] {});
  net_->Send(from, to, costs_->record_bytes, TrafficClass::kBulk,
             [this, key, to, record = *rec]() {
               if (!NodeDead(to)) {
                 NodeAt(to).workers().Submit(
                     costs_->storage_op_us + costs_->msg_processing_us, [] {});
               }
               DeliverRecord(to, key, record);
             });
}

}  // namespace hermes::engine
