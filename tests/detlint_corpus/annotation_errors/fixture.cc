// detlint-fixture: path=src/engine/annotation_errors.cc
// detlint:requires(shared)
void FinishTxn(uint64_t id);

// detlint:runs(exclusive)
int kLimit = 4;
