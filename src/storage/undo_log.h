#ifndef HERMES_STORAGE_UNDO_LOG_H_
#define HERMES_STORAGE_UNDO_LOG_H_

#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "storage/record_store.h"

namespace hermes::storage {

/// Per-node UNDO log (§4.2): before a transaction's first write to a
/// record, its pre-image is captured; a user-logic abort rolls the images
/// back in reverse order. Deterministic systems have no system-initiated
/// aborts, so entries are dropped on commit.
class UndoLog {
 public:
  UndoLog() = default;

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  /// Captures the pre-image of `key` for `txn` (call before ApplyWrite).
  void RecordPreImage(TxnId txn, Key key, const Record& pre_image);

  /// Rolls back all of `txn`'s writes on `store`, newest first.
  void Abort(TxnId txn, RecordStore* store);

  /// Forgets `txn`'s entries (transaction committed).
  void Commit(TxnId txn);

  size_t active_txns() const { return entries_.size(); }

 private:
  struct Entry {
    Key key;
    Record pre_image;
  };
  HashMap<TxnId, std::vector<Entry>> entries_;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_UNDO_LOG_H_
