#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace hermes::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&] { fired.push_back(3); });
  q.Push(10, [&] { fired.push_back(1); });
  q.Push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7u);
  q.Pop();
  EXPECT_EQ(q.NextTime(), 42u);
}

TEST(EventQueueTest, SizeTracksContents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(1, [] {});
  q.Push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace hermes::sim
